//! Cross-crate integration tests: datasets → clustering → consensus → core
//! models → metrics, exercised through the umbrella crate exactly the way a
//! downstream user would.

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use sls_rbm::clustering::{AffinityPropagation, Clusterer, DensityPeaks, KMeans};
use sls_rbm::consensus::{LocalSupervisionBuilder, VotingPolicy};
use sls_rbm::datasets::{binarize_median, standardize_columns, SyntheticBlobs};
use sls_rbm::metrics::{clustering_accuracy, EvaluationReport};
use sls_rbm::rbm::{
    BoltzmannMachine, CdTrainer, Grbm, GrbmPipeline, Preprocessing, Rbm, SlsConfig, SlsGrbm,
    SlsGrbmPipeline, SlsPipelineConfig, SlsRbm, SlsRbmPipeline, TrainConfig,
};

fn rng(seed: u64) -> ChaCha8Rng {
    ChaCha8Rng::seed_from_u64(seed)
}

#[test]
fn full_gaussian_stack_improves_or_matches_raw_clustering() {
    let mut r = rng(1);
    let ds = SyntheticBlobs::new(120, 10, 3)
        .separation(4.0)
        .irrelevant_fraction(0.3)
        .generate(&mut r);
    let data = standardize_columns(ds.features()).unwrap();

    // Base clusterings.
    let clusterers: Vec<Box<dyn Clusterer>> = vec![
        Box::new(DensityPeaks::new(3)),
        Box::new(KMeans::new(3)),
        Box::new(AffinityPropagation::default().with_target_clusters(3)),
    ];
    let partitions: Vec<Vec<usize>> = clusterers
        .iter()
        .map(|c| c.cluster(&data, &mut r).unwrap().labels().to_vec())
        .collect();
    let raw_accuracy = clustering_accuracy(&partitions[1], ds.labels()).unwrap();

    // Supervision and sls training.
    let supervision = LocalSupervisionBuilder::new(3)
        .with_policy(VotingPolicy::Unanimous)
        .build_from_partitions(&partitions)
        .unwrap();
    assert!(supervision.summary().coverage > 0.3);

    // Paper-style single learning rate: the supervision gradient reuses the
    // CD rate ε. An oversized dedicated supervision rate distorts the hidden
    // features on data this separable instead of regularising them.
    let train = TrainConfig::default()
        .with_learning_rate(5e-3)
        .with_epochs(30);
    let sls_config = SlsConfig::paper_grbm();
    let mut model = SlsGrbm::new(data.cols(), 24, &mut r);
    model
        .train(&data, &supervision, train, sls_config, &mut r)
        .unwrap();
    let hidden = model.hidden_features(&data).unwrap();
    let assignment = KMeans::new(3).fit(&hidden, &mut r).unwrap().assignment;
    let sls_accuracy = clustering_accuracy(assignment.labels(), ds.labels()).unwrap();

    // The sls features must not destroy the structure; on this moderately
    // separable dataset they should be at least close to the raw clustering.
    assert!(
        sls_accuracy + 0.05 >= raw_accuracy,
        "sls accuracy {sls_accuracy} much worse than raw {raw_accuracy}"
    );
    assert!(hidden.is_finite());
}

#[test]
fn full_binary_stack_runs_and_evaluates() {
    let mut r = rng(2);
    let ds = SyntheticBlobs::new(100, 12, 2)
        .separation(2.5)
        .generate(&mut r);
    let data = binarize_median(ds.features());

    let partitions: Vec<Vec<usize>> = (0..3)
        .map(|seed| {
            KMeans::new(2)
                .fit(&data, &mut rng(seed))
                .unwrap()
                .assignment
                .labels()
                .to_vec()
        })
        .collect();
    let supervision = LocalSupervisionBuilder::new(2)
        .build_from_partitions(&partitions)
        .unwrap();

    let mut model = SlsRbm::new(data.cols(), 8, &mut r);
    let history = model
        .train(
            &data,
            &supervision,
            TrainConfig::default()
                .with_learning_rate(0.05)
                .with_epochs(10),
            SlsConfig::paper_rbm(),
            &mut r,
        )
        .unwrap();
    assert_eq!(history.epochs.len(), 10);
    let hidden = model.hidden_features(&data).unwrap();
    let report = EvaluationReport::evaluate(
        KMeans::new(2)
            .fit(&hidden, &mut r)
            .unwrap()
            .assignment
            .labels(),
        ds.labels(),
    )
    .unwrap();
    assert!(report.accuracy >= 0.5);
    assert!(report.rand_index > 0.0);
}

#[test]
fn sls_pipeline_and_baseline_pipeline_share_preprocessing() {
    let mut r = rng(3);
    let ds = SyntheticBlobs::new(80, 8, 3)
        .separation(5.0)
        .generate(&mut r);
    let config = SlsPipelineConfig::quick_demo().with_hidden(10);
    let sls = SlsGrbmPipeline::new(config)
        .run(ds.features(), &mut rng(7))
        .unwrap();
    let baseline = GrbmPipeline::new(config)
        .run(ds.features(), &mut rng(7))
        .unwrap();
    // Preprocessing is deterministic, so both pipelines must see the same
    // standardised matrix.
    assert!(sls.preprocessed.approx_eq(&baseline.preprocessed, 1e-12));
    assert!(sls.supervision.is_some());
    assert!(baseline.supervision.is_none());
    assert_eq!(sls.hidden_features.cols(), 10);
    assert_eq!(baseline.hidden_features.cols(), 10);
}

#[test]
fn binary_pipeline_binarizes_before_training() {
    let mut r = rng(4);
    let ds = SyntheticBlobs::new(70, 6, 2)
        .separation(4.0)
        .generate(&mut r);
    let config = SlsPipelineConfig::quick_demo()
        .with_clusters(2)
        .with_hidden(6)
        .with_preprocessing(Preprocessing::BinarizeMedian);
    let outcome = SlsRbmPipeline::new(config)
        .run(ds.features(), &mut r)
        .unwrap();
    assert!(outcome
        .preprocessed
        .as_slice()
        .iter()
        .all(|&x| x == 0.0 || x == 1.0));
    assert_eq!(outcome.hidden_features.rows(), 70);
}

#[test]
fn trained_baselines_are_reusable_across_crates() {
    // Train a plain RBM and a plain GRBM through the core crate and verify
    // the features they produce are consumable by the clustering and metrics
    // crates without further glue.
    let mut r = rng(5);
    let ds = SyntheticBlobs::new(60, 6, 2)
        .separation(5.0)
        .generate(&mut r);

    let binary = binarize_median(ds.features());
    let mut rbm = Rbm::new(6, 4, &mut r);
    CdTrainer::new(TrainConfig::quick())
        .unwrap()
        .train(&mut rbm, &binary, &mut r)
        .unwrap();
    let rbm_features = rbm.hidden_probabilities(&binary).unwrap();

    let continuous = standardize_columns(ds.features()).unwrap();
    let mut grbm = Grbm::new(6, 4, &mut r);
    CdTrainer::new(TrainConfig::quick().with_learning_rate(0.01))
        .unwrap()
        .train(&mut grbm, &continuous, &mut r)
        .unwrap();
    let grbm_features = grbm.hidden_probabilities(&continuous).unwrap();

    for features in [rbm_features, grbm_features] {
        let assignment = KMeans::new(2).fit(&features, &mut r).unwrap().assignment;
        let report = EvaluationReport::evaluate(assignment.labels(), ds.labels()).unwrap();
        assert!((0.0..=1.0).contains(&report.accuracy));
    }
}

#[test]
fn model_persistence_round_trips_through_the_umbrella_crate() {
    let mut r = rng(6);
    let model = SlsGrbm::new(9, 5, &mut r);
    let dir = std::env::temp_dir().join("sls_rbm_integration_io");
    let path = dir.join("model.json");
    sls_rbm::rbm::save_params_json(model.params(), &path).unwrap();
    let reloaded = SlsGrbm::from_params(sls_rbm::rbm::load_params_json(&path).unwrap());
    assert_eq!(reloaded.params(), model.params());
    std::fs::remove_dir_all(&dir).ok();
}
