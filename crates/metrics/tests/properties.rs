//! Property-based tests for the evaluation metrics.
//!
//! The invariants exercised here are the ones the experiment harness relies
//! on when comparing pipelines: all metrics are bounded, invariant to
//! relabelling of the predicted clusters, and reach their maximum exactly on
//! (relabellings of) the ground truth.

use proptest::prelude::*;
use sls_metrics::{
    adjusted_rand_index, clustering_accuracy, fowlkes_mallows_index, normalized_mutual_information,
    purity, rand_index, ContingencyTable, EvaluationReport,
};

/// Parallel (predicted, truth) label vectors of the same length.
fn label_pair() -> impl Strategy<Value = (Vec<usize>, Vec<usize>)> {
    (2usize..60).prop_flat_map(|n| {
        (
            proptest::collection::vec(0usize..5, n),
            proptest::collection::vec(0usize..4, n),
        )
    })
}

/// A labelling together with a permutation applied to its label values.
fn labels_and_permutation() -> impl Strategy<Value = (Vec<usize>, Vec<usize>)> {
    (2usize..50).prop_flat_map(|n| {
        (
            proptest::collection::vec(0usize..4, n),
            Just(vec![3usize, 0, 2, 1]),
        )
    })
}

proptest! {
    #[test]
    fn all_metrics_are_bounded((p, t) in label_pair()) {
        let r = EvaluationReport::evaluate(&p, &t).unwrap();
        for v in [r.accuracy, r.purity, r.rand_index, r.fmi, r.nmi] {
            prop_assert!((0.0..=1.0 + 1e-12).contains(&v), "metric {v} out of range");
        }
        prop_assert!(r.adjusted_rand_index <= 1.0 + 1e-12);
    }

    #[test]
    fn perfect_prediction_maximises_everything(t in proptest::collection::vec(0usize..4, 2..60)) {
        let r = EvaluationReport::evaluate(&t, &t).unwrap();
        prop_assert!((r.accuracy - 1.0).abs() < 1e-12);
        prop_assert!((r.purity - 1.0).abs() < 1e-12);
        prop_assert!((r.rand_index - 1.0).abs() < 1e-12);
        prop_assert!((r.fmi - 1.0).abs() < 1e-12);
        prop_assert!((r.nmi - 1.0).abs() < 1e-12);
    }

    #[test]
    fn metrics_invariant_to_cluster_relabelling((labels, perm) in labels_and_permutation()) {
        let truth = labels.clone();
        let relabelled: Vec<usize> = labels.iter().map(|&l| perm[l]).collect();
        let a = EvaluationReport::evaluate(&labels, &truth).unwrap();
        let b = EvaluationReport::evaluate(&relabelled, &truth).unwrap();
        prop_assert!((a.accuracy - b.accuracy).abs() < 1e-9);
        prop_assert!((a.purity - b.purity).abs() < 1e-9);
        prop_assert!((a.rand_index - b.rand_index).abs() < 1e-9);
        prop_assert!((a.fmi - b.fmi).abs() < 1e-9);
        prop_assert!((a.nmi - b.nmi).abs() < 1e-9);
    }

    #[test]
    fn purity_upper_bounds_accuracy((p, t) in label_pair()) {
        let acc = clustering_accuracy(&p, &t).unwrap();
        let pur = purity(&p, &t).unwrap();
        prop_assert!(pur + 1e-12 >= acc);
    }

    #[test]
    fn rand_index_symmetric_in_arguments((p, t) in label_pair()) {
        let ab = rand_index(&p, &t).unwrap();
        let ba = rand_index(&t, &p).unwrap();
        prop_assert!((ab - ba).abs() < 1e-12);
    }

    #[test]
    fn fmi_symmetric_in_arguments((p, t) in label_pair()) {
        let ab = fowlkes_mallows_index(&p, &t).unwrap();
        let ba = fowlkes_mallows_index(&t, &p).unwrap();
        prop_assert!((ab - ba).abs() < 1e-12);
    }

    #[test]
    fn nmi_symmetric_in_arguments((p, t) in label_pair()) {
        let ab = normalized_mutual_information(&p, &t).unwrap();
        let ba = normalized_mutual_information(&t, &p).unwrap();
        prop_assert!((ab - ba).abs() < 1e-9);
    }

    #[test]
    fn ari_not_above_one((p, t) in label_pair()) {
        let ari = adjusted_rand_index(&p, &t).unwrap();
        prop_assert!(ari <= 1.0 + 1e-12);
    }

    #[test]
    fn contingency_marginals_sum_to_total((p, t) in label_pair()) {
        let table = ContingencyTable::from_labels(&p, &t).unwrap();
        let total: usize = table.cluster_sizes().iter().sum();
        prop_assert_eq!(total, p.len());
        let total_cols: usize = table.class_sizes().iter().sum();
        prop_assert_eq!(total_cols, p.len());
        prop_assert_eq!(table.total(), p.len());
    }

    #[test]
    fn accuracy_at_least_one_over_k((p, t) in label_pair()) {
        // With an optimal mapping, accuracy is at least the share of the
        // largest ground-truth class captured by the best single cluster
        // assignment; in particular it is strictly positive.
        let acc = clustering_accuracy(&p, &t).unwrap();
        prop_assert!(acc > 0.0);
    }
}
