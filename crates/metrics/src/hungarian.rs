//! Hungarian (Kuhn–Munkres) algorithm for optimal assignment.
//!
//! Clustering accuracy (Eq. 36) requires mapping each predicted cluster to a
//! distinct ground-truth class so that the number of correctly mapped
//! instances is maximised — exactly a maximum-weight bipartite matching on
//! the contingency table. We implement the O(n³) Jonker-style shortest
//! augmenting path formulation on a padded square cost matrix.

use crate::{MetricsError, Result};

/// Solves the **maximum**-weight assignment problem.
///
/// `weights[i][j]` is the benefit of assigning row `i` to column `j`. The
/// matrix may be rectangular; rows beyond the number of columns (or vice
/// versa) simply stay unassigned. Returns, for each row, `Some(column)` if it
/// was matched to a real column and `None` otherwise.
///
/// # Errors
///
/// Returns [`MetricsError::RaggedCostMatrix`] if the rows are not all the
/// same length.
pub fn hungarian_max_assignment(weights: &[Vec<f64>]) -> Result<Vec<Option<usize>>> {
    if weights.is_empty() {
        return Ok(Vec::new());
    }
    let n_rows = weights.len();
    let n_cols = weights[0].len();
    for (i, row) in weights.iter().enumerate() {
        if row.len() != n_cols {
            return Err(MetricsError::RaggedCostMatrix { row: i });
        }
    }
    if n_cols == 0 {
        return Ok(vec![None; n_rows]);
    }

    // Convert to a square minimisation problem: cost = max_weight - weight,
    // padded with zeros (equivalently max_weight benefit for dummy cells,
    // but constant shifts per matrix do not change the argmin).
    let n = n_rows.max(n_cols);
    let max_w = weights
        .iter()
        .flatten()
        .copied()
        .fold(f64::NEG_INFINITY, f64::max);
    let cost = |i: usize, j: usize| -> f64 {
        if i < n_rows && j < n_cols {
            max_w - weights[i][j]
        } else {
            // Dummy rows/columns cost nothing so they absorb the surplus.
            0.0
        }
    };

    // Shortest-augmenting-path Hungarian algorithm (1-indexed internals).
    let inf = f64::INFINITY;
    let mut u = vec![0.0; n + 1];
    let mut v = vec![0.0; n + 1];
    let mut p = vec![0usize; n + 1]; // p[j] = row matched to column j
    let mut way = vec![0usize; n + 1];

    for i in 1..=n {
        p[0] = i;
        let mut j0 = 0usize;
        let mut minv = vec![inf; n + 1];
        let mut used = vec![false; n + 1];
        loop {
            used[j0] = true;
            let i0 = p[j0];
            let mut delta = inf;
            let mut j1 = 0usize;
            for j in 1..=n {
                if used[j] {
                    continue;
                }
                let cur = cost(i0 - 1, j - 1) - u[i0] - v[j];
                if cur < minv[j] {
                    minv[j] = cur;
                    way[j] = j0;
                }
                if minv[j] < delta {
                    delta = minv[j];
                    j1 = j;
                }
            }
            for j in 0..=n {
                if used[j] {
                    u[p[j]] += delta;
                    v[j] -= delta;
                } else {
                    minv[j] -= delta;
                }
            }
            j0 = j1;
            if p[j0] == 0 {
                break;
            }
        }
        loop {
            let j1 = way[j0];
            p[j0] = p[j1];
            j0 = j1;
            if j0 == 0 {
                break;
            }
        }
    }

    let mut assignment = vec![None; n_rows];
    for (j, &i) in p.iter().enumerate().take(n + 1).skip(1) {
        if i >= 1 && i <= n_rows && j <= n_cols {
            assignment[i - 1] = Some(j - 1);
        }
    }
    Ok(assignment)
}

/// Total weight of an assignment returned by [`hungarian_max_assignment`].
#[cfg(test)]
pub(crate) fn assignment_weight(weights: &[Vec<f64>], assignment: &[Option<usize>]) -> f64 {
    assignment
        .iter()
        .enumerate()
        .filter_map(|(i, &j)| j.map(|j| weights[i][j]))
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Brute-force maximum assignment for small matrices, used as the oracle.
    fn brute_force(weights: &[Vec<f64>]) -> f64 {
        let n_rows = weights.len();
        let n_cols = weights[0].len();
        let cols: Vec<usize> = (0..n_cols).collect();
        let mut best = f64::NEG_INFINITY;
        permute(&cols, &mut Vec::new(), &mut |perm| {
            let score: f64 = perm
                .iter()
                .take(n_rows)
                .enumerate()
                .map(|(i, &j)| weights[i][j])
                .sum();
            if score > best {
                best = score;
            }
        });
        // If there are more rows than columns, also consider which rows stay
        // unmatched — with non-negative weights the permutation bound above
        // is only exact for n_rows <= n_cols, which the tests respect.
        best
    }

    fn permute(rest: &[usize], acc: &mut Vec<usize>, f: &mut impl FnMut(&[usize])) {
        if rest.is_empty() {
            f(acc);
            return;
        }
        for (idx, &x) in rest.iter().enumerate() {
            let mut next: Vec<usize> = rest.to_vec();
            next.remove(idx);
            acc.push(x);
            permute(&next, acc, f);
            acc.pop();
        }
    }

    #[test]
    fn empty_input() {
        assert_eq!(
            hungarian_max_assignment(&[]).unwrap(),
            Vec::<Option<usize>>::new()
        );
        let no_cols = vec![vec![], vec![]];
        assert_eq!(
            hungarian_max_assignment(&no_cols).unwrap(),
            vec![None, None]
        );
    }

    #[test]
    fn rejects_ragged() {
        let w = vec![vec![1.0, 2.0], vec![1.0]];
        assert!(matches!(
            hungarian_max_assignment(&w),
            Err(MetricsError::RaggedCostMatrix { row: 1 })
        ));
    }

    #[test]
    fn square_known_optimum() {
        let w = vec![
            vec![7.0, 5.0, 11.0],
            vec![5.0, 4.0, 1.0],
            vec![9.0, 3.0, 2.0],
        ];
        let a = hungarian_max_assignment(&w).unwrap();
        let score = assignment_weight(&w, &a);
        assert_eq!(score, brute_force(&w));
        assert_eq!(score, 11.0 + 4.0 + 9.0);
    }

    #[test]
    fn assignment_is_a_matching() {
        let w = vec![
            vec![1.0, 2.0, 3.0, 4.0],
            vec![4.0, 3.0, 2.0, 1.0],
            vec![2.0, 4.0, 1.0, 3.0],
            vec![3.0, 1.0, 4.0, 2.0],
        ];
        let a = hungarian_max_assignment(&w).unwrap();
        let mut seen = std::collections::HashSet::new();
        for j in a.iter().flatten() {
            assert!(seen.insert(*j), "column {j} assigned twice");
        }
        assert_eq!(seen.len(), 4);
        assert_eq!(assignment_weight(&w, &a), brute_force(&w));
    }

    #[test]
    fn rectangular_wide_matrix() {
        // 2 rows, 4 columns: both rows must be matched to distinct columns.
        let w = vec![vec![1.0, 9.0, 2.0, 3.0], vec![8.0, 9.0, 1.0, 1.0]];
        let a = hungarian_max_assignment(&w).unwrap();
        assert_eq!(assignment_weight(&w, &a), 17.0);
        assert_ne!(a[0], a[1]);
    }

    #[test]
    fn rectangular_tall_matrix() {
        // 3 rows, 2 columns: exactly one row stays unmatched.
        let w = vec![vec![10.0, 1.0], vec![9.0, 8.0], vec![1.0, 7.0]];
        let a = hungarian_max_assignment(&w).unwrap();
        let matched: Vec<_> = a.iter().flatten().collect();
        assert_eq!(matched.len(), 2);
        assert_eq!(assignment_weight(&w, &a), 10.0 + 8.0);
        assert_eq!(a[2], None);
    }

    #[test]
    fn random_matrices_match_brute_force() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(99);
        for _ in 0..50 {
            let n = rng.gen_range(1..=5);
            let m = rng.gen_range(n..=5);
            let w: Vec<Vec<f64>> = (0..n)
                .map(|_| (0..m).map(|_| rng.gen_range(0.0..20.0)).collect())
                .collect();
            let a = hungarian_max_assignment(&w).unwrap();
            let score = assignment_weight(&w, &a);
            let best = brute_force(&w);
            assert!(
                (score - best).abs() < 1e-9,
                "hungarian {score} != brute force {best} for {w:?}"
            );
        }
    }

    #[test]
    fn ties_still_produce_valid_matching() {
        let w = vec![vec![1.0, 1.0], vec![1.0, 1.0]];
        let a = hungarian_max_assignment(&w).unwrap();
        assert_eq!(assignment_weight(&w, &a), 2.0);
        assert_ne!(a[0], a[1]);
    }
}
