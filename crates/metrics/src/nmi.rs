//! Normalised mutual information.
//!
//! Not reported in the paper's tables, but used by the repository's extended
//! ablation benchmarks as an additional information-theoretic check that the
//! sls-augmented features carry more class information than raw features.

use crate::{ContingencyTable, Result};

/// Normalised mutual information with arithmetic-mean normalisation:
/// `NMI = MI(U, V) / ((H(U) + H(V)) / 2)`, clamped to `[0, 1]`.
///
/// # Errors
///
/// Returns an error if the label slices are empty or of different length.
pub fn normalized_mutual_information(predicted: &[usize], truth: &[usize]) -> Result<f64> {
    Ok(ContingencyTable::from_labels(predicted, truth)?.normalized_mutual_information())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_partitions_have_nmi_one() {
        let labels = [0, 0, 1, 1, 2, 2];
        assert!((normalized_mutual_information(&labels, &labels).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn independent_partitions_have_nmi_zero() {
        let truth = [0, 0, 1, 1];
        let predicted = [0, 1, 0, 1];
        assert!(normalized_mutual_information(&predicted, &truth).unwrap() < 1e-12);
    }

    #[test]
    fn relabelling_does_not_change_nmi() {
        let truth = [0, 0, 0, 1, 1, 2];
        let predicted = [2, 2, 2, 0, 0, 1];
        assert!((normalized_mutual_information(&predicted, &truth).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn nmi_decreases_with_noise() {
        let truth: Vec<usize> = (0..30).map(|i| i / 10).collect();
        let mut noisy = truth.clone();
        noisy[0] = 2;
        noisy[10] = 0;
        noisy[20] = 1;
        let clean = normalized_mutual_information(&truth, &truth).unwrap();
        let degraded = normalized_mutual_information(&noisy, &truth).unwrap();
        assert!(degraded < clean);
        assert!(degraded > 0.0);
    }

    #[test]
    fn errors_on_invalid_input() {
        assert!(normalized_mutual_information(&[], &[]).is_err());
        assert!(normalized_mutual_information(&[0], &[0, 1]).is_err());
    }
}
