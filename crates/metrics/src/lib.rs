//! # sls-metrics
//!
//! External clustering-evaluation metrics used throughout the paper's
//! experimental section (Section V-B):
//!
//! * **Accuracy** (Eq. 36) — fraction of instances whose cluster label,
//!   after an optimal one-to-one mapping of clusters to classes computed with
//!   the Hungarian algorithm, equals the ground-truth class.
//! * **Purity** (Eq. 38) — weighted fraction of the dominant class in each
//!   cluster.
//! * **Rand index** (Eq. 37) — pairwise agreement between two partitions.
//! * **Fowlkes–Mallows index** (Eq. 39) — geometric mean of pairwise
//!   precision and recall.
//! * **Adjusted Rand index** and **normalised mutual information** — not
//!   reported in the paper but standard companions, used by the extended
//!   ablation benches.
//!
//! All metrics operate on plain `&[usize]` label slices; the contingency
//! table in [`ContingencyTable`] is the shared intermediate representation.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod accuracy;
mod contingency;
mod error;
mod fmi;
mod hungarian;
mod nmi;
mod pair_counts;
mod purity;
mod rand_index;

pub use accuracy::{clustering_accuracy, optimal_label_mapping};
pub use contingency::ContingencyTable;
pub use error::MetricsError;
pub use fmi::fowlkes_mallows_index;
pub use hungarian::hungarian_max_assignment;
pub use nmi::normalized_mutual_information;
pub use pair_counts::PairCounts;
pub use purity::purity;
pub use rand_index::{adjusted_rand_index, rand_index};

/// Result alias used across the crate.
pub type Result<T> = std::result::Result<T, MetricsError>;

/// A bundle of every metric the paper reports, computed in one pass.
///
/// The experiment harness evaluates each (clusterer, feature space) pair with
/// this struct so tables and figures are guaranteed to be derived from the
/// same run.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct EvaluationReport {
    /// Clustering accuracy under the optimal cluster-to-class mapping.
    pub accuracy: f64,
    /// Cluster purity.
    pub purity: f64,
    /// Rand index.
    pub rand_index: f64,
    /// Adjusted Rand index.
    pub adjusted_rand_index: f64,
    /// Fowlkes–Mallows index.
    pub fmi: f64,
    /// Normalised mutual information.
    pub nmi: f64,
}

impl EvaluationReport {
    /// Evaluates predicted cluster labels against ground-truth classes.
    ///
    /// # Errors
    ///
    /// Returns an error if the label slices are empty or of different length.
    pub fn evaluate(predicted: &[usize], truth: &[usize]) -> Result<Self> {
        let table = ContingencyTable::from_labels(predicted, truth)?;
        Ok(Self {
            accuracy: table.accuracy(),
            purity: table.purity(),
            rand_index: table.pair_counts().rand_index(),
            adjusted_rand_index: table.adjusted_rand_index(),
            fmi: table.pair_counts().fowlkes_mallows(),
            nmi: table.normalized_mutual_information(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn evaluation_report_perfect_clustering() {
        let labels = [0, 0, 1, 1, 2, 2];
        let r = EvaluationReport::evaluate(&labels, &labels).unwrap();
        assert_eq!(r.accuracy, 1.0);
        assert_eq!(r.purity, 1.0);
        assert_eq!(r.rand_index, 1.0);
        assert_eq!(r.fmi, 1.0);
        assert!((r.nmi - 1.0).abs() < 1e-12);
        assert!((r.adjusted_rand_index - 1.0).abs() < 1e-12);
    }

    #[test]
    fn evaluation_report_label_permutation_is_perfect() {
        let predicted = [2, 2, 0, 0, 1, 1];
        let truth = [0, 0, 1, 1, 2, 2];
        let r = EvaluationReport::evaluate(&predicted, &truth).unwrap();
        assert_eq!(r.accuracy, 1.0);
        assert_eq!(r.purity, 1.0);
    }

    #[test]
    fn evaluation_report_rejects_bad_input() {
        assert!(EvaluationReport::evaluate(&[], &[]).is_err());
        assert!(EvaluationReport::evaluate(&[0, 1], &[0]).is_err());
    }

    #[test]
    fn evaluation_report_degraded_clustering_scores_lower() {
        let truth = [0, 0, 0, 1, 1, 1, 2, 2, 2];
        let noisy = [0, 0, 1, 1, 1, 2, 2, 2, 0];
        let perfect = EvaluationReport::evaluate(&truth, &truth).unwrap();
        let degraded = EvaluationReport::evaluate(&noisy, &truth).unwrap();
        assert!(degraded.accuracy < perfect.accuracy);
        assert!(degraded.purity < perfect.purity);
        assert!(degraded.rand_index < perfect.rand_index);
        assert!(degraded.fmi < perfect.fmi);
    }
}
