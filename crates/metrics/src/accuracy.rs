//! Clustering accuracy (Eq. 36) and the optimal cluster→class mapping.

use crate::{ContingencyTable, Result};

/// Clustering accuracy: the fraction of instances whose predicted cluster,
/// after the optimal one-to-one mapping of clusters to ground-truth classes,
/// matches the true class.
///
/// # Errors
///
/// Returns an error if the label slices are empty or of different length.
pub fn clustering_accuracy(predicted: &[usize], truth: &[usize]) -> Result<f64> {
    Ok(ContingencyTable::from_labels(predicted, truth)?.accuracy())
}

/// Computes the optimal mapping from predicted cluster identifiers to
/// ground-truth class identifiers (the `map(·)` function of Eq. 36).
///
/// Clusters that cannot be matched (because there are more clusters than
/// classes) are absent from the result.
///
/// # Errors
///
/// Returns an error if the label slices are empty or of different length.
pub fn optimal_label_mapping(
    predicted: &[usize],
    truth: &[usize],
) -> Result<std::collections::BTreeMap<usize, usize>> {
    let table = ContingencyTable::from_labels(predicted, truth)?;
    let weights: Vec<Vec<f64>> = table
        .counts()
        .iter()
        .map(|row| row.iter().map(|&c| c as f64).collect())
        .collect();
    let assignment = crate::hungarian::hungarian_max_assignment(&weights)?;
    let mut mapping = std::collections::BTreeMap::new();
    for (i, maybe_j) in assignment.iter().enumerate() {
        if let Some(j) = maybe_j {
            mapping.insert(table.cluster_ids()[i], table.class_ids()[*j]);
        }
    }
    Ok(mapping)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accuracy_identity() {
        let labels = [0, 1, 2, 0, 1, 2];
        assert_eq!(clustering_accuracy(&labels, &labels).unwrap(), 1.0);
    }

    #[test]
    fn accuracy_permuted_labels() {
        let predicted = [1, 2, 0, 1, 2, 0];
        let truth = [0, 1, 2, 0, 1, 2];
        assert_eq!(clustering_accuracy(&predicted, &truth).unwrap(), 1.0);
    }

    #[test]
    fn accuracy_partial() {
        let predicted = [0, 0, 0, 1, 1, 1];
        let truth = [0, 0, 1, 1, 1, 1];
        // Optimal map: 0->0, 1->1 giving 5/6 correct.
        assert!((clustering_accuracy(&predicted, &truth).unwrap() - 5.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn mapping_recovers_permutation() {
        let predicted = [10, 10, 20, 20, 30, 30];
        let truth = [2, 2, 0, 0, 1, 1];
        let m = optimal_label_mapping(&predicted, &truth).unwrap();
        assert_eq!(m[&10], 2);
        assert_eq!(m[&20], 0);
        assert_eq!(m[&30], 1);
    }

    #[test]
    fn mapping_with_surplus_clusters_skips_some() {
        let predicted = [0, 1, 2, 3];
        let truth = [0, 0, 1, 1];
        let m = optimal_label_mapping(&predicted, &truth).unwrap();
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn accuracy_errors_on_bad_input() {
        assert!(clustering_accuracy(&[], &[]).is_err());
        assert!(clustering_accuracy(&[0, 1], &[0]).is_err());
        assert!(optimal_label_mapping(&[], &[]).is_err());
    }

    #[test]
    fn accuracy_never_below_largest_class_share_with_one_cluster() {
        // A single predicted cluster maps to the majority class.
        let predicted = [0; 10];
        let truth = [0, 0, 0, 0, 0, 0, 1, 1, 1, 2];
        assert!((clustering_accuracy(&predicted, &truth).unwrap() - 0.6).abs() < 1e-12);
    }
}
