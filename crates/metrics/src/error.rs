//! Error type for metric computation.

use std::fmt;

/// Errors raised when evaluating clusterings.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MetricsError {
    /// The two label slices have different lengths.
    LengthMismatch {
        /// Length of the predicted labels.
        predicted: usize,
        /// Length of the ground-truth labels.
        truth: usize,
    },
    /// An empty label slice was supplied.
    EmptyLabels,
    /// The cost matrix passed to the Hungarian solver was not rectangular.
    RaggedCostMatrix {
        /// Index of the offending row.
        row: usize,
    },
}

impl fmt::Display for MetricsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MetricsError::LengthMismatch { predicted, truth } => write!(
                f,
                "label length mismatch: {predicted} predicted vs {truth} ground-truth"
            ),
            MetricsError::EmptyLabels => write!(f, "cannot evaluate empty label sets"),
            MetricsError::RaggedCostMatrix { row } => {
                write!(f, "cost matrix row {row} has a different length")
            }
        }
    }
}

impl std::error::Error for MetricsError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(MetricsError::LengthMismatch {
            predicted: 3,
            truth: 5
        }
        .to_string()
        .contains("3 predicted"));
        assert!(MetricsError::EmptyLabels.to_string().contains("empty"));
        assert!(MetricsError::RaggedCostMatrix { row: 2 }
            .to_string()
            .contains("row 2"));
    }
}
