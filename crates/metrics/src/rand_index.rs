//! Rand index (Eq. 37) and adjusted Rand index.

use crate::{ContingencyTable, Result};

/// Rand index: fraction of instance pairs on which the predicted partition
/// and the ground-truth partition agree (both together or both apart).
///
/// # Errors
///
/// Returns an error if the label slices are empty or of different length.
pub fn rand_index(predicted: &[usize], truth: &[usize]) -> Result<f64> {
    Ok(ContingencyTable::from_labels(predicted, truth)?
        .pair_counts()
        .rand_index())
}

/// Adjusted Rand index: the Rand index corrected for chance agreement, so a
/// random partition scores around 0 and identical partitions score 1.
///
/// # Errors
///
/// Returns an error if the label slices are empty or of different length.
pub fn adjusted_rand_index(predicted: &[usize], truth: &[usize]) -> Result<f64> {
    Ok(ContingencyTable::from_labels(predicted, truth)?.adjusted_rand_index())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_partitions_score_one() {
        let labels = [0, 0, 1, 1, 2, 2];
        assert_eq!(rand_index(&labels, &labels).unwrap(), 1.0);
        assert!((adjusted_rand_index(&labels, &labels).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn relabelled_partitions_score_one() {
        let predicted = [5, 5, 9, 9];
        let truth = [1, 1, 0, 0];
        assert_eq!(rand_index(&predicted, &truth).unwrap(), 1.0);
    }

    #[test]
    fn known_textbook_example() {
        // Classic example: truth = {a,a,a,b,b,b}, predicted splits one item.
        let truth = [0, 0, 0, 1, 1, 1];
        let predicted = [0, 0, 1, 1, 1, 1];
        // Pairs: C(6,2)=15. Agreements: counted via contingency 2x2 table
        // [[2,0],[1,3]] -> TP = C(2,2)+C(1,2)+C(3,2) = 1+0+3 = 4,
        // rows C(2,2)+C(4,2)=1+6=7 -> FP=3; cols C(3,2)*2=6 -> FN=2; TN=15-4-3-2=6.
        // Rand = (4+6)/15 = 10/15.
        assert!((rand_index(&predicted, &truth).unwrap() - 10.0 / 15.0).abs() < 1e-12);
    }

    #[test]
    fn ari_near_zero_for_independent_partition() {
        // Alternating labels are statistically independent of block labels.
        let truth = [0, 0, 0, 0, 1, 1, 1, 1];
        let predicted = [0, 1, 0, 1, 0, 1, 0, 1];
        let ari = adjusted_rand_index(&predicted, &truth).unwrap();
        assert!(ari.abs() < 0.2, "ari = {ari}");
        let ri = rand_index(&predicted, &truth).unwrap();
        assert!(ri > 0.0 && ri < 1.0);
    }

    #[test]
    fn ari_can_be_negative() {
        // Worse-than-chance structure.
        let truth = [0, 0, 1, 1];
        let predicted = [0, 1, 0, 1];
        let ari = adjusted_rand_index(&predicted, &truth).unwrap();
        assert!(ari <= 0.0);
    }

    #[test]
    fn errors_on_invalid_input() {
        assert!(rand_index(&[], &[]).is_err());
        assert!(adjusted_rand_index(&[0], &[0, 1]).is_err());
    }
}
