//! Cluster purity (Eq. 38).

use crate::{ContingencyTable, Result};

/// Purity: each cluster contributes the count of its dominant ground-truth
/// class; the sum is normalised by the number of instances.
///
/// Purity does not penalise over-clustering: splitting every instance into
/// its own cluster yields purity 1. It is therefore reported alongside
/// accuracy and FMI in the paper rather than on its own.
///
/// # Errors
///
/// Returns an error if the label slices are empty or of different length.
pub fn purity(predicted: &[usize], truth: &[usize]) -> Result<f64> {
    Ok(ContingencyTable::from_labels(predicted, truth)?.purity())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_clustering_has_purity_one() {
        let labels = [0, 0, 1, 1];
        assert_eq!(purity(&labels, &labels).unwrap(), 1.0);
    }

    #[test]
    fn purity_is_share_of_dominant_classes() {
        let predicted = [0, 0, 0, 0, 1, 1];
        let truth = [0, 0, 0, 1, 1, 0];
        // Cluster 0 dominant class 0 (3), cluster 1 split 1/1 (max 1) => 4/6.
        assert!((purity(&predicted, &truth).unwrap() - 4.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn singleton_clusters_have_purity_one() {
        let predicted = [0, 1, 2, 3];
        let truth = [0, 0, 1, 1];
        assert_eq!(purity(&predicted, &truth).unwrap(), 1.0);
    }

    #[test]
    fn single_cluster_purity_is_majority_share() {
        let predicted = [0, 0, 0, 0];
        let truth = [1, 1, 1, 0];
        assert_eq!(purity(&predicted, &truth).unwrap(), 0.75);
    }

    #[test]
    fn errors_on_invalid_input() {
        assert!(purity(&[], &[]).is_err());
        assert!(purity(&[0], &[0, 1]).is_err());
    }

    #[test]
    fn purity_at_least_accuracy() {
        // Purity is an upper bound on accuracy because accuracy restricts the
        // mapping to be one-to-one.
        let predicted = [0, 0, 1, 1, 2, 2, 3, 3];
        let truth = [0, 0, 0, 0, 1, 1, 1, 1];
        let p = purity(&predicted, &truth).unwrap();
        let a = crate::clustering_accuracy(&predicted, &truth).unwrap();
        assert!(p >= a);
    }
}
