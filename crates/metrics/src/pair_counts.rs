//! Pairwise agreement counts between two partitions.
//!
//! The Rand index (Eq. 37) and Fowlkes–Mallows index (Eq. 39) are both
//! defined over the `C(n, 2)` pairs of instances: a pair is a *true positive*
//! if the two instances share a predicted cluster and a ground-truth class,
//! and so on. Counting pairs via the contingency table is O(k·c) instead of
//! O(n²).

use crate::ContingencyTable;
use serde::{Deserialize, Serialize};

/// The four pairwise agreement counts between a predicted partition and the
/// ground truth.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PairCounts {
    /// Pairs in the same cluster and the same class (`N_ss` / TP).
    pub true_positive: f64,
    /// Pairs in the same cluster but different classes (FP).
    pub false_positive: f64,
    /// Pairs in different clusters but the same class (FN).
    pub false_negative: f64,
    /// Pairs in different clusters and different classes (`N_dd` / TN).
    pub true_negative: f64,
}

impl PairCounts {
    /// Derives the pair counts from a contingency table.
    pub fn from_contingency(table: &ContingencyTable) -> Self {
        let n = table.total() as f64;
        let total_pairs = comb2(n);
        let sum_nij: f64 = table
            .counts()
            .iter()
            .flatten()
            .map(|&c| comb2(c as f64))
            .sum();
        let sum_rows: f64 = table.cluster_sizes().iter().map(|&a| comb2(a as f64)).sum();
        let sum_cols: f64 = table.class_sizes().iter().map(|&b| comb2(b as f64)).sum();

        let tp = sum_nij;
        let fp = sum_rows - sum_nij;
        let fn_ = sum_cols - sum_nij;
        let tn = total_pairs - tp - fp - fn_;
        Self {
            true_positive: tp,
            false_positive: fp,
            false_negative: fn_,
            true_negative: tn,
        }
    }

    /// Total number of pairs.
    pub fn total_pairs(&self) -> f64 {
        self.true_positive + self.false_positive + self.false_negative + self.true_negative
    }

    /// Rand index: fraction of pairs on which the partitions agree.
    pub fn rand_index(&self) -> f64 {
        let total = self.total_pairs();
        if total == 0.0 {
            return 1.0;
        }
        (self.true_positive + self.true_negative) / total
    }

    /// Pairwise precision `TP / (TP + FP)`; `1` when no pair shares a cluster.
    pub fn precision(&self) -> f64 {
        let denom = self.true_positive + self.false_positive;
        if denom == 0.0 {
            1.0
        } else {
            self.true_positive / denom
        }
    }

    /// Pairwise recall `TP / (TP + FN)`; `1` when no pair shares a class.
    pub fn recall(&self) -> f64 {
        let denom = self.true_positive + self.false_negative;
        if denom == 0.0 {
            1.0
        } else {
            self.true_positive / denom
        }
    }

    /// Fowlkes–Mallows index: geometric mean of precision and recall.
    pub fn fowlkes_mallows(&self) -> f64 {
        (self.precision() * self.recall()).sqrt()
    }
}

fn comb2(x: f64) -> f64 {
    x * (x - 1.0) / 2.0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table(predicted: &[usize], truth: &[usize]) -> ContingencyTable {
        ContingencyTable::from_labels(predicted, truth).unwrap()
    }

    /// O(n²) reference implementation counting pairs directly.
    fn brute_counts(predicted: &[usize], truth: &[usize]) -> PairCounts {
        let n = predicted.len();
        let (mut tp, mut fp, mut fn_, mut tn) = (0.0, 0.0, 0.0, 0.0);
        for i in 0..n {
            for j in (i + 1)..n {
                let same_cluster = predicted[i] == predicted[j];
                let same_class = truth[i] == truth[j];
                match (same_cluster, same_class) {
                    (true, true) => tp += 1.0,
                    (true, false) => fp += 1.0,
                    (false, true) => fn_ += 1.0,
                    (false, false) => tn += 1.0,
                }
            }
        }
        PairCounts {
            true_positive: tp,
            false_positive: fp,
            false_negative: fn_,
            true_negative: tn,
        }
    }

    #[test]
    fn matches_brute_force_on_examples() {
        let cases: Vec<(Vec<usize>, Vec<usize>)> = vec![
            (vec![0, 0, 1, 1, 2, 2], vec![0, 0, 1, 1, 2, 2]),
            (vec![0, 0, 0, 1, 1, 1], vec![0, 1, 0, 1, 0, 1]),
            (vec![0, 1, 2, 0, 1, 2, 0], vec![0, 0, 0, 1, 1, 1, 1]),
            (vec![3, 3, 3, 3], vec![0, 1, 2, 3]),
        ];
        for (p, t) in cases {
            let fast = PairCounts::from_contingency(&table(&p, &t));
            let slow = brute_counts(&p, &t);
            assert_eq!(fast, slow, "pair counts differ for {p:?} vs {t:?}");
        }
    }

    #[test]
    fn matches_brute_force_on_random_labelings() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(3);
        for _ in 0..30 {
            let n = rng.gen_range(2..40);
            let p: Vec<usize> = (0..n).map(|_| rng.gen_range(0..4)).collect();
            let t: Vec<usize> = (0..n).map(|_| rng.gen_range(0..3)).collect();
            let fast = PairCounts::from_contingency(&table(&p, &t));
            let slow = brute_counts(&p, &t);
            assert!((fast.true_positive - slow.true_positive).abs() < 1e-9);
            assert!((fast.false_positive - slow.false_positive).abs() < 1e-9);
            assert!((fast.false_negative - slow.false_negative).abs() < 1e-9);
            assert!((fast.true_negative - slow.true_negative).abs() < 1e-9);
        }
    }

    #[test]
    fn perfect_partition_has_no_errors() {
        let labels = [0, 0, 1, 1, 2];
        let pc = PairCounts::from_contingency(&table(&labels, &labels));
        assert_eq!(pc.false_positive, 0.0);
        assert_eq!(pc.false_negative, 0.0);
        assert_eq!(pc.rand_index(), 1.0);
        assert_eq!(pc.fowlkes_mallows(), 1.0);
        assert_eq!(pc.precision(), 1.0);
        assert_eq!(pc.recall(), 1.0);
    }

    #[test]
    fn single_instance_edge_case() {
        let pc = PairCounts::from_contingency(&table(&[0], &[0]));
        assert_eq!(pc.total_pairs(), 0.0);
        assert_eq!(pc.rand_index(), 1.0);
        assert_eq!(pc.fowlkes_mallows(), 1.0);
    }

    #[test]
    fn all_singletons_vs_all_same() {
        // Predicted: every instance its own cluster. Truth: one class.
        let predicted = [0, 1, 2, 3];
        let truth = [0, 0, 0, 0];
        let pc = PairCounts::from_contingency(&table(&predicted, &truth));
        assert_eq!(pc.true_positive, 0.0);
        assert_eq!(pc.false_positive, 0.0);
        assert_eq!(pc.false_negative, 6.0);
        assert_eq!(pc.rand_index(), 0.0);
        // Precision is vacuously 1, recall 0, so FMI is 0.
        assert_eq!(pc.fowlkes_mallows(), 0.0);
    }
}
