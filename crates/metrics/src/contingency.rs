//! Contingency table between a predicted partition and ground-truth classes.
//!
//! Every external metric in this crate is a function of the contingency
//! table, so computing it once per evaluation avoids repeated O(n) passes
//! over the label vectors and guarantees all metrics describe the same
//! clustering.

use crate::pair_counts::PairCounts;
use crate::{MetricsError, Result};
use std::collections::BTreeMap;

/// Cross-tabulation `n[i][j]` = number of instances assigned to predicted
/// cluster `i` whose ground-truth class is `j`.
///
/// Cluster and class identifiers are remapped to dense `0..k` indices in
/// sorted order of the original labels, so arbitrary (non-contiguous) label
/// values are accepted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ContingencyTable {
    counts: Vec<Vec<usize>>,
    cluster_ids: Vec<usize>,
    class_ids: Vec<usize>,
    total: usize,
}

impl ContingencyTable {
    /// Builds the table from parallel label slices.
    ///
    /// # Errors
    ///
    /// Returns [`MetricsError::EmptyLabels`] for empty input and
    /// [`MetricsError::LengthMismatch`] if the slices differ in length.
    pub fn from_labels(predicted: &[usize], truth: &[usize]) -> Result<Self> {
        if predicted.len() != truth.len() {
            return Err(MetricsError::LengthMismatch {
                predicted: predicted.len(),
                truth: truth.len(),
            });
        }
        if predicted.is_empty() {
            return Err(MetricsError::EmptyLabels);
        }
        let cluster_index = dense_index(predicted);
        let class_index = dense_index(truth);
        let mut counts = vec![vec![0usize; class_index.len()]; cluster_index.len()];
        for (&p, &t) in predicted.iter().zip(truth) {
            counts[cluster_index[&p]][class_index[&t]] += 1;
        }
        Ok(Self {
            counts,
            cluster_ids: cluster_index.keys().copied().collect(),
            class_ids: class_index.keys().copied().collect(),
            total: predicted.len(),
        })
    }

    /// Number of predicted clusters (rows).
    pub fn n_clusters(&self) -> usize {
        self.counts.len()
    }

    /// Number of ground-truth classes (columns).
    pub fn n_classes(&self) -> usize {
        self.counts.first().map_or(0, Vec::len)
    }

    /// Total number of instances.
    pub fn total(&self) -> usize {
        self.total
    }

    /// Raw counts matrix (`clusters x classes`).
    pub fn counts(&self) -> &[Vec<usize>] {
        &self.counts
    }

    /// Original identifiers of the predicted clusters, in row order.
    pub fn cluster_ids(&self) -> &[usize] {
        &self.cluster_ids
    }

    /// Original identifiers of the ground-truth classes, in column order.
    pub fn class_ids(&self) -> &[usize] {
        &self.class_ids
    }

    /// Row sums (cluster sizes).
    pub fn cluster_sizes(&self) -> Vec<usize> {
        self.counts.iter().map(|r| r.iter().sum()).collect()
    }

    /// Column sums (class sizes).
    pub fn class_sizes(&self) -> Vec<usize> {
        let mut sums = vec![0usize; self.n_classes()];
        for row in &self.counts {
            for (j, &c) in row.iter().enumerate() {
                sums[j] += c;
            }
        }
        sums
    }

    /// Clustering accuracy under the optimal (Hungarian) cluster→class map.
    pub fn accuracy(&self) -> f64 {
        let cost: Vec<Vec<f64>> = self
            .counts
            .iter()
            .map(|row| row.iter().map(|&c| c as f64).collect())
            .collect();
        let assignment = crate::hungarian::hungarian_max_assignment(&cost)
            .expect("contingency table is rectangular by construction");
        let matched: f64 = assignment
            .iter()
            .enumerate()
            .filter_map(|(i, &j)| j.map(|j| self.counts[i][j] as f64))
            .sum();
        matched / self.total as f64
    }

    /// Cluster purity (Eq. 38 of the paper).
    pub fn purity(&self) -> f64 {
        let dominant: usize = self
            .counts
            .iter()
            .map(|row| row.iter().copied().max().unwrap_or(0))
            .sum();
        dominant as f64 / self.total as f64
    }

    /// Pairwise agreement counts (TP/FP/FN/TN) between the two partitions.
    pub fn pair_counts(&self) -> PairCounts {
        PairCounts::from_contingency(self)
    }

    /// Adjusted Rand index (Hubert & Arabie correction for chance).
    pub fn adjusted_rand_index(&self) -> f64 {
        let n = self.total as f64;
        let sum_comb_nij: f64 = self.counts.iter().flatten().map(|&c| comb2(c as f64)).sum();
        let sum_comb_a: f64 = self.cluster_sizes().iter().map(|&a| comb2(a as f64)).sum();
        let sum_comb_b: f64 = self.class_sizes().iter().map(|&b| comb2(b as f64)).sum();
        let expected = sum_comb_a * sum_comb_b / comb2(n);
        let max_index = 0.5 * (sum_comb_a + sum_comb_b);
        if (max_index - expected).abs() < f64::EPSILON {
            // Both partitions are trivial (single cluster or all singletons);
            // define ARI as 1 when they are identical in pair structure.
            return if (sum_comb_nij - expected).abs() < f64::EPSILON {
                1.0
            } else {
                0.0
            };
        }
        (sum_comb_nij - expected) / (max_index - expected)
    }

    /// Normalised mutual information with arithmetic-mean normalisation.
    pub fn normalized_mutual_information(&self) -> f64 {
        let n = self.total as f64;
        let cluster_sizes = self.cluster_sizes();
        let class_sizes = self.class_sizes();
        let mut mi = 0.0;
        for (i, row) in self.counts.iter().enumerate() {
            for (j, &c) in row.iter().enumerate() {
                if c == 0 {
                    continue;
                }
                let nij = c as f64;
                let pij = nij / n;
                let pi = cluster_sizes[i] as f64 / n;
                let pj = class_sizes[j] as f64 / n;
                mi += pij * (pij / (pi * pj)).ln();
            }
        }
        let h_cluster = entropy(&cluster_sizes, n);
        let h_class = entropy(&class_sizes, n);
        let denom = 0.5 * (h_cluster + h_class);
        if denom == 0.0 {
            // Both partitions have a single group: identical by definition.
            1.0
        } else {
            (mi / denom).clamp(0.0, 1.0)
        }
    }
}

/// `C(x, 2)` as a float.
fn comb2(x: f64) -> f64 {
    x * (x - 1.0) / 2.0
}

fn entropy(sizes: &[usize], n: f64) -> f64 {
    sizes
        .iter()
        .filter(|&&s| s > 0)
        .map(|&s| {
            let p = s as f64 / n;
            -p * p.ln()
        })
        .sum()
}

/// Maps arbitrary label values to dense indices in sorted order.
fn dense_index(labels: &[usize]) -> BTreeMap<usize, usize> {
    let mut map = BTreeMap::new();
    for &l in labels {
        let next = map.len();
        map.entry(l).or_insert(next);
    }
    // Re-densify in sorted key order for deterministic row/column layout.
    let keys: Vec<usize> = map.keys().copied().collect();
    keys.into_iter()
        .enumerate()
        .map(|(idx, key)| (key, idx))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_counts_with_sparse_labels() {
        // Predicted labels 10/20, classes 5/7 — non-contiguous values.
        let predicted = [10, 10, 20, 20, 20];
        let truth = [5, 7, 7, 7, 5];
        let t = ContingencyTable::from_labels(&predicted, &truth).unwrap();
        assert_eq!(t.n_clusters(), 2);
        assert_eq!(t.n_classes(), 2);
        assert_eq!(t.total(), 5);
        assert_eq!(t.cluster_ids(), &[10, 20]);
        assert_eq!(t.class_ids(), &[5, 7]);
        assert_eq!(t.counts()[0], vec![1, 1]);
        assert_eq!(t.counts()[1], vec![1, 2]);
        assert_eq!(t.cluster_sizes(), vec![2, 3]);
        assert_eq!(t.class_sizes(), vec![2, 3]);
    }

    #[test]
    fn rejects_mismatched_and_empty() {
        assert!(matches!(
            ContingencyTable::from_labels(&[0], &[0, 1]),
            Err(MetricsError::LengthMismatch { .. })
        ));
        assert!(matches!(
            ContingencyTable::from_labels(&[], &[]),
            Err(MetricsError::EmptyLabels)
        ));
    }

    #[test]
    fn accuracy_uses_optimal_mapping() {
        // Clusters are a pure relabelling of classes: accuracy must be 1.
        let predicted = [1, 1, 0, 0, 2, 2];
        let truth = [0, 0, 2, 2, 1, 1];
        let t = ContingencyTable::from_labels(&predicted, &truth).unwrap();
        assert_eq!(t.accuracy(), 1.0);
    }

    #[test]
    fn accuracy_with_more_clusters_than_classes() {
        // 3 clusters, 2 classes: the best 1-1 matching covers two clusters.
        let predicted = [0, 0, 1, 1, 2, 2];
        let truth = [0, 0, 0, 0, 1, 1];
        let t = ContingencyTable::from_labels(&predicted, &truth).unwrap();
        assert!((t.accuracy() - 4.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn purity_counts_dominant_classes() {
        let predicted = [0, 0, 0, 1, 1, 1];
        let truth = [0, 0, 1, 1, 1, 0];
        let t = ContingencyTable::from_labels(&predicted, &truth).unwrap();
        assert!((t.purity() - 4.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn ari_is_zero_for_random_like_and_one_for_identical() {
        let truth = [0, 0, 1, 1];
        let identical = ContingencyTable::from_labels(&truth, &truth).unwrap();
        assert!((identical.adjusted_rand_index() - 1.0).abs() < 1e-12);

        // A single cluster against a two-class truth has expected-level
        // agreement, so ARI should be 0.
        let single = ContingencyTable::from_labels(&[0, 0, 0, 0], &truth).unwrap();
        assert!(single.adjusted_rand_index().abs() < 1e-12);
    }

    #[test]
    fn nmi_boundary_cases() {
        let truth = [0, 0, 1, 1];
        let identical = ContingencyTable::from_labels(&truth, &truth).unwrap();
        assert!((identical.normalized_mutual_information() - 1.0).abs() < 1e-12);

        let independent = ContingencyTable::from_labels(&[0, 1, 0, 1], &truth).unwrap();
        assert!(independent.normalized_mutual_information() < 1e-12);

        let trivial = ContingencyTable::from_labels(&[0, 0, 0, 0], &[0, 0, 0, 0]).unwrap();
        assert_eq!(trivial.normalized_mutual_information(), 1.0);
    }

    #[test]
    fn dense_index_is_sorted_and_dense() {
        let idx = dense_index(&[7, 3, 7, 9]);
        assert_eq!(idx[&3], 0);
        assert_eq!(idx[&7], 1);
        assert_eq!(idx[&9], 2);
    }
}
