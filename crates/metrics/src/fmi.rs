//! Fowlkes–Mallows index (Eq. 39).

use crate::{ContingencyTable, Result};

/// Fowlkes–Mallows index: `sqrt(TP/(TP+FP) * TP/(TP+FN))` over instance
/// pairs, i.e. the geometric mean of pairwise precision and recall.
///
/// # Errors
///
/// Returns an error if the label slices are empty or of different length.
pub fn fowlkes_mallows_index(predicted: &[usize], truth: &[usize]) -> Result<f64> {
    Ok(ContingencyTable::from_labels(predicted, truth)?
        .pair_counts()
        .fowlkes_mallows())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_clustering_scores_one() {
        let labels = [0, 1, 0, 1, 2];
        assert_eq!(fowlkes_mallows_index(&labels, &labels).unwrap(), 1.0);
    }

    #[test]
    fn singletons_against_one_class_score_zero() {
        let predicted = [0, 1, 2, 3];
        let truth = [0, 0, 0, 0];
        assert_eq!(fowlkes_mallows_index(&predicted, &truth).unwrap(), 0.0);
    }

    #[test]
    fn known_value_matches_manual_computation() {
        let truth = [0, 0, 0, 1, 1, 1];
        let predicted = [0, 0, 1, 1, 1, 1];
        // From the contingency [[2,0],[1,3]]: TP=4, FP=3, FN=2.
        // precision = 4/7, recall = 4/6, FMI = sqrt(4/7 * 4/6).
        let expected = (4.0_f64 / 7.0 * 4.0 / 6.0).sqrt();
        assert!((fowlkes_mallows_index(&predicted, &truth).unwrap() - expected).abs() < 1e-12);
    }

    #[test]
    fn fmi_is_symmetric_under_role_swap() {
        let a = [0, 0, 1, 1, 2, 2, 0];
        let b = [1, 1, 1, 0, 0, 2, 2];
        let ab = fowlkes_mallows_index(&a, &b).unwrap();
        let ba = fowlkes_mallows_index(&b, &a).unwrap();
        assert!((ab - ba).abs() < 1e-12);
    }

    #[test]
    fn errors_on_invalid_input() {
        assert!(fowlkes_mallows_index(&[], &[]).is_err());
        assert!(fowlkes_mallows_index(&[0, 1], &[0]).is_err());
    }

    #[test]
    fn fmi_between_zero_and_one() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(11);
        for _ in 0..20 {
            let n = rng.gen_range(2..30);
            let p: Vec<usize> = (0..n).map(|_| rng.gen_range(0..4)).collect();
            let t: Vec<usize> = (0..n).map(|_| rng.gen_range(0..3)).collect();
            let fmi = fowlkes_mallows_index(&p, &t).unwrap();
            assert!((0.0..=1.0).contains(&fmi));
        }
    }
}
