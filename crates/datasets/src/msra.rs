//! Synthetic stand-ins for the MSRA-MM 2.0 image datasets (datasets I,
//! Table II of the paper).
//!
//! The original Microsoft Research Asia Multimedia 2.0 collection is no
//! longer distributed, so each of the nine datasets is simulated as a
//! Gaussian mixture with exactly the instance count, feature count and class
//! count reported in Table II, plus a per-dataset difficulty tweak so the
//! *relative* behaviour of the pipelines (raw < +GRBM < +slsGRBM on average)
//! can be reproduced. See DESIGN.md ("Substitutions").

use crate::{Dataset, DatasetSpec, DifficultyProfile, SyntheticBlobs};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Identifiers of the nine MSRA-MM 2.0 datasets used in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MsraDatasetId {
    /// Book (BO): 896 instances, 892 features.
    Book,
    /// Water (WA): 922 instances, 899 features.
    Water,
    /// Weddingring (WR): 897 instances, 899 features.
    Weddingring,
    /// Birthdaycake (BC): 932 instances, 892 features.
    Birthdaycake,
    /// Vegetable (VE): 872 instances, 899 features.
    Vegetable,
    /// Ambulances (AM): 930 instances, 892 features.
    Ambulances,
    /// Vista (VI): 799 instances, 899 features.
    Vista,
    /// Wallpaper (WP): 919 instances, 899 features.
    Wallpaper,
    /// Voituretuning (VT): 879 instances, 899 features.
    Voituretuning,
}

impl MsraDatasetId {
    /// The dataset's descriptor (name, code and Table II shape).
    pub fn spec(self) -> DatasetSpec {
        let (name, code, instances, features) = match self {
            MsraDatasetId::Book => ("Book", "BO", 896, 892),
            MsraDatasetId::Water => ("Water", "WA", 922, 899),
            MsraDatasetId::Weddingring => ("Weddingring", "WR", 897, 899),
            MsraDatasetId::Birthdaycake => ("Birthdaycake", "BC", 932, 892),
            MsraDatasetId::Vegetable => ("Vegetable", "VE", 872, 899),
            MsraDatasetId::Ambulances => ("Ambulances", "AM", 930, 892),
            MsraDatasetId::Vista => ("Vista", "VI", 799, 899),
            MsraDatasetId::Wallpaper => ("Wallpaper", "WP", 919, 899),
            MsraDatasetId::Voituretuning => ("Voituretuning", "VT", 879, 899),
        };
        DatasetSpec::new(
            name,
            code,
            crate::DataFamily::MsraMm,
            instances,
            features,
            3,
        )
    }

    /// Table number (1..=9) used as the x-axis of Figs. 2–4.
    pub fn index(self) -> usize {
        match self {
            MsraDatasetId::Book => 1,
            MsraDatasetId::Water => 2,
            MsraDatasetId::Weddingring => 3,
            MsraDatasetId::Birthdaycake => 4,
            MsraDatasetId::Vegetable => 5,
            MsraDatasetId::Ambulances => 6,
            MsraDatasetId::Vista => 7,
            MsraDatasetId::Wallpaper => 8,
            MsraDatasetId::Voituretuning => 9,
        }
    }

    /// Per-dataset difficulty tweak. The baseline accuracies of Table IV vary
    /// between ≈0.38 (VT with K-means) and ≈0.57 (AM with DP); modulating the
    /// separation and imbalance reproduces that spread.
    fn difficulty(self) -> DifficultyProfile {
        let mut p = DifficultyProfile::msra_like();
        match self {
            MsraDatasetId::Book | MsraDatasetId::Weddingring => {
                p.separation = 2.6;
            }
            MsraDatasetId::Water | MsraDatasetId::Vegetable => {
                p.separation = 2.8;
            }
            MsraDatasetId::Birthdaycake | MsraDatasetId::Vista => {
                p.separation = 2.9;
                p.imbalance = 0.25;
            }
            MsraDatasetId::Ambulances => {
                p.separation = 3.3;
                p.imbalance = 0.15;
            }
            MsraDatasetId::Wallpaper => {
                p.separation = 2.8;
                p.imbalance = 0.55;
            }
            MsraDatasetId::Voituretuning => {
                p.separation = 2.7;
                p.imbalance = 0.75;
            }
        }
        p
    }
}

/// All nine dataset identifiers, in the order of Table II.
pub fn msra_catalog() -> Vec<MsraDatasetId> {
    vec![
        MsraDatasetId::Book,
        MsraDatasetId::Water,
        MsraDatasetId::Weddingring,
        MsraDatasetId::Birthdaycake,
        MsraDatasetId::Vegetable,
        MsraDatasetId::Ambulances,
        MsraDatasetId::Vista,
        MsraDatasetId::Wallpaper,
        MsraDatasetId::Voituretuning,
    ]
}

/// Generates the synthetic stand-in for one MSRA-MM dataset.
pub fn generate_msra_dataset(id: MsraDatasetId, rng: &mut impl Rng) -> Dataset {
    let spec = id.spec();
    let ds = SyntheticBlobs::new(spec.instances, spec.features, spec.classes)
        .name(spec.name.clone())
        .profile(id.difficulty())
        .generate(rng);
    // Re-attach the proper family/spec (SyntheticBlobs marks data Synthetic).
    Dataset::new(spec, ds.features().clone(), ds.labels().to_vec())
        .expect("generated shapes match the spec")
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn catalog_matches_table_ii_order_and_codes() {
        let codes: Vec<String> = msra_catalog().iter().map(|id| id.spec().code).collect();
        assert_eq!(
            codes,
            vec!["BO", "WA", "WR", "BC", "VE", "AM", "VI", "WP", "VT"]
        );
        let indices: Vec<usize> = msra_catalog().iter().map(|id| id.index()).collect();
        assert_eq!(indices, (1..=9).collect::<Vec<_>>());
    }

    #[test]
    fn specs_match_table_ii_shapes() {
        let spec = MsraDatasetId::Book.spec();
        assert_eq!((spec.instances, spec.features, spec.classes), (896, 892, 3));
        let spec = MsraDatasetId::Vista.spec();
        assert_eq!((spec.instances, spec.features, spec.classes), (799, 899, 3));
        let spec = MsraDatasetId::Birthdaycake.spec();
        assert_eq!((spec.instances, spec.features, spec.classes), (932, 892, 3));
    }

    #[test]
    fn generation_respects_spec_and_family() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let ds = generate_msra_dataset(MsraDatasetId::Vegetable, &mut rng);
        assert_eq!(ds.n_instances(), 872);
        assert_eq!(ds.n_features(), 899);
        assert_eq!(ds.n_classes(), 3);
        assert_eq!(ds.spec().family, crate::DataFamily::MsraMm);
        assert!(ds.features().is_finite());
    }

    #[test]
    fn generation_is_seed_deterministic() {
        let a = generate_msra_dataset(MsraDatasetId::Book, &mut ChaCha8Rng::seed_from_u64(3));
        let b = generate_msra_dataset(MsraDatasetId::Book, &mut ChaCha8Rng::seed_from_u64(3));
        assert_eq!(a.labels(), b.labels());
        assert_eq!(a.features(), b.features());
    }

    #[test]
    fn different_datasets_have_different_difficulty() {
        // Spot-check that the per-dataset profiles differ (the experiment
        // spread in the paper depends on it).
        assert_ne!(
            MsraDatasetId::Book.difficulty(),
            MsraDatasetId::Ambulances.difficulty()
        );
        assert_ne!(
            MsraDatasetId::Voituretuning.difficulty(),
            MsraDatasetId::Wallpaper.difficulty()
        );
    }
}
