//! Stand-ins for the UCI datasets of Table III (datasets II).
//!
//! Iris is regenerated from published statistics (see [`crate::iris`]); the
//! other five datasets are simulated Gaussian mixtures with exactly the
//! shapes of Table III and difficulty profiles chosen so baseline clustering
//! accuracy lands in the band reported by Table VII (≈0.52 for Haberman up to
//! ≈0.85 for Breast Cancer Wisconsin). Real UCI CSV files can be substituted
//! at runtime through [`crate::load_csv_dataset`].

use crate::{Dataset, DatasetSpec, DifficultyProfile, SyntheticBlobs};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Identifiers of the six UCI datasets used in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum UciDatasetId {
    /// Haberman's Survival (HS): 306 instances, 3 features, 2 classes.
    HabermansSurvival,
    /// QSAR biodegradation (QB): 1055 instances, 41 features, 2 classes.
    QsarBiodegradation,
    /// SPECT Heart (SH): 267 instances, 22 features, 2 classes.
    SpectHeart,
    /// Climate Model Simulation Crashes (SC): 540 instances, 18 features, 2 classes.
    SimulationCrashes,
    /// Breast Cancer Wisconsin (BCW): 569 instances, 32 features, 2 classes.
    BreastCancerWisconsin,
    /// Iris (IR): 150 instances, 4 features, 3 classes.
    Iris,
}

impl UciDatasetId {
    /// The dataset's descriptor (name, code and Table III shape).
    pub fn spec(self) -> DatasetSpec {
        let (name, code, instances, features, classes) = match self {
            UciDatasetId::HabermansSurvival => ("Haberman's Survival", "HS", 306, 3, 2),
            UciDatasetId::QsarBiodegradation => ("QSAR biodegradation", "QB", 1055, 41, 2),
            UciDatasetId::SpectHeart => ("SPECT Heart", "SH", 267, 22, 2),
            UciDatasetId::SimulationCrashes => ("Simulation Crashes", "SC", 540, 18, 2),
            UciDatasetId::BreastCancerWisconsin => ("Breast Cancer Wisconsin", "BCW", 569, 32, 2),
            UciDatasetId::Iris => ("Iris", "IR", 150, 4, 3),
        };
        DatasetSpec::new(
            name,
            code,
            crate::DataFamily::Uci,
            instances,
            features,
            classes,
        )
    }

    /// Dataset number (1..=6), the x-axis of Figs. 6–8.
    pub fn index(self) -> usize {
        match self {
            UciDatasetId::HabermansSurvival => 1,
            UciDatasetId::QsarBiodegradation => 2,
            UciDatasetId::SpectHeart => 3,
            UciDatasetId::SimulationCrashes => 4,
            UciDatasetId::BreastCancerWisconsin => 5,
            UciDatasetId::Iris => 6,
        }
    }

    /// Difficulty profile calibrated to the paper's baseline accuracies in
    /// Table VII: Haberman and SPECT are nearly inseparable (≈0.52–0.62),
    /// QSAR and Simulation Crashes are intermediate, Breast Cancer Wisconsin
    /// and Iris are easy (≥0.85).
    fn difficulty(self) -> DifficultyProfile {
        let mut p = DifficultyProfile::uci_like();
        match self {
            UciDatasetId::HabermansSurvival => {
                p.separation = 0.6;
                p.irrelevant_fraction = 0.34;
                p.imbalance = 0.5;
            }
            UciDatasetId::QsarBiodegradation => {
                p.separation = 1.2;
                p.irrelevant_fraction = 0.5;
                p.imbalance = 0.8;
            }
            UciDatasetId::SpectHeart => {
                p.separation = 1.3;
                p.irrelevant_fraction = 0.5;
                p.imbalance = 1.5;
            }
            UciDatasetId::SimulationCrashes => {
                p.separation = 1.6;
                p.irrelevant_fraction = 0.45;
                p.imbalance = 1.0;
            }
            UciDatasetId::BreastCancerWisconsin => {
                p.separation = 3.2;
                p.irrelevant_fraction = 0.3;
                p.imbalance = 0.6;
            }
            UciDatasetId::Iris => {
                p.separation = 3.5;
                p.irrelevant_fraction = 0.0;
                p.imbalance = 0.0;
            }
        }
        p
    }
}

/// All six dataset identifiers, in the order of Table III.
pub fn uci_catalog() -> Vec<UciDatasetId> {
    vec![
        UciDatasetId::HabermansSurvival,
        UciDatasetId::QsarBiodegradation,
        UciDatasetId::SpectHeart,
        UciDatasetId::SimulationCrashes,
        UciDatasetId::BreastCancerWisconsin,
        UciDatasetId::Iris,
    ]
}

/// Generates the stand-in for one UCI dataset.
///
/// Iris ignores `rng`: it is a fixed dataset regenerated from published
/// statistics. The other five are seeded from `rng` like every simulated
/// corpus.
pub fn generate_uci_dataset(id: UciDatasetId, rng: &mut impl Rng) -> Dataset {
    if id == UciDatasetId::Iris {
        return crate::iris();
    }
    let spec = id.spec();
    let ds = SyntheticBlobs::new(spec.instances, spec.features, spec.classes)
        .name(spec.name.clone())
        .profile(id.difficulty())
        .generate(rng);
    Dataset::new(spec, ds.features().clone(), ds.labels().to_vec())
        .expect("generated shapes match the spec")
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn catalog_matches_table_iii() {
        let codes: Vec<String> = uci_catalog().iter().map(|id| id.spec().code).collect();
        assert_eq!(codes, vec!["HS", "QB", "SH", "SC", "BCW", "IR"]);
        let indices: Vec<usize> = uci_catalog().iter().map(|id| id.index()).collect();
        assert_eq!(indices, (1..=6).collect::<Vec<_>>());
    }

    #[test]
    fn specs_match_table_iii_shapes() {
        let cases = [
            (UciDatasetId::HabermansSurvival, 306, 3, 2),
            (UciDatasetId::QsarBiodegradation, 1055, 41, 2),
            (UciDatasetId::SpectHeart, 267, 22, 2),
            (UciDatasetId::SimulationCrashes, 540, 18, 2),
            (UciDatasetId::BreastCancerWisconsin, 569, 32, 2),
            (UciDatasetId::Iris, 150, 4, 3),
        ];
        for (id, n, d, k) in cases {
            let spec = id.spec();
            assert_eq!((spec.instances, spec.features, spec.classes), (n, d, k));
        }
    }

    #[test]
    fn generation_respects_spec() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        for id in uci_catalog() {
            let ds = generate_uci_dataset(id, &mut rng);
            let spec = id.spec();
            assert_eq!(ds.n_instances(), spec.instances, "{:?}", id);
            assert_eq!(ds.n_features(), spec.features, "{:?}", id);
            assert_eq!(ds.n_classes(), spec.classes, "{:?}", id);
            assert_eq!(ds.spec().family, crate::DataFamily::Uci);
        }
    }

    #[test]
    fn iris_route_returns_fixed_dataset() {
        let mut rng_a = ChaCha8Rng::seed_from_u64(1);
        let mut rng_b = ChaCha8Rng::seed_from_u64(999);
        let a = generate_uci_dataset(UciDatasetId::Iris, &mut rng_a);
        let b = generate_uci_dataset(UciDatasetId::Iris, &mut rng_b);
        assert_eq!(a.features(), b.features());
    }

    #[test]
    fn easy_and_hard_datasets_have_distinct_profiles() {
        let hs = UciDatasetId::HabermansSurvival.difficulty();
        let bcw = UciDatasetId::BreastCancerWisconsin.difficulty();
        assert!(bcw.separation > hs.separation * 2.0);
    }
}
