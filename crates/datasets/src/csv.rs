//! Minimal CSV loader so real UCI files can replace the simulated stand-ins.
//!
//! The format accepted is deliberately simple: one instance per line,
//! numeric feature columns separated by a configurable delimiter, with the
//! class label in the first or last column. Labels may be arbitrary strings;
//! they are mapped to dense integer classes in order of first appearance.

use crate::{DataFamily, Dataset, DatasetError, DatasetSpec, Result};
use sls_linalg::Matrix;
use std::collections::HashMap;
use std::path::Path;

/// Options controlling CSV parsing.
#[derive(Debug, Clone)]
pub struct CsvOptions {
    /// Field delimiter (default `','`).
    pub delimiter: char,
    /// Whether the first line is a header to skip (default `false`).
    pub has_header: bool,
    /// Whether the class label is the last column (`true`, default) or the
    /// first column (`false`).
    pub label_last: bool,
    /// Name recorded in the resulting [`DatasetSpec`].
    pub name: String,
}

impl Default for CsvOptions {
    fn default() -> Self {
        Self {
            delimiter: ',',
            has_header: false,
            label_last: true,
            name: "csv-dataset".to_string(),
        }
    }
}

/// Loads a dataset from a CSV file on disk.
///
/// # Errors
///
/// Propagates I/O errors and all the parse errors of [`parse_csv_dataset`].
pub fn load_csv_dataset(path: impl AsRef<Path>, options: &CsvOptions) -> Result<Dataset> {
    let content = std::fs::read_to_string(path)?;
    parse_csv_dataset(&content, options)
}

/// Parses a dataset from CSV text already in memory.
///
/// # Errors
///
/// * [`DatasetError::CsvParse`] if a feature value is not a number.
/// * [`DatasetError::CsvRaggedRow`] if rows have inconsistent column counts.
/// * [`DatasetError::EmptyDataset`] if no data rows are present.
pub fn parse_csv_dataset(content: &str, options: &CsvOptions) -> Result<Dataset> {
    let mut rows: Vec<Vec<f64>> = Vec::new();
    let mut labels: Vec<usize> = Vec::new();
    let mut label_map: HashMap<String, usize> = HashMap::new();
    let mut expected_cols: Option<usize> = None;

    for (idx, line) in content.lines().enumerate() {
        let line_no = idx + 1;
        if options.has_header && idx == 0 {
            continue;
        }
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        let fields: Vec<&str> = trimmed.split(options.delimiter).map(str::trim).collect();
        if fields.len() < 2 {
            return Err(DatasetError::CsvParse {
                line: line_no,
                message: "a row needs at least one feature and a label".to_string(),
            });
        }
        if let Some(expected) = expected_cols {
            if fields.len() != expected {
                return Err(DatasetError::CsvRaggedRow {
                    line: line_no,
                    expected,
                    found: fields.len(),
                });
            }
        } else {
            expected_cols = Some(fields.len());
        }

        let (label_field, feature_fields) = if options.label_last {
            let (features, label) = fields.split_at(fields.len() - 1);
            (label[0], features)
        } else {
            let (label, features) = fields.split_at(1);
            (label[0], features)
        };

        let features: Vec<f64> = feature_fields
            .iter()
            .map(|f| {
                f.parse::<f64>().map_err(|_| DatasetError::CsvParse {
                    line: line_no,
                    message: format!("cannot parse feature value '{f}' as a number"),
                })
            })
            .collect::<Result<Vec<f64>>>()?;
        let next_label = label_map.len();
        let label = *label_map
            .entry(label_field.to_string())
            .or_insert(next_label);
        rows.push(features);
        labels.push(label);
    }

    if rows.is_empty() {
        return Err(DatasetError::EmptyDataset);
    }
    let features = Matrix::from_rows(&rows).map_err(DatasetError::Linalg)?;
    let spec = DatasetSpec::new(
        options.name.clone(),
        options.name.clone(),
        DataFamily::Uci,
        features.rows(),
        features.cols(),
        label_map.len(),
    );
    Dataset::new(spec, features, labels)
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
1.0,2.0,a
1.5,2.5,a
8.0,9.0,b
8.5,9.5,b
";

    #[test]
    fn parses_label_last_csv() {
        let ds = parse_csv_dataset(SAMPLE, &CsvOptions::default()).unwrap();
        assert_eq!(ds.n_instances(), 4);
        assert_eq!(ds.n_features(), 2);
        assert_eq!(ds.n_classes(), 2);
        assert_eq!(ds.labels(), &[0, 0, 1, 1]);
        assert_eq!(ds.features()[(2, 1)], 9.0);
    }

    #[test]
    fn parses_label_first_csv_with_header() {
        let content = "class,f1,f2\npos,1.0,2.0\nneg,3.0,4.0\n";
        let options = CsvOptions {
            has_header: true,
            label_last: false,
            name: "test".to_string(),
            ..CsvOptions::default()
        };
        let ds = parse_csv_dataset(content, &options).unwrap();
        assert_eq!(ds.n_instances(), 2);
        assert_eq!(ds.n_features(), 2);
        assert_eq!(ds.labels(), &[0, 1]);
        assert_eq!(ds.spec().name, "test");
    }

    #[test]
    fn supports_alternative_delimiters_and_blank_lines() {
        let content = "1.0;2.0;x\n\n3.0;4.0;y\n";
        let options = CsvOptions {
            delimiter: ';',
            ..CsvOptions::default()
        };
        let ds = parse_csv_dataset(content, &options).unwrap();
        assert_eq!(ds.n_instances(), 2);
    }

    #[test]
    fn rejects_bad_numbers() {
        let content = "1.0,notanumber,a\n";
        let err = parse_csv_dataset(content, &CsvOptions::default()).unwrap_err();
        assert!(matches!(err, DatasetError::CsvParse { line: 1, .. }));
    }

    #[test]
    fn rejects_ragged_rows() {
        let content = "1.0,2.0,a\n1.0,a\n";
        let err = parse_csv_dataset(content, &CsvOptions::default()).unwrap_err();
        assert!(matches!(
            err,
            DatasetError::CsvRaggedRow {
                line: 2,
                expected: 3,
                found: 2
            }
        ));
    }

    #[test]
    fn rejects_rows_without_features() {
        let content = "justalabel\n";
        assert!(parse_csv_dataset(content, &CsvOptions::default()).is_err());
    }

    #[test]
    fn rejects_empty_content() {
        assert!(matches!(
            parse_csv_dataset("", &CsvOptions::default()),
            Err(DatasetError::EmptyDataset)
        ));
        assert!(matches!(
            parse_csv_dataset("\n\n", &CsvOptions::default()),
            Err(DatasetError::EmptyDataset)
        ));
    }

    #[test]
    fn load_csv_dataset_round_trips_through_disk() {
        let dir = std::env::temp_dir().join("sls_datasets_csv_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("sample.csv");
        std::fs::write(&path, SAMPLE).unwrap();
        let ds = load_csv_dataset(&path, &CsvOptions::default()).unwrap();
        assert_eq!(ds.n_instances(), 4);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_file_is_an_io_error() {
        let err = load_csv_dataset(
            "/nonexistent/definitely_missing.csv",
            &CsvOptions::default(),
        )
        .unwrap_err();
        assert!(matches!(err, DatasetError::Io(_)));
    }
}
