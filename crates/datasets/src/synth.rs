//! Synthetic Gaussian-mixture dataset generation.
//!
//! All simulated corpora (the MSRA-MM stand-ins of datasets I and the UCI
//! stand-ins of datasets II) are built from the same primitive: a mixture of
//! anisotropic Gaussian blobs with a controllable separation-to-noise ratio,
//! per-class imbalance, irrelevant (pure-noise) features and optional label
//! noise. Tuning these knobs reproduces the *difficulty* of the original
//! datasets — i.e. baseline k-means/DP/AP accuracy in the band the paper
//! reports — without access to the original data.

use crate::{Dataset, DatasetSpec};
use rand::Rng;
use serde::{Deserialize, Serialize};
use sls_linalg::Matrix;

/// Knobs controlling how hard a synthetic dataset is to cluster.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DifficultyProfile {
    /// Overall Euclidean distance between class centres, in units of
    /// within-class standard deviation (per-dimension offsets are scaled by
    /// `1/sqrt(n_informative)`, so this is the total separation regardless of
    /// dimensionality). Values around 1.5–2.5 give the 0.4–0.6 accuracy band
    /// of the paper's image datasets; 5+ is nearly separable.
    pub separation: f64,
    /// Within-class standard deviation along informative dimensions.
    pub noise: f64,
    /// Fraction of feature dimensions that carry no class information
    /// (pure noise). High-dimensional image features are mostly
    /// uninformative, so the MSRA-MM stand-ins use a large fraction.
    pub irrelevant_fraction: f64,
    /// Fraction of instances whose label is resampled uniformly, simulating
    /// annotation noise in web image data.
    pub label_noise: f64,
    /// Class imbalance exponent: class `k` receives a share proportional to
    /// `(k + 1)^(-imbalance)`. `0.0` means perfectly balanced.
    pub imbalance: f64,
}

impl Default for DifficultyProfile {
    fn default() -> Self {
        Self {
            separation: 2.0,
            noise: 1.0,
            irrelevant_fraction: 0.0,
            label_noise: 0.0,
            imbalance: 0.0,
        }
    }
}

impl DifficultyProfile {
    /// Profile for an easy, well-separated dataset (used by quick examples).
    pub fn easy() -> Self {
        Self {
            separation: 5.0,
            noise: 1.0,
            ..Self::default()
        }
    }

    /// Profile matching the paper's MSRA-MM image sets: weakly separated,
    /// many irrelevant dimensions, some label noise.
    pub fn msra_like() -> Self {
        Self {
            separation: 2.2,
            noise: 1.0,
            irrelevant_fraction: 0.55,
            label_noise: 0.08,
            imbalance: 0.35,
        }
    }

    /// Profile for a moderately hard UCI-like tabular dataset.
    pub fn uci_like() -> Self {
        Self {
            separation: 2.2,
            noise: 1.0,
            irrelevant_fraction: 0.25,
            label_noise: 0.05,
            imbalance: 0.5,
        }
    }
}

/// Builder for synthetic Gaussian-blob datasets.
///
/// ```
/// use rand::SeedableRng;
/// use rand_chacha::ChaCha8Rng;
/// use sls_datasets::SyntheticBlobs;
///
/// let mut rng = ChaCha8Rng::seed_from_u64(0);
/// let ds = SyntheticBlobs::new(60, 5, 3).separation(4.0).generate(&mut rng);
/// assert_eq!(ds.n_instances(), 60);
/// assert_eq!(ds.n_classes(), 3);
/// ```
#[derive(Debug, Clone)]
pub struct SyntheticBlobs {
    name: String,
    instances: usize,
    features: usize,
    classes: usize,
    profile: DifficultyProfile,
}

impl SyntheticBlobs {
    /// Starts a builder for `instances x features` data with `classes` blobs.
    pub fn new(instances: usize, features: usize, classes: usize) -> Self {
        Self {
            name: "synthetic-blobs".to_string(),
            instances,
            features,
            classes: classes.max(1),
            profile: DifficultyProfile::default(),
        }
    }

    /// Sets the dataset name recorded in the spec.
    pub fn name(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }

    /// Sets the full difficulty profile.
    pub fn profile(mut self, profile: DifficultyProfile) -> Self {
        self.profile = profile;
        self
    }

    /// Sets the centre separation (in noise units).
    pub fn separation(mut self, separation: f64) -> Self {
        self.profile.separation = separation;
        self
    }

    /// Sets the within-class noise level.
    pub fn noise(mut self, noise: f64) -> Self {
        self.profile.noise = noise;
        self
    }

    /// Sets the fraction of irrelevant features.
    pub fn irrelevant_fraction(mut self, fraction: f64) -> Self {
        self.profile.irrelevant_fraction = fraction.clamp(0.0, 1.0);
        self
    }

    /// Sets the label-noise fraction.
    pub fn label_noise(mut self, fraction: f64) -> Self {
        self.profile.label_noise = fraction.clamp(0.0, 1.0);
        self
    }

    /// Sets the class-imbalance exponent.
    pub fn imbalance(mut self, imbalance: f64) -> Self {
        self.profile.imbalance = imbalance.max(0.0);
        self
    }

    /// Number of instances allotted to each class under the imbalance
    /// exponent (shares proportional to `(k+1)^(-imbalance)`, rounded so the
    /// total is exact).
    fn class_sizes(&self) -> Vec<usize> {
        let weights: Vec<f64> = (0..self.classes)
            .map(|k| ((k + 1) as f64).powf(-self.profile.imbalance))
            .collect();
        let total_weight: f64 = weights.iter().sum();
        let mut sizes: Vec<usize> = weights
            .iter()
            .map(|w| ((w / total_weight) * self.instances as f64).floor() as usize)
            .collect();
        // Distribute the rounding remainder to the first classes, then make
        // sure every class has at least one instance when possible.
        let mut assigned: usize = sizes.iter().sum();
        let mut k = 0;
        while assigned < self.instances {
            sizes[k % self.classes] += 1;
            assigned += 1;
            k += 1;
        }
        for k in 0..self.classes {
            if sizes[k] == 0 {
                if let Some(donor) = sizes.iter().position(|&s| s > 1) {
                    sizes[donor] -= 1;
                    sizes[k] += 1;
                }
            }
        }
        sizes
    }

    /// Generates the dataset.
    pub fn generate(&self, rng: &mut impl Rng) -> Dataset {
        let d = self.features.max(1);
        let n_informative = ((1.0 - self.profile.irrelevant_fraction) * d as f64)
            .round()
            .max(1.0) as usize;
        let n_informative = n_informative.min(d);

        // Class centres: random directions along informative dimensions only.
        // The per-dimension offset is scaled by 1/sqrt(n_informative) so that
        // the *total* Euclidean distance between two class centres is on the
        // order of `separation` noise units regardless of how many
        // informative dimensions the dataset has — i.e. `separation` is the
        // overall class separation, not a per-feature one.
        let per_dim_scale =
            self.profile.separation * self.profile.noise / (n_informative as f64).sqrt();
        let centres: Vec<Vec<f64>> = (0..self.classes)
            .map(|_| {
                (0..d)
                    .map(|j| {
                        if j < n_informative {
                            let direction: f64 = if rng.gen::<bool>() { 1.0 } else { -1.0 };
                            direction * per_dim_scale * rng.gen_range(0.5..1.5)
                        } else {
                            0.0
                        }
                    })
                    .collect()
            })
            .collect();

        let sizes = self.class_sizes();
        let mut rows = Vec::with_capacity(self.instances);
        let mut labels = Vec::with_capacity(self.instances);
        for (class, &size) in sizes.iter().enumerate() {
            for _ in 0..size {
                let row: Vec<f64> = (0..d)
                    .map(|j| {
                        let centre = centres[class][j];
                        let spread = if j < n_informative {
                            self.profile.noise
                        } else {
                            // Irrelevant dimensions share a common scale so
                            // they dominate naive distance computations.
                            self.profile.noise * 1.5
                        };
                        centre + spread * standard_normal(rng)
                    })
                    .collect();
                rows.push(row);
                labels.push(class);
            }
        }

        // Label noise: flip a fraction of labels to a random class. The
        // features keep their original cluster, which mimics mislabelled web
        // images (the ground truth is wrong, not the data).
        if self.profile.label_noise > 0.0 {
            for l in labels.iter_mut() {
                if rng.gen::<f64>() < self.profile.label_noise {
                    *l = rng.gen_range(0..self.classes);
                }
            }
        }

        // Shuffle instances so class blocks are not contiguous.
        let mut order: Vec<usize> = (0..rows.len()).collect();
        for i in (1..order.len()).rev() {
            let j = rng.gen_range(0..=i);
            order.swap(i, j);
        }
        let shuffled_rows: Vec<Vec<f64>> = order.iter().map(|&i| rows[i].clone()).collect();
        let shuffled_labels: Vec<usize> = order.iter().map(|&i| labels[i]).collect();

        let features = Matrix::from_rows(&shuffled_rows).expect("rows are uniform by construction");
        let spec = DatasetSpec::new(
            self.name.clone(),
            self.name.clone(),
            crate::DataFamily::Synthetic,
            self.instances,
            d,
            self.classes,
        );
        Dataset::new(spec, features, shuffled_labels).expect("generated shapes are consistent")
    }
}

/// Box–Muller standard normal (duplicated from `sls-linalg` deliberately:
/// datasets should not depend on the private RNG details of the matrix
/// crate).
fn standard_normal(rng: &mut impl Rng) -> f64 {
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen::<f64>();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng() -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(7)
    }

    #[test]
    fn generates_requested_shape() {
        let ds = SyntheticBlobs::new(120, 10, 4).generate(&mut rng());
        assert_eq!(ds.n_instances(), 120);
        assert_eq!(ds.n_features(), 10);
        assert_eq!(ds.n_classes(), 4);
        assert!(ds.features().is_finite());
    }

    #[test]
    fn balanced_classes_by_default() {
        let ds = SyntheticBlobs::new(100, 5, 4).generate(&mut rng());
        for (_, count) in ds.class_counts() {
            assert!(count == 25, "expected 25, got {count}");
        }
    }

    #[test]
    fn imbalance_skews_class_sizes() {
        let ds = SyntheticBlobs::new(200, 5, 4)
            .imbalance(1.0)
            .generate(&mut rng());
        let counts: Vec<usize> = ds.class_counts().iter().map(|&(_, c)| c).collect();
        assert_eq!(counts.iter().sum::<usize>(), 200);
        assert!(
            counts[0] > counts[3],
            "first class should dominate: {counts:?}"
        );
    }

    #[test]
    fn class_sizes_always_sum_to_instances() {
        for n in [7usize, 50, 97, 931] {
            for k in [2usize, 3, 5] {
                let builder = SyntheticBlobs::new(n, 3, k).imbalance(0.7);
                let sizes = builder.class_sizes();
                assert_eq!(sizes.iter().sum::<usize>(), n);
                assert!(sizes.iter().all(|&s| s > 0));
            }
        }
    }

    #[test]
    fn high_separation_is_nearly_linearly_separable() {
        // With huge separation, the nearest-centre classifier computed from
        // the true class means should recover almost all labels.
        let ds = SyntheticBlobs::new(150, 6, 3)
            .separation(8.0)
            .generate(&mut rng());
        // Compute per-class means.
        let mut sums = vec![vec![0.0; 6]; 3];
        let mut counts = [0usize; 3];
        for (i, &l) in ds.labels().iter().enumerate() {
            for (j, sum) in sums[l].iter_mut().enumerate().take(6) {
                *sum += ds.features()[(i, j)];
            }
            counts[l] += 1;
        }
        for (l, sum) in sums.iter_mut().enumerate() {
            for v in sum.iter_mut() {
                *v /= counts[l] as f64;
            }
        }
        let centres = Matrix::from_rows(&sums).unwrap();
        let correct = ds
            .labels()
            .iter()
            .enumerate()
            .filter(|(i, &l)| centres.nearest_row(ds.features().row(*i)) == Some(l))
            .count();
        assert!(
            correct as f64 / 150.0 > 0.95,
            "only {correct}/150 recovered"
        );
    }

    #[test]
    fn label_noise_changes_some_labels() {
        let clean = SyntheticBlobs::new(200, 4, 2)
            .separation(6.0)
            .generate(&mut rng());
        let noisy = SyntheticBlobs::new(200, 4, 2)
            .separation(6.0)
            .label_noise(0.5)
            .generate(&mut rng());
        // Both datasets have 2 classes but the noisy one mixes clusters and
        // labels; we only check generation still succeeds with valid labels.
        assert_eq!(clean.n_classes(), 2);
        assert!(noisy.labels().iter().all(|&l| l < 2));
    }

    #[test]
    fn irrelevant_features_have_zero_centred_columns() {
        let ds = SyntheticBlobs::new(400, 10, 2)
            .separation(5.0)
            .irrelevant_fraction(0.5)
            .generate(&mut rng());
        // The last five columns are pure noise: their class-conditional means
        // should be statistically indistinguishable (near zero).
        let means = ds.features().column_means();
        for (j, &mean) in means.iter().enumerate().take(10).skip(5) {
            assert!(mean.abs() < 0.5, "column {j} mean {mean} too far from 0");
        }
    }

    #[test]
    fn generation_is_deterministic_for_same_seed() {
        let a = SyntheticBlobs::new(50, 4, 3).generate(&mut rng());
        let b = SyntheticBlobs::new(50, 4, 3).generate(&mut rng());
        assert_eq!(a.features(), b.features());
        assert_eq!(a.labels(), b.labels());
    }

    #[test]
    fn named_profiles_are_usable() {
        for profile in [
            DifficultyProfile::easy(),
            DifficultyProfile::msra_like(),
            DifficultyProfile::uci_like(),
        ] {
            let ds = SyntheticBlobs::new(60, 8, 3)
                .profile(profile)
                .generate(&mut rng());
            assert_eq!(ds.n_instances(), 60);
        }
    }
}
