//! Dataset descriptors mirroring Tables II and III of the paper.

use serde::{Deserialize, Serialize};

/// Which evaluation family a dataset belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DataFamily {
    /// Datasets I: real-valued MSRA-MM 2.0 image features, evaluated with
    /// the Gaussian-visible models (GRBM / slsGRBM).
    MsraMm,
    /// Datasets II: UCI datasets, binarised and evaluated with the
    /// binary-visible models (RBM / slsRBM).
    Uci,
    /// Synthetic datasets that are not part of the paper's corpora (used by
    /// examples and ablations).
    Synthetic,
}

/// Static description of a dataset: its name, family and shape.
///
/// The shapes of the paper's datasets are reproduced exactly (Table II and
/// Table III); the feature values themselves are synthetic unless a real CSV
/// is loaded.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DatasetSpec {
    /// Full dataset name, e.g. `"Birthdaycake"`.
    pub name: String,
    /// Short code used in the paper's tables, e.g. `"BC"`.
    pub code: String,
    /// Family (datasets I, datasets II or synthetic).
    pub family: DataFamily,
    /// Number of instances (rows).
    pub instances: usize,
    /// Number of features (columns).
    pub features: usize,
    /// Number of ground-truth classes.
    pub classes: usize,
}

impl DatasetSpec {
    /// Creates a new spec.
    pub fn new(
        name: impl Into<String>,
        code: impl Into<String>,
        family: DataFamily,
        instances: usize,
        features: usize,
        classes: usize,
    ) -> Self {
        Self {
            name: name.into(),
            code: code.into(),
            family,
            instances,
            features,
            classes,
        }
    }

    /// A one-line human-readable summary, matching the layout of the paper's
    /// dataset tables (`name (code): classes, instances, features`).
    pub fn summary(&self) -> String {
        format!(
            "{} ({}): {} classes, {} instances, {} features",
            self.name, self.code, self.classes, self.instances, self.features
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_contains_all_fields() {
        let spec = DatasetSpec::new("Book", "BO", DataFamily::MsraMm, 896, 892, 3);
        let s = spec.summary();
        assert!(s.contains("Book"));
        assert!(s.contains("BO"));
        assert!(s.contains("896"));
        assert!(s.contains("892"));
        assert!(s.contains("3 classes"));
    }

    #[test]
    fn spec_equality_and_serde() {
        let spec = DatasetSpec::new("Iris", "IR", DataFamily::Uci, 150, 4, 3);
        let clone = spec.clone();
        assert_eq!(spec, clone);
        let json = serde_json::to_string(&spec).unwrap();
        let back: DatasetSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(back, spec);
    }
}
