//! # sls-datasets
//!
//! Dataset substrate for the sls-rbm workspace. It reproduces the *shape* of
//! the two evaluation corpora used by the paper:
//!
//! * **Datasets I** (Table II) — nine MSRA-MM 2.0 image-feature datasets
//!   (Book, Water, Weddingring, Birthdaycake, Vegetable, Ambulances, Vista,
//!   Wallpaper, Voituretuning), each ~800–950 instances, 892 or 899
//!   real-valued features, 3 classes. MSRA-MM 2.0 is no longer distributed,
//!   so [`msra`] generates synthetic Gaussian-mixture datasets with exactly
//!   those shapes and per-dataset difficulty profiles calibrated to the
//!   paper's reported baseline accuracies (0.40–0.55).
//! * **Datasets II** (Table III) — six UCI datasets. Iris is regenerated
//!   deterministically from its published class statistics ([`iris`]); the
//!   other five are simulated with matching shapes and can be replaced by
//!   real CSV files via [`load_csv_dataset`].
//!
//! The central type is [`Dataset`]: a feature [`Matrix`] plus ground-truth
//! class labels and a descriptive [`DatasetSpec`].

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod chunk;
mod csv;
mod dataset;
mod error;
mod iris;
mod msra;
mod preprocess;
mod spec;
mod synth;
mod uci;

pub use chunk::{leading_sample, ChunkSource, ChunkedCsvReader, InMemoryChunks};
pub use csv::{load_csv_dataset, parse_csv_dataset, CsvOptions};
pub use dataset::Dataset;
pub use error::DatasetError;
pub use iris::iris;
pub use msra::{generate_msra_dataset, msra_catalog, MsraDatasetId};
pub use preprocess::{binarize_bernoulli, binarize_median, standardize_columns, MedianBinarizer};
pub use spec::{DataFamily, DatasetSpec};
pub use synth::{DifficultyProfile, SyntheticBlobs};
pub use uci::{generate_uci_dataset, uci_catalog, UciDatasetId};

/// Result alias used across the crate.
pub type Result<T> = std::result::Result<T, DatasetError>;

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn catalogs_cover_all_paper_datasets() {
        assert_eq!(msra_catalog().len(), 9);
        assert_eq!(uci_catalog().len(), 6);
    }

    #[test]
    fn every_catalog_entry_generates_matching_shape() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        for id in msra_catalog() {
            let spec = id.spec();
            let ds = generate_msra_dataset(id, &mut rng);
            assert_eq!(ds.n_instances(), spec.instances);
            assert_eq!(ds.n_features(), spec.features);
            assert_eq!(ds.n_classes(), spec.classes);
        }
        for id in uci_catalog() {
            let spec = id.spec();
            let ds = generate_uci_dataset(id, &mut rng);
            assert_eq!(ds.n_instances(), spec.instances);
            assert_eq!(ds.n_features(), spec.features);
            assert_eq!(ds.n_classes(), spec.classes);
        }
    }
}
