//! The [`Dataset`] container: features + ground-truth labels + spec.

use crate::{DataFamily, DatasetError, DatasetSpec, Result};
use sls_linalg::Matrix;

/// A dataset: an `n x d` feature matrix, `n` ground-truth class labels and a
/// descriptive [`DatasetSpec`].
///
/// Ground-truth labels are used **only for evaluation** — the models and the
/// self-learning supervision never see them, which is what makes the paper's
/// method unsupervised.
#[derive(Debug, Clone, PartialEq)]
pub struct Dataset {
    spec: DatasetSpec,
    features: Matrix,
    labels: Vec<usize>,
}

impl Dataset {
    /// Creates a dataset after validating that shapes are consistent.
    ///
    /// # Errors
    ///
    /// * [`DatasetError::EmptyDataset`] if there are no rows or columns.
    /// * [`DatasetError::LabelLengthMismatch`] if `labels.len()` differs from
    ///   the number of feature rows.
    pub fn new(spec: DatasetSpec, features: Matrix, labels: Vec<usize>) -> Result<Self> {
        if features.rows() == 0 || features.cols() == 0 {
            return Err(DatasetError::EmptyDataset);
        }
        if features.rows() != labels.len() {
            return Err(DatasetError::LabelLengthMismatch {
                instances: features.rows(),
                labels: labels.len(),
            });
        }
        Ok(Self {
            spec,
            features,
            labels,
        })
    }

    /// Dataset descriptor.
    pub fn spec(&self) -> &DatasetSpec {
        &self.spec
    }

    /// Feature matrix (`instances x features`).
    pub fn features(&self) -> &Matrix {
        &self.features
    }

    /// Ground-truth class labels, one per instance.
    pub fn labels(&self) -> &[usize] {
        &self.labels
    }

    /// Number of instances.
    pub fn n_instances(&self) -> usize {
        self.features.rows()
    }

    /// Number of features.
    pub fn n_features(&self) -> usize {
        self.features.cols()
    }

    /// Number of distinct classes present in the labels.
    pub fn n_classes(&self) -> usize {
        let mut seen: Vec<usize> = self.labels.clone();
        seen.sort_unstable();
        seen.dedup();
        seen.len()
    }

    /// Per-class instance counts, indexed by sorted distinct label.
    pub fn class_counts(&self) -> Vec<(usize, usize)> {
        let mut sorted: Vec<usize> = self.labels.clone();
        sorted.sort_unstable();
        let mut counts = Vec::new();
        for l in sorted {
            match counts.last_mut() {
                Some((label, count)) if *label == l => *count += 1,
                _ => counts.push((l, 1)),
            }
        }
        counts
    }

    /// Returns a copy with the feature matrix replaced (labels and spec are
    /// kept). Used to swap raw features for learned hidden features.
    ///
    /// # Errors
    ///
    /// Returns [`DatasetError::LabelLengthMismatch`] if the new matrix has a
    /// different number of rows.
    pub fn with_features(&self, features: Matrix) -> Result<Self> {
        if features.rows() != self.labels.len() {
            return Err(DatasetError::LabelLengthMismatch {
                instances: features.rows(),
                labels: self.labels.len(),
            });
        }
        Ok(Self {
            spec: self.spec.clone(),
            features,
            labels: self.labels.clone(),
        })
    }

    /// Returns the subset of the dataset given by `indices` (rows and labels
    /// are selected together, preserving alignment).
    ///
    /// # Errors
    ///
    /// Returns an error if any index is out of bounds.
    pub fn subset(&self, indices: &[usize]) -> Result<Self> {
        let features = self.features.select_rows(indices)?;
        let labels = indices
            .iter()
            .map(|&i| {
                self.labels.get(i).copied().ok_or(DatasetError::Linalg(
                    sls_linalg::LinalgError::IndexOutOfBounds {
                        axis: "row",
                        index: i,
                        len: self.labels.len(),
                    },
                ))
            })
            .collect::<Result<Vec<_>>>()?;
        Ok(Self {
            spec: self.spec.clone(),
            features,
            labels,
        })
    }

    /// Convenience constructor for ad-hoc synthetic data in examples/tests.
    ///
    /// # Errors
    ///
    /// Same validation as [`Dataset::new`].
    pub fn from_parts(name: &str, features: Matrix, labels: Vec<usize>) -> Result<Self> {
        let spec = DatasetSpec::new(
            name,
            name,
            DataFamily::Synthetic,
            features.rows(),
            features.cols(),
            {
                let mut s: Vec<usize> = labels.clone();
                s.sort_unstable();
                s.dedup();
                s.len()
            },
        );
        Self::new(spec, features, labels)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> Dataset {
        let features = Matrix::from_rows(&[
            vec![0.0, 0.1],
            vec![0.2, 0.0],
            vec![5.0, 5.1],
            vec![5.2, 4.9],
        ])
        .unwrap();
        Dataset::from_parts("toy", features, vec![0, 0, 1, 1]).unwrap()
    }

    #[test]
    fn construction_validates_shapes() {
        let features = Matrix::from_rows(&[vec![1.0], vec![2.0]]).unwrap();
        let spec = DatasetSpec::new("x", "x", DataFamily::Synthetic, 2, 1, 2);
        assert!(Dataset::new(spec.clone(), features.clone(), vec![0, 1]).is_ok());
        assert!(matches!(
            Dataset::new(spec.clone(), features.clone(), vec![0]),
            Err(DatasetError::LabelLengthMismatch { .. })
        ));
        assert!(matches!(
            Dataset::new(spec, Matrix::zeros(0, 0), vec![]),
            Err(DatasetError::EmptyDataset)
        ));
    }

    #[test]
    fn accessors_and_counts() {
        let d = toy();
        assert_eq!(d.n_instances(), 4);
        assert_eq!(d.n_features(), 2);
        assert_eq!(d.n_classes(), 2);
        assert_eq!(d.class_counts(), vec![(0, 2), (1, 2)]);
        assert_eq!(d.labels(), &[0, 0, 1, 1]);
        assert_eq!(d.spec().family, DataFamily::Synthetic);
    }

    #[test]
    fn with_features_swaps_matrix() {
        let d = toy();
        let hidden = Matrix::zeros(4, 8);
        let swapped = d.with_features(hidden).unwrap();
        assert_eq!(swapped.n_features(), 8);
        assert_eq!(swapped.labels(), d.labels());
        assert!(d.with_features(Matrix::zeros(3, 8)).is_err());
    }

    #[test]
    fn subset_keeps_alignment() {
        let d = toy();
        let s = d.subset(&[2, 0]).unwrap();
        assert_eq!(s.n_instances(), 2);
        assert_eq!(s.labels(), &[1, 0]);
        assert_eq!(s.features().row(0), d.features().row(2));
        assert!(d.subset(&[10]).is_err());
    }

    #[test]
    fn class_counts_with_unbalanced_labels() {
        let features = Matrix::zeros(5, 2);
        let d = Dataset::from_parts("unbal", features, vec![2, 2, 2, 7, 7]).unwrap();
        assert_eq!(d.class_counts(), vec![(2, 3), (7, 2)]);
        assert_eq!(d.n_classes(), 2);
    }
}
