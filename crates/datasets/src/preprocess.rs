//! Feature preprocessing shared by the experiment pipelines.
//!
//! * Real-valued data fed to the Gaussian-visible models is standardised
//!   column-wise (the GRBM assumes unit-variance visible units).
//! * Data fed to the binary-visible models must be binary; the paper uses
//!   binary visible units for the UCI experiments, so the loaders binarise
//!   features either by thresholding at the column median or by treating the
//!   min-max-normalised value as a Bernoulli probability.

use crate::{DatasetError, Result};
use rand::Rng;
use serde::{Deserialize, Serialize};
use sls_linalg::{Matrix, ParallelPolicy, Standardizer};

/// Standardises every column to zero mean and unit variance.
///
/// Constant columns are centred but left unscaled.
///
/// # Errors
///
/// Returns an error if the matrix has no rows.
pub fn standardize_columns(data: &Matrix) -> Result<Matrix> {
    let (_, out) = Standardizer::fit_transform(data)?;
    Ok(out)
}

/// Binarises a matrix by thresholding every column at its median: entries
/// strictly above the median become `1.0`, the rest `0.0`.
///
/// Median thresholding keeps each binary column balanced, which prevents the
/// binary RBM's hidden units from saturating on skewed features.
pub fn binarize_median(data: &Matrix) -> Matrix {
    MedianBinarizer::fit(data)
        .transform(data)
        .expect("fit and transform use the same matrix")
}

/// A fitted median binariser: the per-column thresholds captured at fit time,
/// reusable on new data with the same columns.
///
/// [`binarize_median`] fits and transforms in one step, which is fine for
/// offline experiments, but serving a trained model requires applying the
/// *training-time* thresholds to unseen rows — that is what this type stores
/// (mirroring [`Standardizer`] for the standardise path).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MedianBinarizer {
    thresholds: Vec<f64>,
}

impl MedianBinarizer {
    /// Computes the per-column median thresholds of `data`.
    ///
    /// An empty column yields a threshold of `0.0` (nothing to binarise).
    pub fn fit(data: &Matrix) -> Self {
        let mut thresholds = Vec::with_capacity(data.cols());
        for j in 0..data.cols() {
            let mut col = data.column(j);
            col.sort_by(|a, b| a.partial_cmp(b).expect("no NaN in dataset columns"));
            let median = if col.is_empty() {
                0.0
            } else if col.len() % 2 == 1 {
                col[col.len() / 2]
            } else {
                0.5 * (col[col.len() / 2 - 1] + col[col.len() / 2])
            };
            thresholds.push(median);
        }
        Self { thresholds }
    }

    /// The per-column thresholds captured at fit time.
    pub fn thresholds(&self) -> &[f64] {
        &self.thresholds
    }

    /// Binarises `data` against the fitted thresholds: entries strictly above
    /// the column threshold become `1.0`, the rest `0.0`. Runs under the
    /// process-wide [`ParallelPolicy::global`]; see
    /// [`MedianBinarizer::transform_with`] for an explicit policy.
    ///
    /// # Errors
    ///
    /// Returns a shape error if `data` has a different number of columns than
    /// the fitted matrix.
    pub fn transform(&self, data: &Matrix) -> Result<Matrix> {
        self.transform_with(data, &ParallelPolicy::global())
    }

    /// [`MedianBinarizer::transform`] under an explicit parallel execution
    /// policy: rows binarise independently through
    /// [`Matrix::map_rows_with`], so results are identical for every policy
    /// (the output is exactly `0.0`/`1.0` either way).
    ///
    /// # Errors
    ///
    /// Returns a shape error if `data` has a different number of columns than
    /// the fitted matrix.
    pub fn transform_with(&self, data: &Matrix, policy: &ParallelPolicy) -> Result<Matrix> {
        if data.cols() != self.thresholds.len() {
            return Err(DatasetError::Linalg(
                sls_linalg::LinalgError::ShapeMismatch {
                    op: "MedianBinarizer::transform",
                    left: data.shape(),
                    right: (1, self.thresholds.len()),
                },
            ));
        }
        let thresholds = &self.thresholds;
        Ok(data.map_rows_with(data.cols(), policy, |_, row, out| {
            for ((o, &x), &t) in out.iter_mut().zip(row).zip(thresholds) {
                *o = if x > t { 1.0 } else { 0.0 };
            }
        }))
    }
}

/// Binarises a matrix stochastically: values are min-max normalised to
/// `[0, 1]` and then used as Bernoulli success probabilities.
///
/// This is the standard trick for feeding continuous data to a binary RBM
/// while preserving gradient information in expectation.
pub fn binarize_bernoulli(data: &Matrix, rng: &mut impl Rng) -> Matrix {
    let probs = data.min_max_normalize();
    probs.map(|p| if rng.gen::<f64>() < p { 1.0 } else { 0.0 })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn data() -> Matrix {
        Matrix::from_rows(&[
            vec![1.0, 100.0],
            vec![2.0, 200.0],
            vec![3.0, 300.0],
            vec![4.0, 400.0],
        ])
        .unwrap()
    }

    #[test]
    fn standardize_gives_zero_mean_columns() {
        let s = standardize_columns(&data()).unwrap();
        for m in s.column_means() {
            assert!(m.abs() < 1e-12);
        }
    }

    #[test]
    fn standardize_empty_errors() {
        assert!(standardize_columns(&Matrix::zeros(0, 2)).is_err());
    }

    #[test]
    fn binarize_median_is_binary_and_balanced() {
        let b = binarize_median(&data());
        assert!(b.as_slice().iter().all(|&x| x == 0.0 || x == 1.0));
        // With 4 distinct values per column, exactly 2 exceed the median.
        for j in 0..2 {
            let ones: f64 = b.column(j).iter().sum();
            assert_eq!(ones, 2.0);
        }
    }

    #[test]
    fn binarize_median_handles_constant_column() {
        let constant = Matrix::filled(5, 2, 3.0);
        let b = binarize_median(&constant);
        // Nothing is strictly above the median of a constant column.
        assert_eq!(b.sum(), 0.0);
    }

    #[test]
    fn median_binarizer_applies_fit_time_thresholds_to_new_rows() {
        let b = MedianBinarizer::fit(&data());
        assert_eq!(b.thresholds(), &[2.5, 250.0]);
        let unseen = Matrix::from_rows(&[vec![2.6, 100.0], vec![0.0, 400.0]]).unwrap();
        let t = b.transform(&unseen).unwrap();
        assert_eq!(t.row(0), &[1.0, 0.0]);
        assert_eq!(t.row(1), &[0.0, 1.0]);
    }

    #[test]
    fn median_binarizer_matches_one_shot_helper() {
        let d = data();
        let fitted = MedianBinarizer::fit(&d).transform(&d).unwrap();
        assert_eq!(fitted, binarize_median(&d));
    }

    #[test]
    fn median_binarizer_transform_with_matches_serial_for_every_policy() {
        let b = MedianBinarizer::fit(&data());
        let unseen = Matrix::from_fn(29, 2, |i, j| (i as f64) * 0.9 + (j as f64) * 123.0);
        let serial = b
            .transform_with(&unseen, &ParallelPolicy::serial())
            .unwrap();
        for pool in [false, true] {
            let policy = ParallelPolicy::new(4)
                .with_min_rows_per_thread(1)
                .with_pool(pool);
            let par = b.transform_with(&unseen, &policy).unwrap();
            assert_eq!(par, serial, "pool = {pool}");
        }
    }

    #[test]
    fn median_binarizer_rejects_wrong_width() {
        let b = MedianBinarizer::fit(&data());
        assert!(b.transform(&Matrix::zeros(2, 3)).is_err());
    }

    #[test]
    fn median_binarizer_serde_round_trip() {
        let b = MedianBinarizer::fit(&data());
        let json = serde_json::to_string(&b).unwrap();
        let back: MedianBinarizer = serde_json::from_str(&json).unwrap();
        assert_eq!(back, b);
    }

    #[test]
    fn binarize_bernoulli_is_binary_and_tracks_probability() {
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let ramp = Matrix::from_fn(200, 10, |i, _| i as f64);
        let b = binarize_bernoulli(&ramp, &mut rng);
        assert!(b.as_slice().iter().all(|&x| x == 0.0 || x == 1.0));
        // Rows near the top of the ramp should be mostly ones, near the
        // bottom mostly zeros.
        let low: f64 = b.row(2).iter().sum();
        let high: f64 = b.row(197).iter().sum();
        assert!(high > low);
    }

    #[test]
    fn binarize_bernoulli_extremes_are_deterministic() {
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let extremes = Matrix::from_rows(&[vec![0.0, 1000.0]]).unwrap();
        let b = binarize_bernoulli(&extremes, &mut rng);
        assert_eq!(b[(0, 0)], 0.0);
        assert_eq!(b[(0, 1)], 1.0);
    }
}
