//! Iris-like dataset (dataset II no. 6, "IR" in Table III).
//!
//! Fisher's Iris data is 150 instances, 4 features, 3 balanced classes. We do
//! not vendor the original measurements; instead the dataset is *regenerated
//! deterministically* from the published class-conditional statistics of the
//! original data (per-class feature means and standard deviations), using a
//! fixed internal seed so every call returns exactly the same matrix. The
//! resulting dataset has the same shape, the same class structure and the
//! same "one class linearly separable, two classes overlapping" geometry that
//! makes Iris the canonical easy-but-not-trivial clustering benchmark, which
//! is the property the paper's Table VII/VIII/IX rows rely on.

use crate::{DataFamily, Dataset, DatasetSpec};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use sls_linalg::Matrix;

/// Published class-conditional means of the four Iris features
/// (sepal length, sepal width, petal length, petal width), one row per class
/// (setosa, versicolor, virginica).
const CLASS_MEANS: [[f64; 4]; 3] = [
    [5.006, 3.428, 1.462, 0.246],
    [5.936, 2.770, 4.260, 1.326],
    [6.588, 2.974, 5.552, 2.026],
];

/// Published class-conditional standard deviations of the same features.
const CLASS_STDS: [[f64; 4]; 3] = [
    [0.352, 0.379, 0.174, 0.105],
    [0.516, 0.314, 0.470, 0.198],
    [0.636, 0.322, 0.552, 0.275],
];

/// Internal seed: the Iris stand-in must be a *fixed* dataset, not a fresh
/// random draw per call.
const IRIS_SEED: u64 = 0x1235_1936; // Fisher, 1936

/// Returns the deterministic Iris-like dataset (150 x 4, 3 classes).
pub fn iris() -> Dataset {
    let mut rng = ChaCha8Rng::seed_from_u64(IRIS_SEED);
    let mut rows = Vec::with_capacity(150);
    let mut labels = Vec::with_capacity(150);
    for class in 0..3 {
        for _ in 0..50 {
            let row: Vec<f64> = (0..4)
                .map(|j| {
                    let v =
                        CLASS_MEANS[class][j] + CLASS_STDS[class][j] * standard_normal(&mut rng);
                    // Measurements are in centimetres with one decimal place
                    // and are strictly positive.
                    (v.max(0.1) * 10.0).round() / 10.0
                })
                .collect();
            rows.push(row);
            labels.push(class);
        }
    }
    let features = Matrix::from_rows(&rows).expect("uniform rows");
    let spec = DatasetSpec::new("Iris", "IR", DataFamily::Uci, 150, 4, 3);
    Dataset::new(spec, features, labels).expect("consistent shapes")
}

fn standard_normal(rng: &mut impl Rng) -> f64 {
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen::<f64>();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_matches_table_iii() {
        let ds = iris();
        assert_eq!(ds.n_instances(), 150);
        assert_eq!(ds.n_features(), 4);
        assert_eq!(ds.n_classes(), 3);
        assert_eq!(ds.spec().code, "IR");
    }

    #[test]
    fn classes_are_balanced() {
        let ds = iris();
        for (_, count) in ds.class_counts() {
            assert_eq!(count, 50);
        }
    }

    #[test]
    fn is_deterministic_across_calls() {
        let a = iris();
        let b = iris();
        assert_eq!(a.features(), b.features());
        assert_eq!(a.labels(), b.labels());
    }

    #[test]
    fn class_means_are_close_to_published_statistics() {
        let ds = iris();
        for (class, class_means) in CLASS_MEANS.iter().enumerate() {
            let idx: Vec<usize> = ds
                .labels()
                .iter()
                .enumerate()
                .filter(|(_, &l)| l == class)
                .map(|(i, _)| i)
                .collect();
            let sub = ds.features().select_rows(&idx).unwrap();
            let means = sub.column_means();
            for j in 0..4 {
                assert!(
                    (means[j] - class_means[j]).abs() < 0.2,
                    "class {class} feature {j}: {} vs {}",
                    means[j],
                    class_means[j]
                );
            }
        }
    }

    #[test]
    fn all_measurements_are_positive_and_plausible() {
        let ds = iris();
        assert!(ds.features().min().unwrap() > 0.0);
        assert!(ds.features().max().unwrap() < 10.0);
    }

    #[test]
    fn setosa_is_well_separated_from_virginica() {
        // Petal length (feature 2) separates class 0 from class 2 almost
        // perfectly in the real data; our regeneration must keep that.
        let ds = iris();
        let setosa_max = ds
            .labels()
            .iter()
            .enumerate()
            .filter(|(_, &l)| l == 0)
            .map(|(i, _)| ds.features()[(i, 2)])
            .fold(f64::NEG_INFINITY, f64::max);
        let virginica_min = ds
            .labels()
            .iter()
            .enumerate()
            .filter(|(_, &l)| l == 2)
            .map(|(i, _)| ds.features()[(i, 2)])
            .fold(f64::INFINITY, f64::min);
        assert!(
            setosa_max < virginica_min,
            "setosa petal length {setosa_max} overlaps virginica {virginica_min}"
        );
    }
}
