//! Chunked (mini-batch) ingestion over CSV files and in-memory datasets.
//!
//! Streaming training never needs the whole corpus in memory at once: it
//! consumes fixed-size row chunks, one at a time, possibly over several
//! epochs. A [`ChunkSource`] provides random access to those chunks so an
//! interrupted run can resume from a recorded `(epoch, chunk)` cursor and
//! re-read exactly the rows it would have seen — the contract the
//! checkpoint-resume machinery in `sls-rbm-core` relies on.
//!
//! Two implementations are provided:
//!
//! * [`ChunkedCsvReader`] — indexes the byte offsets of a CSV file's data
//!   rows once at open time, then reads only the requested rows per chunk.
//!   Row data is never held in memory beyond the current chunk.
//! * [`InMemoryChunks`] — adapts an already-materialised feature matrix
//!   (e.g. a generated UCI stand-in) to the same interface, so the training
//!   driver is agnostic to where rows come from.

use crate::{CsvOptions, Dataset, DatasetError, Result};
use sls_linalg::Matrix;
use std::fs::File;
use std::io::{BufRead, BufReader, Seek, SeekFrom};
use std::path::{Path, PathBuf};

/// Random access to fixed-size row chunks of a feature source.
///
/// Implementations must be deterministic: `read_chunk(i)` returns the same
/// rows every time it is called, across passes and across process restarts,
/// as long as the underlying source is unchanged.
pub trait ChunkSource {
    /// Human-readable name of the source (file name or dataset name).
    fn name(&self) -> &str;

    /// Number of feature columns per row.
    fn n_features(&self) -> usize;

    /// Total number of rows across all chunks.
    fn n_instances(&self) -> usize;

    /// Nominal rows per chunk (the final chunk may be shorter).
    fn chunk_size(&self) -> usize;

    /// Number of chunks in one full pass.
    fn n_chunks(&self) -> usize {
        let n = self.n_instances();
        let c = self.chunk_size().max(1);
        n.div_ceil(c)
    }

    /// Rows in chunk `index` (the final chunk absorbs the remainder).
    fn rows_in_chunk(&self, index: usize) -> usize {
        let n = self.n_instances();
        let c = self.chunk_size().max(1);
        let start = index * c;
        n.saturating_sub(start).min(c)
    }

    /// Reads the rows of chunk `index` as a feature matrix.
    ///
    /// # Errors
    ///
    /// * [`DatasetError::ChunkOutOfRange`] if `index >= n_chunks()`.
    /// * Parse or I/O errors from the underlying source.
    fn read_chunk(&self, index: usize) -> Result<Matrix>;
}

/// Concatenates the leading chunks of `source` until at least `max_rows`
/// rows are collected (or the source is exhausted), then truncates to
/// exactly `max_rows`.
///
/// Used by the retrain pipeline to fit the preprocessor and run the
/// consensus stage on a bounded sample without materialising the corpus.
///
/// # Errors
///
/// Propagates the source's read errors.
pub fn leading_sample(source: &dyn ChunkSource, max_rows: usize) -> Result<Matrix> {
    let max_rows = max_rows.max(1);
    let mut rows: Vec<Vec<f64>> = Vec::new();
    for index in 0..source.n_chunks() {
        if rows.len() >= max_rows {
            break;
        }
        let chunk = source.read_chunk(index)?;
        for row in chunk.row_iter() {
            if rows.len() >= max_rows {
                break;
            }
            rows.push(row.to_vec());
        }
    }
    if rows.is_empty() {
        return Err(DatasetError::EmptyDataset);
    }
    Ok(Matrix::from_rows(&rows)?)
}

/// Chunked reader over a CSV file on disk.
///
/// Opening the reader makes one pass over the file to record the byte
/// offset and line number of every data row (header and blank lines are
/// skipped); `read_chunk` then seeks straight to the first row of the
/// requested chunk and parses only its rows. Field values are validated at
/// read time, so a malformed row deep in the file surfaces when its chunk
/// is first read, with its 1-based line number.
///
/// The label column (first or last, per [`CsvOptions`]) is skipped — the
/// streaming trainer is unsupervised and consumes features only.
#[derive(Debug)]
pub struct ChunkedCsvReader {
    path: PathBuf,
    options: CsvOptions,
    chunk_size: usize,
    /// `(byte_offset, 1-based line number)` of every data row, in order.
    offsets: Vec<(u64, usize)>,
    n_features: usize,
}

impl ChunkedCsvReader {
    /// Indexes `path` and prepares chunked access with `chunk_size` rows per
    /// chunk (clamped to at least 1).
    ///
    /// # Errors
    ///
    /// * [`DatasetError::Io`] if the file cannot be read.
    /// * [`DatasetError::EmptyDataset`] if it contains no data rows.
    /// * [`DatasetError::CsvParse`] if the first data row has fewer than two
    ///   columns (one feature plus the label).
    pub fn open(path: impl AsRef<Path>, options: &CsvOptions, chunk_size: usize) -> Result<Self> {
        let path = path.as_ref().to_path_buf();
        let file = File::open(&path)?;
        let mut reader = BufReader::new(file);
        let mut offsets: Vec<(u64, usize)> = Vec::new();
        let mut n_features: Option<usize> = None;
        let mut offset = 0u64;
        let mut line = String::new();
        let mut line_no = 0usize;
        loop {
            line.clear();
            let bytes = reader.read_line(&mut line)?;
            if bytes == 0 {
                break;
            }
            line_no += 1;
            let is_header = options.has_header && line_no == 1;
            let trimmed = line.trim();
            if !is_header && !trimmed.is_empty() {
                if n_features.is_none() {
                    let fields = trimmed.split(options.delimiter).count();
                    if fields < 2 {
                        return Err(DatasetError::CsvParse {
                            line: line_no,
                            message: "a row needs at least one feature and a label".to_string(),
                        });
                    }
                    n_features = Some(fields - 1);
                }
                offsets.push((offset, line_no));
            }
            offset += bytes as u64;
        }
        if offsets.is_empty() {
            return Err(DatasetError::EmptyDataset);
        }
        Ok(Self {
            path,
            options: options.clone(),
            chunk_size: chunk_size.max(1),
            offsets,
            n_features: n_features.expect("offsets is non-empty"),
        })
    }
}

impl ChunkSource for ChunkedCsvReader {
    fn name(&self) -> &str {
        &self.options.name
    }

    fn n_features(&self) -> usize {
        self.n_features
    }

    fn n_instances(&self) -> usize {
        self.offsets.len()
    }

    fn chunk_size(&self) -> usize {
        self.chunk_size
    }

    fn read_chunk(&self, index: usize) -> Result<Matrix> {
        if index >= self.n_chunks() {
            return Err(DatasetError::ChunkOutOfRange {
                index,
                chunks: self.n_chunks(),
            });
        }
        let start_row = index * self.chunk_size;
        let rows_here = self.rows_in_chunk(index);
        let mut file = File::open(&self.path)?;
        file.seek(SeekFrom::Start(self.offsets[start_row].0))?;
        let mut reader = BufReader::new(file);
        let mut line = String::new();
        let mut line_no = self.offsets[start_row].1;
        let mut rows: Vec<Vec<f64>> = Vec::with_capacity(rows_here);
        while rows.len() < rows_here {
            line.clear();
            let bytes = reader.read_line(&mut line)?;
            if bytes == 0 {
                // The file shrank since it was indexed.
                return Err(DatasetError::CsvParse {
                    line: line_no,
                    message: "unexpected end of file (source changed since indexing?)".to_string(),
                });
            }
            let trimmed = line.trim();
            if !trimmed.is_empty() {
                rows.push(parse_feature_row(
                    trimmed,
                    line_no,
                    self.n_features,
                    &self.options,
                )?);
            }
            line_no += 1;
        }
        Ok(Matrix::from_rows(&rows)?)
    }
}

/// Parses the feature fields of one data row, skipping the label column.
fn parse_feature_row(
    trimmed: &str,
    line_no: usize,
    n_features: usize,
    options: &CsvOptions,
) -> Result<Vec<f64>> {
    let fields: Vec<&str> = trimmed.split(options.delimiter).map(str::trim).collect();
    if fields.len() != n_features + 1 {
        return Err(DatasetError::CsvRaggedRow {
            line: line_no,
            expected: n_features + 1,
            found: fields.len(),
        });
    }
    let feature_fields = if options.label_last {
        &fields[..n_features]
    } else {
        &fields[1..]
    };
    feature_fields
        .iter()
        .map(|f| {
            f.parse::<f64>().map_err(|_| DatasetError::CsvParse {
                line: line_no,
                message: format!("cannot parse feature value '{f}' as a number"),
            })
        })
        .collect()
}

/// Chunked view over an already-materialised feature matrix.
#[derive(Debug, Clone)]
pub struct InMemoryChunks {
    features: Matrix,
    chunk_size: usize,
    name: String,
}

impl InMemoryChunks {
    /// Wraps `features` with `chunk_size` rows per chunk (clamped to ≥ 1).
    ///
    /// # Errors
    ///
    /// [`DatasetError::EmptyDataset`] if `features` has no rows.
    pub fn new(features: Matrix, chunk_size: usize, name: impl Into<String>) -> Result<Self> {
        if features.rows() == 0 {
            return Err(DatasetError::EmptyDataset);
        }
        Ok(Self {
            features,
            chunk_size: chunk_size.max(1),
            name: name.into(),
        })
    }

    /// Chunked view over a dataset's feature matrix.
    ///
    /// # Errors
    ///
    /// [`DatasetError::EmptyDataset`] if the dataset has no rows.
    pub fn from_dataset(dataset: &Dataset, chunk_size: usize) -> Result<Self> {
        Self::new(
            dataset.features().clone(),
            chunk_size,
            dataset.spec().name.clone(),
        )
    }
}

impl ChunkSource for InMemoryChunks {
    fn name(&self) -> &str {
        &self.name
    }

    fn n_features(&self) -> usize {
        self.features.cols()
    }

    fn n_instances(&self) -> usize {
        self.features.rows()
    }

    fn chunk_size(&self) -> usize {
        self.chunk_size
    }

    fn read_chunk(&self, index: usize) -> Result<Matrix> {
        if index >= self.n_chunks() {
            return Err(DatasetError::ChunkOutOfRange {
                index,
                chunks: self.n_chunks(),
            });
        }
        let start = index * self.chunk_size;
        let rows: Vec<Vec<f64>> = (start..start + self.rows_in_chunk(index))
            .map(|i| self.features.row(i).to_vec())
            .collect();
        Ok(Matrix::from_rows(&rows)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
1.0,2.0,a
1.5,2.5,a

8.0,9.0,b
8.5,9.5,b
3.0,4.0,a
";

    fn temp_csv(name: &str, content: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("sls_datasets_chunk_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(name);
        std::fs::write(&path, content).unwrap();
        path
    }

    #[test]
    fn csv_reader_indexes_and_reads_chunks() {
        let path = temp_csv("basic.csv", SAMPLE);
        let reader = ChunkedCsvReader::open(&path, &CsvOptions::default(), 2).unwrap();
        assert_eq!(reader.n_instances(), 5);
        assert_eq!(reader.n_features(), 2);
        assert_eq!(reader.n_chunks(), 3);
        assert_eq!(reader.rows_in_chunk(0), 2);
        assert_eq!(reader.rows_in_chunk(2), 1);

        let c0 = reader.read_chunk(0).unwrap();
        assert_eq!(c0.shape(), (2, 2));
        assert_eq!(c0.row(0), &[1.0, 2.0]);
        // Chunk 1 starts after the blank line.
        let c1 = reader.read_chunk(1).unwrap();
        assert_eq!(c1.row(0), &[8.0, 9.0]);
        let c2 = reader.read_chunk(2).unwrap();
        assert_eq!(c2.shape(), (1, 2));
        assert_eq!(c2.row(0), &[3.0, 4.0]);
    }

    #[test]
    fn csv_chunks_concatenate_to_the_full_parse() {
        let path = temp_csv("concat.csv", SAMPLE);
        let full = crate::parse_csv_dataset(SAMPLE, &CsvOptions::default()).unwrap();
        for chunk_size in [1, 2, 3, 5, 100] {
            let reader = ChunkedCsvReader::open(&path, &CsvOptions::default(), chunk_size).unwrap();
            let mut rows: Vec<Vec<f64>> = Vec::new();
            for i in 0..reader.n_chunks() {
                let chunk = reader.read_chunk(i).unwrap();
                rows.extend(chunk.row_iter().map(<[f64]>::to_vec));
            }
            let joined = Matrix::from_rows(&rows).unwrap();
            assert_eq!(joined.as_slice(), full.features().as_slice());
        }
    }

    #[test]
    fn csv_reader_respects_header_and_label_first() {
        let content = "class,f1,f2\npos,1.0,2.0\nneg,3.0,4.0\n";
        let path = temp_csv("header.csv", content);
        let options = CsvOptions {
            has_header: true,
            label_last: false,
            ..CsvOptions::default()
        };
        let reader = ChunkedCsvReader::open(&path, &options, 10).unwrap();
        assert_eq!(reader.n_instances(), 2);
        let chunk = reader.read_chunk(0).unwrap();
        assert_eq!(chunk.row(0), &[1.0, 2.0]);
        assert_eq!(chunk.row(1), &[3.0, 4.0]);
    }

    #[test]
    fn bad_rows_error_with_absolute_line_numbers() {
        let content = "1.0,2.0,a\n1.0,oops,a\n";
        let path = temp_csv("bad.csv", content);
        let reader = ChunkedCsvReader::open(&path, &CsvOptions::default(), 1).unwrap();
        assert!(reader.read_chunk(0).is_ok());
        let err = reader.read_chunk(1).unwrap_err();
        assert!(
            matches!(err, DatasetError::CsvParse { line: 2, .. }),
            "{err}"
        );

        let ragged = "1.0,2.0,a\n1.0,a\n";
        let path = temp_csv("ragged.csv", ragged);
        let reader = ChunkedCsvReader::open(&path, &CsvOptions::default(), 2).unwrap();
        let err = reader.read_chunk(0).unwrap_err();
        assert!(
            matches!(
                err,
                DatasetError::CsvRaggedRow {
                    line: 2,
                    expected: 3,
                    found: 2
                }
            ),
            "{err}"
        );
    }

    #[test]
    fn empty_and_out_of_range_are_rejected() {
        let path = temp_csv("empty.csv", "\n\n");
        assert!(matches!(
            ChunkedCsvReader::open(&path, &CsvOptions::default(), 2),
            Err(DatasetError::EmptyDataset)
        ));

        let path = temp_csv("small.csv", "1.0,a\n");
        let reader = ChunkedCsvReader::open(&path, &CsvOptions::default(), 2).unwrap();
        let err = reader.read_chunk(1).unwrap_err();
        assert!(
            matches!(
                err,
                DatasetError::ChunkOutOfRange {
                    index: 1,
                    chunks: 1
                }
            ),
            "{err}"
        );
    }

    #[test]
    fn in_memory_chunks_match_source_rows() {
        let features = Matrix::from_rows(&[
            vec![1.0, 2.0],
            vec![3.0, 4.0],
            vec![5.0, 6.0],
            vec![7.0, 8.0],
            vec![9.0, 10.0],
        ])
        .unwrap();
        let chunks = InMemoryChunks::new(features.clone(), 2, "mem").unwrap();
        assert_eq!(chunks.n_chunks(), 3);
        assert_eq!(chunks.read_chunk(2).unwrap().row(0), &[9.0, 10.0]);
        assert!(matches!(
            chunks.read_chunk(3),
            Err(DatasetError::ChunkOutOfRange { .. })
        ));
        assert!(matches!(
            InMemoryChunks::new(Matrix::zeros(0, 3), 2, "empty"),
            Err(DatasetError::EmptyDataset)
        ));
    }

    #[test]
    fn leading_sample_collects_and_truncates() {
        let features =
            Matrix::from_rows(&[vec![1.0], vec![2.0], vec![3.0], vec![4.0], vec![5.0]]).unwrap();
        let chunks = InMemoryChunks::new(features, 2, "mem").unwrap();
        let sample = leading_sample(&chunks, 3).unwrap();
        assert_eq!(sample.shape(), (3, 1));
        assert_eq!(sample.row(2), &[3.0]);
        let all = leading_sample(&chunks, 100).unwrap();
        assert_eq!(all.shape(), (5, 1));
    }
}
