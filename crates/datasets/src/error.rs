//! Error type for dataset construction and loading.

use std::fmt;

/// Errors raised while building or loading datasets.
#[derive(Debug)]
pub enum DatasetError {
    /// Feature matrix and label vector disagree on the number of instances.
    LabelLengthMismatch {
        /// Rows in the feature matrix.
        instances: usize,
        /// Entries in the label vector.
        labels: usize,
    },
    /// A dataset with zero instances or zero features was requested.
    EmptyDataset,
    /// A CSV line could not be parsed.
    CsvParse {
        /// 1-based line number.
        line: usize,
        /// Explanation of the failure.
        message: String,
    },
    /// The CSV file declared an inconsistent number of columns.
    CsvRaggedRow {
        /// 1-based line number.
        line: usize,
        /// Expected column count.
        expected: usize,
        /// Found column count.
        found: usize,
    },
    /// A chunk index beyond the end of a chunked source was requested.
    ChunkOutOfRange {
        /// Requested chunk index.
        index: usize,
        /// Number of chunks the source actually has.
        chunks: usize,
    },
    /// Underlying I/O failure while reading a file.
    Io(std::io::Error),
    /// Propagated linear-algebra error.
    Linalg(sls_linalg::LinalgError),
}

impl fmt::Display for DatasetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DatasetError::LabelLengthMismatch { instances, labels } => write!(
                f,
                "label vector has {labels} entries but the feature matrix has {instances} rows"
            ),
            DatasetError::EmptyDataset => {
                write!(f, "dataset must have at least one instance and one feature")
            }
            DatasetError::CsvParse { line, message } => {
                write!(f, "CSV parse error at line {line}: {message}")
            }
            DatasetError::CsvRaggedRow {
                line,
                expected,
                found,
            } => write!(
                f,
                "CSV line {line} has {found} columns, expected {expected}"
            ),
            DatasetError::ChunkOutOfRange { index, chunks } => {
                write!(
                    f,
                    "chunk {index} requested but the source has {chunks} chunks"
                )
            }
            DatasetError::Io(e) => write!(f, "I/O error: {e}"),
            DatasetError::Linalg(e) => write!(f, "linear algebra error: {e}"),
        }
    }
}

impl std::error::Error for DatasetError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DatasetError::Io(e) => Some(e),
            DatasetError::Linalg(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for DatasetError {
    fn from(e: std::io::Error) -> Self {
        DatasetError::Io(e)
    }
}

impl From<sls_linalg::LinalgError> for DatasetError {
    fn from(e: sls_linalg::LinalgError) -> Self {
        DatasetError::Linalg(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(DatasetError::LabelLengthMismatch {
            instances: 10,
            labels: 9
        }
        .to_string()
        .contains("9 entries"));
        assert!(DatasetError::EmptyDataset
            .to_string()
            .contains("at least one"));
        assert!(DatasetError::CsvParse {
            line: 3,
            message: "bad float".into()
        }
        .to_string()
        .contains("line 3"));
        assert!(DatasetError::CsvRaggedRow {
            line: 2,
            expected: 4,
            found: 3
        }
        .to_string()
        .contains("expected 4"));
    }

    #[test]
    fn conversions_preserve_source() {
        let io: DatasetError = std::io::Error::new(std::io::ErrorKind::NotFound, "gone").into();
        assert!(io.to_string().contains("gone"));
        let la: DatasetError = sls_linalg::LinalgError::Empty { op: "x" }.into();
        assert!(la.to_string().contains("linear algebra"));
        use std::error::Error;
        assert!(io.source().is_some());
        assert!(la.source().is_some());
        assert!(DatasetError::EmptyDataset.source().is_none());
    }
}
