//! The one-command retrain path: chunked CSV ingestion → consensus
//! supervision on a leading sample → streaming (checkpoint-resumable)
//! training → artifact export into a served directory.
//!
//! This closes the loop with the serving layer: pointing `--out` at the
//! directory a running `sls-serve serve --watch-interval-ms N` instance
//! watches (or hitting `POST /admin/reload` after the export) hot-swaps the
//! freshly trained model into the live registry without a restart.
//!
//! The training itself is [`sls_rbm_core::StreamTrainer`]: the run is a pure
//! function of `(seed, config, data)`, interruptible at any chunk boundary,
//! and resuming from the persisted [`TrainCheckpoint`] is bitwise identical
//! to an uninterrupted run. `--stop-after-epochs` exposes the controlled
//! interruption used by CI's kill-and-resume smoke test.

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use sls_consensus::{LocalSupervision, LocalSupervisionBuilder, SupervisionSummary, VotingPolicy};
use sls_datasets::{leading_sample, ChunkSource, ChunkedCsvReader, CsvOptions, Dataset};
use sls_linalg::{Matrix, ParallelPolicy};
use sls_rbm_core::{
    base_clusterers, ClusterHead, FittedPreprocessor, ModelKind, PipelineArtifact, Preprocessing,
    RbmError, SlsConfig, StreamLimit, StreamTrainer, TrainCheckpoint, TrainConfig, TrainingHistory,
    VisibleKind,
};
use std::path::{Path, PathBuf};

/// Everything the `retrain` subcommand needs; the CLI fills it from flags,
/// tests construct it directly.
#[derive(Debug, Clone)]
pub struct RetrainOptions {
    /// CSV file to train on (features + one label column).
    pub data: PathBuf,
    /// CSV dialect of `data`.
    pub csv: CsvOptions,
    /// Rows per ingestion chunk.
    pub chunk_size: usize,
    /// Leading rows used to fit the preprocessor and (for sls kinds) the
    /// consensus supervision, and to fit the exported cluster head.
    pub sample_rows: usize,
    /// Which model to train.
    pub model_kind: ModelKind,
    /// Hidden-layer width.
    pub n_hidden: usize,
    /// Cluster count for the base clusterers and the exported cluster head.
    pub n_clusters: usize,
    /// CD training hyper-parameters (`epochs` is the run's total).
    pub train: TrainConfig,
    /// sls hyper-parameters (ignored by the baseline kinds).
    pub sls: SlsConfig,
    /// Voting policy integrating the base clusterings.
    pub voting: VotingPolicy,
    /// Seed the whole run (init, supervision, cluster head) derives from.
    pub seed: u64,
    /// Where the checkpoint is persisted (loaded to resume if it exists).
    /// Must not be a `.json` file inside `out_dir` — the serving registry
    /// would try to load it as an artifact and reject the reload.
    pub checkpoint: PathBuf,
    /// Stop after completing this many epochs *in this invocation* — the
    /// controlled-interruption knob. `None` runs to completion.
    pub stop_after_epochs: Option<usize>,
    /// Directory the finished artifact is exported into.
    pub out_dir: PathBuf,
    /// Artifact name (file becomes `<out_dir>/<name>.json`).
    pub name: String,
    /// Parallel execution policy for every hot path.
    pub parallel: ParallelPolicy,
    /// Provenance stamped on the checkpoint and the exported artifact.
    pub trained_at: Option<String>,
    /// Provenance: where the run came from (command line, job id, ...).
    pub source: Option<String>,
}

impl RetrainOptions {
    /// Defaults mirroring `SlsPipelineConfig::quick_demo`, training an
    /// sls-grbm on `data` with the checkpoint next to the artifact.
    pub fn new(data: impl Into<PathBuf>, out_dir: impl Into<PathBuf>) -> Self {
        let out_dir = out_dir.into();
        Self {
            data: data.into(),
            csv: CsvOptions::default(),
            chunk_size: 256,
            sample_rows: 512,
            model_kind: ModelKind::SlsGrbm,
            n_hidden: 12,
            n_clusters: 3,
            train: TrainConfig::default()
                .with_learning_rate(5e-3)
                .with_epochs(15)
                .with_batch_size(32),
            sls: SlsConfig::new(0.5),
            voting: VotingPolicy::Unanimous,
            seed: 2023,
            // Deliberately NOT a `.json` file: the registry loads every
            // `*.json` under the watched directory as an artifact and a
            // non-artifact file would reject the whole reload, so the
            // checkpoint lives alongside the artifacts under a different
            // extension.
            checkpoint: out_dir.join("retrain-checkpoint.ckpt"),
            stop_after_epochs: None,
            out_dir,
            name: "retrained".to_string(),
            parallel: ParallelPolicy::global(),
            trained_at: None,
            source: None,
        }
    }
}

/// What one `retrain` invocation did.
#[derive(Debug, Clone)]
pub struct RetrainOutcome {
    /// `true` if every configured epoch is applied and the artifact was
    /// exported.
    pub completed: bool,
    /// `true` if the run resumed from an existing checkpoint file.
    pub resumed: bool,
    /// Epochs applied so far (across all invocations).
    pub epochs_done: usize,
    /// Total epochs the run targets.
    pub epochs_total: usize,
    /// Epoch history of *this* invocation.
    pub history: TrainingHistory,
    /// Supervision statistics (sls kinds only).
    pub supervision: Option<SupervisionSummary>,
    /// Path of the exported artifact (`None` until the run completes).
    pub artifact_path: Option<PathBuf>,
    /// Path of the persisted checkpoint.
    pub checkpoint_path: PathBuf,
}

/// The preprocessing a model kind wants: binarised inputs for binary visible
/// units, standardised inputs for Gaussian ones — the same pairing the
/// in-memory paper pipelines use.
fn preprocessing_for(kind: ModelKind) -> Preprocessing {
    match kind.visible_kind() {
        VisibleKind::Binary => Preprocessing::BinarizeMedian,
        VisibleKind::Gaussian => Preprocessing::Standardize,
    }
}

/// Runs (or resumes) a streaming retrain described by `options`.
///
/// Steps: open the chunked reader → fit the preprocessor on the leading
/// sample → build consensus supervision on it (sls kinds) → load or create
/// the checkpoint → advance the stream trainer → persist the checkpoint →
/// export the artifact once complete.
///
/// # Errors
///
/// Propagates ingestion, supervision, training, and persistence errors; a
/// checkpoint that disagrees with the requested model kind or shapes is
/// rejected with [`RbmError::InvalidConfig`].
pub fn retrain(options: &RetrainOptions) -> sls_rbm_core::Result<RetrainOutcome> {
    options.train.validate()?;
    let source = ChunkedCsvReader::open(&options.data, &options.csv, options.chunk_size)?;
    let sample = leading_sample(&source, options.sample_rows)?;

    let preprocessor = FittedPreprocessor::fit(preprocessing_for(options.model_kind), &sample)?;
    let preprocessed_sample = preprocessor.transform_with(&sample, &options.parallel)?;

    let supervision: Option<LocalSupervision> = if options.model_kind.is_sls() {
        let mut rng = ChaCha8Rng::seed_from_u64(options.seed ^ SUPERVISION_TAG);
        let clusterers = base_clusterers(options.n_clusters, &options.parallel);
        Some(
            LocalSupervisionBuilder::new(options.n_clusters)
                .with_policy(options.voting)
                .with_parallel(options.parallel)
                .build_with_clusterers(&clusterers, &preprocessed_sample, &mut rng)?,
        )
    } else {
        None
    };

    let (mut checkpoint, resumed) = if options.checkpoint.exists() {
        let checkpoint = TrainCheckpoint::load(&options.checkpoint)?;
        if checkpoint.model_kind != options.model_kind
            || checkpoint.params.n_visible() != source.n_features()
            || checkpoint.params.n_hidden() != options.n_hidden
        {
            return Err(RbmError::InvalidConfig {
                name: "checkpoint",
                message: format!(
                    "existing checkpoint at {} holds a {} model of shape {}x{}, but this run \
                     requested a {} model of shape {}x{}; delete it to start fresh",
                    options.checkpoint.display(),
                    checkpoint.model_kind.as_str(),
                    checkpoint.params.n_visible(),
                    checkpoint.params.n_hidden(),
                    options.model_kind.as_str(),
                    source.n_features(),
                    options.n_hidden,
                ),
            });
        }
        (checkpoint, true)
    } else {
        let checkpoint = TrainCheckpoint::fresh(
            options.model_kind,
            source.n_features(),
            options.n_hidden,
            options.train,
            options.seed,
        )?
        .with_source(options.source.clone());
        (checkpoint, false)
    };

    let limit = options
        .stop_after_epochs
        .map(StreamLimit::Epochs)
        .unwrap_or(StreamLimit::ToCompletion);
    let history = StreamTrainer::new()
        .with_parallel(options.parallel)
        .advance(
            &mut checkpoint,
            &source,
            &preprocessor,
            supervision.as_ref().map(|s| (s, &options.sls)),
            limit,
        )?;
    checkpoint.save(&options.checkpoint)?;

    let artifact_path = if checkpoint.is_complete() {
        let mut artifact =
            PipelineArtifact::from_params(checkpoint.params.clone(), options.model_kind)
                .with_provenance(options.trained_at.clone(), options.source.clone());
        artifact.preprocessor = preprocessor;
        // The cluster head is fitted on the sample's hidden features — the
        // same rows the supervision saw — with its own seed-derived RNG so
        // the export is deterministic regardless of resume pattern.
        let features = artifact.features_with(&sample, &options.parallel)?;
        let mut head_rng = ChaCha8Rng::seed_from_u64(options.seed ^ HEAD_TAG);
        let (head, _labels) =
            ClusterHead::fit_kmeans(&features, options.n_clusters, &mut head_rng)?;
        artifact.cluster_head = Some(head);
        let path = options.out_dir.join(format!("{}.json", options.name));
        artifact.save(&path)?;
        Some(path)
    } else {
        None
    };

    Ok(RetrainOutcome {
        completed: checkpoint.is_complete(),
        resumed,
        epochs_done: checkpoint.epochs_done,
        epochs_total: checkpoint.train_config.epochs,
        history,
        supervision: supervision.as_ref().map(LocalSupervision::summary),
        artifact_path,
        checkpoint_path: options.checkpoint.clone(),
    })
}

/// Seed tags keeping the supervision and cluster-head RNG streams distinct
/// from each other and from the trainer's own derivations.
const SUPERVISION_TAG: u64 = 0x5355_5056; // "SUPV"
const HEAD_TAG: u64 = 0x4845_4144; // "HEAD"

/// Writes a synthetic Gaussian-blob dataset as a label-last CSV — the
/// data generator behind `sls-serve synth`, giving CI and demos a stream
/// source without shipping data files.
///
/// # Errors
///
/// Returns I/O errors.
pub fn write_synthetic_csv(
    path: impl AsRef<Path>,
    instances: usize,
    dims: usize,
    clusters: usize,
    separation: f64,
    seed: u64,
) -> std::io::Result<()> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let dataset = sls_datasets::SyntheticBlobs::new(instances, dims, clusters)
        .separation(separation)
        .generate(&mut rng);
    write_dataset_csv(path, &dataset)
}

/// Writes any [`Dataset`] as a label-last CSV.
///
/// # Errors
///
/// Returns I/O errors.
pub fn write_dataset_csv(path: impl AsRef<Path>, dataset: &Dataset) -> std::io::Result<()> {
    let path = path.as_ref();
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    let features: &Matrix = dataset.features();
    let mut text = String::new();
    for (row, &label) in features.row_iter().zip(dataset.labels()) {
        for value in row {
            text.push_str(&format!("{value},"));
        }
        text.push_str(&format!("{label}\n"));
    }
    std::fs::write(path, text)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("sls_serve_retrain_{tag}"));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn quick_options(dir: &Path, kind: ModelKind, epochs: usize) -> RetrainOptions {
        let data = dir.join("train.csv");
        write_synthetic_csv(&data, 60, 5, 3, 6.0, 7).unwrap();
        let mut options = RetrainOptions::new(data, dir.join("artifacts"));
        options.model_kind = kind;
        options.chunk_size = 16;
        options.sample_rows = 60;
        options.n_hidden = 6;
        options.train = options.train.with_epochs(epochs).with_batch_size(8);
        options.parallel = ParallelPolicy::serial();
        options.source = Some("unit test".to_string());
        options
    }

    #[test]
    fn straight_run_exports_a_servable_artifact() {
        let dir = temp_dir("straight");
        let options = quick_options(&dir, ModelKind::SlsGrbm, 3);
        let outcome = retrain(&options).unwrap();
        assert!(outcome.completed);
        assert!(!outcome.resumed);
        assert_eq!(outcome.epochs_done, 3);
        assert_eq!(outcome.history.epochs.len(), 3);
        let summary = outcome.supervision.expect("sls kind builds supervision");
        assert!(summary.coverage > 0.0);

        let artifact = PipelineArtifact::load(outcome.artifact_path.unwrap()).unwrap();
        assert_eq!(artifact.model_kind, ModelKind::SlsGrbm);
        assert_eq!(artifact.n_visible(), 5);
        assert_eq!(artifact.n_hidden(), 6);
        assert!(artifact.cluster_head.is_some());
        assert_eq!(artifact.source.as_deref(), Some("unit test"));
        // The artifact must answer an inference request on raw rows.
        let rows = Matrix::filled(2, 5, 0.3);
        let assignments = artifact.assign(&rows).unwrap();
        assert_eq!(assignments.len(), 2);
        // The export directory must stay loadable as a serving registry even
        // though the checkpoint file sits next to the artifact.
        let registry = crate::ModelRegistry::load_dir(&options.out_dir).unwrap();
        assert!(registry.get("retrained").is_ok());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn interrupted_retrain_resumes_to_identical_weights() {
        let dir = temp_dir("resume");
        let options = quick_options(&dir, ModelKind::SlsRbm, 4);
        let reference = retrain(&options).unwrap();
        assert!(reference.completed);
        let reference_artifact = PipelineArtifact::load(reference.artifact_path.unwrap()).unwrap();

        // Same run, interrupted after every epoch — separate checkpoint and
        // output name, same seed and data.
        let mut interrupted = options.clone();
        interrupted.checkpoint = dir.join("artifacts").join("interrupted-checkpoint.ckpt");
        interrupted.name = "interrupted".to_string();
        interrupted.stop_after_epochs = Some(1);
        let mut last = None;
        for invocation in 0..4 {
            let outcome = retrain(&interrupted).unwrap();
            assert_eq!(outcome.resumed, invocation > 0);
            assert_eq!(outcome.epochs_done, invocation + 1);
            last = Some(outcome);
        }
        let last = last.unwrap();
        assert!(last.completed);

        let resumed_artifact = PipelineArtifact::load(last.artifact_path.unwrap()).unwrap();
        assert_eq!(
            reference_artifact.params.weights.as_slice(),
            resumed_artifact.params.weights.as_slice(),
            "kill-and-resume must export bitwise identical weights"
        );
        assert_eq!(reference_artifact.params, resumed_artifact.params);
        assert_eq!(
            reference_artifact.cluster_head,
            resumed_artifact.cluster_head
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn baseline_kind_skips_supervision() {
        let dir = temp_dir("baseline");
        let options = quick_options(&dir, ModelKind::Grbm, 2);
        let outcome = retrain(&options).unwrap();
        assert!(outcome.completed);
        assert!(outcome.supervision.is_none());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn mismatched_checkpoint_is_rejected() {
        let dir = temp_dir("mismatch");
        let options = quick_options(&dir, ModelKind::Grbm, 2);
        retrain(&options).unwrap();
        let mut switched = options.clone();
        switched.model_kind = ModelKind::SlsGrbm;
        let err = retrain(&switched).unwrap_err();
        assert!(matches!(
            err,
            RbmError::InvalidConfig {
                name: "checkpoint",
                ..
            }
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn synthetic_csv_round_trips_through_the_chunked_reader() {
        let dir = temp_dir("synth");
        let path = dir.join("blobs.csv");
        write_synthetic_csv(&path, 25, 4, 2, 5.0, 3).unwrap();
        let reader = ChunkedCsvReader::open(&path, &CsvOptions::default(), 10).unwrap();
        assert_eq!(reader.n_instances(), 25);
        assert_eq!(reader.n_features(), 4);
        assert_eq!(reader.n_chunks(), 3);
        let full = sls_datasets::load_csv_dataset(&path, &CsvOptions::default()).unwrap();
        let sample = leading_sample(&reader, 25).unwrap();
        assert_eq!(sample.as_slice(), full.features().as_slice());
        std::fs::remove_dir_all(&dir).ok();
    }
}
