//! A small blocking HTTP client for the serving API — used by the
//! integration tests and the `loadgen` benchmark binary, and handy for
//! scripting against a running server.
//!
//! [`Client`] opens a fresh connection per request (the conservative
//! baseline); [`Connection`] (from [`Client::connect`]) keeps one socket
//! alive across requests, reconnecting transparently when the server closes
//! it (idle timeout, request cap, restart). Both are configured through one
//! [`ClientBuilder`] (`Client::builder().timeout(..).v1(..).build(addr)`),
//! and every typed endpoint helper is implemented exactly once, on
//! [`Connection`] — `Client` delegates through a single-shot connection.

use crate::api::{
    AssignResponse, BatchStatsResponse, DrainResponse, FeaturesResponse, HealthResponse,
    ModelsResponse, ReloadResponse, RowsRequest,
};
use crate::http::{read_response_meta, write_request_keep_alive, Response};
use crate::{Result, ServeError};
use serde::Deserialize;
use std::io::BufReader;
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// Configures a [`Client`] before binding it to an address.
#[derive(Debug, Clone, Copy)]
pub struct ClientBuilder {
    timeout: Duration,
    v1: bool,
}

impl Default for ClientBuilder {
    fn default() -> Self {
        Self {
            timeout: Duration::from_secs(30),
            v1: false,
        }
    }
}

impl ClientBuilder {
    /// Sets the connect/read/write timeout (default 30 seconds).
    #[must_use]
    pub fn timeout(mut self, timeout: Duration) -> Self {
        self.timeout = timeout;
        self
    }

    /// Speak the versioned `/v1` API instead of the legacy unversioned
    /// aliases. Responses are byte-identical either way; this only changes
    /// the request paths of the non-admin typed helpers (`/admin/*` is
    /// unversioned by design).
    #[must_use]
    pub fn v1(mut self, versioned: bool) -> Self {
        self.v1 = versioned;
        self
    }

    /// Binds the configuration to a server address.
    pub fn build(self, addr: SocketAddr) -> Client {
        Client {
            addr,
            timeout: self.timeout,
            prefix: if self.v1 { "/v1" } else { "" },
        }
    }
}

/// A client bound to one server address. Cheap to copy; every request opens
/// a fresh connection and asks the server to close it (`Connection: close`).
#[derive(Debug, Clone, Copy)]
pub struct Client {
    addr: SocketAddr,
    timeout: Duration,
    prefix: &'static str,
}

impl Client {
    /// Creates a client for `addr` with the default configuration (legacy
    /// paths, 30-second I/O timeout). Use [`Client::builder`] for more.
    pub fn new(addr: SocketAddr) -> Self {
        Self::builder().build(addr)
    }

    /// Starts a [`ClientBuilder`].
    pub fn builder() -> ClientBuilder {
        ClientBuilder::default()
    }

    /// Overrides the connect/read/write timeout.
    #[must_use]
    pub fn with_timeout(mut self, timeout: Duration) -> Self {
        self.timeout = timeout;
        self
    }

    /// The server address this client talks to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Opens a keep-alive [`Connection`] that reuses one socket across
    /// requests. The socket is dialed lazily on the first request.
    pub fn connect(&self) -> Connection {
        Connection {
            addr: self.addr,
            timeout: self.timeout,
            prefix: self.prefix,
            one_shot: false,
            stream: None,
            opened: 0,
            served_on_stream: 0,
        }
    }

    /// A connection that advertises `Connection: close` and drops its socket
    /// after each response — the transport behind every `Client` method.
    fn once(&self) -> Connection {
        Connection {
            one_shot: true,
            ..self.connect()
        }
    }

    /// Sends one request and reads the response, without interpreting the
    /// status code. The path is sent verbatim (no version prefixing).
    ///
    /// # Errors
    ///
    /// Returns connection and framing errors.
    pub fn request(&self, method: &str, path: &str, body: &str) -> Result<Response> {
        self.once().request(method, path, body)
    }

    /// Like [`Self::request`], but treats non-2xx statuses as
    /// [`ServeError::Status`].
    ///
    /// # Errors
    ///
    /// Everything [`Self::request`] returns, plus the status error.
    pub fn request_ok(&self, method: &str, path: &str, body: &str) -> Result<Response> {
        self.once().request_ok(method, path, body)
    }

    /// `GET /healthz`.
    ///
    /// # Errors
    ///
    /// Connection, framing, status and decoding errors.
    pub fn health(&self) -> Result<HealthResponse> {
        self.once().health()
    }

    /// `GET /models`.
    ///
    /// # Errors
    ///
    /// Connection, framing, status and decoding errors.
    pub fn models(&self) -> Result<ModelsResponse> {
        self.once().models()
    }

    /// `GET /admin/statz`.
    ///
    /// # Errors
    ///
    /// Connection, framing, status and decoding errors.
    pub fn statz(&self) -> Result<BatchStatsResponse> {
        self.once().statz()
    }

    /// `POST /admin/reload`. Both outcomes decode to a [`ReloadResponse`]:
    /// `200` swapped and `409` rejected (old generation kept serving) — a
    /// rejection is an answer, not a transport failure.
    ///
    /// # Errors
    ///
    /// Connection, framing and decoding errors, plus [`ServeError::Status`]
    /// for statuses other than 200/409.
    pub fn reload(&self) -> Result<ReloadResponse> {
        self.once().reload()
    }

    /// `POST /admin/drain`: flips the node into draining mode, so its
    /// `/healthz` fails while open connections keep being served.
    ///
    /// # Errors
    ///
    /// Connection, framing, status and decoding errors.
    pub fn drain(&self) -> Result<DrainResponse> {
        self.once().drain()
    }

    /// `POST /models/{model}/features` for a batch of raw rows.
    ///
    /// # Errors
    ///
    /// Connection, framing, status and decoding errors.
    pub fn features(&self, model: &str, rows: &[Vec<f64>]) -> Result<Vec<Vec<f64>>> {
        self.once().features(model, rows)
    }

    /// `POST /models/{model}/assign` for a batch of raw rows.
    ///
    /// # Errors
    ///
    /// Connection, framing, status and decoding errors.
    pub fn assign(&self, model: &str, rows: &[Vec<f64>]) -> Result<Vec<usize>> {
        self.once().assign(model, rows)
    }
}

/// Reader/writer halves of one live socket.
#[derive(Debug)]
struct Stream {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

/// A keep-alive connection: requests reuse one socket until the server
/// closes it, then the next request transparently dials a new one.
///
/// Not `Sync` — use one `Connection` per thread (see `loadgen`).
#[derive(Debug)]
pub struct Connection {
    addr: SocketAddr,
    timeout: Duration,
    prefix: &'static str,
    /// Advertise `Connection: close` and drop the socket after every
    /// response — how [`Client`] reuses this type for its per-request mode.
    one_shot: bool,
    stream: Option<Stream>,
    opened: usize,
    served_on_stream: usize,
}

impl Connection {
    /// The server address this connection talks to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// How many sockets this connection has dialed so far — `1` means every
    /// request rode the same socket.
    pub fn connections_opened(&self) -> usize {
        self.opened
    }

    /// The typed-helper path for `suffix`: `/v1`-prefixed when the client
    /// was built with [`ClientBuilder::v1`].
    fn api_path(&self, suffix: &str) -> String {
        format!("{}{suffix}", self.prefix)
    }

    fn dial(&mut self) -> Result<&mut Stream> {
        if self.stream.is_none() {
            let stream = TcpStream::connect_timeout(&self.addr, self.timeout)?;
            // Disable Nagle: request/response ping-pong on a reused socket
            // otherwise serializes behind delayed ACKs (~40ms per exchange).
            stream.set_nodelay(true)?;
            stream.set_read_timeout(Some(self.timeout))?;
            stream.set_write_timeout(Some(self.timeout))?;
            let writer = stream.try_clone()?;
            self.stream = Some(Stream {
                reader: BufReader::new(stream),
                writer,
            });
            self.opened += 1;
            self.served_on_stream = 0;
        }
        Ok(self.stream.as_mut().expect("stream was just installed"))
    }

    fn request_once(&mut self, method: &str, path: &str, body: &str) -> Result<Response> {
        let keep_alive = !self.one_shot;
        let stream = self.dial()?;
        write_request_keep_alive(&mut stream.writer, method, path, body, keep_alive)?;
        let (response, close) = read_response_meta(&mut stream.reader)?;
        self.served_on_stream += 1;
        if close || self.one_shot {
            // The server announced it will close this socket (request cap,
            // shutdown, error) or this connection is single-shot: drop our
            // half so the next request redials.
            self.stream = None;
        }
        Ok(response)
    }

    /// Sends one request over the kept-alive socket and reads the response,
    /// without interpreting the status code.
    ///
    /// If a *reused* socket fails (the server idle-closed it while we were
    /// away — a benign race inherent to keep-alive), the request is retried
    /// once on a fresh connection. A failure on a fresh socket is returned
    /// as-is: retrying there would mask real server trouble.
    ///
    /// # Errors
    ///
    /// Returns connection and framing errors.
    pub fn request(&mut self, method: &str, path: &str, body: &str) -> Result<Response> {
        let reused = self.stream.is_some() && self.served_on_stream > 0;
        match self.request_once(method, path, body) {
            Ok(response) => Ok(response),
            Err(_stale) if reused => {
                self.stream = None;
                self.request_once(method, path, body)
            }
            Err(e) => {
                self.stream = None;
                Err(e)
            }
        }
    }

    /// Like [`Self::request`], but treats non-2xx statuses as
    /// [`ServeError::Status`].
    ///
    /// # Errors
    ///
    /// Everything [`Self::request`] returns, plus the status error.
    pub fn request_ok(&mut self, method: &str, path: &str, body: &str) -> Result<Response> {
        let response = self.request(method, path, body)?;
        if response.is_success() {
            Ok(response)
        } else {
            Err(ServeError::Status {
                status: response.status,
                body: response.body,
            })
        }
    }

    fn get_json<T: Deserialize>(&mut self, path: &str) -> Result<T> {
        Ok(serde_json::from_str(
            &self.request_ok("GET", path, "")?.body,
        )?)
    }

    /// `GET /healthz`.
    ///
    /// # Errors
    ///
    /// Connection, framing, status and decoding errors.
    pub fn health(&mut self) -> Result<HealthResponse> {
        let path = self.api_path("/healthz");
        self.get_json(&path)
    }

    /// `GET /models`.
    ///
    /// # Errors
    ///
    /// Connection, framing, status and decoding errors.
    pub fn models(&mut self) -> Result<ModelsResponse> {
        let path = self.api_path("/models");
        self.get_json(&path)
    }

    /// `GET /admin/statz`.
    ///
    /// # Errors
    ///
    /// Connection, framing, status and decoding errors.
    pub fn statz(&mut self) -> Result<BatchStatsResponse> {
        self.get_json("/admin/statz")
    }

    /// `POST /admin/reload` — see [`Client::reload`].
    ///
    /// # Errors
    ///
    /// Connection, framing and decoding errors, plus [`ServeError::Status`]
    /// for statuses other than 200/409.
    pub fn reload(&mut self) -> Result<ReloadResponse> {
        let response = self.request("POST", "/admin/reload", "")?;
        if response.is_success() || response.status == 409 {
            Ok(serde_json::from_str(&response.body)?)
        } else {
            Err(ServeError::Status {
                status: response.status,
                body: response.body,
            })
        }
    }

    /// `POST /admin/drain` — see [`Client::drain`].
    ///
    /// # Errors
    ///
    /// Connection, framing, status and decoding errors.
    pub fn drain(&mut self) -> Result<DrainResponse> {
        let response = self.request_ok("POST", "/admin/drain", "")?;
        Ok(serde_json::from_str(&response.body)?)
    }

    /// `POST /models/{model}/features` over the kept-alive socket.
    ///
    /// # Errors
    ///
    /// Connection, framing, status and decoding errors.
    pub fn features(&mut self, model: &str, rows: &[Vec<f64>]) -> Result<Vec<Vec<f64>>> {
        Ok(self.features_response(model, rows)?.features)
    }

    /// [`Self::features`], returning the full response including the
    /// registry generation that served it.
    ///
    /// # Errors
    ///
    /// Connection, framing, status and decoding errors.
    pub fn features_response(
        &mut self,
        model: &str,
        rows: &[Vec<f64>],
    ) -> Result<FeaturesResponse> {
        let path = self.api_path(&format!("/models/{model}/features"));
        let response = self.post_rows(&path, rows)?;
        Ok(serde_json::from_str(&response)?)
    }

    /// `POST /models/{model}/assign` over the kept-alive socket.
    ///
    /// # Errors
    ///
    /// Connection, framing, status and decoding errors.
    pub fn assign(&mut self, model: &str, rows: &[Vec<f64>]) -> Result<Vec<usize>> {
        Ok(self.assign_response(model, rows)?.assignments)
    }

    /// [`Self::assign`], returning the full response including the registry
    /// generation that served it.
    ///
    /// # Errors
    ///
    /// Connection, framing, status and decoding errors.
    pub fn assign_response(&mut self, model: &str, rows: &[Vec<f64>]) -> Result<AssignResponse> {
        let path = self.api_path(&format!("/models/{model}/assign"));
        let response = self.post_rows(&path, rows)?;
        Ok(serde_json::from_str(&response)?)
    }

    fn post_rows(&mut self, path: &str, rows: &[Vec<f64>]) -> Result<String> {
        let body = serde_json::to_string(&RowsRequest {
            rows: rows.to_vec(),
        })?;
        Ok(self.request_ok("POST", path, &body)?.body)
    }
}
