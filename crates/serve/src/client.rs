//! A small blocking HTTP client for the serving API — used by the
//! integration tests and the `loadgen` benchmark binary, and handy for
//! scripting against a running server.

use crate::api::{AssignResponse, FeaturesResponse, HealthResponse, ModelsResponse, RowsRequest};
use crate::http::{read_response, write_request, Response};
use crate::{Result, ServeError};
use std::io::BufReader;
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// A client bound to one server address. Cheap to clone; every request opens
/// a fresh connection (the server speaks one request per connection).
#[derive(Debug, Clone, Copy)]
pub struct Client {
    addr: SocketAddr,
    timeout: Duration,
}

impl Client {
    /// Creates a client for `addr` with a 30-second I/O timeout.
    pub fn new(addr: SocketAddr) -> Self {
        Self {
            addr,
            timeout: Duration::from_secs(30),
        }
    }

    /// Overrides the connect/read/write timeout.
    pub fn with_timeout(mut self, timeout: Duration) -> Self {
        self.timeout = timeout;
        self
    }

    /// The server address this client talks to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Sends one request and reads the response, without interpreting the
    /// status code.
    ///
    /// # Errors
    ///
    /// Returns connection and framing errors.
    pub fn request(&self, method: &str, path: &str, body: &str) -> Result<Response> {
        let stream = TcpStream::connect_timeout(&self.addr, self.timeout)?;
        stream.set_read_timeout(Some(self.timeout))?;
        stream.set_write_timeout(Some(self.timeout))?;
        let mut writer = stream.try_clone()?;
        write_request(&mut writer, method, path, body)?;
        read_response(&mut BufReader::new(stream))
    }

    /// Like [`Self::request`], but treats non-2xx statuses as
    /// [`ServeError::Status`].
    ///
    /// # Errors
    ///
    /// Everything [`Self::request`] returns, plus the status error.
    pub fn request_ok(&self, method: &str, path: &str, body: &str) -> Result<Response> {
        let response = self.request(method, path, body)?;
        if response.is_success() {
            Ok(response)
        } else {
            Err(ServeError::Status {
                status: response.status,
                body: response.body,
            })
        }
    }

    fn post_rows(&self, path: &str, rows: &[Vec<f64>]) -> Result<String> {
        let body = serde_json::to_string(&RowsRequest {
            rows: rows.to_vec(),
        })?;
        Ok(self.request_ok("POST", path, &body)?.body)
    }

    /// `GET /healthz`.
    ///
    /// # Errors
    ///
    /// Connection, framing, status and decoding errors.
    pub fn health(&self) -> Result<HealthResponse> {
        Ok(serde_json::from_str(
            &self.request_ok("GET", "/healthz", "")?.body,
        )?)
    }

    /// `GET /models`.
    ///
    /// # Errors
    ///
    /// Connection, framing, status and decoding errors.
    pub fn models(&self) -> Result<ModelsResponse> {
        Ok(serde_json::from_str(
            &self.request_ok("GET", "/models", "")?.body,
        )?)
    }

    /// `POST /models/{model}/features` for a batch of raw rows.
    ///
    /// # Errors
    ///
    /// Connection, framing, status and decoding errors.
    pub fn features(&self, model: &str, rows: &[Vec<f64>]) -> Result<Vec<Vec<f64>>> {
        let body = self.post_rows(&format!("/models/{model}/features"), rows)?;
        let response: FeaturesResponse = serde_json::from_str(&body)?;
        Ok(response.features)
    }

    /// `POST /models/{model}/assign` for a batch of raw rows.
    ///
    /// # Errors
    ///
    /// Connection, framing, status and decoding errors.
    pub fn assign(&self, model: &str, rows: &[Vec<f64>]) -> Result<Vec<usize>> {
        let body = self.post_rows(&format!("/models/{model}/assign"), rows)?;
        let response: AssignResponse = serde_json::from_str(&body)?;
        Ok(response.assignments)
    }
}
