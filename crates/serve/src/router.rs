//! The shard router: one `/v1` endpoint in front of a static set of
//! replicated serving processes.
//!
//! ## Ownership
//!
//! Model names are consistent-hashed onto replicas with **rendezvous
//! (highest-random-weight) hashing**: every `(model, replica)` pair gets an
//! FNV-1a score, the replicas are ranked per model by score, and the top
//! `replication` non-drained replicas own the model. The ranking is a pure
//! function of the model name and the configured addresses, so every router
//! instance — and every test — computes the same owners, and removing a
//! replica only remaps the models it owned.
//!
//! ## Forwarding
//!
//! `POST /models/{name}/features` and `/assign` are forwarded verbatim
//! (path, body, response bytes — upstream error codes included) over pooled
//! keep-alive [`Connection`]s to the first healthy owner. Inference is a
//! pure read, so on transport failure the request is retried on the next
//! owner (bounded by the owner list) and the failing replica is marked
//! down; a background thread polls `/healthz` and marks replicas back up.
//!
//! ## Rollout
//!
//! `POST /admin/reload` fans out to every non-drained replica and reports
//! each replica's own [`ReloadResponse`]; it answers `200` only when all of
//! them swapped onto one shared generation. `GET /models` refuses to
//! advertise a model while its reachable owners disagree on the generation,
//! so a torn rollout is visible as a withdrawn model, never as mixed
//! answers. `POST /admin/drain` retires one replica: it stops owning
//! models, in-flight forwards finish (none are dropped), the node itself is
//! told to fail its health checks, and the last active replica refuses to
//! drain.

use crate::api::{
    code, DrainRequest, ModelInfo, ModelsResponse, ReplicaReloadResult, ReplicaStatz,
    RouterDrainResponse, RouterHealthResponse, RouterReloadResponse, RouterStatzResponse,
};
use crate::client::{Client, Connection};
use crate::http::Request;
use crate::server::{
    api_segments, error_body, json_body, shutdown_acceptors, spawn_acceptors, ConnCore,
    RequestHandler, ServeOptions, SHUTDOWN_POLL,
};
use crate::Result;
use std::collections::BTreeSet;
use std::net::{SocketAddr, TcpListener, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Idle upstream connections kept per replica; checkouts beyond the cap
/// dial fresh sockets and are dropped on check-in.
const POOL_CAP: usize = 16;

/// How long a drain waits for the replica's in-flight forwards to finish.
const DRAIN_WAIT: Duration = Duration::from_secs(5);

/// Configuration of a [`Router`].
#[derive(Debug, Clone)]
pub struct RouterConfig {
    /// The static replica set, in configuration order.
    pub replicas: Vec<SocketAddr>,
    /// Replicas each model is hashed onto (clamped to `1..=replicas.len()`).
    /// With `>= 2`, a dead replica is survivable: reads retry on the next
    /// owner.
    pub replication: usize,
    /// How often the background health thread polls each replica.
    pub health_interval: Duration,
    /// Connect/read/write timeout for upstream requests.
    pub upstream_timeout: Duration,
}

impl RouterConfig {
    /// Defaults: replication 2, 250 ms health polls, 10 s upstream timeout.
    pub fn new(replicas: Vec<SocketAddr>) -> Self {
        Self {
            replicas,
            replication: 2,
            health_interval: Duration::from_millis(250),
            upstream_timeout: Duration::from_secs(10),
        }
    }

    /// Overrides the replication factor.
    #[must_use]
    pub fn with_replication(mut self, replication: usize) -> Self {
        self.replication = replication;
        self
    }

    /// Overrides the health-poll interval.
    #[must_use]
    pub fn with_health_interval(mut self, interval: Duration) -> Self {
        self.health_interval = interval;
        self
    }

    /// Overrides the upstream I/O timeout.
    #[must_use]
    pub fn with_upstream_timeout(mut self, timeout: Duration) -> Self {
        self.upstream_timeout = timeout;
        self
    }
}

/// Ranks `replicas` for `model` by rendezvous hash, best owner first. Pure
/// and deterministic: every process computes the same ranking, and ties
/// (astronomically unlikely) break toward the lower index.
pub fn replica_rank(model: &str, replicas: &[SocketAddr]) -> Vec<usize> {
    let mut scored: Vec<(u64, usize)> = replicas
        .iter()
        .enumerate()
        .map(|(index, addr)| (rendezvous_score(model, &addr.to_string()), index))
        .collect();
    scored.sort_by(|a, b| b.0.cmp(&a.0).then_with(|| a.1.cmp(&b.1)));
    scored.into_iter().map(|(_, index)| index).collect()
}

/// FNV-1a over `model`, a `0xFF` separator (never part of UTF-8, so
/// `("ab", "c")` and `("a", "bc")` cannot collide), and the replica address.
fn rendezvous_score(model: &str, replica: &str) -> u64 {
    const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut hash = FNV_OFFSET;
    for byte in model
        .as_bytes()
        .iter()
        .chain(&[0xFFu8])
        .chain(replica.as_bytes())
    {
        hash = (hash ^ u64::from(*byte)).wrapping_mul(FNV_PRIME);
    }
    hash
}

/// Router-side state of one upstream replica.
#[derive(Debug)]
struct Replica {
    addr: SocketAddr,
    /// Flipped down on health-check or forward failure, back up on success.
    healthy: AtomicBool,
    /// Sticky: a drained replica owns nothing and is never polled again.
    drained: AtomicBool,
    /// Forwards currently running against this replica — what drain waits
    /// on.
    in_flight: AtomicUsize,
    forwards: AtomicU64,
    failures: AtomicU64,
    /// Idle keep-alive connections to this replica.
    pool: Mutex<Vec<Connection>>,
}

impl Replica {
    fn new(addr: SocketAddr) -> Self {
        Self {
            addr,
            healthy: AtomicBool::new(true),
            drained: AtomicBool::new(false),
            in_flight: AtomicUsize::new(0),
            forwards: AtomicU64::new(0),
            failures: AtomicU64::new(0),
            pool: Mutex::new(Vec::new()),
        }
    }

    /// A fresh per-request client for admin and aggregate calls (health,
    /// models, statz, reload) — rare enough that pooling would only make
    /// them compete with the forward path.
    fn client(&self, timeout: Duration) -> Client {
        Client::builder().timeout(timeout).build(self.addr)
    }

    fn checkout(&self, timeout: Duration) -> Connection {
        let pooled = self.pool.lock().expect("pool lock").pop();
        pooled.unwrap_or_else(|| self.client(timeout).connect())
    }

    fn checkin(&self, connection: Connection) {
        let mut pool = self.pool.lock().expect("pool lock");
        if pool.len() < POOL_CAP {
            pool.push(connection);
        }
    }
}

/// Decrements a replica's in-flight count on every exit path.
struct InFlight<'a>(&'a Replica);

impl<'a> InFlight<'a> {
    fn enter(replica: &'a Replica) -> Self {
        replica.in_flight.fetch_add(1, Ordering::SeqCst);
        Self(replica)
    }
}

impl Drop for InFlight<'_> {
    fn drop(&mut self) {
        self.0.in_flight.fetch_sub(1, Ordering::SeqCst);
    }
}

/// Shared state behind every router connection handler.
#[derive(Debug)]
pub(crate) struct RouterState {
    replicas: Vec<Replica>,
    addrs: Vec<SocketAddr>,
    replication: usize,
    timeout: Duration,
    forwards: AtomicU64,
    retried_requests: AtomicU64,
    unrouted: AtomicU64,
}

impl RouterState {
    fn new(config: &RouterConfig) -> Self {
        let replication = config.replication.clamp(1, config.replicas.len().max(1));
        Self {
            replicas: config.replicas.iter().copied().map(Replica::new).collect(),
            addrs: config.replicas.clone(),
            replication,
            timeout: config.upstream_timeout,
            forwards: AtomicU64::new(0),
            retried_requests: AtomicU64::new(0),
            unrouted: AtomicU64::new(0),
        }
    }

    /// The non-drained owners of `model`, best first. Draining re-maps
    /// ownership: the rank order is computed over the full configured set,
    /// then drained replicas drop out and the next-ranked replicas take
    /// their place.
    fn owners(&self, model: &str) -> Vec<usize> {
        replica_rank(model, &self.addrs)
            .into_iter()
            .filter(|&index| !self.replicas[index].drained.load(Ordering::SeqCst))
            .take(self.replication)
            .collect()
    }

    /// Forwards one inference request to the first owner that answers.
    /// Healthy owners are tried in rank order first, then marked-down
    /// owners as a last resort (a stale down-mark must degrade a request to
    /// a slow retry, not a guaranteed 503). Safe because `/features` and
    /// `/assign` are pure reads over an immutable generation.
    fn forward(&self, model: &str, request: &Request) -> (u16, String) {
        let owners = self.owners(model);
        if owners.is_empty() {
            self.unrouted.fetch_add(1, Ordering::SeqCst);
            return error_body(
                503,
                code::REPLICA_UNAVAILABLE,
                format!("no replica owns `{model}`: every replica is drained"),
            );
        }
        let (up, down): (Vec<usize>, Vec<usize>) = owners
            .iter()
            .partition(|&&index| self.replicas[index].healthy.load(Ordering::SeqCst));
        let mut last_error = String::new();
        for (attempt, &index) in up.iter().chain(down.iter()).enumerate() {
            let replica = &self.replicas[index];
            let _guard = InFlight::enter(replica);
            let mut connection = replica.checkout(self.timeout);
            let result = connection.request(&request.method, &request.path, &request.body);
            match result {
                Ok(response) => {
                    replica.checkin(connection);
                    replica.healthy.store(true, Ordering::SeqCst);
                    replica.forwards.fetch_add(1, Ordering::SeqCst);
                    self.forwards.fetch_add(1, Ordering::SeqCst);
                    if attempt > 0 {
                        self.retried_requests.fetch_add(1, Ordering::SeqCst);
                    }
                    return (response.status, response.body);
                }
                Err(e) => {
                    replica.healthy.store(false, Ordering::SeqCst);
                    replica.failures.fetch_add(1, Ordering::SeqCst);
                    last_error = e.to_string();
                }
            }
        }
        self.unrouted.fetch_add(1, Ordering::SeqCst);
        error_body(
            503,
            code::REPLICA_UNAVAILABLE,
            format!(
                "all {} owning replica(s) of `{model}` are unavailable (last error: {last_error})",
                owners.len()
            ),
        )
    }

    /// One `GET /models` snapshot per replica (`None` for drained or
    /// unreachable replicas).
    fn model_snapshots(&self) -> Vec<Option<ModelsResponse>> {
        self.replicas
            .iter()
            .map(|replica| {
                if replica.drained.load(Ordering::SeqCst) {
                    None
                } else {
                    replica.client(self.timeout).models().ok()
                }
            })
            .collect()
    }

    /// The models the router advertises: a model is listed iff at least one
    /// owner is reachable, every *reachable* owner carries it, and all of
    /// them report the same generation. A torn rollout therefore withdraws
    /// the model instead of serving mixed generations.
    fn advertised(&self, snapshots: &[Option<ModelsResponse>]) -> Vec<ModelInfo> {
        let names: BTreeSet<&str> = snapshots
            .iter()
            .flatten()
            .flat_map(|snap| snap.models.iter().map(|m| m.name.as_str()))
            .collect();
        let mut advertised = Vec::new();
        for name in names {
            let mut generations: Vec<u64> = Vec::new();
            let mut info: Option<&ModelInfo> = None;
            let mut torn = false;
            for &owner in &self.owners(name) {
                let Some(snap) = &snapshots[owner] else {
                    continue; // unreachable: cannot prove inconsistency
                };
                match snap.models.iter().find(|m| m.name == name) {
                    Some(model) => {
                        generations.push(snap.generation);
                        info.get_or_insert(model);
                    }
                    None => torn = true, // a reachable owner lacks the model
                }
            }
            let consistent =
                !generations.is_empty() && generations.iter().all(|&g| g == generations[0]);
            if !torn && consistent {
                if let Some(info) = info {
                    advertised.push(info.clone());
                }
            }
        }
        advertised
    }

    /// The generation shared by every reachable snapshot, if they agree.
    fn consistent_generation(snapshots: &[Option<ModelsResponse>]) -> Option<u64> {
        let mut generations = snapshots.iter().flatten().map(|snap| snap.generation);
        let first = generations.next()?;
        generations.all(|g| g == first).then_some(first)
    }

    /// Router `GET /healthz`: `200` while at least one replica is routable.
    fn health(&self) -> (u16, String) {
        let available = self
            .replicas
            .iter()
            .filter(|r| r.healthy.load(Ordering::SeqCst) && !r.drained.load(Ordering::SeqCst))
            .count();
        if available == 0 {
            return error_body(
                503,
                code::REPLICA_UNAVAILABLE,
                "no replica is healthy and undrained",
            );
        }
        let snapshots = self.model_snapshots();
        json_body(
            200,
            &RouterHealthResponse {
                status: "ok".to_string(),
                models: self.advertised(&snapshots).len(),
                replicas: self.replicas.len(),
                available,
            },
        )
    }

    /// Router `GET /models`: the aggregated, consistency-gated model list.
    /// `generation` is the shared replica generation, or `0` while replicas
    /// disagree (per-process generations start at 1, so `0` is unambiguous).
    fn models(&self) -> (u16, String) {
        let snapshots = self.model_snapshots();
        json_body(
            200,
            &ModelsResponse {
                generation: Self::consistent_generation(&snapshots).unwrap_or(0),
                models: self.advertised(&snapshots),
            },
        )
    }

    /// Router `GET /admin/statz` (and the `/statz` alias).
    fn statz(&self) -> (u16, String) {
        let replicas: Vec<ReplicaStatz> = self
            .replicas
            .iter()
            .map(|replica| {
                let drained = replica.drained.load(Ordering::SeqCst);
                let generation = if drained {
                    None
                } else {
                    replica
                        .client(self.timeout)
                        .statz()
                        .ok()
                        .map(|s| s.generation)
                };
                ReplicaStatz {
                    addr: replica.addr.to_string(),
                    healthy: replica.healthy.load(Ordering::SeqCst),
                    drained,
                    generation,
                    in_flight: replica.in_flight.load(Ordering::SeqCst),
                    forwards: replica.forwards.load(Ordering::SeqCst),
                    failures: replica.failures.load(Ordering::SeqCst),
                }
            })
            .collect();
        let generations: Vec<u64> = replicas.iter().filter_map(|r| r.generation).collect();
        let consistent = (!generations.is_empty()
            && generations.iter().all(|&g| g == generations[0]))
        .then(|| generations[0]);
        json_body(
            200,
            &RouterStatzResponse {
                replication: self.replication,
                consistent_generation: consistent,
                forwards: self.forwards.load(Ordering::SeqCst),
                retried_requests: self.retried_requests.load(Ordering::SeqCst),
                unrouted: self.unrouted.load(Ordering::SeqCst),
                replicas,
            },
        )
    }

    /// Router `POST /admin/reload`: fan out to every non-drained replica,
    /// `200` only when all of them swapped onto one shared generation.
    fn reload(&self) -> (u16, String) {
        let mut results = Vec::new();
        let mut generations: Vec<u64> = Vec::new();
        let mut unreachable = 0usize;
        let mut rejected = 0usize;
        for replica in &self.replicas {
            if replica.drained.load(Ordering::SeqCst) {
                continue;
            }
            match replica.client(self.timeout).reload() {
                Ok(response) => {
                    generations.push(response.generation);
                    if !response.swapped {
                        rejected += 1;
                    }
                    results.push(ReplicaReloadResult {
                        addr: replica.addr.to_string(),
                        reachable: true,
                        response: Some(response),
                        error: None,
                    });
                }
                Err(e) => {
                    unreachable += 1;
                    results.push(ReplicaReloadResult {
                        addr: replica.addr.to_string(),
                        reachable: false,
                        response: None,
                        error: Some(e.to_string()),
                    });
                }
            }
        }
        let consistent =
            !generations.is_empty() && generations.iter().all(|&g| g == generations[0]);
        let swapped = unreachable == 0 && rejected == 0 && consistent;
        let (status, label, error) = if swapped {
            (200, "swapped", None)
        } else if unreachable == 0 && rejected == results.len() && consistent {
            // Every replica rejected and kept the same old generation: the
            // rollout failed *atomically*, nothing diverged.
            (
                409,
                "rejected",
                Some("every replica rejected the reload and kept the old generation".to_string()),
            )
        } else {
            (
                409,
                "inconsistent",
                Some(format!(
                    "fan-out did not converge: {unreachable} unreachable, {rejected} rejected, \
                     generations {generations:?}"
                )),
            )
        };
        json_body(
            status,
            &RouterReloadResponse {
                status: label.to_string(),
                swapped,
                generation: consistent.then(|| generations[0]),
                replicas: results,
                error,
            },
        )
    }

    /// Router `POST /admin/drain`: retire one replica without dropping a
    /// response. The replica is removed from every owner set first (new
    /// requests stop arriving), then its in-flight forwards get a bounded
    /// window to finish, its pooled connections are dropped, and the node
    /// itself is told to fail health checks for any other traffic source.
    fn drain(&self, body: &str) -> (u16, String) {
        let request: DrainRequest = match serde_json::from_str(body) {
            Ok(request) => request,
            Err(e) => {
                return error_body(
                    400,
                    code::INVALID_BODY,
                    format!("drain needs {{\"replica\":\"host:port\"}}: {e}"),
                )
            }
        };
        let target = request.replica.trim();
        let parsed: Option<SocketAddr> = target.parse().ok();
        let Some(index) = self
            .replicas
            .iter()
            .position(|r| Some(r.addr) == parsed || r.addr.to_string() == target)
        else {
            return error_body(
                404,
                code::REPLICA_NOT_FOUND,
                format!("`{target}` is not in the replica set"),
            );
        };
        let replica = &self.replicas[index];
        let already_drained = replica.drained.load(Ordering::SeqCst);
        let others_active = self
            .replicas
            .iter()
            .enumerate()
            .any(|(i, r)| i != index && !r.drained.load(Ordering::SeqCst));
        if !already_drained && !others_active {
            return error_body(
                409,
                code::LAST_REPLICA,
                format!("refusing to drain `{target}`: it is the last active replica"),
            );
        }
        // Ownership flips first: from here on no new forward selects this
        // replica. A forward that picked it just before the flip still
        // completes — the wait below covers exactly that window.
        replica.drained.store(true, Ordering::SeqCst);
        let deadline = Instant::now() + DRAIN_WAIT;
        while replica.in_flight.load(Ordering::SeqCst) > 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(2));
        }
        let in_flight = replica.in_flight.load(Ordering::SeqCst);
        // Idle pooled sockets are dropped so the node's keep-alive count
        // reaches zero; the node keeps serving connections other clients
        // still hold.
        replica.pool.lock().expect("pool lock").clear();
        let node_drained = replica.client(self.timeout).drain().is_ok();
        json_body(
            200,
            &RouterDrainResponse {
                status: if in_flight == 0 {
                    "drained".to_string()
                } else {
                    "draining".to_string()
                },
                replica: replica.addr.to_string(),
                in_flight,
                node_drained,
            },
        )
    }

    /// One health pass over every non-drained replica.
    fn health_pass(&self) {
        for replica in &self.replicas {
            if replica.drained.load(Ordering::SeqCst) {
                continue;
            }
            let healthy = replica.client(self.timeout).health().is_ok();
            replica.healthy.store(healthy, Ordering::SeqCst);
        }
    }
}

impl RequestHandler for RouterState {
    fn handle(&self, request: &Request) -> (u16, String) {
        let path = request.path.split('?').next().unwrap_or("");
        let segments: Vec<&str> = path.split('/').filter(|s| !s.is_empty()).collect();
        let rest = match api_segments(&segments) {
            Ok(rest) => rest,
            Err(unsupported) => return unsupported,
        };
        match (request.method.as_str(), rest) {
            ("GET", ["healthz"]) => self.health(),
            ("GET", ["models"]) => self.models(),
            ("GET", ["statz"] | ["admin", "statz"]) => self.statz(),
            ("POST", ["admin", "reload"]) => self.reload(),
            ("POST", ["admin", "drain"]) => self.drain(&request.body),
            ("POST", ["models", name, "features" | "assign"]) => self.forward(name, request),
            (_, ["healthz" | "models" | "statz"] | ["admin", "reload" | "statz" | "drain"])
            | (_, ["models", _, "features" | "assign"]) => error_body(
                405,
                code::METHOD_NOT_ALLOWED,
                format!("method {} not allowed here", request.method),
            ),
            _ => error_body(404, code::NOT_FOUND, format!("no route for `{path}`")),
        }
    }
}

/// A bound (but not yet serving) shard router.
#[derive(Debug)]
pub struct Router {
    listener: TcpListener,
    config: RouterConfig,
    options: ServeOptions,
    workers: usize,
}

impl Router {
    /// Binds the router frontend to `addr` (port `0` for ephemeral) over a
    /// non-empty replica set.
    ///
    /// # Errors
    ///
    /// Returns bind I/O errors, and `BadRequest` when `config.replicas` is
    /// empty.
    pub fn bind(addr: impl ToSocketAddrs, config: RouterConfig) -> Result<Self> {
        if config.replicas.is_empty() {
            return Err(crate::ServeError::BadRequest {
                message: "a router needs at least one replica".to_string(),
            });
        }
        Ok(Self {
            listener: TcpListener::bind(addr)?,
            config,
            options: ServeOptions::from_env(),
            workers: 2,
        })
    }

    /// Overrides the acceptor thread count (clamped to at least 1).
    #[must_use]
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// Overrides the frontend connection-handling knobs (keep-alive, idle
    /// timeout, body/connection limits) — same contract as the server's.
    #[must_use]
    pub fn with_options(mut self, options: ServeOptions) -> Self {
        self.options = ServeOptions {
            max_requests_per_connection: options.max_requests_per_connection.max(1),
            ..options
        };
        self
    }

    /// The address the frontend listener is bound to.
    ///
    /// # Errors
    ///
    /// Propagates the OS error if the local address cannot be read.
    pub fn local_addr(&self) -> Result<SocketAddr> {
        Ok(self.listener.local_addr()?)
    }

    /// Runs one synchronous health pass (so the first request routes on
    /// real data), spawns the acceptors and the health thread, and returns
    /// the handle.
    ///
    /// # Errors
    ///
    /// Returns I/O errors from thread spawning.
    pub fn start(self) -> Result<RouterHandle> {
        let addr = self.listener.local_addr()?;
        let listener = Arc::new(self.listener);
        let core = Arc::new(ConnCore::new(self.options));
        let state = Arc::new(RouterState::new(&self.config));
        state.health_pass();
        let acceptors = spawn_acceptors(&listener, &core, &state, self.workers)?;
        let health = {
            let state = Arc::clone(&state);
            let core = Arc::clone(&core);
            let interval = self.config.health_interval;
            std::thread::Builder::new()
                .name("sls-route-health".to_string())
                .spawn(move || health_loop(&state, &core, interval))?
        };
        Ok(RouterHandle {
            addr,
            core,
            acceptors,
            health,
        })
    }
}

/// Background mark-down/mark-up thread: polls every non-drained replica's
/// `/healthz` each `interval`, in shutdown-aware steps.
fn health_loop(state: &RouterState, core: &ConnCore, interval: Duration) {
    loop {
        let deadline = Instant::now() + interval;
        while Instant::now() < deadline {
            if core.shutdown.load(Ordering::SeqCst) {
                return;
            }
            std::thread::sleep(
                SHUTDOWN_POLL.min(deadline.saturating_duration_since(Instant::now())),
            );
        }
        state.health_pass();
    }
}

/// A running shard router.
#[derive(Debug)]
pub struct RouterHandle {
    addr: SocketAddr,
    core: Arc<ConnCore>,
    acceptors: Vec<JoinHandle<()>>,
    health: JoinHandle<()>,
}

impl RouterHandle {
    /// The address the router accepts connections on.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Blocks until every acceptor exits — what the `sls-serve route`
    /// binary wants.
    pub fn join(self) {
        for acceptor in self.acceptors {
            let _ = acceptor.join();
        }
        let _ = self.health.join();
    }

    /// Stops the router: shutdown flag, health thread, acceptor nudges,
    /// bounded connection drain (same discipline as [`crate::ServerHandle`]).
    pub fn shutdown(self) {
        self.core.shutdown.store(true, Ordering::SeqCst);
        let _ = self.health.join();
        shutdown_acceptors(self.addr, &self.core, self.acceptors);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addrs(n: usize) -> Vec<SocketAddr> {
        (0..n)
            .map(|i| format!("10.0.0.{}:7890", i + 1).parse().unwrap())
            .collect()
    }

    #[test]
    fn rank_is_deterministic_and_a_permutation() {
        let replicas = addrs(5);
        for model in ["alpha", "beta", "gamma", "delta", ""] {
            let first = replica_rank(model, &replicas);
            let second = replica_rank(model, &replicas);
            assert_eq!(first, second, "model {model}");
            let mut sorted = first.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, (0..5).collect::<Vec<_>>(), "model {model}");
        }
    }

    #[test]
    fn rank_spreads_models_across_replicas() {
        let replicas = addrs(4);
        let mut owner_counts = [0usize; 4];
        for i in 0..200 {
            let model = format!("model-{i}");
            owner_counts[replica_rank(&model, &replicas)[0]] += 1;
        }
        // Rendezvous hashing over 200 names must not starve any replica.
        for (index, &count) in owner_counts.iter().enumerate() {
            assert!(
                count > 20,
                "replica {index} owns only {count}/200 models: {owner_counts:?}"
            );
        }
    }

    #[test]
    fn removing_a_replica_only_remaps_its_own_models() {
        // The consistent-hashing property rendezvous buys us: models whose
        // top owner survives keep that owner when another replica leaves.
        let full = addrs(4);
        let reduced: Vec<SocketAddr> = full[..3].to_vec();
        for i in 0..100 {
            let model = format!("model-{i}");
            let owner_full = replica_rank(&model, &full)[0];
            let owner_reduced = replica_rank(&model, &reduced)[0];
            if owner_full < 3 {
                assert_eq!(
                    owner_full, owner_reduced,
                    "model {model} moved although its owner survived"
                );
            }
        }
    }

    #[test]
    fn owners_skip_drained_replicas() {
        let config = RouterConfig::new(addrs(3)).with_replication(2);
        let state = RouterState::new(&config);
        let before = state.owners("demo");
        assert_eq!(before.len(), 2);
        state.replicas[before[0]]
            .drained
            .store(true, Ordering::SeqCst);
        let after = state.owners("demo");
        assert_eq!(after.len(), 2);
        assert!(!after.contains(&before[0]), "drained replica still owns");
        // The surviving owner keeps its slot; the next-ranked replica
        // backfills.
        assert!(after.contains(&before[1]));
    }

    #[test]
    fn replication_is_clamped_to_the_replica_count() {
        let config = RouterConfig::new(addrs(2)).with_replication(10);
        let state = RouterState::new(&config);
        assert_eq!(state.owners("demo").len(), 2);
        let config = RouterConfig::new(addrs(2)).with_replication(0);
        let state = RouterState::new(&config);
        assert_eq!(state.owners("demo").len(), 1);
    }
}
