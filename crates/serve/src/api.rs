//! JSON request/response bodies of the serving API, shared by the server,
//! the client and the load generator.

use crate::ServingModel;
use serde::{Deserialize, Serialize};
use sls_linalg::Matrix;

/// Body of `POST /models/{name}/features` and `POST /models/{name}/assign`:
/// a batch of raw feature rows.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RowsRequest {
    /// Raw feature rows, one inner vector per instance. All rows must have
    /// the model's visible width.
    pub rows: Vec<Vec<f64>>,
}

impl RowsRequest {
    /// Converts the rows into a [`Matrix`] so the whole batch runs through
    /// one matrix multiply.
    ///
    /// # Errors
    ///
    /// Returns a message if the batch is empty or ragged.
    pub fn to_matrix(&self) -> std::result::Result<Matrix, String> {
        if self.rows.is_empty() {
            return Err("`rows` must contain at least one row".to_string());
        }
        Matrix::from_rows(&self.rows).map_err(|e| e.to_string())
    }
}

/// Body of a successful `POST /models/{name}/features` response.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FeaturesResponse {
    /// The model that served the request.
    pub model: String,
    /// Registry generation that served the request. A request resolves its
    /// generation once; a concurrent hot swap never mixes generations within
    /// one response.
    pub generation: u64,
    /// Hidden-feature rows, aligned with the request rows.
    pub features: Vec<Vec<f64>>,
}

/// Body of a successful `POST /models/{name}/assign` response.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AssignResponse {
    /// The model that served the request.
    pub model: String,
    /// Registry generation that served the request.
    pub generation: u64,
    /// Cluster label per request row.
    pub assignments: Vec<usize>,
}

/// Body of `GET /healthz`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HealthResponse {
    /// Always `"ok"` when the server answers at all.
    pub status: String,
    /// Number of loaded models.
    pub models: usize,
}

/// One entry of `GET /models`: everything a client needs to shape requests.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelInfo {
    /// Registry name (the `{name}` path segment).
    pub name: String,
    /// Model kind, as produced by `ModelKind::as_str`.
    pub kind: String,
    /// Artifact schema version.
    pub schema_version: u32,
    /// Expected raw-row width.
    pub n_visible: usize,
    /// Produced feature width.
    pub n_hidden: usize,
    /// Cluster count of the fitted head (`null` if the artifact has none,
    /// in which case `/assign` is unavailable for the model).
    pub n_clusters: Option<usize>,
    /// `true` when the model serves through the f32-quantized compact
    /// representation.
    pub compact: bool,
    /// Bytes held by the model parameters in the loaded representation.
    pub param_bytes: usize,
    /// Training timestamp recorded at export time (`null` for artifacts
    /// exported before provenance existed).
    pub trained_at: Option<String>,
    /// Provenance string recorded at export time (`null` when absent).
    pub source: Option<String>,
}

impl ModelInfo {
    /// Builds the info entry for a registered model.
    pub fn describe(name: &str, model: &ServingModel) -> Self {
        Self {
            name: name.to_string(),
            kind: model.model_kind().to_string(),
            schema_version: model.schema_version(),
            n_visible: model.n_visible(),
            n_hidden: model.n_hidden(),
            n_clusters: model.n_clusters(),
            compact: model.is_compact(),
            param_bytes: model.param_bytes(),
            trained_at: model.trained_at().map(str::to_string),
            source: model.source().map(str::to_string),
        }
    }
}

/// Body of `GET /models`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelsResponse {
    /// Registry generation these entries were read from.
    pub generation: u64,
    /// Loaded models in name order.
    pub models: Vec<ModelInfo>,
}

/// Stable machine-readable error codes carried in every
/// [`ErrorResponse::code`]. Clients branch on these; the `error` string is
/// for humans and may change wording between releases, the codes may not.
pub mod code {
    /// No route matches the request path.
    pub const NOT_FOUND: &str = "not_found";
    /// The path starts with a `/v{n}` prefix this server does not speak.
    pub const UNSUPPORTED_API_VERSION: &str = "unsupported_api_version";
    /// The path exists but not under this method.
    pub const METHOD_NOT_ALLOWED: &str = "method_not_allowed";
    /// The `{name}` path segment names no loaded model.
    pub const MODEL_NOT_FOUND: &str = "model_not_found";
    /// The request body is not valid JSON of the expected shape.
    pub const INVALID_BODY: &str = "invalid_body";
    /// The rows are empty, ragged, or not the model's visible width.
    pub const BAD_ROW_WIDTH: &str = "bad_row_width";
    /// `/assign` on a model whose artifact carries no cluster head.
    pub const NO_CLUSTER_HEAD: &str = "no_cluster_head";
    /// The model rejected a well-shaped batch at compute time.
    pub const INFERENCE_FAILED: &str = "inference_failed";
    /// The declared body exceeds the configured limit (413).
    pub const BODY_TOO_LARGE: &str = "body_too_large";
    /// The request could not be framed; the connection closes (400).
    pub const MALFORMED_REQUEST: &str = "malformed_request";
    /// The server is at its connection cap and shed this one (503).
    pub const OVER_CAPACITY: &str = "over_capacity";
    /// This node is draining: health checks fail while open connections
    /// finish (503).
    pub const DRAINING: &str = "draining";
    /// Drain was requested on a server without drain support (routing over
    /// a bare registry).
    pub const DRAIN_UNAVAILABLE: &str = "drain_unavailable";
    /// The router found no live replica to forward to (503).
    pub const REPLICA_UNAVAILABLE: &str = "replica_unavailable";
    /// A drain request named an address outside the replica set (404).
    pub const REPLICA_NOT_FOUND: &str = "replica_not_found";
    /// A drain request targeted the only replica still taking traffic (409).
    pub const LAST_REPLICA: &str = "last_replica";
    /// The server failed internally (500).
    pub const INTERNAL: &str = "internal";
}

/// Body of every non-2xx response.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ErrorResponse {
    /// Human-readable explanation of the failure.
    pub error: String,
    /// Stable machine-readable failure class, one of the [`code`] constants.
    /// Defaults to empty when decoding bodies from servers predating the
    /// field.
    pub code: String,
}

// Hand-written so `code` is optional on decode: bodies from servers
// predating the field still parse (the vendored serde facade has no
// `#[serde(default)]`).
impl Deserialize for ErrorResponse {
    fn from_value(value: &serde::Value) -> std::result::Result<Self, serde::DeError> {
        let entries = value
            .as_object()
            .ok_or_else(|| serde::DeError::mismatch("object", value))?;
        let error = String::from_value(serde::field(entries, "error")?)?;
        let code = entries
            .iter()
            .find(|(key, _)| key == "code")
            .map(|(_, v)| String::from_value(v))
            .transpose()?
            .unwrap_or_default();
        Ok(Self { error, code })
    }
}

/// Body of `GET /statz`: the cross-request micro-batching configuration and
/// lifetime counters of the serving process.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BatchStatsResponse {
    /// Configured collection window in microseconds (`0` = coalescing off).
    pub window_us: u64,
    /// Row cap per fused batch.
    pub max_batch_rows: usize,
    /// Fused batches launched through the coalescing window.
    pub batches: u64,
    /// Requests that went through those batches.
    pub batched_requests: u64,
    /// Total rows fused through those batches.
    pub batched_rows: u64,
    /// Most requests ever fused into one batch.
    pub largest_batch: u64,
    /// Most rows ever fused into one batch.
    pub largest_batch_rows: u64,
    /// Current registry generation (starts at 1, bumps on every swap).
    pub generation: u64,
    /// Successful hot swaps since the process started.
    pub registry_swaps: u64,
    /// Reload attempts that were rejected without swapping.
    pub failed_reloads: u64,
}

impl BatchStatsResponse {
    /// Builds the response for an optional batcher (`None` reports the
    /// all-zero disabled shape).
    pub fn describe(batcher: Option<&crate::batch::Batcher>) -> Self {
        let Some(batcher) = batcher else {
            return Self {
                window_us: 0,
                max_batch_rows: 0,
                batches: 0,
                batched_requests: 0,
                batched_rows: 0,
                largest_batch: 0,
                largest_batch_rows: 0,
                generation: 1,
                registry_swaps: 0,
                failed_reloads: 0,
            };
        };
        let config = batcher.config();
        let stats = batcher.stats();
        Self {
            window_us: u64::try_from(config.window.as_micros()).unwrap_or(u64::MAX),
            max_batch_rows: config.max_rows,
            batches: stats.batches,
            batched_requests: stats.batched_requests,
            batched_rows: stats.batched_rows,
            largest_batch: stats.largest_batch,
            largest_batch_rows: stats.largest_batch_rows,
            generation: 1,
            registry_swaps: 0,
            failed_reloads: 0,
        }
    }

    /// Fills in the live-registry counters (the plain `describe` defaults to
    /// generation 1 with zero swaps, matching a server without hot reload).
    #[must_use]
    pub fn with_registry(mut self, generation: u64, swaps: u64, failed_reloads: u64) -> Self {
        self.generation = generation;
        self.registry_swaps = swaps;
        self.failed_reloads = failed_reloads;
        self
    }
}

/// Per-artifact outcome inside a `POST /admin/reload` response.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelLoadResult {
    /// Model name derived from the artifact file stem.
    pub name: String,
    /// `true` when the artifact parsed and validated.
    pub loaded: bool,
    /// Failure detail when `loaded` is `false` (`null` otherwise).
    pub message: Option<String>,
}

/// Body of `POST /admin/reload` (both the 200 swapped and 409 rejected
/// shapes).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReloadResponse {
    /// `"swapped"` on success, `"rejected"` when the old generation was kept.
    pub status: String,
    /// `true` iff a new generation is now serving.
    pub swapped: bool,
    /// The generation serving after this request (new on success, unchanged
    /// on rejection).
    pub generation: u64,
    /// Per-artifact load results for the scanned directory.
    pub models: Vec<ModelLoadResult>,
    /// Overall failure explanation when rejected (`null` on success).
    pub error: Option<String>,
}

/// Body of `POST /admin/drain` on a serving node: the node keeps answering
/// requests on open connections but fails `/healthz` with 503 so routers
/// and load balancers stop sending it new traffic.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DrainResponse {
    /// Always `"draining"` once the flag is set (drain is idempotent).
    pub status: String,
    /// `true` — the node now fails health checks.
    pub draining: bool,
}

/// Body of `POST /admin/drain` on the **router**: names the replica to
/// retire.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DrainRequest {
    /// Replica address exactly as configured (`host:port`).
    pub replica: String,
}

/// Body of a successful router `POST /admin/drain`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RouterDrainResponse {
    /// `"drained"` once in-flight forwards hit zero, `"draining"` if some
    /// were still running when the bounded wait expired.
    pub status: String,
    /// The replica that was drained.
    pub replica: String,
    /// Forwards still in flight on the replica when the response was built.
    pub in_flight: usize,
    /// `true` when the replica itself acknowledged the forwarded drain (its
    /// own `/healthz` now fails); `false` when it was unreachable.
    pub node_drained: bool,
}

/// Body of router `GET /healthz`: replica availability in one glance.
/// Decodes as a [`HealthResponse`] too (extra fields are ignored), so
/// clients need not care whether they talk to a node or a router.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RouterHealthResponse {
    /// `"ok"` while at least one replica is routable.
    pub status: String,
    /// Models currently advertised (consistent across their owners).
    pub models: usize,
    /// Configured replica count, drained included.
    pub replicas: usize,
    /// Replicas that are healthy and not drained.
    pub available: usize,
}

/// One replica's row inside router `GET /admin/statz`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReplicaStatz {
    /// Replica address.
    pub addr: String,
    /// Last health-check / forward outcome.
    pub healthy: bool,
    /// `true` once drained; a drained replica owns nothing.
    pub drained: bool,
    /// Registry generation the replica reported, `null` when drained or
    /// unreachable.
    pub generation: Option<u64>,
    /// Forwards currently running against this replica.
    pub in_flight: usize,
    /// Requests forwarded to this replica over the router's lifetime.
    pub forwards: u64,
    /// Transport failures observed against this replica.
    pub failures: u64,
}

/// Body of router `GET /admin/statz` (and its `/statz` alias).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RouterStatzResponse {
    /// Replicas each model name is hashed onto.
    pub replication: usize,
    /// Generation shared by every reachable non-drained replica, `null`
    /// while replicas disagree or none are reachable.
    pub consistent_generation: Option<u64>,
    /// Requests forwarded through the router.
    pub forwards: u64,
    /// Requests that succeeded only after retrying on another owner.
    pub retried_requests: u64,
    /// Requests answered 503 because no owner was reachable.
    pub unrouted: u64,
    /// Per-replica detail, in configuration order.
    pub replicas: Vec<ReplicaStatz>,
}

/// One replica's outcome inside a router fan-out reload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReplicaReloadResult {
    /// Replica address.
    pub addr: String,
    /// `false` when the replica could not be reached at all.
    pub reachable: bool,
    /// The replica's own [`ReloadResponse`] when reachable.
    pub response: Option<ReloadResponse>,
    /// Transport failure detail when unreachable.
    pub error: Option<String>,
}

/// Body of router `POST /admin/reload`: the fan-out result. `200` only when
/// **every** non-drained replica swapped onto the same generation; anything
/// else is `409` with per-replica detail, and models whose owners disagree
/// stop being advertised until generations re-align.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RouterReloadResponse {
    /// `"swapped"`, `"rejected"` (every replica kept its old generation,
    /// consistently), or `"inconsistent"` (outcomes diverged).
    pub status: String,
    /// `true` iff every replica swapped onto one shared generation.
    pub swapped: bool,
    /// The common generation when replicas agree, `null` otherwise.
    pub generation: Option<u64>,
    /// Per-replica outcomes, in configuration order (drained replicas are
    /// skipped — they are no longer part of the serving set).
    pub replicas: Vec<ReplicaReloadResult>,
    /// Failure summary when not swapped (`null` on success).
    pub error: Option<String>,
}

/// Converts a matrix to the row-of-rows JSON shape.
pub fn matrix_to_rows(matrix: &Matrix) -> Vec<Vec<f64>> {
    matrix.row_iter().map(<[f64]>::to_vec).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use sls_rbm_core::{ModelKind, PipelineArtifact, RbmParams};

    #[test]
    fn rows_request_validates_shape() {
        let ok = RowsRequest {
            rows: vec![vec![1.0, 2.0], vec![3.0, 4.0]],
        };
        assert_eq!(ok.to_matrix().unwrap().shape(), (2, 2));
        let empty = RowsRequest { rows: vec![] };
        assert!(empty.to_matrix().is_err());
        let ragged = RowsRequest {
            rows: vec![vec![1.0], vec![1.0, 2.0]],
        };
        assert!(ragged.to_matrix().is_err());
    }

    #[test]
    fn rows_request_json_round_trip() {
        let req = RowsRequest {
            rows: vec![vec![0.5, -1.25]],
        };
        let json = serde_json::to_string(&req).unwrap();
        let back: RowsRequest = serde_json::from_str(&json).unwrap();
        assert_eq!(back, req);
    }

    #[test]
    fn model_info_describes_artifact() {
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let artifact =
            PipelineArtifact::from_params(RbmParams::init(6, 3, &mut rng), ModelKind::SlsGrbm)
                .with_provenance(
                    Some("2026-08-01T00:00:00Z".into()),
                    Some("unit test".into()),
                );
        let full = ServingModel::from_artifact(artifact.clone(), false);
        let info = ModelInfo::describe("demo", &full);
        assert_eq!(info.name, "demo");
        assert_eq!(info.kind, "sls-grbm");
        assert_eq!(info.n_visible, 6);
        assert_eq!(info.n_hidden, 3);
        assert_eq!(info.n_clusters, None);
        assert!(!info.compact);
        assert_eq!(info.param_bytes, (6 * 3 + 6 + 3) * 8);
        assert_eq!(info.trained_at.as_deref(), Some("2026-08-01T00:00:00Z"));
        assert_eq!(info.source.as_deref(), Some("unit test"));
        let compact = ModelInfo::describe("demo", &ServingModel::from_artifact(artifact, true));
        assert!(compact.compact);
        assert_eq!(compact.param_bytes, (6 * 3 + 3) * 4);
        let json = serde_json::to_string(&compact).unwrap();
        let back: ModelInfo = serde_json::from_str(&json).unwrap();
        assert_eq!(back, compact);
    }

    #[test]
    fn reload_response_round_trips() {
        let resp = ReloadResponse {
            status: "rejected".into(),
            swapped: false,
            generation: 3,
            models: vec![
                ModelLoadResult {
                    name: "good".into(),
                    loaded: true,
                    message: None,
                },
                ModelLoadResult {
                    name: "bad".into(),
                    loaded: false,
                    message: Some("serialisation error: bad token".into()),
                },
            ],
            error: Some("1 artifact failed to load".into()),
        };
        let json = serde_json::to_string(&resp).unwrap();
        let back: ReloadResponse = serde_json::from_str(&json).unwrap();
        assert_eq!(back, resp);
    }

    #[test]
    fn batch_stats_describe_none_is_all_zero() {
        let stats = BatchStatsResponse::describe(None);
        assert_eq!(stats.window_us, 0);
        assert_eq!(stats.max_batch_rows, 0);
        assert_eq!(stats.batches, 0);
        let json = serde_json::to_string(&stats).unwrap();
        let back: BatchStatsResponse = serde_json::from_str(&json).unwrap();
        assert_eq!(back, stats);
    }

    #[test]
    fn batch_stats_describe_echoes_config() {
        let batcher = crate::batch::Batcher::new(crate::batch::BatchConfig {
            window: std::time::Duration::from_micros(300),
            max_rows: 128,
        });
        let stats = BatchStatsResponse::describe(Some(&batcher));
        assert_eq!(stats.window_us, 300);
        assert_eq!(stats.max_batch_rows, 128);
        assert_eq!(stats.batched_requests, 0);
        assert_eq!(stats.generation, 1);
        let live = stats.with_registry(4, 3, 1);
        assert_eq!(live.generation, 4);
        assert_eq!(live.registry_swaps, 3);
        assert_eq!(live.failed_reloads, 1);
    }

    #[test]
    fn error_response_decodes_with_and_without_code() {
        let modern: ErrorResponse =
            serde_json::from_str("{\"error\":\"no model\",\"code\":\"model_not_found\"}").unwrap();
        assert_eq!(modern.code, code::MODEL_NOT_FOUND);
        // Bodies from servers predating the `code` field still decode.
        let legacy: ErrorResponse = serde_json::from_str("{\"error\":\"no model\"}").unwrap();
        assert_eq!(legacy.code, "");
        assert_eq!(legacy.error, "no model");
    }

    #[test]
    fn router_bodies_round_trip() {
        let statz = RouterStatzResponse {
            replication: 2,
            consistent_generation: Some(3),
            forwards: 10,
            retried_requests: 1,
            unrouted: 0,
            replicas: vec![ReplicaStatz {
                addr: "127.0.0.1:7891".into(),
                healthy: true,
                drained: false,
                generation: Some(3),
                in_flight: 0,
                forwards: 10,
                failures: 0,
            }],
        };
        let back: RouterStatzResponse =
            serde_json::from_str(&serde_json::to_string(&statz).unwrap()).unwrap();
        assert_eq!(back, statz);

        let reload = RouterReloadResponse {
            status: "inconsistent".into(),
            swapped: false,
            generation: None,
            replicas: vec![ReplicaReloadResult {
                addr: "127.0.0.1:7891".into(),
                reachable: false,
                response: None,
                error: Some("connection refused".into()),
            }],
            error: Some("1 replica unreachable".into()),
        };
        let back: RouterReloadResponse =
            serde_json::from_str(&serde_json::to_string(&reload).unwrap()).unwrap();
        assert_eq!(back, reload);
    }

    #[test]
    fn router_health_decodes_as_plain_health() {
        // A client pointed at the router through the plain typed helper must
        // keep working: serde ignores the extra replica fields.
        let body = serde_json::to_string(&RouterHealthResponse {
            status: "ok".into(),
            models: 2,
            replicas: 3,
            available: 2,
        })
        .unwrap();
        let plain: HealthResponse = serde_json::from_str(&body).unwrap();
        assert_eq!(plain.status, "ok");
        assert_eq!(plain.models, 2);
    }

    #[test]
    fn matrix_round_trips_through_rows() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        let rows = matrix_to_rows(&m);
        assert_eq!(rows, vec![vec![1.0, 2.0], vec![3.0, 4.0]]);
        assert_eq!(Matrix::from_rows(&rows).unwrap(), m);
    }
}
