//! The HTTP JSON inference server: a `TcpListener` drained by a fixed pool
//! of worker threads sharing an immutable [`ModelRegistry`].
//!
//! ## Endpoints
//!
//! | Method | Path | Body | Success response |
//! |--------|------|------|------------------|
//! | `GET` | `/healthz` | — | `{"status":"ok","models":N}` |
//! | `GET` | `/models` | — | `{"models":[{name, kind, ...}]}` |
//! | `POST` | `/models/{name}/features` | `{"rows":[[f64,...],...]}` | `{"model":name,"features":[[f64,...],...]}` |
//! | `POST` | `/models/{name}/assign` | `{"rows":[[f64,...],...]}` | `{"model":name,"assignments":[usize,...]}` |
//!
//! Unknown paths and model names answer `404`, malformed bodies and shape
//! mismatches `400`, wrong methods on known paths `405`; every error body is
//! `{"error": "..."}`. Rows within one request are micro-batched: the whole
//! batch runs through a single matrix multiply.

use crate::api::{
    AssignResponse, ErrorResponse, FeaturesResponse, HealthResponse, ModelInfo, ModelsResponse,
    RowsRequest,
};
use crate::http::{read_request, write_response, Request};
use crate::registry::ModelRegistry;
use crate::Result;
use serde::Serialize;
use sls_linalg::{ParallelPolicy, WorkerPool};
use sls_rbm_core::PipelineArtifact;
use std::io::BufReader;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Per-connection read/write timeout — a stalled client must not pin a
/// worker forever.
const IO_TIMEOUT: Duration = Duration::from_secs(30);

/// A bound (but not yet serving) inference server.
#[derive(Debug)]
pub struct Server {
    listener: TcpListener,
    registry: Arc<ModelRegistry>,
    workers: usize,
    parallel: ParallelPolicy,
}

impl Server {
    /// Binds `addr` (use port `0` for an ephemeral port) with a pool of
    /// `workers` threads (clamped to at least 1). Inference micro-batches
    /// run under the process-wide [`ParallelPolicy::global`] unless
    /// overridden with [`Server::with_parallel`].
    ///
    /// When the policy enables pooled dispatch, the persistent linalg
    /// [`WorkerPool`] is constructed here, at bind time: one pool, shared
    /// by all HTTP workers for the server's lifetime, instead of scoped
    /// thread spawns inside every request.
    ///
    /// # Errors
    ///
    /// Returns I/O errors from binding.
    pub fn bind(addr: impl ToSocketAddrs, registry: ModelRegistry, workers: usize) -> Result<Self> {
        let parallel = ParallelPolicy::global();
        if parallel.pool {
            let _ = WorkerPool::global();
        }
        Ok(Self {
            listener: TcpListener::bind(addr)?,
            registry: Arc::new(registry),
            workers: workers.max(1),
            parallel,
        })
    }

    /// Sets the parallel execution policy for inference micro-batches
    /// (the matrix multiply behind `/features` and `/assign`). Responses
    /// are bitwise identical for every policy. A pooled policy starts the
    /// shared persistent [`WorkerPool`] immediately, so the first request
    /// never pays pool construction.
    pub fn with_parallel(mut self, parallel: ParallelPolicy) -> Self {
        if parallel.pool {
            let _ = WorkerPool::global();
        }
        self.parallel = parallel;
        self
    }

    /// The address the listener is bound to.
    ///
    /// # Errors
    ///
    /// Propagates the OS error if the local address cannot be read.
    pub fn local_addr(&self) -> Result<SocketAddr> {
        Ok(self.listener.local_addr()?)
    }

    /// Spawns the worker pool and returns a handle for address lookup and
    /// shutdown. Each worker accepts connections in a loop and serves one
    /// request per connection.
    ///
    /// # Errors
    ///
    /// Returns I/O errors from thread spawning.
    pub fn start(self) -> Result<ServerHandle> {
        let addr = self.listener.local_addr()?;
        let listener = Arc::new(self.listener);
        let shutdown = Arc::new(AtomicBool::new(false));
        let mut workers = Vec::with_capacity(self.workers);
        for worker_id in 0..self.workers {
            let listener = Arc::clone(&listener);
            let registry = Arc::clone(&self.registry);
            let shutdown = Arc::clone(&shutdown);
            let parallel = self.parallel;
            workers.push(
                std::thread::Builder::new()
                    .name(format!("sls-serve-worker-{worker_id}"))
                    .spawn(move || worker_loop(&listener, &registry, &parallel, &shutdown))?,
            );
        }
        Ok(ServerHandle {
            addr,
            shutdown,
            workers,
        })
    }
}

/// A running server: the worker pool plus the shared shutdown flag.
#[derive(Debug)]
pub struct ServerHandle {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    workers: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The address the server accepts connections on.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Blocks the calling thread until every worker exits (effectively
    /// forever unless another thread triggers shutdown) — what the
    /// `sls-serve serve` binary wants.
    pub fn join(self) {
        for worker in self.workers {
            let _ = worker.join();
        }
    }

    /// Stops the pool: sets the shutdown flag and nudges each still-blocked
    /// worker with a wake-up connection until it exits.
    pub fn shutdown(self) {
        self.shutdown.store(true, Ordering::SeqCst);
        for worker in self.workers {
            // A worker can be blocked in `accept` (the wake-up connection
            // unblocks it) or mid-request (it re-checks the flag right after
            // finishing); keep nudging until this worker is done, since
            // another worker may have consumed an earlier wake-up.
            while !worker.is_finished() {
                let _ = TcpStream::connect(self.addr);
                std::thread::sleep(Duration::from_millis(1));
            }
            let _ = worker.join();
        }
    }
}

fn worker_loop(
    listener: &TcpListener,
    registry: &ModelRegistry,
    parallel: &ParallelPolicy,
    shutdown: &AtomicBool,
) {
    loop {
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(_) => {
                // Accept failure: aborted handshakes are transient, but
                // resource exhaustion (e.g. EMFILE under fd pressure) makes
                // accept fail immediately in a loop — back off briefly so
                // the workers draining existing connections can free
                // descriptors instead of being starved by the spin.
                if shutdown.load(Ordering::SeqCst) {
                    return;
                }
                std::thread::sleep(Duration::from_millis(10));
                continue;
            }
        };
        if shutdown.load(Ordering::SeqCst) {
            return;
        }
        // A broken client connection must not take the worker down; the
        // error is simply dropped with the connection.
        let _ = handle_connection(stream, registry, parallel);
    }
}

fn handle_connection(
    stream: TcpStream,
    registry: &ModelRegistry,
    parallel: &ParallelPolicy,
) -> Result<()> {
    stream.set_read_timeout(Some(IO_TIMEOUT))?;
    stream.set_write_timeout(Some(IO_TIMEOUT))?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let (status, body) = match read_request(&mut reader) {
        Ok(request) => route_with(registry, &request, parallel),
        Err(e) => error_body(400, format!("malformed request: {e}")),
    };
    let mut stream = stream;
    write_response(&mut stream, status, &body)
}

/// Routes one parsed request to its handler under the process-wide
/// [`ParallelPolicy::global`], returning `(status, body)`.
///
/// Exposed for direct unit testing without sockets.
pub fn route(registry: &ModelRegistry, request: &Request) -> (u16, String) {
    route_with(registry, request, &ParallelPolicy::global())
}

/// [`route`] under an explicit parallel execution policy for the inference
/// micro-batches.
pub fn route_with(
    registry: &ModelRegistry,
    request: &Request,
    parallel: &ParallelPolicy,
) -> (u16, String) {
    let path = request.path.split('?').next().unwrap_or("");
    let segments: Vec<&str> = path.split('/').filter(|s| !s.is_empty()).collect();
    match (request.method.as_str(), segments.as_slice()) {
        ("GET", ["healthz"]) => json_body(
            200,
            &HealthResponse {
                status: "ok".to_string(),
                models: registry.len(),
            },
        ),
        ("GET", ["models"]) => json_body(
            200,
            &ModelsResponse {
                models: registry
                    .iter()
                    .map(|(name, artifact)| ModelInfo::describe(name, artifact))
                    .collect(),
            },
        ),
        ("POST", ["models", name, "features"]) => {
            with_model_rows(registry, name, &request.body, |artifact, matrix| {
                let features = artifact.features_with(matrix, parallel)?;
                Ok(json_body(
                    200,
                    &FeaturesResponse {
                        model: name.to_string(),
                        features: crate::api::matrix_to_rows(&features),
                    },
                ))
            })
        }
        ("POST", ["models", name, "assign"]) => {
            with_model_rows(registry, name, &request.body, |artifact, matrix| {
                let assignments = artifact.assign_with(matrix, parallel)?;
                Ok(json_body(
                    200,
                    &AssignResponse {
                        model: name.to_string(),
                        assignments,
                    },
                ))
            })
        }
        (_, ["healthz" | "models"]) | (_, ["models", _, "features" | "assign"]) => {
            error_body(405, format!("method {} not allowed here", request.method))
        }
        _ => error_body(404, format!("no route for `{path}`")),
    }
}

/// Shared scaffolding of the two inference endpoints: model lookup (404),
/// body parsing and batch-matrix validation (400), then the handler; any
/// model error also maps to 400 since inference on an immutable artifact
/// only fails on request-induced shape/capability mismatches.
fn with_model_rows(
    registry: &ModelRegistry,
    name: &str,
    body: &str,
    handle: impl FnOnce(&PipelineArtifact, &sls_linalg::Matrix) -> sls_rbm_core::Result<(u16, String)>,
) -> (u16, String) {
    let artifact = match registry.get(name) {
        Ok(artifact) => artifact,
        Err(e) => return error_body(404, e.to_string()),
    };
    let rows: RowsRequest = match serde_json::from_str(body) {
        Ok(rows) => rows,
        Err(e) => return error_body(400, format!("invalid JSON body: {e}")),
    };
    let matrix = match rows.to_matrix() {
        Ok(matrix) => matrix,
        Err(message) => return error_body(400, message),
    };
    match handle(&artifact, &matrix) {
        Ok(response) => response,
        Err(e) => error_body(400, e.to_string()),
    }
}

fn json_body<T: Serialize>(status: u16, value: &T) -> (u16, String) {
    match serde_json::to_string(value) {
        Ok(body) => (status, body),
        Err(e) => (500, format!("{{\"error\":\"serialisation failed: {e}\"}}")),
    }
}

fn error_body(status: u16, message: impl Into<String>) -> (u16, String) {
    json_body(
        status,
        &ErrorResponse {
            error: message.into(),
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use sls_datasets::SyntheticBlobs;
    use sls_rbm_core::{ModelKind, SlsPipelineConfig};

    fn registry() -> ModelRegistry {
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let ds = SyntheticBlobs::new(30, 4, 2)
            .separation(6.0)
            .generate(&mut rng);
        let fitted = sls_rbm_core::PipelineArtifact::fit(
            ModelKind::Grbm,
            SlsPipelineConfig::quick_demo()
                .with_clusters(2)
                .with_hidden(4),
            ds.features(),
            &mut rng,
        )
        .unwrap();
        let mut registry = ModelRegistry::new();
        registry.insert("demo", fitted.artifact);
        registry
    }

    fn request(method: &str, path: &str, body: &str) -> Request {
        Request {
            method: method.to_string(),
            path: path.to_string(),
            body: body.to_string(),
        }
    }

    #[test]
    fn healthz_reports_model_count() {
        let (status, body) = route(&registry(), &request("GET", "/healthz", ""));
        assert_eq!(status, 200);
        let health: HealthResponse = serde_json::from_str(&body).unwrap();
        assert_eq!(health.status, "ok");
        assert_eq!(health.models, 1);
    }

    #[test]
    fn models_lists_loaded_artifacts() {
        let (status, body) = route(&registry(), &request("GET", "/models", ""));
        assert_eq!(status, 200);
        let models: ModelsResponse = serde_json::from_str(&body).unwrap();
        assert_eq!(models.models.len(), 1);
        assert_eq!(models.models[0].name, "demo");
        assert_eq!(models.models[0].kind, "grbm");
        assert_eq!(models.models[0].n_visible, 4);
        assert_eq!(models.models[0].n_clusters, Some(2));
    }

    #[test]
    fn features_and_assign_answer_batches() {
        let registry = registry();
        let body = "{\"rows\":[[0.1,0.2,0.3,0.4],[1.0,1.1,1.2,1.3],[2.0,2.1,2.2,2.3]]}";
        let (status, response) = route(&registry, &request("POST", "/models/demo/features", body));
        assert_eq!(status, 200, "{response}");
        let features: FeaturesResponse = serde_json::from_str(&response).unwrap();
        assert_eq!(features.features.len(), 3);
        assert_eq!(features.features[0].len(), 4);

        let (status, response) = route(&registry, &request("POST", "/models/demo/assign", body));
        assert_eq!(status, 200, "{response}");
        let assign: AssignResponse = serde_json::from_str(&response).unwrap();
        assert_eq!(assign.assignments.len(), 3);
        assert!(assign.assignments.iter().all(|&l| l < 2));
    }

    #[test]
    fn unknown_model_is_404() {
        let (status, body) = route(
            &registry(),
            &request("POST", "/models/ghost/features", "{\"rows\":[[1.0]]}"),
        );
        assert_eq!(status, 404);
        let err: ErrorResponse = serde_json::from_str(&body).unwrap();
        assert!(err.error.contains("ghost"));
    }

    #[test]
    fn unknown_path_is_404_and_wrong_method_is_405() {
        assert_eq!(route(&registry(), &request("GET", "/nope", "")).0, 404);
        assert_eq!(route(&registry(), &request("POST", "/healthz", "")).0, 405);
        assert_eq!(
            route(&registry(), &request("GET", "/models/demo/features", "")).0,
            405
        );
    }

    #[test]
    fn bad_bodies_are_400() {
        let registry = registry();
        for body in [
            "not json",
            "{\"rows\":[]}",
            "{\"rows\":[[1.0],[1.0,2.0]]}",
            // Wrong width for the 4-visible model.
            "{\"rows\":[[1.0,2.0]]}",
        ] {
            let (status, response) =
                route(&registry, &request("POST", "/models/demo/features", body));
            assert_eq!(status, 400, "body `{body}` answered {response}");
        }
    }

    #[test]
    fn query_strings_are_ignored_for_routing() {
        let (status, _) = route(&registry(), &request("GET", "/healthz?verbose=1", ""));
        assert_eq!(status, 200);
    }

    #[test]
    fn parallel_routing_answers_byte_identical_responses() {
        // The serving contract of the parallel layer: a client can never
        // tell from a response body how many threads computed it.
        let registry = registry();
        let body = "{\"rows\":[[0.1,0.2,0.3,0.4],[1.0,1.1,1.2,1.3],[2.0,2.1,2.2,2.3]]}";
        for path in ["/models/demo/features", "/models/demo/assign"] {
            let request = request("POST", path, body);
            let serial = route_with(&registry, &request, &ParallelPolicy::serial());
            let parallel = route_with(
                &registry,
                &request,
                &ParallelPolicy::new(4).with_min_rows_per_thread(1),
            );
            assert_eq!(serial, parallel, "path {path}");
            assert_eq!(serial.0, 200);
            // Persistent-pool dispatch answers the same bytes too.
            let pooled = route_with(
                &registry,
                &request,
                &ParallelPolicy::new(4)
                    .with_min_rows_per_thread(1)
                    .with_pool(true),
            );
            assert_eq!(serial, pooled, "pooled path {path}");
        }
    }

    #[test]
    fn server_binds_ephemeral_port_and_shuts_down() {
        let server = Server::bind("127.0.0.1:0", registry(), 2)
            .unwrap()
            .with_parallel(ParallelPolicy::new(2));
        let addr = server.local_addr().unwrap();
        assert_ne!(addr.port(), 0);
        let handle = server.start().unwrap();
        assert_eq!(handle.addr(), addr);
        handle.shutdown();
    }

    #[test]
    fn server_with_pooled_policy_serves_and_shuts_down() {
        // Bind-time pool construction plus real requests through the pooled
        // inference path, answered by concurrent HTTP workers sharing one
        // linalg worker pool.
        let server = Server::bind("127.0.0.1:0", registry(), 2)
            .unwrap()
            .with_parallel(
                ParallelPolicy::new(4)
                    .with_min_rows_per_thread(1)
                    .with_pool(true),
            );
        let addr = server.local_addr().unwrap();
        let handle = server.start().unwrap();
        let client = crate::Client::new(addr);
        let body = "{\"rows\":[[0.1,0.2,0.3,0.4],[1.0,1.1,1.2,1.3],[2.0,2.1,2.2,2.3]]}";
        let reference = route_with(
            &registry(),
            &request("POST", "/models/demo/features", body),
            &ParallelPolicy::serial(),
        );
        for _ in 0..4 {
            let response = client
                .request("POST", "/models/demo/features", body)
                .expect("pooled inference request");
            assert_eq!(response.status, 200);
            assert_eq!(response.body, reference.1);
        }
        handle.shutdown();
    }
}
