//! The HTTP JSON inference server: acceptor threads draining a
//! `TcpListener` into per-connection handler threads that share a
//! hot-swappable [`LiveRegistry`] and one cross-request [`Batcher`].
//!
//! ## Endpoints
//!
//! The API is versioned under `/v1/`; the bare unversioned paths remain as
//! byte-identical aliases. A `/v{n}` prefix other than `/v1` answers a
//! structured `404`.
//!
//! | Method | Path (canonical) | Alias | Body | Success response |
//! |--------|------------------|-------|------|------------------|
//! | `GET` | `/v1/healthz` | `/healthz` | — | `{"status":"ok","models":N}` |
//! | `GET` | `/v1/models` | `/models` | — | `{"generation":G,"models":[{name, kind, ...}]}` |
//! | `POST` | `/v1/models/{name}/features` | `/models/{name}/features` | `{"rows":[[f64,...],...]}` | `{"model":name,"generation":G,"features":[[f64,...],...]}` |
//! | `POST` | `/v1/models/{name}/assign` | `/models/{name}/assign` | `{"rows":[[f64,...],...]}` | `{"model":name,"generation":G,"assignments":[usize,...]}` |
//! | `GET` | `/admin/statz` | `/statz` (deprecated) | — | batching + registry counters, see [`BatchStatsResponse`] |
//! | `POST` | `/admin/reload` | — | — | [`ReloadResponse`] — `200` swapped, `409` rejected |
//! | `POST` | `/admin/drain` | — | — | [`DrainResponse`] — `/healthz` fails from now on |
//!
//! Unknown paths and model names answer `404`, malformed bodies and shape
//! mismatches `400`, wrong methods on known paths `405`, oversized declared
//! bodies `413` (rejected *before* buffering); every error body is
//! `{"error": "...", "code": "..."}` with a stable machine-readable code
//! from [`crate::api::code`].
//!
//! ## Hot reload
//!
//! Each request resolves the current [`RegistryGeneration`] exactly once and
//! serves entirely from that snapshot, so a concurrent `POST /admin/reload`
//! (or `--watch-interval-ms` directory watcher) swap never fails or tears an
//! in-flight request — the old generation drains and frees itself. See
//! [`crate::live`].
//!
//! ## Connection model
//!
//! Connections are HTTP/1.1 **keep-alive** by default: a handler thread
//! loops reading requests off one socket (pipelining falls out naturally —
//! responses are written in request order) until the client sends
//! `Connection: close`, the idle timeout elapses, the per-connection
//! request cap is reached, or framing breaks (`400` + close, since a
//! desynced stream cannot be trusted — the request-smuggling guard).
//!
//! ## Micro-batching
//!
//! Rows within one request are always micro-batched through a single
//! matrix multiply. With a batch window configured
//! ([`BatchConfig`], `SLS_BATCH_WINDOW_US`), concurrent requests for the
//! same model are additionally coalesced into one fused launch — bitwise
//! identical to serving them one by one (see [`crate::batch`]).

use crate::api::{
    code, AssignResponse, BatchStatsResponse, DrainResponse, ErrorResponse, FeaturesResponse,
    HealthResponse, ModelInfo, ModelsResponse, ReloadResponse, RowsRequest,
};
use crate::batch::{compute_direct, BatchConfig, BatchOutput, Batcher, Endpoint};
use crate::http::{
    read_request_limited, write_response, write_response_keep_alive, HttpLimits, Request,
    RequestRead, MAX_BODY_BYTES,
};
use crate::live::{LiveRegistry, RegistryGeneration};
use crate::registry::ModelRegistry;
use crate::Result;
use serde::Serialize;
use sls_linalg::{ParallelPolicy, WorkerPool};
use std::io::{BufRead, BufReader};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant, SystemTime};

/// Per-request read/write timeout once a request has started arriving — a
/// stalled client must not pin a handler thread forever.
const IO_TIMEOUT: Duration = Duration::from_secs(30);

/// How often an idle connection re-checks the shutdown flag while parked
/// waiting for the next request.
pub(crate) const SHUTDOWN_POLL: Duration = Duration::from_millis(100);

/// Environment variable overriding the request body size limit in bytes.
pub const ENV_MAX_BODY_BYTES: &str = "SLS_MAX_BODY_BYTES";

/// Connection-handling knobs of the [`Server`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeOptions {
    /// Whether connections are kept alive between requests at all
    /// (`false` restores one-request-per-connection).
    pub keep_alive: bool,
    /// How long an idle keep-alive connection is held open waiting for its
    /// next request before the server closes it.
    pub idle_timeout: Duration,
    /// Requests served on one connection before the server closes it
    /// (`Connection: close` on the capping response); clamped to ≥ 1.
    pub max_requests_per_connection: usize,
    /// Largest request body buffered; larger declarations answer `413`
    /// before any body byte is allocated.
    pub max_body_bytes: usize,
    /// Connections handled concurrently; excess connections are answered
    /// `503` and closed immediately.
    pub max_connections: usize,
}

impl Default for ServeOptions {
    fn default() -> Self {
        Self {
            keep_alive: true,
            idle_timeout: Duration::from_secs(5),
            max_requests_per_connection: 1000,
            max_body_bytes: MAX_BODY_BYTES,
            max_connections: 1024,
        }
    }
}

impl ServeOptions {
    /// Defaults with `SLS_MAX_BODY_BYTES` honoured when set.
    ///
    /// # Panics
    ///
    /// Panics when the variable is set but unparsable — a typo must not
    /// silently restore the unbounded default.
    pub fn from_env() -> Self {
        let mut options = Self::default();
        if let Ok(raw) = std::env::var(ENV_MAX_BODY_BYTES) {
            let trimmed = raw.trim();
            if !trimmed.is_empty() {
                options.max_body_bytes = trimmed.parse().unwrap_or_else(|_| {
                    panic!("{ENV_MAX_BODY_BYTES} must be a byte count, got `{raw}`")
                });
            }
        }
        options
    }
}

/// A bound (but not yet serving) inference server.
#[derive(Debug)]
pub struct Server {
    listener: TcpListener,
    live: Arc<LiveRegistry>,
    workers: usize,
    parallel: ParallelPolicy,
    options: ServeOptions,
    batch: BatchConfig,
    watch: Option<Duration>,
}

impl Server {
    /// Binds `addr` (use port `0` for an ephemeral port) with `workers`
    /// acceptor threads (clamped to at least 1); each accepted connection
    /// gets its own handler thread, bounded by
    /// [`ServeOptions::max_connections`]. Inference micro-batches run under
    /// the process-wide [`ParallelPolicy::global`] unless overridden with
    /// [`Server::with_parallel`]; connection handling defaults to
    /// [`ServeOptions::from_env`] and batching to [`BatchConfig::from_env`]
    /// (`SLS_BATCH_WINDOW_US` / `SLS_BATCH_MAX_ROWS`, off by default).
    ///
    /// When the policy enables pooled dispatch, the persistent linalg
    /// [`WorkerPool`] is constructed here, at bind time: one pool, shared
    /// by every connection for the server's lifetime.
    ///
    /// # Errors
    ///
    /// Returns I/O errors from binding.
    pub fn bind(addr: impl ToSocketAddrs, registry: ModelRegistry, workers: usize) -> Result<Self> {
        Self::bind_live(addr, LiveRegistry::new(registry), workers)
    }

    /// [`Server::bind`] over an already-built [`LiveRegistry`] — the form
    /// the `serve` binary uses so `POST /admin/reload` (and the optional
    /// directory watcher) can swap generations from the artifact directory.
    ///
    /// # Errors
    ///
    /// Returns I/O errors from binding.
    pub fn bind_live(addr: impl ToSocketAddrs, live: LiveRegistry, workers: usize) -> Result<Self> {
        let parallel = ParallelPolicy::global();
        if parallel.pool {
            let _ = WorkerPool::global();
        }
        Ok(Self {
            listener: TcpListener::bind(addr)?,
            live: Arc::new(live),
            workers: workers.max(1),
            parallel,
            options: ServeOptions::from_env(),
            batch: BatchConfig::from_env(),
            watch: None,
        })
    }

    /// Sets the parallel execution policy for inference micro-batches
    /// (the matrix multiply behind `/features` and `/assign`). Responses
    /// are bitwise identical for every policy. A pooled policy starts the
    /// shared persistent [`WorkerPool`] immediately, so the first request
    /// never pays pool construction.
    pub fn with_parallel(mut self, parallel: ParallelPolicy) -> Self {
        if parallel.pool {
            let _ = WorkerPool::global();
        }
        self.parallel = parallel;
        self
    }

    /// Overrides the connection-handling knobs (keep-alive, timeouts,
    /// body/connection limits).
    pub fn with_options(mut self, options: ServeOptions) -> Self {
        self.options = ServeOptions {
            max_requests_per_connection: options.max_requests_per_connection.max(1),
            ..options
        };
        self
    }

    /// Overrides the cross-request batching knobs (window and row cap).
    pub fn with_batching(mut self, batch: BatchConfig) -> Self {
        self.batch = BatchConfig {
            max_rows: batch.max_rows.max(1),
            ..batch
        };
        self
    }

    /// Enables directory-watch hot reload: every `interval` the artifact
    /// directory's `(name, mtime, len)` fingerprint is re-scanned off the
    /// request path, and a change triggers the same atomic reload as
    /// `POST /admin/reload`. `None` (the default) disables the watcher; it
    /// is also inert when the registry has no source directory.
    pub fn with_watch(mut self, interval: Option<Duration>) -> Self {
        self.watch = interval.filter(|i| !i.is_zero());
        self
    }

    /// The address the listener is bound to.
    ///
    /// # Errors
    ///
    /// Propagates the OS error if the local address cannot be read.
    pub fn local_addr(&self) -> Result<SocketAddr> {
        Ok(self.listener.local_addr()?)
    }

    /// Spawns the acceptor threads and returns a handle for address lookup
    /// and shutdown.
    ///
    /// # Errors
    ///
    /// Returns I/O errors from thread spawning.
    pub fn start(self) -> Result<ServerHandle> {
        let addr = self.listener.local_addr()?;
        let listener = Arc::new(self.listener);
        let core = Arc::new(ConnCore::new(self.options));
        let shared = Arc::new(Shared {
            live: self.live,
            parallel: self.parallel,
            batcher: Batcher::new(self.batch),
            draining: AtomicBool::new(false),
        });
        let acceptors = spawn_acceptors(&listener, &core, &shared, self.workers)?;
        let watcher = match self.watch {
            Some(interval) if shared.live.source().is_some() => {
                let live = Arc::clone(&shared.live);
                let core = Arc::clone(&core);
                Some(
                    std::thread::Builder::new()
                        .name("sls-serve-watch".to_string())
                        .spawn(move || watcher_loop(&live, &core.shutdown, interval))?,
                )
            }
            _ => None,
        };
        Ok(ServerHandle {
            addr,
            core,
            shared,
            acceptors,
            watcher,
        })
    }
}

/// Connection-handling state shared by every server-like frontend (the
/// inference server and the shard router): the knobs, the shutdown flag and
/// the live-connection count. Everything request-specific lives behind
/// [`RequestHandler`].
#[derive(Debug)]
pub(crate) struct ConnCore {
    pub(crate) options: ServeOptions,
    pub(crate) shutdown: AtomicBool,
    pub(crate) active_connections: AtomicUsize,
}

impl ConnCore {
    pub(crate) fn new(options: ServeOptions) -> Self {
        Self {
            options,
            shutdown: AtomicBool::new(false),
            active_connections: AtomicUsize::new(0),
        }
    }
}

/// Answers one parsed request with `(status, body)`. Implemented by the
/// inference server (route against the live registry) and the shard router
/// (forward to an owning replica); both share the exact same keep-alive
/// connection machinery around it.
pub(crate) trait RequestHandler: Send + Sync + 'static {
    fn handle(&self, request: &Request) -> (u16, String);
}

/// Inference state shared by every connection handler.
#[derive(Debug)]
struct Shared {
    live: Arc<LiveRegistry>,
    parallel: ParallelPolicy,
    batcher: Batcher,
    draining: AtomicBool,
}

impl RequestHandler for Shared {
    fn handle(&self, request: &Request) -> (u16, String) {
        let current: Arc<RegistryGeneration> = self.live.current();
        route_inner(
            &current.registry,
            current.generation,
            Some(&self.live),
            request,
            &self.parallel,
            Some(&self.batcher),
            Some(&self.draining),
        )
    }
}

/// Decrements the live-connection count when a handler thread exits on any
/// path, including panics.
struct ConnGuard(Arc<ConnCore>);

impl Drop for ConnGuard {
    fn drop(&mut self) {
        self.0.active_connections.fetch_sub(1, Ordering::SeqCst);
    }
}

/// Spawns `workers` acceptor threads over one listener, all driving the
/// same handler.
pub(crate) fn spawn_acceptors<H: RequestHandler>(
    listener: &Arc<TcpListener>,
    core: &Arc<ConnCore>,
    handler: &Arc<H>,
    workers: usize,
) -> Result<Vec<JoinHandle<()>>> {
    let mut acceptors = Vec::with_capacity(workers);
    for worker_id in 0..workers {
        let listener = Arc::clone(listener);
        let core = Arc::clone(core);
        let handler = Arc::clone(handler);
        acceptors.push(
            std::thread::Builder::new()
                .name(format!("sls-serve-accept-{worker_id}"))
                .spawn(move || acceptor_loop(&listener, &core, &handler))?,
        );
    }
    Ok(acceptors)
}

/// Stops an acceptor pool: sets the shutdown flag, nudges each still-blocked
/// acceptor with a wake-up connection until it exits, then waits (bounded)
/// for live connections to observe the flag and drain.
pub(crate) fn shutdown_acceptors(
    addr: SocketAddr,
    core: &ConnCore,
    acceptors: Vec<JoinHandle<()>>,
) {
    core.shutdown.store(true, Ordering::SeqCst);
    for acceptor in acceptors {
        // An acceptor can be blocked in `accept` (the wake-up connection
        // unblocks it) or mid-dispatch (it re-checks the flag right
        // after); keep nudging until this acceptor is done, since
        // another acceptor may have consumed an earlier wake-up.
        while !acceptor.is_finished() {
            let _ = TcpStream::connect(addr);
            std::thread::sleep(Duration::from_millis(1));
        }
        let _ = acceptor.join();
    }
    // Idle keep-alive connections poll the flag every SHUTDOWN_POLL;
    // give them a bounded window to drain instead of waiting forever on
    // a connection wedged mid-request.
    let deadline = Instant::now() + Duration::from_secs(5);
    while core.active_connections.load(Ordering::SeqCst) > 0 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(2));
    }
}

/// A running server: the acceptor pool plus the shared shutdown flag.
#[derive(Debug)]
pub struct ServerHandle {
    addr: SocketAddr,
    core: Arc<ConnCore>,
    shared: Arc<Shared>,
    acceptors: Vec<JoinHandle<()>>,
    watcher: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// The address the server accepts connections on.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The hot-swappable registry this server serves from — lets an
    /// embedding process trigger reloads or read swap counters directly.
    pub fn live(&self) -> Arc<LiveRegistry> {
        Arc::clone(&self.shared.live)
    }

    /// Blocks the calling thread until every acceptor exits (effectively
    /// forever unless another thread triggers shutdown) — what the
    /// `sls-serve serve` binary wants.
    pub fn join(self) {
        for acceptor in self.acceptors {
            let _ = acceptor.join();
        }
        if let Some(watcher) = self.watcher {
            let _ = watcher.join();
        }
    }

    /// Stops the server: sets the shutdown flag, nudges each still-blocked
    /// acceptor with a wake-up connection until it exits, then waits
    /// (bounded) for live connections to observe the flag and drain.
    pub fn shutdown(self) {
        self.core.shutdown.store(true, Ordering::SeqCst);
        if let Some(watcher) = self.watcher {
            // The watcher polls the flag at least every SHUTDOWN_POLL.
            let _ = watcher.join();
        }
        shutdown_acceptors(self.addr, &self.core, self.acceptors);
    }
}

/// One `(name, mtime, len, checksum)` entry per artifact file. Name, mtime
/// and length alone miss a real case: a retrain exporting an equal-size
/// artifact within the filesystem's mtime granularity (same second on many
/// filesystems) looks identical and is silently never reloaded. The checksum
/// closes that hole without hashing whole files — it folds the length plus
/// the first and last [`FINGERPRINT_PROBE_BYTES`] of content through FNV-1a,
/// and generation counters / trained weights live in exactly those regions
/// of the JSON exports.
type DirFingerprint = Vec<(String, Option<SystemTime>, u64, u64)>;

/// How many bytes of head and of tail feed the fingerprint checksum.
const FINGERPRINT_PROBE_BYTES: usize = 4096;

/// FNV-1a over the file's length and its first/last
/// [`FINGERPRINT_PROBE_BYTES`] bytes. Reads at most 8 KiB per artifact, so
/// the poll stays cheap even for large exports.
fn probe_checksum(path: &std::path::Path, len: u64) -> u64 {
    const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut hash = FNV_OFFSET;
    let mut fold = |bytes: &[u8]| {
        for &byte in bytes {
            hash = (hash ^ u64::from(byte)).wrapping_mul(FNV_PRIME);
        }
    };
    fold(&len.to_le_bytes());
    let Ok(mut file) = std::fs::File::open(path) else {
        return hash;
    };
    use std::io::{Read, Seek, SeekFrom};
    // `read` may legally return fewer bytes than the buffer holds; a single
    // call would make the checksum depend on how the kernel chunked the
    // read, so the same unchanged file could hash differently across polls
    // and trigger spurious reloads. Loop until the probe window is full or
    // EOF.
    fn read_probe(file: &mut std::fs::File, buf: &mut [u8]) -> usize {
        let mut filled = 0;
        while filled < buf.len() {
            match file.read(&mut buf[filled..]) {
                Ok(0) => break,
                Ok(n) => filled += n,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(_) => break,
            }
        }
        filled
    }
    let mut head = [0u8; FINGERPRINT_PROBE_BYTES];
    let read = read_probe(&mut file, &mut head);
    fold(&head[..read]);
    if len > FINGERPRINT_PROBE_BYTES as u64 {
        let tail_start = len.saturating_sub(FINGERPRINT_PROBE_BYTES as u64);
        let mut tail = [0u8; FINGERPRINT_PROBE_BYTES];
        if file.seek(SeekFrom::Start(tail_start)).is_ok() {
            let read = read_probe(&mut file, &mut tail);
            fold(&tail[..read]);
        }
    }
    hash
}

fn dir_fingerprint(live: &LiveRegistry) -> DirFingerprint {
    let Some(dir) = live.source() else {
        return Vec::new();
    };
    let Ok(entries) = std::fs::read_dir(dir) else {
        return Vec::new();
    };
    let mut fingerprint: DirFingerprint = entries
        .flatten()
        .filter(|e| e.path().extension().is_some_and(|ext| ext == "json"))
        .map(|e| {
            let meta = e.metadata().ok();
            let len = meta.as_ref().map_or(0, |m| m.len());
            (
                e.file_name().to_string_lossy().into_owned(),
                meta.as_ref().and_then(|m| m.modified().ok()),
                len,
                probe_checksum(&e.path(), len),
            )
        })
        .collect();
    fingerprint.sort();
    fingerprint
}

/// Directory-watch thread: polls the artifact directory fingerprint every
/// `interval` (in shutdown-aware steps) and triggers an atomic reload on
/// change. A rejected reload (e.g. a half-written artifact) is retried on
/// the *next* change, not every tick, so a corrupt file does not spin the
/// failure counter.
fn watcher_loop(live: &LiveRegistry, shutdown: &AtomicBool, interval: Duration) {
    let mut seen = dir_fingerprint(live);
    loop {
        let deadline = Instant::now() + interval;
        while Instant::now() < deadline {
            if shutdown.load(Ordering::SeqCst) {
                return;
            }
            std::thread::sleep(
                SHUTDOWN_POLL.min(deadline.saturating_duration_since(Instant::now())),
            );
        }
        let now = dir_fingerprint(live);
        if now != seen {
            let _ = live.reload();
            seen = now;
        }
    }
}

fn acceptor_loop<H: RequestHandler>(
    listener: &TcpListener,
    core: &Arc<ConnCore>,
    handler: &Arc<H>,
) {
    loop {
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(_) => {
                // Accept failure: aborted handshakes are transient, but
                // resource exhaustion (e.g. EMFILE under fd pressure) makes
                // accept fail immediately in a loop — back off briefly so
                // the handlers draining existing connections can free
                // descriptors instead of being starved by the spin.
                if core.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                std::thread::sleep(Duration::from_millis(10));
                continue;
            }
        };
        if core.shutdown.load(Ordering::SeqCst) {
            return;
        }
        if core.active_connections.load(Ordering::SeqCst) >= core.options.max_connections {
            // Over capacity: shed load with an immediate 503 instead of
            // queueing a connection no handler will reach.
            let mut stream = stream;
            let (_, body) = error_body(503, code::OVER_CAPACITY, "server at connection capacity");
            let _ = write_response(&mut stream, 503, &body);
            continue;
        }
        core.active_connections.fetch_add(1, Ordering::SeqCst);
        let guard = ConnGuard(Arc::clone(core));
        let handler = Arc::clone(handler);
        let spawned = std::thread::Builder::new()
            .name("sls-serve-conn".to_string())
            .spawn(move || {
                // A broken client connection must not take the server down;
                // the error is simply dropped with the connection.
                let _ = handle_connection(stream, &guard.0, handler.as_ref());
            });
        // Spawn failure drops the closure, whose guard decrements the
        // counter; nothing else to do beyond dropping the connection.
        drop(spawned);
    }
}

/// Outcome of parking on an idle connection.
enum IdleWait {
    /// Bytes of the next request are ready (or already buffered).
    Ready,
    /// The connection closed, idled out, or the server is shutting down.
    Closed,
}

/// Parks until the next request's first byte arrives, without consuming it.
///
/// The socket read timeout is dropped to [`SHUTDOWN_POLL`] so the wait can
/// interleave shutdown-flag checks; only *complete inactivity* counts
/// against the idle budget, and no request byte is ever buffered then lost
/// (`fill_buf` peeks without consuming).
fn wait_for_request(
    reader: &mut BufReader<TcpStream>,
    idle_timeout: Duration,
    shutdown: &AtomicBool,
) -> IdleWait {
    if !reader.buffer().is_empty() {
        // Pipelined request already buffered behind the previous one.
        return IdleWait::Ready;
    }
    let poll = SHUTDOWN_POLL
        .min(idle_timeout)
        .max(Duration::from_millis(1));
    if reader.get_ref().set_read_timeout(Some(poll)).is_err() {
        return IdleWait::Closed;
    }
    let deadline = Instant::now() + idle_timeout;
    loop {
        if shutdown.load(Ordering::SeqCst) {
            return IdleWait::Closed;
        }
        match reader.fill_buf() {
            Ok([]) => return IdleWait::Closed,
            Ok(_) => return IdleWait::Ready,
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                if Instant::now() >= deadline {
                    return IdleWait::Closed;
                }
            }
            Err(_) => return IdleWait::Closed,
        }
    }
}

/// Serves one connection: a keep-alive request loop with idle timeout,
/// request cap, bounded body buffering and close-on-desync.
fn handle_connection<H: RequestHandler + ?Sized>(
    stream: TcpStream,
    core: &ConnCore,
    handler: &H,
) -> Result<()> {
    // Nagle's algorithm batches small writes behind delayed ACKs; on a
    // keep-alive connection (no fresh-connection quick-ACK grace) that
    // turns every request/response exchange into a ~40ms stall.
    stream.set_nodelay(true)?;
    stream.set_write_timeout(Some(IO_TIMEOUT))?;
    let options = &core.options;
    let limits = HttpLimits::new(options.max_body_bytes);
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = stream;
    let mut served = 0usize;
    loop {
        if let IdleWait::Closed =
            wait_for_request(&mut reader, options.idle_timeout, &core.shutdown)
        {
            return Ok(());
        }
        // A request is arriving: switch from the idle poll to the (much
        // longer) per-request I/O budget. The timeout lives on the shared
        // socket, so setting it through the writer half covers the reader.
        writer.set_read_timeout(Some(IO_TIMEOUT))?;
        served += 1;
        let may_keep_alive = options.keep_alive
            && served < options.max_requests_per_connection
            && !core.shutdown.load(Ordering::SeqCst);
        match read_request_limited(&mut reader, &limits) {
            Ok(RequestRead::Complete { request, close }) => {
                let keep = may_keep_alive && !close;
                let (status, body) = handler.handle(&request);
                write_response_keep_alive(&mut writer, status, &body, keep)?;
                if !keep {
                    return Ok(());
                }
            }
            Ok(RequestRead::TooLarge {
                declared,
                drained,
                close,
            }) => {
                // The body was never buffered; the connection survives only
                // when the declared bytes were actually drained, otherwise
                // the next "request" would start inside the unread body.
                let keep = may_keep_alive && drained && !close;
                let (status, body) = error_body(
                    413,
                    code::BODY_TOO_LARGE,
                    format!(
                        "body of {declared} bytes exceeds the {}-byte limit",
                        options.max_body_bytes
                    ),
                );
                write_response_keep_alive(&mut writer, status, &body, keep)?;
                if !keep {
                    return Ok(());
                }
            }
            Err(e) => {
                // Broken framing: answer 400 and close — after a framing
                // error the stream position is untrusted, and serving more
                // requests from it is the request-smuggling primitive.
                let (status, body) = error_body(
                    400,
                    code::MALFORMED_REQUEST,
                    format!("malformed request: {e}"),
                );
                let _ = write_response_keep_alive(&mut writer, status, &body, false);
                return Err(e);
            }
        }
    }
}

/// Routes one parsed request to its handler under the process-wide
/// [`ParallelPolicy::global`], returning `(status, body)`.
///
/// Exposed for direct unit testing without sockets.
pub fn route(registry: &ModelRegistry, request: &Request) -> (u16, String) {
    route_with(registry, request, &ParallelPolicy::global())
}

/// [`route`] under an explicit parallel execution policy for the inference
/// micro-batches.
pub fn route_with(
    registry: &ModelRegistry,
    request: &Request,
    parallel: &ParallelPolicy,
) -> (u16, String) {
    route_with_batcher(registry, request, parallel, None)
}

/// [`route_with`] with an optional cross-request [`Batcher`]: inference
/// requests go through its coalescing window, `GET /statz` reports its
/// counters. With `None`, every request computes directly and `/statz`
/// reports a disabled batcher.
///
/// Routing over a bare registry reports generation 1 and rejects
/// `POST /admin/reload` with `409` — hot reload needs a [`LiveRegistry`]
/// (see [`route_live`]).
pub fn route_with_batcher(
    registry: &ModelRegistry,
    request: &Request,
    parallel: &ParallelPolicy,
    batcher: Option<&Batcher>,
) -> (u16, String) {
    route_inner(registry, 1, None, request, parallel, batcher, None)
}

/// Routes one request against the current generation of a hot-swappable
/// registry: the generation is resolved exactly once, the whole request is
/// served from that snapshot, and `POST /admin/reload` is live.
pub fn route_live(
    live: &LiveRegistry,
    request: &Request,
    parallel: &ParallelPolicy,
    batcher: Option<&Batcher>,
) -> (u16, String) {
    let current: Arc<RegistryGeneration> = live.current();
    route_inner(
        &current.registry,
        current.generation,
        Some(live),
        request,
        parallel,
        batcher,
        None,
    )
}

/// Strips the `/v1` API-version prefix off a segmented path. The bare
/// unversioned path is the legacy alias, so both spell the same routes;
/// any *other* `/v{n}` prefix is answered with a structured 404 instead of
/// falling through to route matching (a `/v2` client must learn it speaks
/// the wrong version, not chase phantom 404s per route).
pub(crate) fn api_segments<'a>(
    segments: &'a [&'a str],
) -> std::result::Result<&'a [&'a str], (u16, String)> {
    match segments.split_first() {
        Some((&"v1", rest)) => Ok(rest),
        Some((&first, _)) if is_version_prefix(first) => Err(error_body(
            404,
            code::UNSUPPORTED_API_VERSION,
            format!("API version `{first}` is not supported; this server speaks `/v1`"),
        )),
        _ => Ok(segments),
    }
}

/// `v` followed by only digits — `v1`, `v2`, `v99`. A path like `/verbose`
/// is not a version prefix and falls through to normal route matching.
fn is_version_prefix(segment: &str) -> bool {
    segment.len() >= 2
        && segment.starts_with('v')
        && segment[1..].bytes().all(|b| b.is_ascii_digit())
}

#[allow(clippy::too_many_arguments)]
fn route_inner(
    registry: &ModelRegistry,
    generation: u64,
    live: Option<&LiveRegistry>,
    request: &Request,
    parallel: &ParallelPolicy,
    batcher: Option<&Batcher>,
    draining: Option<&AtomicBool>,
) -> (u16, String) {
    let path = request.path.split('?').next().unwrap_or("");
    let segments: Vec<&str> = path.split('/').filter(|s| !s.is_empty()).collect();
    let rest = match api_segments(&segments) {
        Ok(rest) => rest,
        Err(unsupported) => return unsupported,
    };
    match (request.method.as_str(), rest) {
        ("GET", ["healthz"]) => health(registry, draining),
        ("GET", ["models"]) => json_body(
            200,
            &ModelsResponse {
                generation,
                models: registry
                    .iter()
                    .map(|(name, model)| ModelInfo::describe(name, model))
                    .collect(),
            },
        ),
        // `/admin/statz` is canonical; top-level `/statz` is the deprecated
        // pre-v1 alias, kept byte-identical.
        ("GET", ["statz"] | ["admin", "statz"]) => {
            let (swaps, failed) = live.map_or((0, 0), |l| (l.swaps(), l.failed_reloads()));
            json_body(
                200,
                &BatchStatsResponse::describe(batcher).with_registry(generation, swaps, failed),
            )
        }
        ("POST", ["admin", "reload"]) => reload(generation, live),
        ("POST", ["admin", "drain"]) => drain(draining),
        ("POST", ["models", name, "features"]) => infer(
            registry,
            generation,
            name,
            Endpoint::Features,
            &request.body,
            parallel,
            batcher,
        ),
        ("POST", ["models", name, "assign"]) => infer(
            registry,
            generation,
            name,
            Endpoint::Assign,
            &request.body,
            parallel,
            batcher,
        ),
        (_, ["healthz" | "models" | "statz"] | ["admin", "reload" | "statz" | "drain"])
        | (_, ["models", _, "features" | "assign"]) => error_body(
            405,
            code::METHOD_NOT_ALLOWED,
            format!("method {} not allowed here", request.method),
        ),
        _ => error_body(404, code::NOT_FOUND, format!("no route for `{path}`")),
    }
}

/// `GET /healthz`: `200 ok` normally, `503 draining` once the node was
/// drained — existing connections keep being served, but routers and load
/// balancers must stop sending new traffic here.
fn health(registry: &ModelRegistry, draining: Option<&AtomicBool>) -> (u16, String) {
    if draining.is_some_and(|flag| flag.load(Ordering::SeqCst)) {
        return error_body(
            503,
            code::DRAINING,
            "node is draining: open connections finish, new traffic must go elsewhere",
        );
    }
    json_body(
        200,
        &HealthResponse {
            status: "ok".to_string(),
            models: registry.len(),
        },
    )
}

/// `POST /admin/drain`: flip the node into draining mode (idempotent).
/// Only a socket-backed server carries the flag; the in-process routing
/// helpers answer 409.
fn drain(draining: Option<&AtomicBool>) -> (u16, String) {
    let Some(flag) = draining else {
        return error_body(
            409,
            code::DRAIN_UNAVAILABLE,
            "drain is not available: routing over a bare registry has no connection state",
        );
    };
    flag.store(true, Ordering::SeqCst);
    json_body(
        200,
        &DrainResponse {
            status: "draining".to_string(),
            draining: true,
        },
    )
}

/// `POST /admin/reload`: atomically swap in a new generation from the
/// artifact directory, or report exactly why the old one keeps serving.
fn reload(generation: u64, live: Option<&LiveRegistry>) -> (u16, String) {
    let Some(live) = live else {
        return json_body(
            409,
            &ReloadResponse {
                status: "rejected".to_string(),
                swapped: false,
                generation,
                models: Vec::new(),
                error: Some(
                    "hot reload is not enabled: server was built over a bare registry".to_string(),
                ),
            },
        );
    };
    let outcome = live.reload();
    let status = if outcome.swapped { 200 } else { 409 };
    json_body(
        status,
        &ReloadResponse {
            status: if outcome.swapped {
                "swapped".to_string()
            } else {
                "rejected".to_string()
            },
            swapped: outcome.swapped,
            generation: outcome.generation,
            models: outcome.models,
            error: outcome.error,
        },
    )
}

/// Shared scaffolding of the two inference endpoints: model lookup (404),
/// body parsing and batch-matrix validation (400), then the fused or direct
/// compute; any model error also maps to 400 since inference on an
/// immutable artifact only fails on request-induced shape/capability
/// mismatches.
fn infer(
    registry: &ModelRegistry,
    generation: u64,
    name: &str,
    endpoint: Endpoint,
    body: &str,
    parallel: &ParallelPolicy,
    batcher: Option<&Batcher>,
) -> (u16, String) {
    let model = match registry.get(name) {
        Ok(model) => model,
        Err(e) => return error_body(404, code::MODEL_NOT_FOUND, e.to_string()),
    };
    let rows: RowsRequest = match serde_json::from_str(body) {
        Ok(rows) => rows,
        Err(e) => return error_body(400, code::INVALID_BODY, format!("invalid JSON body: {e}")),
    };
    let matrix = match rows.to_matrix() {
        Ok(matrix) => matrix,
        Err(message) => return error_body(400, code::BAD_ROW_WIDTH, message),
    };
    // Doomed requests are rejected up front: they must fail with exactly
    // the error they would get alone, not poison a batch or inherit a
    // batch's error, and each failure class carries its own stable code.
    if matrix.cols() != model.n_visible() {
        return error_body(
            400,
            code::BAD_ROW_WIDTH,
            format!(
                "rows are {} wide but model `{name}` expects {} visible units",
                matrix.cols(),
                model.n_visible()
            ),
        );
    }
    if endpoint == Endpoint::Assign && !model.has_cluster_head() {
        return error_body(
            400,
            code::NO_CLUSTER_HEAD,
            format!("model `{name}` has no cluster head; `/assign` is unavailable"),
        );
    }
    // Only well-shaped requests reach this point, so everything may enter
    // the coalescing window. The generation rides in the batch key, so a
    // swap mid-window never fuses two model versions.
    let result = match batcher {
        Some(batcher) => batcher.submit(&model, name, generation, endpoint, &matrix, parallel),
        None => compute_direct(&model, endpoint, &matrix, parallel),
    };
    match result {
        Ok(BatchOutput::Features(features)) => json_body(
            200,
            &FeaturesResponse {
                model: name.to_string(),
                generation,
                features,
            },
        ),
        Ok(BatchOutput::Assign(assignments)) => json_body(
            200,
            &AssignResponse {
                model: name.to_string(),
                generation,
                assignments,
            },
        ),
        Err(message) => error_body(400, code::INFERENCE_FAILED, message),
    }
}

pub(crate) fn json_body<T: Serialize>(status: u16, value: &T) -> (u16, String) {
    match serde_json::to_string(value) {
        Ok(body) => (status, body),
        Err(e) => (
            500,
            format!("{{\"error\":\"serialisation failed: {e}\",\"code\":\"internal\"}}"),
        ),
    }
}

pub(crate) fn error_body(
    status: u16,
    code: &'static str,
    message: impl Into<String>,
) -> (u16, String) {
    json_body(
        status,
        &ErrorResponse {
            error: message.into(),
            code: code.to_string(),
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use sls_datasets::SyntheticBlobs;
    use sls_rbm_core::{ModelKind, SlsPipelineConfig};

    fn registry() -> ModelRegistry {
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let ds = SyntheticBlobs::new(30, 4, 2)
            .separation(6.0)
            .generate(&mut rng);
        let fitted = sls_rbm_core::PipelineArtifact::fit(
            ModelKind::Grbm,
            SlsPipelineConfig::quick_demo()
                .with_clusters(2)
                .with_hidden(4),
            ds.features(),
            &mut rng,
        )
        .unwrap();
        let mut registry = ModelRegistry::new();
        registry.insert("demo", fitted.artifact);
        registry
    }

    fn request(method: &str, path: &str, body: &str) -> Request {
        Request {
            method: method.to_string(),
            path: path.to_string(),
            body: body.to_string(),
        }
    }

    #[test]
    fn healthz_reports_model_count() {
        let (status, body) = route(&registry(), &request("GET", "/healthz", ""));
        assert_eq!(status, 200);
        let health: HealthResponse = serde_json::from_str(&body).unwrap();
        assert_eq!(health.status, "ok");
        assert_eq!(health.models, 1);
    }

    #[test]
    fn models_lists_loaded_artifacts() {
        let (status, body) = route(&registry(), &request("GET", "/models", ""));
        assert_eq!(status, 200);
        let models: ModelsResponse = serde_json::from_str(&body).unwrap();
        assert_eq!(models.models.len(), 1);
        assert_eq!(models.models[0].name, "demo");
        assert_eq!(models.models[0].kind, "grbm");
        assert_eq!(models.models[0].n_visible, 4);
        assert_eq!(models.models[0].n_clusters, Some(2));
    }

    #[test]
    fn statz_reports_batcher_counters() {
        // Without a batcher: the disabled shape.
        let (status, body) = route(&registry(), &request("GET", "/statz", ""));
        assert_eq!(status, 200);
        let stats: BatchStatsResponse = serde_json::from_str(&body).unwrap();
        assert_eq!(stats.window_us, 0);
        assert_eq!(stats.batches, 0);

        // With one: config echoed, counters live.
        let registry = registry();
        let batcher = Batcher::new(BatchConfig {
            window: Duration::from_micros(250),
            max_rows: 64,
        });
        let body = "{\"rows\":[[0.1,0.2,0.3,0.4]]}";
        let (status, response) = route_with_batcher(
            &registry,
            &request("POST", "/models/demo/features", body),
            &ParallelPolicy::serial(),
            Some(&batcher),
        );
        assert_eq!(status, 200, "{response}");
        let (status, body) = route_with_batcher(
            &registry,
            &request("GET", "/statz", ""),
            &ParallelPolicy::serial(),
            Some(&batcher),
        );
        assert_eq!(status, 200);
        let stats: BatchStatsResponse = serde_json::from_str(&body).unwrap();
        assert_eq!(stats.window_us, 250);
        assert_eq!(stats.batches, 1);
        assert_eq!(stats.batched_requests, 1);
    }

    #[test]
    fn features_and_assign_answer_batches() {
        let registry = registry();
        let body = "{\"rows\":[[0.1,0.2,0.3,0.4],[1.0,1.1,1.2,1.3],[2.0,2.1,2.2,2.3]]}";
        let (status, response) = route(&registry, &request("POST", "/models/demo/features", body));
        assert_eq!(status, 200, "{response}");
        let features: FeaturesResponse = serde_json::from_str(&response).unwrap();
        assert_eq!(features.features.len(), 3);
        assert_eq!(features.features[0].len(), 4);

        let (status, response) = route(&registry, &request("POST", "/models/demo/assign", body));
        assert_eq!(status, 200, "{response}");
        let assign: AssignResponse = serde_json::from_str(&response).unwrap();
        assert_eq!(assign.assignments.len(), 3);
        assert!(assign.assignments.iter().all(|&l| l < 2));
    }

    #[test]
    fn batched_routing_answers_byte_identical_responses() {
        // One request through the coalescing window (it just times out
        // alone) must answer the exact bytes of the direct path.
        let registry = registry();
        let batcher = Batcher::new(BatchConfig {
            window: Duration::from_micros(200),
            max_rows: 64,
        });
        let body = "{\"rows\":[[0.1,0.2,0.3,0.4],[1.0,1.1,1.2,1.3]]}";
        for path in ["/models/demo/features", "/models/demo/assign"] {
            let request = request("POST", path, body);
            let direct = route_with(&registry, &request, &ParallelPolicy::serial());
            let batched = route_with_batcher(
                &registry,
                &request,
                &ParallelPolicy::serial(),
                Some(&batcher),
            );
            assert_eq!(direct, batched, "path {path}");
            assert_eq!(direct.0, 200);
        }
    }

    #[test]
    fn unknown_model_is_404() {
        let (status, body) = route(
            &registry(),
            &request("POST", "/models/ghost/features", "{\"rows\":[[1.0]]}"),
        );
        assert_eq!(status, 404);
        let err: ErrorResponse = serde_json::from_str(&body).unwrap();
        assert!(err.error.contains("ghost"));
    }

    #[test]
    fn unknown_path_is_404_and_wrong_method_is_405() {
        assert_eq!(route(&registry(), &request("GET", "/nope", "")).0, 404);
        assert_eq!(route(&registry(), &request("POST", "/healthz", "")).0, 405);
        assert_eq!(route(&registry(), &request("POST", "/statz", "")).0, 405);
        assert_eq!(
            route(&registry(), &request("GET", "/models/demo/features", "")).0,
            405
        );
    }

    #[test]
    fn bad_bodies_are_400() {
        let registry = registry();
        for body in [
            "not json",
            "{\"rows\":[]}",
            "{\"rows\":[[1.0],[1.0,2.0]]}",
            // Wrong width for the 4-visible model.
            "{\"rows\":[[1.0,2.0]]}",
        ] {
            let (status, response) =
                route(&registry, &request("POST", "/models/demo/features", body));
            assert_eq!(status, 400, "body `{body}` answered {response}");
        }
    }

    #[test]
    fn bad_bodies_are_400_with_a_batcher_too() {
        // The malformed-request errors must be identical whether or not a
        // batch window is configured — doomed requests bypass coalescing.
        let registry = registry();
        let batcher = Batcher::new(BatchConfig {
            window: Duration::from_micros(200),
            max_rows: 64,
        });
        for (path, body) in [
            ("/models/demo/features", "{\"rows\":[[1.0,2.0]]}"),
            ("/models/demo/features", "not json"),
            ("/models/ghost/assign", "{\"rows\":[[1.0]]}"),
        ] {
            let request = request("POST", path, body);
            let direct = route_with(&registry, &request, &ParallelPolicy::serial());
            let batched = route_with_batcher(
                &registry,
                &request,
                &ParallelPolicy::serial(),
                Some(&batcher),
            );
            assert_eq!(direct, batched, "path {path} body `{body}`");
            assert!(!direct.1.is_empty());
        }
        assert_eq!(
            batcher.stats().batches,
            0,
            "doomed requests must never enter the window"
        );
    }

    #[test]
    fn query_strings_are_ignored_for_routing() {
        let (status, _) = route(&registry(), &request("GET", "/healthz?verbose=1", ""));
        assert_eq!(status, 200);
    }

    #[test]
    fn parallel_routing_answers_byte_identical_responses() {
        // The serving contract of the parallel layer: a client can never
        // tell from a response body how many threads computed it.
        let registry = registry();
        let body = "{\"rows\":[[0.1,0.2,0.3,0.4],[1.0,1.1,1.2,1.3],[2.0,2.1,2.2,2.3]]}";
        for path in ["/models/demo/features", "/models/demo/assign"] {
            let request = request("POST", path, body);
            let serial = route_with(&registry, &request, &ParallelPolicy::serial());
            let parallel = route_with(
                &registry,
                &request,
                &ParallelPolicy::new(4).with_min_rows_per_thread(1),
            );
            assert_eq!(serial, parallel, "path {path}");
            assert_eq!(serial.0, 200);
            // Persistent-pool dispatch answers the same bytes too.
            let pooled = route_with(
                &registry,
                &request,
                &ParallelPolicy::new(4)
                    .with_min_rows_per_thread(1)
                    .with_pool(true),
            );
            assert_eq!(serial, pooled, "pooled path {path}");
        }
    }

    #[test]
    fn reload_on_a_bare_registry_is_409_with_structured_body() {
        let (status, body) = route(&registry(), &request("POST", "/admin/reload", ""));
        assert_eq!(status, 409);
        let reload: ReloadResponse = serde_json::from_str(&body).unwrap();
        assert!(!reload.swapped);
        assert_eq!(reload.generation, 1);
        assert!(reload.error.unwrap().contains("not enabled"));
        // Wrong method on the admin path is 405, like every known path.
        assert_eq!(
            route(&registry(), &request("GET", "/admin/reload", "")).0,
            405
        );
    }

    #[test]
    fn route_live_swaps_generations_and_reports_them_everywhere() {
        let dir =
            std::env::temp_dir().join(format!("sls_serve_server_reload_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let ds = SyntheticBlobs::new(30, 4, 2)
            .separation(6.0)
            .generate(&mut rng);
        let fitted = sls_rbm_core::PipelineArtifact::fit(
            ModelKind::Grbm,
            SlsPipelineConfig::quick_demo()
                .with_clusters(2)
                .with_hidden(4),
            ds.features(),
            &mut rng,
        )
        .unwrap();
        fitted.artifact.save(dir.join("demo.json")).unwrap();
        let live = LiveRegistry::from_dir(&dir, false).unwrap();
        let policy = ParallelPolicy::serial();

        let body = "{\"rows\":[[0.1,0.2,0.3,0.4]]}";
        let (status, response) = route_live(
            &live,
            &request("POST", "/models/demo/features", body),
            &policy,
            None,
        );
        assert_eq!(status, 200, "{response}");
        let before: FeaturesResponse = serde_json::from_str(&response).unwrap();
        assert_eq!(before.generation, 1);

        // Re-export a different model under the same name and reload.
        let mut rng = ChaCha8Rng::seed_from_u64(99);
        let retrained = sls_rbm_core::PipelineArtifact::fit(
            ModelKind::Grbm,
            SlsPipelineConfig::quick_demo()
                .with_clusters(2)
                .with_hidden(4),
            ds.features(),
            &mut rng,
        )
        .unwrap();
        retrained.artifact.save(dir.join("demo.json")).unwrap();
        let (status, response) =
            route_live(&live, &request("POST", "/admin/reload", ""), &policy, None);
        assert_eq!(status, 200, "{response}");
        let reload: ReloadResponse = serde_json::from_str(&response).unwrap();
        assert!(reload.swapped);
        assert_eq!(reload.generation, 2);
        assert!(reload.models.iter().all(|m| m.loaded));

        let (_, response) = route_live(
            &live,
            &request("POST", "/models/demo/features", body),
            &policy,
            None,
        );
        let after: FeaturesResponse = serde_json::from_str(&response).unwrap();
        assert_eq!(after.generation, 2);
        assert_ne!(
            before.features, after.features,
            "retrained model must answer differently"
        );

        let (_, response) = route_live(&live, &request("GET", "/models", ""), &policy, None);
        let models: ModelsResponse = serde_json::from_str(&response).unwrap();
        assert_eq!(models.generation, 2);

        let (_, response) = route_live(&live, &request("GET", "/statz", ""), &policy, None);
        let stats: BatchStatsResponse = serde_json::from_str(&response).unwrap();
        assert_eq!(stats.generation, 2);
        assert_eq!(stats.registry_swaps, 1);
        assert_eq!(stats.failed_reloads, 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn server_binds_ephemeral_port_and_shuts_down() {
        let server = Server::bind("127.0.0.1:0", registry(), 2)
            .unwrap()
            .with_parallel(ParallelPolicy::new(2));
        let addr = server.local_addr().unwrap();
        assert_ne!(addr.port(), 0);
        let handle = server.start().unwrap();
        assert_eq!(handle.addr(), addr);
        handle.shutdown();
    }

    #[test]
    fn server_with_pooled_policy_serves_and_shuts_down() {
        // Bind-time pool construction plus real requests through the pooled
        // inference path, answered by concurrent connection handlers
        // sharing one linalg worker pool.
        let server = Server::bind("127.0.0.1:0", registry(), 2)
            .unwrap()
            .with_parallel(
                ParallelPolicy::new(4)
                    .with_min_rows_per_thread(1)
                    .with_pool(true),
            );
        let addr = server.local_addr().unwrap();
        let handle = server.start().unwrap();
        let client = crate::Client::new(addr);
        let body = "{\"rows\":[[0.1,0.2,0.3,0.4],[1.0,1.1,1.2,1.3],[2.0,2.1,2.2,2.3]]}";
        let reference = route_with(
            &registry(),
            &request("POST", "/models/demo/features", body),
            &ParallelPolicy::serial(),
        );
        for _ in 0..4 {
            let response = client
                .request("POST", "/models/demo/features", body)
                .expect("pooled inference request");
            assert_eq!(response.status, 200);
            assert_eq!(response.body, reference.1);
        }
        handle.shutdown();
    }
}
