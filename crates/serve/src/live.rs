//! The live registry: hot-swappable model generations with zero-downtime
//! semantics.
//!
//! A [`LiveRegistry`] wraps the current [`ModelRegistry`] in an
//! [`Arc`]-swap cell: readers take a short mutex, clone the `Arc` and drop
//! the lock — no I/O, parsing or model math ever happens under it, so the
//! request hot path never blocks on a reload. Each swap installs a complete
//! new [`RegistryGeneration`] with a monotonically increasing generation
//! number; requests (and open micro-batch slots) that already resolved a
//! generation keep their `Arc`, so a swap can never tear a batch or fail an
//! in-flight request — the old generation simply drains and frees itself
//! when its last holder finishes.
//!
//! Reloads are **atomic per generation**: every artifact in the directory
//! must parse and validate or nothing swaps. A corrupt file leaves the old
//! generation serving and reports a structured per-model result list, so an
//! operator can see exactly which artifact blocked the rollout.

use crate::api::ModelLoadResult;
use crate::registry::{artifact_files, load_artifact, ModelRegistry};
use crate::Result;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// One immutable snapshot of the registry plus its generation number.
#[derive(Debug)]
pub struct RegistryGeneration {
    /// Monotonic generation counter: 1 for the initial load, +1 per swap.
    pub generation: u64,
    /// The models serving in this generation.
    pub registry: ModelRegistry,
}

/// Outcome of one [`LiveRegistry::reload`] attempt.
#[derive(Debug, Clone, PartialEq)]
pub struct ReloadOutcome {
    /// `true` iff a new generation was installed.
    pub swapped: bool,
    /// The generation serving after the attempt.
    pub generation: u64,
    /// Per-artifact load results for the scanned directory.
    pub models: Vec<ModelLoadResult>,
    /// Overall failure explanation when not swapped.
    pub error: Option<String>,
}

/// The hot-swappable registry cell shared by every server worker.
#[derive(Debug)]
pub struct LiveRegistry {
    /// The swap cell. Readers lock, clone the `Arc`, unlock — the lock is
    /// held for a pointer copy, never for artifact loading or inference.
    current: Mutex<Arc<RegistryGeneration>>,
    /// Serialises reload attempts so two concurrent `POST /admin/reload`
    /// calls cannot interleave their load-then-swap sequences.
    reload_lock: Mutex<()>,
    /// Artifact directory reloads re-scan; `None` for registries built in
    /// memory (reload then always rejects).
    source: Option<PathBuf>,
    /// Whether reloads quantize into the compact representation.
    compact: bool,
    swaps: AtomicU64,
    failed_reloads: AtomicU64,
}

impl LiveRegistry {
    /// Wraps an in-memory registry as generation 1, with no reload source.
    pub fn new(registry: ModelRegistry) -> Self {
        Self::with_source(registry, None, false)
    }

    /// Loads generation 1 from `dir` (in the representation selected by
    /// `compact`) and remembers the directory for future reloads.
    ///
    /// # Errors
    ///
    /// Propagates [`ModelRegistry::load_dir_with`] errors — unlike a reload,
    /// there is no previous generation to keep serving at startup.
    pub fn from_dir(dir: impl AsRef<Path>, compact: bool) -> Result<Self> {
        let dir = dir.as_ref();
        let registry = ModelRegistry::load_dir_with(dir, compact)?;
        Ok(Self::with_source(
            registry,
            Some(dir.to_path_buf()),
            compact,
        ))
    }

    fn with_source(registry: ModelRegistry, source: Option<PathBuf>, compact: bool) -> Self {
        Self {
            current: Mutex::new(Arc::new(RegistryGeneration {
                generation: 1,
                registry,
            })),
            reload_lock: Mutex::new(()),
            source,
            compact,
            swaps: AtomicU64::new(0),
            failed_reloads: AtomicU64::new(0),
        }
    }

    /// The generation currently serving. Cheap: a mutex-guarded `Arc` clone.
    pub fn current(&self) -> Arc<RegistryGeneration> {
        self.current.lock().unwrap().clone()
    }

    /// Current generation number.
    pub fn generation(&self) -> u64 {
        self.current().generation
    }

    /// Directory reloads re-scan, if one is configured.
    pub fn source(&self) -> Option<&Path> {
        self.source.as_deref()
    }

    /// `true` when reloads quantize into the compact representation.
    pub fn compact(&self) -> bool {
        self.compact
    }

    /// Successful swaps since construction.
    pub fn swaps(&self) -> u64 {
        self.swaps.load(Ordering::Relaxed)
    }

    /// Rejected reload attempts since construction.
    pub fn failed_reloads(&self) -> u64 {
        self.failed_reloads.load(Ordering::Relaxed)
    }

    /// Re-scans the source directory and atomically swaps in a new
    /// generation iff **every** artifact loads.
    ///
    /// All loading happens before the swap cell is touched; in-flight
    /// requests keep serving the old generation throughout, and on any
    /// failure (missing source, I/O error, corrupt or empty directory) the
    /// old generation stays current.
    pub fn reload(&self) -> ReloadOutcome {
        let _serialised = self.reload_lock.lock().unwrap();
        let Some(dir) = &self.source else {
            return self.rejected(
                Vec::new(),
                "hot reload is not enabled: server was started without an artifact directory"
                    .to_string(),
            );
        };
        let files = match artifact_files(dir) {
            Ok(files) => files,
            Err(e) => return self.rejected(Vec::new(), e.to_string()),
        };
        if files.is_empty() {
            return self.rejected(
                Vec::new(),
                format!("no .json artifacts found under `{}`", dir.display()),
            );
        }
        let mut models = Vec::with_capacity(files.len());
        let mut next = ModelRegistry::new();
        let mut failures = 0usize;
        for (name, path) in files {
            match load_artifact(&path, self.compact) {
                Ok(model) => {
                    models.push(ModelLoadResult {
                        name: name.clone(),
                        loaded: true,
                        message: None,
                    });
                    next.insert_model(name, model);
                }
                Err(e) => {
                    failures += 1;
                    models.push(ModelLoadResult {
                        name,
                        loaded: false,
                        message: Some(e.to_string()),
                    });
                }
            }
        }
        if failures > 0 {
            let plural = if failures == 1 { "" } else { "s" };
            return self.rejected(
                models,
                format!("{failures} artifact{plural} failed to load; kept old generation"),
            );
        }
        let generation = {
            let mut current = self.current.lock().unwrap();
            let generation = current.generation + 1;
            *current = Arc::new(RegistryGeneration {
                generation,
                registry: next,
            });
            generation
        };
        self.swaps.fetch_add(1, Ordering::Relaxed);
        ReloadOutcome {
            swapped: true,
            generation,
            models,
            error: None,
        }
    }

    fn rejected(&self, models: Vec<ModelLoadResult>, error: String) -> ReloadOutcome {
        self.failed_reloads.fetch_add(1, Ordering::Relaxed);
        ReloadOutcome {
            swapped: false,
            generation: self.generation(),
            models,
            error: Some(error),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use sls_rbm_core::{ModelKind, PipelineArtifact, RbmParams};
    use std::sync::atomic::{AtomicU64, Ordering};

    fn artifact(seed: u64) -> PipelineArtifact {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        PipelineArtifact::from_params(RbmParams::init(4, 2, &mut rng), ModelKind::Rbm)
    }

    fn unique_dir(tag: &str) -> PathBuf {
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "sls_serve_live_{tag}_{}_{}",
            std::process::id(),
            COUNTER.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn in_memory_registry_rejects_reload() {
        let mut registry = ModelRegistry::new();
        registry.insert("demo", artifact(1));
        let live = LiveRegistry::new(registry);
        assert_eq!(live.generation(), 1);
        let outcome = live.reload();
        assert!(!outcome.swapped);
        assert_eq!(outcome.generation, 1);
        assert!(outcome.error.unwrap().contains("not enabled"));
        assert_eq!(live.failed_reloads(), 1);
        assert_eq!(live.swaps(), 0);
    }

    #[test]
    fn reload_swaps_generation_and_bumps_counters() {
        let dir = unique_dir("swap");
        artifact(1).save(dir.join("demo.json")).unwrap();
        let live = LiveRegistry::from_dir(&dir, false).unwrap();
        assert_eq!(live.generation(), 1);
        artifact(2).save(dir.join("demo.json")).unwrap();
        artifact(3).save(dir.join("extra.json")).unwrap();
        let outcome = live.reload();
        assert!(outcome.swapped);
        assert_eq!(outcome.generation, 2);
        assert!(outcome.error.is_none());
        assert_eq!(outcome.models.len(), 2);
        assert!(outcome.models.iter().all(|m| m.loaded));
        let current = live.current();
        assert_eq!(current.generation, 2);
        assert_eq!(current.registry.len(), 2);
        assert_eq!(live.swaps(), 1);
        assert_eq!(live.failed_reloads(), 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_artifact_rejects_reload_and_keeps_old_generation() {
        let dir = unique_dir("corrupt");
        artifact(1).save(dir.join("demo.json")).unwrap();
        let live = LiveRegistry::from_dir(&dir, false).unwrap();
        let before = live.current();
        std::fs::write(dir.join("broken.json"), "{ not json }").unwrap();
        let outcome = live.reload();
        assert!(!outcome.swapped);
        assert_eq!(outcome.generation, 1);
        assert!(outcome.error.unwrap().contains("1 artifact failed"));
        let broken = outcome.models.iter().find(|m| m.name == "broken").unwrap();
        assert!(!broken.loaded);
        assert!(broken.message.is_some());
        let demo = outcome.models.iter().find(|m| m.name == "demo").unwrap();
        assert!(demo.loaded);
        // The serving snapshot is untouched — same Arc, same generation.
        let after = live.current();
        assert!(Arc::ptr_eq(&before, &after));
        assert_eq!(live.failed_reloads(), 1);
        // Removing the corrupt file heals the next reload.
        std::fs::remove_file(dir.join("broken.json")).unwrap();
        assert!(live.reload().swapped);
        assert_eq!(live.generation(), 2);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn emptied_directory_rejects_reload() {
        let dir = unique_dir("emptied");
        artifact(1).save(dir.join("demo.json")).unwrap();
        let live = LiveRegistry::from_dir(&dir, false).unwrap();
        std::fs::remove_file(dir.join("demo.json")).unwrap();
        let outcome = live.reload();
        assert!(!outcome.swapped);
        assert!(outcome.error.unwrap().contains("no .json artifacts"));
        assert_eq!(live.current().registry.len(), 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn compact_mode_survives_reload() {
        let dir = unique_dir("compact");
        artifact(1).save(dir.join("demo.json")).unwrap();
        let live = LiveRegistry::from_dir(&dir, true).unwrap();
        assert!(live.compact());
        assert!(live.current().registry.get("demo").unwrap().is_compact());
        artifact(2).save(dir.join("demo.json")).unwrap();
        assert!(live.reload().swapped);
        assert!(live.current().registry.get("demo").unwrap().is_compact());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn old_generation_survives_while_held() {
        let dir = unique_dir("drain");
        artifact(1).save(dir.join("demo.json")).unwrap();
        let live = LiveRegistry::from_dir(&dir, false).unwrap();
        let held = live.current();
        let model_before = held.registry.get("demo").unwrap();
        artifact(2).save(dir.join("demo.json")).unwrap();
        assert!(live.reload().swapped);
        // The held snapshot still resolves the exact same model instance.
        assert!(Arc::ptr_eq(
            &model_before,
            &held.registry.get("demo").unwrap()
        ));
        assert_ne!(held.generation, live.generation());
    }
}
