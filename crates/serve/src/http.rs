//! Minimal HTTP/1.1 framing over `std` I/O.
//!
//! The server and client speak a deliberate subset of HTTP/1.1 — enough for
//! JSON request/response bodies without pulling in any dependency:
//!
//! * one request per connection (`Connection: close` on every response);
//! * bodies are framed by `Content-Length` (no chunked encoding);
//! * header names are matched case-insensitively, values are trimmed.

use crate::{Result, ServeError};
use std::io::{BufRead, Read, Write};

/// Upper bound on accepted body sizes (16 MiB) — a guard against malformed
/// or hostile `Content-Length` values, far above any legitimate request.
pub const MAX_BODY_BYTES: usize = 16 * 1024 * 1024;

/// Upper bound on a single request/status/header line (8 KiB, the common
/// server default) — without it a client that never sends a newline could
/// grow a line buffer without limit.
pub const MAX_LINE_BYTES: usize = 8 * 1024;

/// Upper bound on the number of header lines in one message.
pub const MAX_HEADER_LINES: usize = 100;

/// A parsed HTTP request: method, path and raw body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Upper-case method, e.g. `GET` or `POST`.
    pub method: String,
    /// Request path, e.g. `/models/quick_demo/features`.
    pub path: String,
    /// Raw request body (empty when no `Content-Length` was sent).
    pub body: String,
}

/// A parsed HTTP response: status code and raw body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// HTTP status code, e.g. `200`.
    pub status: u16,
    /// Raw response body.
    pub body: String,
}

impl Response {
    /// `true` for 2xx statuses.
    pub fn is_success(&self) -> bool {
        (200..300).contains(&self.status)
    }
}

fn protocol_error(message: impl Into<String>) -> ServeError {
    ServeError::Protocol {
        message: message.into(),
    }
}

/// Reads one `\n`-terminated line of at most [`MAX_LINE_BYTES`]. Returns
/// `Ok(None)` on a cleanly closed stream.
fn read_limited_line(reader: &mut impl BufRead) -> Result<Option<String>> {
    let mut line = String::new();
    // UFCS so `take` borrows the reader (`Self = &mut R`) instead of
    // resolving through auto-deref and moving the reader itself.
    let read = Read::take(&mut *reader, MAX_LINE_BYTES as u64).read_line(&mut line)?;
    if read == 0 {
        return Ok(None);
    }
    if read == MAX_LINE_BYTES && !line.ends_with('\n') {
        return Err(protocol_error(format!(
            "line exceeds the {MAX_LINE_BYTES}-byte limit"
        )));
    }
    Ok(Some(line))
}

/// Reads headers until the blank line, returning the `Content-Length` value
/// (0 when absent).
///
/// Duplicate `Content-Length` headers with *identical* values are collapsed,
/// duplicates with *conflicting* values are rejected — the two behaviours
/// RFC 7230 §3.3.2 permits. Letting a later value silently win is the
/// request-smuggling primitive: two parsers disagreeing on where a body ends
/// disagree on where the next request starts.
fn read_content_length(reader: &mut impl BufRead) -> Result<usize> {
    let mut content_length: Option<usize> = None;
    for _ in 0..MAX_HEADER_LINES {
        let Some(line) = read_limited_line(reader)? else {
            return Err(protocol_error("connection closed inside headers"));
        };
        let line = line.trim_end();
        if line.is_empty() {
            return Ok(content_length.unwrap_or(0));
        }
        if let Some((name, value)) = line.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                let parsed: usize = value
                    .trim()
                    .parse()
                    .map_err(|_| protocol_error(format!("invalid Content-Length `{value}`")))?;
                if parsed > MAX_BODY_BYTES {
                    return Err(protocol_error(format!(
                        "body of {parsed} bytes exceeds the {MAX_BODY_BYTES}-byte limit"
                    )));
                }
                match content_length {
                    Some(existing) if existing != parsed => {
                        return Err(protocol_error(format!(
                            "conflicting Content-Length headers ({existing} vs {parsed})"
                        )));
                    }
                    _ => content_length = Some(parsed),
                }
            }
        }
    }
    Err(protocol_error(format!(
        "more than {MAX_HEADER_LINES} header lines"
    )))
}

/// Reads exactly `len` bytes of UTF-8 body.
fn read_body(reader: &mut impl BufRead, len: usize) -> Result<String> {
    let mut body = vec![0u8; len];
    reader.read_exact(&mut body)?;
    String::from_utf8(body).map_err(|_| protocol_error("body is not valid UTF-8"))
}

/// Parses one request (request line, headers, `Content-Length` body) from
/// `reader`.
///
/// # Errors
///
/// Returns [`ServeError::Protocol`] on malformed framing and I/O errors on
/// truncated streams.
pub fn read_request(reader: &mut impl BufRead) -> Result<Request> {
    let Some(request_line) = read_limited_line(reader)? else {
        return Err(protocol_error("connection closed before request line"));
    };
    let mut parts = request_line.split_whitespace();
    let (Some(method), Some(path)) = (parts.next(), parts.next()) else {
        return Err(protocol_error(format!(
            "malformed request line `{}`",
            request_line.trim_end()
        )));
    };
    let method = method.to_ascii_uppercase();
    let path = path.to_string();
    let content_length = read_content_length(reader)?;
    let body = read_body(reader, content_length)?;
    Ok(Request { method, path, body })
}

/// Parses one response (status line, headers, `Content-Length` body) from
/// `reader`.
///
/// # Errors
///
/// Returns [`ServeError::Protocol`] on malformed framing and I/O errors on
/// truncated streams.
pub fn read_response(reader: &mut impl BufRead) -> Result<Response> {
    let Some(status_line) = read_limited_line(reader)? else {
        return Err(protocol_error("connection closed before status line"));
    };
    let status = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|code| code.parse().ok())
        .ok_or_else(|| {
            protocol_error(format!(
                "malformed status line `{}`",
                status_line.trim_end()
            ))
        })?;
    let content_length = read_content_length(reader)?;
    let body = read_body(reader, content_length)?;
    Ok(Response { status, body })
}

/// Standard reason phrase for the status codes this crate emits.
pub fn reason_phrase(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        500 => "Internal Server Error",
        _ => "Unknown",
    }
}

/// Writes a complete `application/json` response with `Connection: close`.
///
/// # Errors
///
/// Propagates I/O errors.
pub fn write_response(writer: &mut impl Write, status: u16, body: &str) -> Result<()> {
    write!(
        writer,
        "HTTP/1.1 {status} {}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        reason_phrase(status),
        body.len(),
    )?;
    writer.flush()?;
    Ok(())
}

/// Writes a complete request with an optional JSON body and
/// `Connection: close`.
///
/// # Errors
///
/// Propagates I/O errors.
pub fn write_request(writer: &mut impl Write, method: &str, path: &str, body: &str) -> Result<()> {
    write!(
        writer,
        "{method} {path} HTTP/1.1\r\nHost: sls-serve\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len(),
    )?;
    writer.flush()?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_round_trip() {
        let mut wire = Vec::new();
        write_request(&mut wire, "POST", "/models/m/assign", "{\"rows\":[[1.0]]}").unwrap();
        let req = read_request(&mut wire.as_slice()).unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/models/m/assign");
        assert_eq!(req.body, "{\"rows\":[[1.0]]}");
    }

    #[test]
    fn response_round_trip() {
        let mut wire = Vec::new();
        write_response(&mut wire, 200, "{\"status\":\"ok\"}").unwrap();
        let resp = read_response(&mut wire.as_slice()).unwrap();
        assert_eq!(resp.status, 200);
        assert!(resp.is_success());
        assert_eq!(resp.body, "{\"status\":\"ok\"}");
    }

    #[test]
    fn get_without_body_parses() {
        let wire = b"GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n";
        let req = read_request(&mut wire.as_slice()).unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/healthz");
        assert!(req.body.is_empty());
    }

    #[test]
    fn header_names_are_case_insensitive() {
        let wire = b"POST /x HTTP/1.1\r\ncontent-LENGTH: 2\r\n\r\nhi";
        let req = read_request(&mut wire.as_slice()).unwrap();
        assert_eq!(req.body, "hi");
    }

    #[test]
    fn malformed_framing_errors() {
        assert!(read_request(&mut b"".as_slice()).is_err());
        assert!(read_request(&mut b"GARBAGE\r\n\r\n".as_slice()).is_err());
        assert!(
            read_request(&mut b"POST /x HTTP/1.1\r\nContent-Length: abc\r\n\r\n".as_slice())
                .is_err()
        );
        // Declared body longer than the stream.
        assert!(
            read_request(&mut b"POST /x HTTP/1.1\r\nContent-Length: 10\r\n\r\nhi".as_slice())
                .is_err()
        );
        assert!(read_response(&mut b"HTTP/1.1 huh\r\n\r\n".as_slice()).is_err());
    }

    #[test]
    fn unterminated_giant_line_is_rejected() {
        // A "request" that never sends a newline must fail at the line
        // limit instead of buffering without bound.
        let wire = vec![b'A'; MAX_LINE_BYTES + 1];
        assert!(read_request(&mut wire.as_slice()).is_err());
        let huge_header = [
            b"POST /x HTTP/1.1\r\nX-Junk: ".to_vec(),
            vec![b'j'; MAX_LINE_BYTES],
        ]
        .concat();
        assert!(read_request(&mut huge_header.as_slice()).is_err());
    }

    #[test]
    fn conflicting_duplicate_content_length_is_rejected() {
        // Request-smuggling guard (RFC 7230 §3.3.2): two different
        // Content-Length values mean two parsers can disagree on where the
        // body ends — reject instead of letting the last value win.
        let wire = b"POST /x HTTP/1.1\r\nContent-Length: 2\r\nContent-Length: 5\r\n\r\nhi~~~";
        let err = read_request(&mut wire.as_slice()).unwrap_err();
        assert!(err.to_string().contains("conflicting Content-Length"));
        // Same on the response side.
        let wire = b"HTTP/1.1 200 OK\r\nContent-Length: 1\r\nContent-Length: 2\r\n\r\nab";
        assert!(read_response(&mut wire.as_slice()).is_err());
    }

    #[test]
    fn identical_duplicate_content_length_is_collapsed() {
        let wire = b"POST /x HTTP/1.1\r\nContent-Length: 2\r\ncontent-length: 2\r\n\r\nhi";
        let req = read_request(&mut wire.as_slice()).unwrap();
        assert_eq!(req.body, "hi");
    }

    #[test]
    fn comma_joined_content_length_is_rejected() {
        // `Content-Length: 5, 5` (folded duplicates) is not a valid usize —
        // it must error rather than parse as something surprising.
        let wire = b"POST /x HTTP/1.1\r\nContent-Length: 5, 5\r\n\r\nhello";
        assert!(read_request(&mut wire.as_slice()).is_err());
    }

    #[test]
    fn too_many_header_lines_are_rejected() {
        let mut wire = b"GET /healthz HTTP/1.1\r\n".to_vec();
        for i in 0..=MAX_HEADER_LINES {
            wire.extend_from_slice(format!("X-H{i}: v\r\n").as_bytes());
        }
        wire.extend_from_slice(b"\r\n");
        assert!(read_request(&mut wire.as_slice()).is_err());
    }

    #[test]
    fn oversized_body_is_rejected() {
        let wire = format!(
            "POST /x HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY_BYTES + 1
        );
        assert!(read_request(&mut wire.as_bytes()).is_err());
    }

    #[test]
    fn reason_phrases_cover_emitted_codes() {
        for (code, phrase) in [(200, "OK"), (400, "Bad Request"), (404, "Not Found")] {
            assert_eq!(reason_phrase(code), phrase);
        }
        assert_eq!(reason_phrase(418), "Unknown");
    }
}
