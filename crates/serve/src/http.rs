//! Minimal HTTP/1.1 framing over `std` I/O.
//!
//! The server and client speak a deliberate subset of HTTP/1.1 — enough for
//! JSON request/response bodies without pulling in any dependency:
//!
//! * persistent connections: HTTP/1.1 keep-alive semantics (`Connection:
//!   keep-alive`/`close` tokens honoured, HTTP/1.0 defaults to close);
//! * bodies are framed by `Content-Length` (no chunked encoding);
//! * header names are matched case-insensitively, values are trimmed;
//! * oversized declared bodies are rejected *before* buffering — the reader
//!   reports [`RequestRead::TooLarge`] instead of allocating, and drains the
//!   declared bytes when that is cheap enough to keep the connection's
//!   framing valid for the next request.

use crate::{Result, ServeError};
use std::io::{BufRead, Read, Write};

/// Default upper bound on accepted body sizes (16 MiB) — a guard against
/// malformed or hostile `Content-Length` values, far above any legitimate
/// request. Servers can lower it per-connection via [`HttpLimits`].
pub const MAX_BODY_BYTES: usize = 16 * 1024 * 1024;

/// Upper bound on a single request/status/header line (8 KiB, the common
/// server default) — without it a client that never sends a newline could
/// grow a line buffer without limit.
pub const MAX_LINE_BYTES: usize = 8 * 1024;

/// Upper bound on the number of header lines in one message.
pub const MAX_HEADER_LINES: usize = 100;

/// Body-size limits applied while reading a request.
///
/// `max_body_bytes` is the largest body that will be buffered; a request
/// declaring more is answered without ever allocating for it. `drain_limit`
/// bounds how many declared-but-rejected bytes the reader is willing to
/// consume to keep a keep-alive connection's framing valid — a declared
/// body beyond it forces the connection closed instead of reading
/// arbitrarily many bytes into the void.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HttpLimits {
    /// Largest body that will be buffered.
    pub max_body_bytes: usize,
    /// Largest rejected body that will still be drained (consumed and
    /// discarded) so the connection can serve the next request.
    pub drain_limit: usize,
}

impl HttpLimits {
    /// Limits with the given body cap and a drain allowance of 4× the cap.
    pub fn new(max_body_bytes: usize) -> Self {
        Self {
            max_body_bytes,
            drain_limit: max_body_bytes.saturating_mul(4),
        }
    }
}

impl Default for HttpLimits {
    fn default() -> Self {
        Self::new(MAX_BODY_BYTES)
    }
}

/// A parsed HTTP request: method, path and raw body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Upper-case method, e.g. `GET` or `POST`.
    pub method: String,
    /// Request path, e.g. `/models/quick_demo/features`.
    pub path: String,
    /// Raw request body (empty when no `Content-Length` was sent).
    pub body: String,
}

/// Outcome of reading one request under explicit [`HttpLimits`].
#[derive(Debug)]
pub enum RequestRead {
    /// A complete request, plus whether the client asked for the connection
    /// to close after the response (`Connection: close`, or HTTP/1.0
    /// without `keep-alive`).
    Complete {
        /// The parsed request.
        request: Request,
        /// `true` when the client asked the connection to close.
        close: bool,
    },
    /// The declared `Content-Length` exceeds `max_body_bytes`. The body was
    /// **not** buffered; `drained` reports whether the declared bytes were
    /// consumed (so the connection framing is still valid) or left on the
    /// wire (connection must close).
    TooLarge {
        /// The `Content-Length` the client declared.
        declared: usize,
        /// Whether the declared body was consumed and discarded.
        drained: bool,
        /// Whether the client asked the connection to close anyway.
        close: bool,
    },
}

/// A parsed HTTP response: status code and raw body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// HTTP status code, e.g. `200`.
    pub status: u16,
    /// Raw response body.
    pub body: String,
}

impl Response {
    /// `true` for 2xx statuses.
    pub fn is_success(&self) -> bool {
        (200..300).contains(&self.status)
    }
}

fn protocol_error(message: impl Into<String>) -> ServeError {
    ServeError::Protocol {
        message: message.into(),
    }
}

/// Reads one `\n`-terminated line of at most [`MAX_LINE_BYTES`]. Returns
/// `Ok(None)` on a cleanly closed stream.
fn read_limited_line(reader: &mut impl BufRead) -> Result<Option<String>> {
    let mut line = String::new();
    // UFCS so `take` borrows the reader (`Self = &mut R`) instead of
    // resolving through auto-deref and moving the reader itself.
    let read = Read::take(&mut *reader, MAX_LINE_BYTES as u64).read_line(&mut line)?;
    if read == 0 {
        return Ok(None);
    }
    if read == MAX_LINE_BYTES && !line.ends_with('\n') {
        return Err(protocol_error(format!(
            "line exceeds the {MAX_LINE_BYTES}-byte limit"
        )));
    }
    Ok(Some(line))
}

/// The header fields this crate acts on, collected from one header block.
#[derive(Debug, Default)]
struct HeaderBlock {
    content_length: Option<usize>,
    /// A `Connection` header carried a `close` token.
    close: bool,
    /// A `Connection` header carried a `keep-alive` token.
    keep_alive: bool,
}

/// Reads headers until the blank line.
///
/// Duplicate `Content-Length` headers with *identical* values are collapsed,
/// duplicates with *conflicting* values are rejected — the two behaviours
/// RFC 7230 §3.3.2 permits. Letting a later value silently win is the
/// request-smuggling primitive: two parsers disagreeing on where a body ends
/// disagree on where the next request starts.
fn read_header_block(reader: &mut impl BufRead) -> Result<HeaderBlock> {
    let mut block = HeaderBlock::default();
    for _ in 0..MAX_HEADER_LINES {
        let Some(line) = read_limited_line(reader)? else {
            return Err(protocol_error("connection closed inside headers"));
        };
        let line = line.trim_end();
        if line.is_empty() {
            return Ok(block);
        }
        if let Some((name, value)) = line.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                let parsed: usize = value
                    .trim()
                    .parse()
                    .map_err(|_| protocol_error(format!("invalid Content-Length `{value}`")))?;
                match block.content_length {
                    Some(existing) if existing != parsed => {
                        return Err(protocol_error(format!(
                            "conflicting Content-Length headers ({existing} vs {parsed})"
                        )));
                    }
                    _ => block.content_length = Some(parsed),
                }
            } else if name.eq_ignore_ascii_case("connection") {
                // `Connection` is a comma-separated token list; only the
                // two tokens this subset understands matter.
                for token in value.split(',') {
                    let token = token.trim();
                    if token.eq_ignore_ascii_case("close") {
                        block.close = true;
                    } else if token.eq_ignore_ascii_case("keep-alive") {
                        block.keep_alive = true;
                    }
                }
            }
        }
    }
    Err(protocol_error(format!(
        "more than {MAX_HEADER_LINES} header lines"
    )))
}

/// Reads exactly `len` bytes of UTF-8 body.
fn read_body(reader: &mut impl BufRead, len: usize) -> Result<String> {
    let mut body = vec![0u8; len];
    reader.read_exact(&mut body)?;
    String::from_utf8(body).map_err(|_| protocol_error("body is not valid UTF-8"))
}

/// Parses one request (request line, headers, `Content-Length` body) from
/// `reader` under the default body limit, dropping the connection metadata.
///
/// # Errors
///
/// Returns [`ServeError::Protocol`] on malformed framing, on a declared body
/// over [`MAX_BODY_BYTES`], and I/O errors on truncated streams.
pub fn read_request(reader: &mut impl BufRead) -> Result<Request> {
    // No draining: this entry point is for one-shot parsing where the
    // stream is not reused after an oversized declaration.
    let limits = HttpLimits {
        max_body_bytes: MAX_BODY_BYTES,
        drain_limit: 0,
    };
    match read_request_limited(reader, &limits)? {
        RequestRead::Complete { request, .. } => Ok(request),
        RequestRead::TooLarge { declared, .. } => Err(protocol_error(format!(
            "body of {declared} bytes exceeds the {MAX_BODY_BYTES}-byte limit"
        ))),
    }
}

/// Parses one request under explicit [`HttpLimits`], reporting keep-alive
/// metadata and oversized bodies instead of buffering them.
///
/// An oversized declared body is *never* allocated. When the declaration is
/// within `limits.drain_limit` the body bytes are read and discarded so the
/// connection stays usable ([`RequestRead::TooLarge`] with `drained: true`);
/// beyond it the bytes are left on the wire and the caller must close.
///
/// # Errors
///
/// Returns [`ServeError::Protocol`] on malformed framing and I/O errors on
/// truncated streams.
pub fn read_request_limited(reader: &mut impl BufRead, limits: &HttpLimits) -> Result<RequestRead> {
    let Some(request_line) = read_limited_line(reader)? else {
        return Err(protocol_error("connection closed before request line"));
    };
    let mut parts = request_line.split_whitespace();
    let (Some(method), Some(path)) = (parts.next(), parts.next()) else {
        return Err(protocol_error(format!(
            "malformed request line `{}`",
            request_line.trim_end()
        )));
    };
    let method = method.to_ascii_uppercase();
    let path = path.to_string();
    // HTTP/1.0 defaults to close, everything else (HTTP/1.1 or a bare
    // request line) to keep-alive.
    let http10 = parts
        .next()
        .is_some_and(|v| v.eq_ignore_ascii_case("HTTP/1.0"));
    let block = read_header_block(reader)?;
    let close = block.close || (http10 && !block.keep_alive);
    let declared = block.content_length.unwrap_or(0);
    if declared > limits.max_body_bytes {
        let drained = declared <= limits.drain_limit && drain_exact(reader, declared);
        return Ok(RequestRead::TooLarge {
            declared,
            drained,
            close,
        });
    }
    let body = read_body(reader, declared)?;
    Ok(RequestRead::Complete {
        request: Request { method, path, body },
        close,
    })
}

/// Consumes exactly `len` bytes from `reader` into the void, returning
/// whether all of them arrived.
fn drain_exact(reader: &mut impl BufRead, len: usize) -> bool {
    std::io::copy(
        &mut Read::take(&mut *reader, len as u64),
        &mut std::io::sink(),
    )
    .map(|n| n == len as u64)
    .unwrap_or(false)
}

/// Parses one response (status line, headers, `Content-Length` body) from
/// `reader`, also returning whether the server signalled that the
/// connection closes after this response.
///
/// # Errors
///
/// Returns [`ServeError::Protocol`] on malformed framing and I/O errors on
/// truncated streams.
pub fn read_response_meta(reader: &mut impl BufRead) -> Result<(Response, bool)> {
    let Some(status_line) = read_limited_line(reader)? else {
        return Err(protocol_error("connection closed before status line"));
    };
    let mut parts = status_line.split_whitespace();
    let version = parts.next().unwrap_or("");
    let status = parts
        .next()
        .and_then(|code| code.parse().ok())
        .ok_or_else(|| {
            protocol_error(format!(
                "malformed status line `{}`",
                status_line.trim_end()
            ))
        })?;
    let http10 = version.eq_ignore_ascii_case("HTTP/1.0");
    let block = read_header_block(reader)?;
    let len = block.content_length.unwrap_or(0);
    if len > MAX_BODY_BYTES {
        return Err(protocol_error(format!(
            "body of {len} bytes exceeds the {MAX_BODY_BYTES}-byte limit"
        )));
    }
    let body = read_body(reader, len)?;
    let close = block.close || (http10 && !block.keep_alive);
    Ok((Response { status, body }, close))
}

/// Parses one response, dropping the connection metadata.
///
/// # Errors
///
/// Same as [`read_response_meta`].
pub fn read_response(reader: &mut impl BufRead) -> Result<Response> {
    read_response_meta(reader).map(|(response, _)| response)
}

/// Standard reason phrase for the status codes this crate emits.
pub fn reason_phrase(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        413 => "Payload Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

fn connection_token(keep_alive: bool) -> &'static str {
    if keep_alive {
        "keep-alive"
    } else {
        "close"
    }
}

/// Writes a complete `application/json` response, advertising keep-alive or
/// close in the `Connection` header.
///
/// # Errors
///
/// Propagates I/O errors.
pub fn write_response_keep_alive(
    writer: &mut impl Write,
    status: u16,
    body: &str,
    keep_alive: bool,
) -> Result<()> {
    // One buffered write per message: `write!` straight to a socket emits
    // every format fragment as its own TCP segment, and on a long-lived
    // connection Nagle + delayed ACK turn those fragments into ~40ms
    // stalls (fresh connections hide this behind TCP quick-ACK mode, which
    // is why a connection-per-request server never notices).
    let message = format!(
        "HTTP/1.1 {status} {}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: {}\r\n\r\n{body}",
        reason_phrase(status),
        body.len(),
        connection_token(keep_alive),
    );
    writer.write_all(message.as_bytes())?;
    writer.flush()?;
    Ok(())
}

/// Writes a complete `application/json` response with `Connection: close`.
///
/// # Errors
///
/// Propagates I/O errors.
pub fn write_response(writer: &mut impl Write, status: u16, body: &str) -> Result<()> {
    write_response_keep_alive(writer, status, body, false)
}

/// Writes a complete request with an optional JSON body, advertising
/// keep-alive or close in the `Connection` header.
///
/// # Errors
///
/// Propagates I/O errors.
pub fn write_request_keep_alive(
    writer: &mut impl Write,
    method: &str,
    path: &str,
    body: &str,
    keep_alive: bool,
) -> Result<()> {
    // Single buffered write — see `write_response_keep_alive` for why.
    let message = format!(
        "{method} {path} HTTP/1.1\r\nHost: sls-serve\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: {}\r\n\r\n{body}",
        body.len(),
        connection_token(keep_alive),
    );
    writer.write_all(message.as_bytes())?;
    writer.flush()?;
    Ok(())
}

/// Writes a complete request with an optional JSON body and
/// `Connection: close`.
///
/// # Errors
///
/// Propagates I/O errors.
pub fn write_request(writer: &mut impl Write, method: &str, path: &str, body: &str) -> Result<()> {
    write_request_keep_alive(writer, method, path, body, false)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_round_trip() {
        let mut wire = Vec::new();
        write_request(&mut wire, "POST", "/models/m/assign", "{\"rows\":[[1.0]]}").unwrap();
        let req = read_request(&mut wire.as_slice()).unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/models/m/assign");
        assert_eq!(req.body, "{\"rows\":[[1.0]]}");
    }

    #[test]
    fn response_round_trip() {
        let mut wire = Vec::new();
        write_response(&mut wire, 200, "{\"status\":\"ok\"}").unwrap();
        let resp = read_response(&mut wire.as_slice()).unwrap();
        assert_eq!(resp.status, 200);
        assert!(resp.is_success());
        assert_eq!(resp.body, "{\"status\":\"ok\"}");
    }

    #[test]
    fn keep_alive_round_trip_reports_metadata() {
        let mut wire = Vec::new();
        write_request_keep_alive(&mut wire, "GET", "/healthz", "", true).unwrap();
        match read_request_limited(&mut wire.as_slice(), &HttpLimits::default()).unwrap() {
            RequestRead::Complete { request, close } => {
                assert_eq!(request.method, "GET");
                assert!(!close, "keep-alive request must not ask to close");
            }
            other => panic!("expected a complete request, got {other:?}"),
        }
        let mut wire = Vec::new();
        write_response_keep_alive(&mut wire, 200, "{}", true).unwrap();
        let (resp, close) = read_response_meta(&mut wire.as_slice()).unwrap();
        assert_eq!(resp.status, 200);
        assert!(!close);
        let mut wire = Vec::new();
        write_response_keep_alive(&mut wire, 200, "{}", false).unwrap();
        let (_, close) = read_response_meta(&mut wire.as_slice()).unwrap();
        assert!(close);
    }

    #[test]
    fn connection_close_token_is_detected() {
        let wire = b"POST /x HTTP/1.1\r\nConnection: Close\r\nContent-Length: 2\r\n\r\nhi";
        match read_request_limited(&mut wire.as_slice(), &HttpLimits::default()).unwrap() {
            RequestRead::Complete { close, .. } => assert!(close),
            other => panic!("expected a complete request, got {other:?}"),
        }
        // Token lists are scanned, not compared whole.
        let wire = b"GET /x HTTP/1.1\r\nConnection: foo, close\r\n\r\n";
        match read_request_limited(&mut wire.as_slice(), &HttpLimits::default()).unwrap() {
            RequestRead::Complete { close, .. } => assert!(close),
            other => panic!("expected a complete request, got {other:?}"),
        }
    }

    #[test]
    fn http10_defaults_to_close_unless_keep_alive() {
        let wire = b"GET /healthz HTTP/1.0\r\n\r\n";
        match read_request_limited(&mut wire.as_slice(), &HttpLimits::default()).unwrap() {
            RequestRead::Complete { close, .. } => assert!(close),
            other => panic!("expected a complete request, got {other:?}"),
        }
        let wire = b"GET /healthz HTTP/1.0\r\nConnection: keep-alive\r\n\r\n";
        match read_request_limited(&mut wire.as_slice(), &HttpLimits::default()).unwrap() {
            RequestRead::Complete { close, .. } => assert!(!close),
            other => panic!("expected a complete request, got {other:?}"),
        }
    }

    #[test]
    fn get_without_body_parses() {
        let wire = b"GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n";
        let req = read_request(&mut wire.as_slice()).unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/healthz");
        assert!(req.body.is_empty());
    }

    #[test]
    fn header_names_are_case_insensitive() {
        let wire = b"POST /x HTTP/1.1\r\ncontent-LENGTH: 2\r\n\r\nhi";
        let req = read_request(&mut wire.as_slice()).unwrap();
        assert_eq!(req.body, "hi");
    }

    #[test]
    fn malformed_framing_errors() {
        assert!(read_request(&mut b"".as_slice()).is_err());
        assert!(read_request(&mut b"GARBAGE\r\n\r\n".as_slice()).is_err());
        assert!(
            read_request(&mut b"POST /x HTTP/1.1\r\nContent-Length: abc\r\n\r\n".as_slice())
                .is_err()
        );
        // Declared body longer than the stream.
        assert!(
            read_request(&mut b"POST /x HTTP/1.1\r\nContent-Length: 10\r\n\r\nhi".as_slice())
                .is_err()
        );
        assert!(read_response(&mut b"HTTP/1.1 huh\r\n\r\n".as_slice()).is_err());
    }

    #[test]
    fn unterminated_giant_line_is_rejected() {
        // A "request" that never sends a newline must fail at the line
        // limit instead of buffering without bound.
        let wire = vec![b'A'; MAX_LINE_BYTES + 1];
        assert!(read_request(&mut wire.as_slice()).is_err());
        let huge_header = [
            b"POST /x HTTP/1.1\r\nX-Junk: ".to_vec(),
            vec![b'j'; MAX_LINE_BYTES],
        ]
        .concat();
        assert!(read_request(&mut huge_header.as_slice()).is_err());
    }

    #[test]
    fn conflicting_duplicate_content_length_is_rejected() {
        // Request-smuggling guard (RFC 7230 §3.3.2): two different
        // Content-Length values mean two parsers can disagree on where the
        // body ends — reject instead of letting the last value win.
        let wire = b"POST /x HTTP/1.1\r\nContent-Length: 2\r\nContent-Length: 5\r\n\r\nhi~~~";
        let err = read_request(&mut wire.as_slice()).unwrap_err();
        assert!(err.to_string().contains("conflicting Content-Length"));
        // Same on the response side.
        let wire = b"HTTP/1.1 200 OK\r\nContent-Length: 1\r\nContent-Length: 2\r\n\r\nab";
        assert!(read_response(&mut wire.as_slice()).is_err());
    }

    #[test]
    fn identical_duplicate_content_length_is_collapsed() {
        let wire = b"POST /x HTTP/1.1\r\nContent-Length: 2\r\ncontent-length: 2\r\n\r\nhi";
        let req = read_request(&mut wire.as_slice()).unwrap();
        assert_eq!(req.body, "hi");
    }

    #[test]
    fn comma_joined_content_length_is_rejected() {
        // `Content-Length: 5, 5` (folded duplicates) is not a valid usize —
        // it must error rather than parse as something surprising.
        let wire = b"POST /x HTTP/1.1\r\nContent-Length: 5, 5\r\n\r\nhello";
        assert!(read_request(&mut wire.as_slice()).is_err());
    }

    #[test]
    fn too_many_header_lines_are_rejected() {
        let mut wire = b"GET /healthz HTTP/1.1\r\n".to_vec();
        for i in 0..=MAX_HEADER_LINES {
            wire.extend_from_slice(format!("X-H{i}: v\r\n").as_bytes());
        }
        wire.extend_from_slice(b"\r\n");
        assert!(read_request(&mut wire.as_slice()).is_err());
    }

    #[test]
    fn oversized_body_is_rejected() {
        let wire = format!(
            "POST /x HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY_BYTES + 1
        );
        assert!(read_request(&mut wire.as_bytes()).is_err());
    }

    #[test]
    fn oversized_body_is_reported_without_buffering() {
        // Body over the limit but under the drain allowance: consumed so
        // the next request on the wire still parses.
        let limits = HttpLimits::new(8);
        let mut wire = b"POST /x HTTP/1.1\r\nContent-Length: 12\r\n\r\ntwelve bytesGET /healthz HTTP/1.1\r\n\r\n".to_vec();
        let mut reader = wire.as_slice();
        match read_request_limited(&mut reader, &limits).unwrap() {
            RequestRead::TooLarge {
                declared,
                drained,
                close,
            } => {
                assert_eq!(declared, 12);
                assert!(drained);
                assert!(!close);
            }
            other => panic!("expected TooLarge, got {other:?}"),
        }
        // The follow-up request is framed correctly after the drain.
        let next = read_request(&mut reader).unwrap();
        assert_eq!(next.path, "/healthz");

        // Beyond the drain allowance the bytes stay on the wire.
        wire = b"POST /x HTTP/1.1\r\nContent-Length: 1000\r\n\r\n".to_vec();
        match read_request_limited(&mut wire.as_slice(), &limits).unwrap() {
            RequestRead::TooLarge { drained, .. } => assert!(!drained),
            other => panic!("expected TooLarge, got {other:?}"),
        }
    }

    #[test]
    fn reason_phrases_cover_emitted_codes() {
        for (code, phrase) in [
            (200, "OK"),
            (400, "Bad Request"),
            (404, "Not Found"),
            (409, "Conflict"),
            (413, "Payload Too Large"),
            (503, "Service Unavailable"),
        ] {
            assert_eq!(reason_phrase(code), phrase);
        }
        assert_eq!(reason_phrase(418), "Unknown");
    }
}
