//! # sls-serve
//!
//! The workspace's model-serving subsystem: load trained
//! [`PipelineArtifact`](sls_rbm_core::PipelineArtifact)s into a
//! [`ModelRegistry`] and answer hidden-feature and cluster-assignment
//! requests over a dependency-free HTTP/1.1 JSON API.
//!
//! ## Layers
//!
//! * [`registry`] — named models shared immutably across workers, served at
//!   full precision or as f32-quantized compact artifacts (`--compact`).
//! * [`live`] — the hot-swap cell around the registry: `POST /admin/reload`
//!   (and an optional directory watcher) atomically installs a new
//!   generation while in-flight requests drain the old one; a corrupt
//!   artifact rejects the whole reload and the old generation keeps serving.
//! * [`server`] — `std::net::TcpListener` + acceptor threads dispatching to
//!   per-connection handler threads; HTTP/1.1 keep-alive with pipelining,
//!   bodies framed by `Content-Length` and bounded before buffering. Rows
//!   within a request are micro-batched through one matrix multiply.
//! * [`batch`] — the cross-request micro-batcher: concurrent requests for
//!   the same model coalesce into one fused launch inside a configurable
//!   latency window, bitwise identical to serving them one by one.
//! * [`client`] — a blocking client for the same API ([`Client`] per-request
//!   connections, [`Connection`] keep-alive reuse), used by the integration
//!   tests and the `loadgen` benchmark binary in `sls-bench`.
//! * [`router`] — the shard router (`sls-serve route`): rendezvous-hashes
//!   model names across a static replica set, forwards inference over
//!   pooled keep-alive connections with health-checked retry, fans
//!   `/admin/reload` out generation-consistently, and drains replicas
//!   without dropping a response.
//! * [`retrain`] — the one-command retrain path: chunked CSV ingestion →
//!   consensus supervision on a leading sample → checkpoint-resumable
//!   streaming training → artifact export into the watched directory, which
//!   the live layer then hot-swaps into serving.
//! * [`http`] — the shared minimal HTTP/1.1 framing.
//! * [`api`] — the JSON request/response body types.
//! * [`stats`] — latency percentile summaries for load tooling.
//!
//! ## Quickstart
//!
//! Train-and-export an artifact, then serve a directory of them:
//!
//! ```sh
//! sls-serve export --out artifacts
//! sls-serve serve --dir artifacts --addr 127.0.0.1:7878
//! curl -s -X POST 127.0.0.1:7878/models/quick_demo/assign \
//!      -d '{"rows": [[0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8]]}'
//! ```
//!
//! In-process:
//!
//! ```
//! use rand::SeedableRng;
//! use rand_chacha::ChaCha8Rng;
//! use sls_datasets::SyntheticBlobs;
//! use sls_rbm_core::{ModelKind, PipelineArtifact, SlsPipelineConfig};
//! use sls_serve::{Client, ModelRegistry, Server};
//!
//! let mut rng = ChaCha8Rng::seed_from_u64(1);
//! let ds = SyntheticBlobs::new(30, 4, 2).separation(6.0).generate(&mut rng);
//! let fitted = PipelineArtifact::fit(
//!     ModelKind::Grbm,
//!     SlsPipelineConfig::quick_demo().with_clusters(2).with_hidden(4),
//!     ds.features(),
//!     &mut rng,
//! )
//! .expect("training succeeds");
//!
//! let mut registry = ModelRegistry::new();
//! registry.insert("demo", fitted.artifact);
//! let handle = Server::bind("127.0.0.1:0", registry, 2)
//!     .expect("bind")
//!     .start()
//!     .expect("start");
//!
//! let client = Client::new(handle.addr());
//! let assignments = client
//!     .assign("demo", &[vec![0.1, 0.2, 0.3, 0.4]])
//!     .expect("request succeeds");
//! assert_eq!(assignments.len(), 1);
//! handle.shutdown();
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod api;
pub mod batch;
pub mod client;
mod error;
pub mod http;
pub mod live;
pub mod registry;
pub mod retrain;
pub mod router;
pub mod server;
pub mod stats;

pub use api::{
    AssignResponse, BatchStatsResponse, DrainResponse, ErrorResponse, FeaturesResponse,
    HealthResponse, ModelInfo, ModelLoadResult, ModelsResponse, ReloadResponse,
    ReplicaReloadResult, ReplicaStatz, RouterDrainResponse, RouterHealthResponse,
    RouterReloadResponse, RouterStatzResponse, RowsRequest,
};
pub use batch::{BatchConfig, BatchOutput, BatchStats, Batcher, Endpoint};
pub use client::{Client, ClientBuilder, Connection};
pub use error::ServeError;
pub use live::{LiveRegistry, RegistryGeneration, ReloadOutcome};
pub use registry::{ModelRegistry, ServingModel};
pub use retrain::{retrain, write_synthetic_csv, RetrainOptions, RetrainOutcome};
pub use router::{replica_rank, Router, RouterConfig, RouterHandle};
pub use server::{
    route, route_live, route_with, route_with_batcher, ServeOptions, Server, ServerHandle,
};
pub use stats::LatencySummary;

/// Result alias used across the crate.
pub type Result<T> = std::result::Result<T, ServeError>;
