//! `sls-serve`: train-and-export pipeline artifacts, or serve a directory of
//! them over HTTP.
//!
//! ```sh
//! sls-serve export --out artifacts [--name quick_demo] [--model sls-grbm]
//!                  [--instances 90] [--dims 8] [--clusters 3] [--seed 2023]
//!                  [--threads N] [--min-par-rows N] [--pool 0|1] [--simd 0|1]
//! sls-serve serve  --dir artifacts [--addr 127.0.0.1:7878] [--workers 8]
//!                  [--threads N] [--min-par-rows N] [--pool 0|1] [--simd 0|1]
//!                  [--keep-alive 0|1] [--keepalive-timeout-ms N]
//!                  [--max-conn-requests N] [--max-body-bytes N] [--max-conns N]
//!                  [--batch-window-us N] [--batch-max-rows N]
//!                  [--compact 0|1] [--watch-interval-ms N]
//! sls-serve route  --replicas HOST:PORT,HOST:PORT [--addr 127.0.0.1:7900]
//!                  [--replication 2] [--health-interval-ms 250]
//!                  [--upstream-timeout-ms 10000] [--workers 2] ...
//! ```
//!
//! `--threads` sets the parallel linalg policy (`0` = one thread per core);
//! `--min-par-rows` sets the serial cutover (matrices with fewer output rows
//! per thread stay serial); `--pool 1` routes fanned-out kernels through the
//! persistent worker pool (constructed at bind time, shared by all HTTP
//! workers) instead of spawning threads per call, also reachable via
//! `SLS_PARALLEL_POOL=1`; `--simd 0` selects the scalar fallback inner
//! loops (`SLS_SIMD=0`), default on. Results are bitwise identical for
//! every policy.
//!
//! Connection handling: `--keep-alive 0` restores one-request-per-connection;
//! `--keepalive-timeout-ms` bounds how long an idle connection is held
//! (default 5000); `--max-conn-requests` caps requests per connection
//! (default 1000); `--max-body-bytes` caps the request body (default 16 MiB,
//! env `SLS_MAX_BODY_BYTES`); `--max-conns` caps concurrent connections
//! (default 1024, excess answered 503). Cross-request micro-batching:
//! `--batch-window-us` (env `SLS_BATCH_WINDOW_US`, `0` = off, the default)
//! coalesces concurrent same-model requests inside that window into one
//! fused matmul, capped at `--batch-max-rows` rows (env
//! `SLS_BATCH_MAX_ROWS`, default 256) — responses stay bitwise identical to
//! unbatched serving.
//!
//! Registry lifecycle: `--compact 1` (env `SLS_COMPACT`) loads every
//! artifact into the f32-quantized compact representation (about half the
//! parameter bytes; features within `1e-6 · (1 + |x|)` of full precision);
//! `POST /admin/reload` re-scans `--dir` and atomically swaps in a new
//! registry generation without dropping in-flight requests or open
//! keep-alive connections — a corrupt artifact rejects the whole reload and
//! the old generation keeps serving; `--watch-interval-ms N` (0 = off, the
//! default) polls the directory fingerprint and triggers the same reload on
//! change. Export stamps artifacts with `trained_at`/`source` provenance,
//! reported by `GET /models`.
//!
//! The two subcommands default differently when neither flags nor
//! environment choose: `serve` runs one linalg thread per core with pooled
//! dispatch — the serving-shaped policy whose pool path CI gates on
//! multi-core runners — while `export` (training-scale, one-off calls)
//! keeps the library default of serial spawn-per-call.

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use sls_datasets::SyntheticBlobs;
use sls_linalg::{ParallelPolicy, SimdPolicy};
use sls_rbm_core::{ModelKind, PipelineArtifact, SlsConfig, SlsPipelineConfig};
use sls_serve::{
    BatchConfig, LiveRegistry, RetrainOptions, Router, RouterConfig, ServeOptions, Server,
};
use std::collections::BTreeMap;
use std::process::ExitCode;
use std::time::Duration;

/// Environment variable selecting the compact (f32-quantized) serving
/// representation; the `--compact` flag overrides it.
const ENV_COMPACT: &str = "SLS_COMPACT";

const USAGE: &str = "usage:
  sls-serve export  --out DIR [--name NAME] [--model rbm|grbm|sls-rbm|sls-grbm]
                    [--instances N] [--dims N] [--clusters N] [--seed N]
                    [--threads N] [--min-par-rows N] [--pool 0|1] [--simd 0|1]
  sls-serve synth   --out FILE [--instances N] [--dims N] [--clusters N]
                    [--separation X] [--seed N]
  sls-serve retrain --data FILE --out DIR [--name NAME]
                    [--model rbm|grbm|sls-rbm|sls-grbm] [--hidden N] [--clusters N]
                    [--chunk-size N] [--sample-rows N] [--epochs N] [--batch-size N]
                    [--learning-rate X] [--eta X] [--seed N]
                    [--checkpoint FILE] [--stop-after-epochs N] [--has-header 0|1]
                    [--threads N] [--min-par-rows N] [--pool 0|1] [--simd 0|1]
  sls-serve serve   --dir DIR [--addr HOST:PORT] [--workers N]
                    [--threads N] [--min-par-rows N] [--pool 0|1] [--simd 0|1]
                    [--keep-alive 0|1] [--keepalive-timeout-ms N]
                    [--max-conn-requests N] [--max-body-bytes N] [--max-conns N]
                    [--batch-window-us N] [--batch-max-rows N]
                    [--compact 0|1] [--watch-interval-ms N]
  sls-serve route   --replicas HOST:PORT[,HOST:PORT...] [--addr HOST:PORT]
                    [--workers N] [--replication N] [--health-interval-ms N]
                    [--upstream-timeout-ms N] [--keep-alive 0|1]
                    [--keepalive-timeout-ms N] [--max-conn-requests N]
                    [--max-body-bytes N] [--max-conns N]";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("export") => run_export(&args[1..]),
        Some("synth") => run_synth(&args[1..]),
        Some("retrain") => run_retrain(&args[1..]),
        Some("serve") => run_serve(&args[1..]),
        Some("route") => run_route(&args[1..]),
        _ => Err(USAGE.to_string()),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("{message}");
            ExitCode::FAILURE
        }
    }
}

/// Parses `--flag value` pairs into a map, rejecting unknown flags.
fn parse_flags(args: &[String], allowed: &[&str]) -> Result<BTreeMap<String, String>, String> {
    let mut flags = BTreeMap::new();
    let mut iter = args.iter();
    while let Some(flag) = iter.next() {
        if !allowed.contains(&flag.as_str()) {
            return Err(format!("unknown flag `{flag}`\n{USAGE}"));
        }
        let value = iter
            .next()
            .ok_or_else(|| format!("flag `{flag}` needs a value\n{USAGE}"))?;
        flags.insert(flag.trim_start_matches('-').to_string(), value.clone());
    }
    Ok(flags)
}

/// Builds the linalg parallel policy from `--threads` / `--min-par-rows` /
/// `--pool` / `--simd`, falling back to the process-wide default (which
/// honours `SLS_PARALLEL_THREADS` / `SLS_PARALLEL_MIN_ROWS` /
/// `SLS_PARALLEL_POOL` / `SLS_SIMD`).
///
/// With `serving = true` (the `serve` subcommand) the silent defaults flip
/// to the serving-shaped policy: one thread per core and pooled dispatch,
/// each applied only when neither the flag nor its environment variable is
/// present — an explicit choice on either surface always wins.
fn parallel_policy(
    flags: &BTreeMap<String, String>,
    serving: bool,
) -> Result<ParallelPolicy, String> {
    let global = ParallelPolicy::global();
    let policy = match flags.get("threads") {
        Some(raw) => {
            let threads: usize = raw
                .parse()
                .map_err(|_| format!("invalid value `{raw}` for --threads"))?;
            ParallelPolicy::new(threads)
                .with_min_rows_per_thread(global.min_rows_per_thread)
                .with_pool(global.pool)
                .with_simd(global.simd)
        }
        // Serving default: one linalg thread per core.
        None if serving && std::env::var(sls_linalg::ENV_THREADS).is_err() => {
            ParallelPolicy::new(0)
                .with_min_rows_per_thread(global.min_rows_per_thread)
                .with_pool(global.pool)
                .with_simd(global.simd)
        }
        None => global,
    };
    let pool = match flags.get("pool") {
        // Serving default: persistent-pool dispatch (cheap per-call fan-out
        // for small micro-batches; CI gates this path on multi-core
        // runners).
        None if serving && std::env::var(sls_linalg::ENV_POOL).is_err() => true,
        None => policy.pool,
        // Same parser as SLS_PARALLEL_POOL, so no spelling works in the
        // environment but fails on the command line.
        Some(raw) => ParallelPolicy::parse_bool(raw)
            .ok_or_else(|| format!("invalid value `{raw}` for --pool (use 0/1/true/false)"))?,
    };
    let simd = match flags.get("simd") {
        None => policy.simd,
        Some(raw) => SimdPolicy::from_enabled(
            ParallelPolicy::parse_bool(raw)
                .ok_or_else(|| format!("invalid value `{raw}` for --simd (use 0/1/true/false)"))?,
        ),
    };
    Ok(policy
        .with_min_rows_per_thread(parsed(flags, "min-par-rows", policy.min_rows_per_thread)?)
        .with_pool(pool)
        .with_simd(simd))
}

fn parsed<T: std::str::FromStr>(
    flags: &BTreeMap<String, String>,
    name: &str,
    default: T,
) -> Result<T, String> {
    match flags.get(name) {
        None => Ok(default),
        Some(raw) => raw
            .parse()
            .map_err(|_| format!("invalid value `{raw}` for --{name}")),
    }
}

/// Formats seconds since the Unix epoch as `YYYY-MM-DDThh:mm:ssZ`, using
/// the standard days-to-civil-date conversion (valid for any date after
/// 1970, which Unix seconds guarantee here).
fn iso8601_utc(secs: u64) -> String {
    let (days, rem) = (secs / 86_400, secs % 86_400);
    let (hour, minute, second) = (rem / 3600, (rem % 3600) / 60, rem % 60);
    let z = days as i64 + 719_468;
    let era = z / 146_097;
    let doe = z - era * 146_097;
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let day = doy - (153 * mp + 2) / 5 + 1;
    let month = if mp < 10 { mp + 3 } else { mp - 9 };
    let year = yoe + era * 400 + i64::from(month <= 2);
    format!("{year:04}-{month:02}-{day:02}T{hour:02}:{minute:02}:{second:02}Z")
}

fn run_export(args: &[String]) -> Result<(), String> {
    let flags = parse_flags(
        args,
        &[
            "--out",
            "--name",
            "--model",
            "--instances",
            "--dims",
            "--clusters",
            "--seed",
            "--threads",
            "--min-par-rows",
            "--pool",
            "--simd",
        ],
    )?;
    let out = flags
        .get("out")
        .cloned()
        .unwrap_or_else(|| "artifacts".to_string());
    let name = flags
        .get("name")
        .cloned()
        .unwrap_or_else(|| "quick_demo".to_string());
    let kind_name = flags
        .get("model")
        .cloned()
        .unwrap_or_else(|| "sls-grbm".to_string());
    let kind = ModelKind::parse(&kind_name)
        .ok_or_else(|| format!("unknown model kind `{kind_name}` (rbm|grbm|sls-rbm|sls-grbm)"))?;
    let instances = parsed(&flags, "instances", 90usize)?;
    let dims = parsed(&flags, "dims", 8usize)?;
    let clusters = parsed(&flags, "clusters", 3usize)?;
    let seed = parsed(&flags, "seed", 2023u64)?;

    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let dataset = SyntheticBlobs::new(instances, dims, clusters)
        .separation(5.0)
        .generate(&mut rng);
    let parallel = parallel_policy(&flags, false)?;
    let config = SlsPipelineConfig::quick_demo()
        .with_clusters(clusters)
        .with_parallel(parallel);
    eprintln!(
        "training {} on {instances}x{dims} synthetic blobs ({clusters} clusters, seed {seed}, \
         {} linalg thread(s))...",
        kind.as_str(),
        parallel.threads
    );
    let fitted = PipelineArtifact::fit(kind, config, dataset.features(), &mut rng)
        .map_err(|e| format!("training failed: {e}"))?;

    let trained_at = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .ok()
        .map(|d| iso8601_utc(d.as_secs()));
    let source = format!(
        "sls-serve export --model {} --instances {instances} --dims {dims} \
         --clusters {clusters} --seed {seed}",
        kind.as_str()
    );
    let artifact = fitted
        .artifact
        .clone()
        .with_provenance(trained_at, Some(source));
    let path = std::path::Path::new(&out).join(format!("{name}.json"));
    artifact
        .save(&path)
        .map_err(|e| format!("saving artifact failed: {e}"))?;
    let mut sizes = BTreeMap::new();
    for &label in &fitted.assignments {
        *sizes.entry(label).or_insert(0usize) += 1;
    }
    eprintln!(
        "exported {} (schema v{}, {} visible -> {} hidden, cluster sizes {:?}) to {}",
        name,
        fitted.artifact.schema_version,
        fitted.artifact.n_visible(),
        fitted.artifact.n_hidden(),
        sizes,
        path.display()
    );
    Ok(())
}

fn run_synth(args: &[String]) -> Result<(), String> {
    let flags = parse_flags(
        args,
        &[
            "--out",
            "--instances",
            "--dims",
            "--clusters",
            "--separation",
            "--seed",
        ],
    )?;
    let out = flags
        .get("out")
        .cloned()
        .ok_or_else(|| format!("synth needs --out FILE\n{USAGE}"))?;
    let instances = parsed(&flags, "instances", 2000usize)?;
    let dims = parsed(&flags, "dims", 8usize)?;
    let clusters = parsed(&flags, "clusters", 3usize)?;
    let separation = parsed(&flags, "separation", 5.0f64)?;
    let seed = parsed(&flags, "seed", 2023u64)?;
    sls_serve::write_synthetic_csv(&out, instances, dims, clusters, separation, seed)
        .map_err(|e| format!("writing {out} failed: {e}"))?;
    eprintln!(
        "wrote {instances}x{dims} synthetic blobs ({clusters} clusters, seed {seed}) to {out}"
    );
    Ok(())
}

fn run_retrain(args: &[String]) -> Result<(), String> {
    let flags = parse_flags(
        args,
        &[
            "--data",
            "--out",
            "--name",
            "--model",
            "--hidden",
            "--clusters",
            "--chunk-size",
            "--sample-rows",
            "--epochs",
            "--batch-size",
            "--learning-rate",
            "--eta",
            "--seed",
            "--checkpoint",
            "--stop-after-epochs",
            "--has-header",
            "--threads",
            "--min-par-rows",
            "--pool",
            "--simd",
        ],
    )?;
    let data = flags
        .get("data")
        .cloned()
        .ok_or_else(|| format!("retrain needs --data FILE\n{USAGE}"))?;
    let out = flags
        .get("out")
        .cloned()
        .unwrap_or_else(|| "artifacts".to_string());
    let mut options = RetrainOptions::new(&data, &out);
    if let Some(name) = flags.get("name") {
        options.name = name.clone();
    }
    if let Some(kind_name) = flags.get("model") {
        options.model_kind = ModelKind::parse(kind_name).ok_or_else(|| {
            format!("unknown model kind `{kind_name}` (rbm|grbm|sls-rbm|sls-grbm)")
        })?;
    }
    if let Some(raw) = flags.get("has-header") {
        options.csv.has_header = ParallelPolicy::parse_bool(raw).ok_or_else(|| {
            format!("invalid value `{raw}` for --has-header (use 0/1/true/false)")
        })?;
    }
    options.n_hidden = parsed(&flags, "hidden", options.n_hidden)?;
    options.n_clusters = parsed(&flags, "clusters", options.n_clusters)?;
    options.chunk_size = parsed(&flags, "chunk-size", options.chunk_size)?;
    options.sample_rows = parsed(&flags, "sample-rows", options.sample_rows)?;
    options.train = options
        .train
        .with_epochs(parsed(&flags, "epochs", options.train.epochs)?)
        .with_batch_size(parsed(&flags, "batch-size", options.train.batch_size)?)
        .with_learning_rate(parsed(
            &flags,
            "learning-rate",
            options.train.learning_rate,
        )?);
    options.sls = SlsConfig::new(parsed(&flags, "eta", options.sls.eta)?);
    options.seed = parsed(&flags, "seed", options.seed)?;
    if let Some(path) = flags.get("checkpoint") {
        options.checkpoint = path.into();
    }
    if let Some(raw) = flags.get("stop-after-epochs") {
        let epochs: usize = raw
            .parse()
            .map_err(|_| format!("invalid value `{raw}` for --stop-after-epochs"))?;
        options.stop_after_epochs = Some(epochs);
    }
    options.parallel = parallel_policy(&flags, false)?;
    options.trained_at = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .ok()
        .map(|d| iso8601_utc(d.as_secs()));
    options.source = Some(format!(
        "sls-serve retrain --data {data} --model {} --seed {}",
        options.model_kind.as_str(),
        options.seed
    ));

    eprintln!(
        "retraining {} from {data} (chunks of {}, {} sample rows, seed {}, {} linalg thread(s))...",
        options.model_kind.as_str(),
        options.chunk_size,
        options.sample_rows,
        options.seed,
        options.parallel.threads
    );
    let outcome = sls_serve::retrain(&options).map_err(|e| format!("retrain failed: {e}"))?;
    if let Some(summary) = &outcome.supervision {
        eprintln!(
            "supervision: {} credible clusters covering {:.1}% of the sample",
            summary.n_clusters,
            summary.coverage * 100.0
        );
    }
    for stats in &outcome.history.epochs {
        eprintln!(
            "epoch {:>3}: reconstruction error {:.6}",
            stats.epoch, stats.reconstruction_error
        );
    }
    eprintln!(
        "{} after {}/{} epoch(s){}; checkpoint at {}",
        if outcome.completed {
            "complete"
        } else {
            "stopped"
        },
        outcome.epochs_done,
        outcome.epochs_total,
        if outcome.resumed {
            " (resumed from checkpoint)"
        } else {
            ""
        },
        outcome.checkpoint_path.display()
    );
    match &outcome.artifact_path {
        Some(path) => eprintln!(
            "exported {} to {} — a watching `sls-serve serve` instance picks it up on its next \
             poll, or immediately via POST /admin/reload",
            options.name,
            path.display()
        ),
        None => eprintln!("no artifact exported yet; rerun the same command to resume"),
    }
    Ok(())
}

fn run_serve(args: &[String]) -> Result<(), String> {
    let flags = parse_flags(
        args,
        &[
            "--dir",
            "--addr",
            "--workers",
            "--threads",
            "--min-par-rows",
            "--pool",
            "--simd",
            "--keep-alive",
            "--keepalive-timeout-ms",
            "--max-conn-requests",
            "--max-body-bytes",
            "--max-conns",
            "--batch-window-us",
            "--batch-max-rows",
            "--compact",
            "--watch-interval-ms",
        ],
    )?;
    let dir = flags
        .get("dir")
        .cloned()
        .unwrap_or_else(|| "artifacts".to_string());
    let addr = flags
        .get("addr")
        .cloned()
        .unwrap_or_else(|| "127.0.0.1:7878".to_string());
    let default_workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .min(16);
    let workers = parsed(&flags, "workers", default_workers)?;
    let compact = match flags.get("compact") {
        Some(raw) => ParallelPolicy::parse_bool(raw)
            .ok_or_else(|| format!("invalid value `{raw}` for --compact (use 0/1/true/false)"))?,
        None => match std::env::var(ENV_COMPACT) {
            Ok(raw) => ParallelPolicy::parse_bool(raw.trim()).ok_or_else(|| {
                format!("{ENV_COMPACT} must be a boolean (0/1/true/false), got `{raw}`")
            })?,
            Err(_) => false,
        },
    };
    let watch_ms = parsed(&flags, "watch-interval-ms", 0u64)?;

    let live = LiveRegistry::from_dir(&dir, compact)
        .map_err(|e| format!("loading artifacts failed: {e}"))?;
    for (name, model) in live.current().registry.iter() {
        eprintln!(
            "loaded {} ({}, schema v{}, {} visible -> {} hidden, {}, {} param bytes)",
            name,
            model.model_kind(),
            model.schema_version(),
            model.n_visible(),
            model.n_hidden(),
            if model.is_compact() {
                "compact f32"
            } else {
                "full f64"
            },
            model.param_bytes()
        );
    }
    let parallel = parallel_policy(&flags, true)?;
    let server = Server::bind_live(addr.as_str(), live, workers)
        .map_err(|e| format!("bind failed: {e}"))?
        .with_parallel(parallel)
        .with_watch((watch_ms > 0).then(|| Duration::from_millis(watch_ms)));
    // Connection and batching knobs: the bind defaults already honour the
    // environment (SLS_MAX_BODY_BYTES, SLS_BATCH_WINDOW_US,
    // SLS_BATCH_MAX_ROWS); explicit flags override them.
    let mut options = ServeOptions::from_env();
    if let Some(raw) = flags.get("keep-alive") {
        options.keep_alive = ParallelPolicy::parse_bool(raw).ok_or_else(|| {
            format!("invalid value `{raw}` for --keep-alive (use 0/1/true/false)")
        })?;
    }
    options.idle_timeout = Duration::from_millis(parsed(
        &flags,
        "keepalive-timeout-ms",
        options.idle_timeout.as_millis() as u64,
    )?);
    options.max_requests_per_connection = parsed(
        &flags,
        "max-conn-requests",
        options.max_requests_per_connection,
    )?;
    options.max_body_bytes = parsed(&flags, "max-body-bytes", options.max_body_bytes)?;
    options.max_connections = parsed(&flags, "max-conns", options.max_connections)?;
    let mut batch = BatchConfig::from_env();
    batch.window = Duration::from_micros(parsed(
        &flags,
        "batch-window-us",
        batch.window.as_micros() as u64,
    )?);
    batch.max_rows = parsed(&flags, "batch-max-rows", batch.max_rows)?;
    let server = server.with_options(options).with_batching(batch);
    let local = server
        .local_addr()
        .map_err(|e| format!("local address unavailable: {e}"))?;
    eprintln!(
        "serving on http://{local} with {workers} acceptor(s), {} linalg thread(s) per request \
         ({} dispatch), keep-alive {}, batch window {}us, {} registry, watch {} \
         (POST /admin/reload to hot swap, Ctrl-C to stop)",
        parallel.threads,
        if parallel.pool {
            "persistent-pool"
        } else {
            "spawn-per-call"
        },
        if options.keep_alive { "on" } else { "off" },
        batch.window.as_micros(),
        if compact { "compact" } else { "full" },
        if watch_ms > 0 {
            format!("every {watch_ms}ms")
        } else {
            "off".to_string()
        }
    );
    let handle = server.start().map_err(|e| format!("start failed: {e}"))?;
    handle.join();
    Ok(())
}

fn run_route(args: &[String]) -> Result<(), String> {
    let flags = parse_flags(
        args,
        &[
            "--replicas",
            "--addr",
            "--workers",
            "--replication",
            "--health-interval-ms",
            "--upstream-timeout-ms",
            "--keep-alive",
            "--keepalive-timeout-ms",
            "--max-conn-requests",
            "--max-body-bytes",
            "--max-conns",
        ],
    )?;
    let raw_replicas = flags
        .get("replicas")
        .ok_or_else(|| format!("route needs --replicas HOST:PORT[,HOST:PORT...]\n{USAGE}"))?;
    let mut replicas = Vec::new();
    for entry in raw_replicas.split(',').filter(|s| !s.trim().is_empty()) {
        use std::net::ToSocketAddrs;
        let addr = entry
            .trim()
            .to_socket_addrs()
            .map_err(|e| format!("invalid replica address `{entry}`: {e}"))?
            .next()
            .ok_or_else(|| format!("replica address `{entry}` resolved to nothing"))?;
        replicas.push(addr);
    }
    if replicas.is_empty() {
        return Err(format!("--replicas needs at least one HOST:PORT\n{USAGE}"));
    }
    let addr = flags
        .get("addr")
        .cloned()
        .unwrap_or_else(|| "127.0.0.1:7900".to_string());
    let workers = parsed(&flags, "workers", 2usize)?;
    let replica_count = replicas.len();
    let mut config = RouterConfig::new(replicas)
        .with_replication(parsed(&flags, "replication", 2usize)?)
        .with_health_interval(Duration::from_millis(parsed(
            &flags,
            "health-interval-ms",
            250u64,
        )?));
    config = config.with_upstream_timeout(Duration::from_millis(parsed(
        &flags,
        "upstream-timeout-ms",
        10_000u64,
    )?));
    let replication = config.replication.min(replica_count).max(1);
    let mut options = ServeOptions::from_env();
    if let Some(raw) = flags.get("keep-alive") {
        options.keep_alive = ParallelPolicy::parse_bool(raw).ok_or_else(|| {
            format!("invalid value `{raw}` for --keep-alive (use 0/1/true/false)")
        })?;
    }
    options.idle_timeout = Duration::from_millis(parsed(
        &flags,
        "keepalive-timeout-ms",
        options.idle_timeout.as_millis() as u64,
    )?);
    options.max_requests_per_connection = parsed(
        &flags,
        "max-conn-requests",
        options.max_requests_per_connection,
    )?;
    options.max_body_bytes = parsed(&flags, "max-body-bytes", options.max_body_bytes)?;
    options.max_connections = parsed(&flags, "max-conns", options.max_connections)?;
    let router = Router::bind(addr.as_str(), config)
        .map_err(|e| format!("bind failed: {e}"))?
        .with_workers(workers)
        .with_options(options);
    let local = router
        .local_addr()
        .map_err(|e| format!("local address unavailable: {e}"))?;
    eprintln!(
        "routing on http://{local} across {replica_count} replica(s) ({raw_replicas}), \
         replication {replication}, keep-alive {} \
         (POST /admin/reload fans out, POST /admin/drain removes a replica, Ctrl-C to stop)",
        if options.keep_alive { "on" } else { "off" },
    );
    let handle = router.start().map_err(|e| format!("start failed: {e}"))?;
    handle.join();
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iso8601_matches_known_timestamps() {
        assert_eq!(iso8601_utc(0), "1970-01-01T00:00:00Z");
        assert_eq!(iso8601_utc(86_399), "1970-01-01T23:59:59Z");
        // 2025-01-01T00:00:00Z and a leap-year date (2024-02-29T12:00:00Z).
        assert_eq!(iso8601_utc(1_735_689_600), "2025-01-01T00:00:00Z");
        assert_eq!(iso8601_utc(1_709_208_000), "2024-02-29T12:00:00Z");
    }
}
