//! Cross-request micro-batching: concurrent inference requests for the same
//! model are coalesced into a single pooled matrix multiply.
//!
//! ## How a batch forms
//!
//! Requests are keyed by `(model, registry generation, endpoint, row
//! width)` — the generation in the key means a hot swap can never fuse rows
//! resolved against different model versions into one launch; requests
//! holding the old generation finish on it. The first request
//! to arrive for a key becomes the batch **leader**: it opens a collection
//! window (the latency budget, [`BatchConfig::window`]) and parks on a
//! condvar. Requests arriving inside the window append their rows to the
//! leader's batch and park waiting for the result. The window closes when
//! the budget elapses or the batch reaches [`BatchConfig::max_rows`]; the
//! leader then runs **one** fused kernel launch over the concatenated rows
//! and slices the output back to each waiter.
//!
//! ## Why batched output is bitwise-identical to unbatched
//!
//! Every kernel behind `/features` and `/assign` (preprocessing, the
//! matmul, the fused bias+sigmoid map, nearest-centroid lookup) computes
//! each output row from its input row alone, in a canonical per-row
//! accumulation order that the whole repo's `{serial, spawn, pool} ×
//! {simd on, off}` identity suite pins down. Concatenating request rows
//! therefore changes *which* rows sit in one launch but not a single bit of
//! any row's result — testable with `f64::to_bits`, and tested in
//! `tests/batch_identity.rs`.

use crate::ServingModel;
use sls_linalg::{Matrix, ParallelPolicy};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Environment variable naming the batch window in microseconds
/// (`0` disables cross-request batching).
pub const ENV_BATCH_WINDOW_US: &str = "SLS_BATCH_WINDOW_US";

/// Environment variable naming the maximum rows fused into one batch.
pub const ENV_BATCH_MAX_ROWS: &str = "SLS_BATCH_MAX_ROWS";

/// Default cap on rows fused into one kernel launch.
pub const DEFAULT_MAX_BATCH_ROWS: usize = 256;

/// Tuning knobs of the cross-request micro-batcher.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchConfig {
    /// Latency budget a batch leader waits for co-arriving requests.
    /// `Duration::ZERO` disables batching entirely.
    pub window: Duration,
    /// Hard cap on rows in one fused launch; a batch closes early when the
    /// next request would push it past the cap.
    pub max_rows: usize,
}

impl BatchConfig {
    /// Batching disabled.
    pub fn disabled() -> Self {
        Self {
            window: Duration::ZERO,
            max_rows: DEFAULT_MAX_BATCH_ROWS,
        }
    }

    /// Config from `SLS_BATCH_WINDOW_US` / `SLS_BATCH_MAX_ROWS`, defaulting
    /// to disabled (window 0) with the default row cap.
    ///
    /// # Panics
    ///
    /// Panics when either variable is set but unparsable — a typo must not
    /// silently disable the path CI forces on.
    pub fn from_env() -> Self {
        let window_us = read_env_u64(ENV_BATCH_WINDOW_US).unwrap_or(0);
        let max_rows = read_env_u64(ENV_BATCH_MAX_ROWS)
            .map_or(DEFAULT_MAX_BATCH_ROWS, |v| (v as usize).max(1));
        Self {
            window: Duration::from_micros(window_us),
            max_rows,
        }
    }

    /// Whether the batcher coalesces at all.
    pub fn enabled(&self) -> bool {
        !self.window.is_zero()
    }
}

fn read_env_u64(name: &str) -> Option<u64> {
    let raw = std::env::var(name).ok()?;
    let trimmed = raw.trim();
    if trimmed.is_empty() {
        return None;
    }
    Some(
        trimmed
            .parse()
            .unwrap_or_else(|_| panic!("{name} must be a non-negative integer, got `{raw}`")),
    )
}

/// The two inference endpoints a batch can serve.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Endpoint {
    /// `POST /models/{name}/features`.
    Features,
    /// `POST /models/{name}/assign`.
    Assign,
}

/// Per-request output sliced back out of a fused launch.
#[derive(Debug, Clone, PartialEq)]
pub enum BatchOutput {
    /// Hidden-feature rows for the request's rows.
    Features(Vec<Vec<f64>>),
    /// Cluster label per request row.
    Assign(Vec<usize>),
}

/// Counters the batcher exposes (served by `GET /statz`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BatchStats {
    /// Fused kernel launches through the batcher (including size-1 batches
    /// whose window expired alone).
    pub batches: u64,
    /// Requests answered through the batched path.
    pub batched_requests: u64,
    /// Total rows that went through fused launches.
    pub batched_rows: u64,
    /// Most requests ever coalesced into one launch.
    pub largest_batch: u64,
    /// Most rows ever fused into one launch.
    pub largest_batch_rows: u64,
}

/// The fused output of one batch, shared by every waiter.
enum Fused {
    Features(Matrix),
    Assign(Vec<usize>),
}

type FusedResult = std::result::Result<Arc<Fused>, String>;

/// One forming (or computing) batch. Waiters hold an `Arc` to it after the
/// key slot has moved on to the next batch.
struct Batch {
    state: Mutex<BatchState>,
    /// Signalled when the batch fills (wakes the leader early) and when the
    /// result lands (wakes the followers).
    changed: Condvar,
}

struct BatchState {
    /// Concatenated row-major request rows (drained by the leader when the
    /// window closes).
    data: Vec<f64>,
    rows: usize,
    /// `(first_row, row_count)` per joined request, in join order. Kept
    /// after the leader drains `data` so followers can slice the result.
    spans: Vec<(usize, usize)>,
    /// Set by a follower that filled the batch (or could not fit), closing
    /// the window early.
    full: bool,
    result: Option<FusedResult>,
}

/// The per-key collection slot: at most one batch is forming per key at any
/// time; the next batch starts forming while the previous one computes.
struct Queue {
    slot: Mutex<Option<Arc<Batch>>>,
    /// Signalled when the slot frees (the forming batch detached to
    /// compute), unblocking requests that could not fit.
    freed: Condvar,
}

#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct BatchKey {
    model: String,
    generation: u64,
    endpoint: Endpoint,
    cols: usize,
}

/// The cross-request micro-batcher: per-`(model, endpoint, width)` queues
/// coalescing concurrent requests into single fused kernel launches.
pub struct Batcher {
    config: BatchConfig,
    queues: Mutex<HashMap<BatchKey, Arc<Queue>>>,
    batches: AtomicU64,
    batched_requests: AtomicU64,
    batched_rows: AtomicU64,
    largest_batch: AtomicU64,
    largest_batch_rows: AtomicU64,
}

impl std::fmt::Debug for Batcher {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Batcher")
            .field("config", &self.config)
            .field("stats", &self.stats())
            .finish()
    }
}

impl Batcher {
    /// A batcher with the given knobs.
    pub fn new(config: BatchConfig) -> Self {
        Self {
            config,
            queues: Mutex::new(HashMap::new()),
            batches: AtomicU64::new(0),
            batched_requests: AtomicU64::new(0),
            batched_rows: AtomicU64::new(0),
            largest_batch: AtomicU64::new(0),
            largest_batch_rows: AtomicU64::new(0),
        }
    }

    /// The knobs this batcher runs with.
    pub fn config(&self) -> BatchConfig {
        self.config
    }

    /// Snapshot of the counters.
    pub fn stats(&self) -> BatchStats {
        BatchStats {
            batches: self.batches.load(Ordering::Relaxed),
            batched_requests: self.batched_requests.load(Ordering::Relaxed),
            batched_rows: self.batched_rows.load(Ordering::Relaxed),
            largest_batch: self.largest_batch.load(Ordering::Relaxed),
            largest_batch_rows: self.largest_batch_rows.load(Ordering::Relaxed),
        }
    }

    /// Runs one request through the batcher: coalesces with concurrent
    /// same-key requests when the window is open, computes directly when
    /// batching is off or the request alone reaches the row cap.
    ///
    /// # Errors
    ///
    /// Returns the model-layer error message (the server maps it to `400`),
    /// shared verbatim by every request in a failed batch.
    pub fn submit(
        &self,
        model: &ServingModel,
        name: &str,
        generation: u64,
        endpoint: Endpoint,
        matrix: &Matrix,
        parallel: &ParallelPolicy,
    ) -> std::result::Result<BatchOutput, String> {
        let (rows, cols) = matrix.shape();
        if !self.config.enabled() || rows >= self.config.max_rows {
            return compute_direct(model, endpoint, matrix, parallel);
        }
        let queue = self.queue_for(BatchKey {
            model: name.to_string(),
            generation,
            endpoint,
            cols,
        });
        loop {
            enum Role {
                Leader(Arc<Batch>),
                Follower(Arc<Batch>, usize),
            }
            let role = {
                let mut slot = queue.slot.lock().expect("batch slot lock");
                match slot.as_ref() {
                    Some(batch) => {
                        // Lock order is always slot -> state; appends happen
                        // with both held, so a batch reachable through the
                        // slot can never have been drained yet.
                        let mut state = batch.state.lock().expect("batch state lock");
                        if state.rows + rows > self.config.max_rows {
                            // Would overflow the cap: close the window early
                            // and wait for the slot to free.
                            state.full = true;
                            batch.changed.notify_all();
                            drop(state);
                            let (_slot, _timeout) = queue
                                .freed
                                .wait_timeout(slot, self.config.window)
                                .expect("batch slot lock");
                            continue;
                        }
                        let span = (state.rows, rows);
                        state.data.extend_from_slice(matrix.as_slice());
                        state.rows += rows;
                        state.spans.push(span);
                        let index = state.spans.len() - 1;
                        if state.rows >= self.config.max_rows {
                            state.full = true;
                        }
                        batch.changed.notify_all();
                        Role::Follower(Arc::clone(batch), index)
                    }
                    None => {
                        let batch = Arc::new(Batch {
                            state: Mutex::new(BatchState {
                                data: matrix.as_slice().to_vec(),
                                rows,
                                spans: vec![(0, rows)],
                                full: rows >= self.config.max_rows,
                                result: None,
                            }),
                            changed: Condvar::new(),
                        });
                        *slot = Some(Arc::clone(&batch));
                        Role::Leader(batch)
                    }
                }
            };
            return match role {
                Role::Leader(batch) => self.lead(&queue, &batch, model, endpoint, cols, parallel),
                Role::Follower(batch, index) => follow(&batch, index),
            };
        }
    }

    /// Leader path: wait out the window, detach the batch from the slot,
    /// run the fused launch and publish the result.
    fn lead(
        &self,
        queue: &Queue,
        batch: &Arc<Batch>,
        model: &ServingModel,
        endpoint: Endpoint,
        cols: usize,
        parallel: &ParallelPolicy,
    ) -> std::result::Result<BatchOutput, String> {
        let deadline = Instant::now() + self.config.window;
        {
            let mut state = batch.state.lock().expect("batch state lock");
            while !state.full {
                let now = Instant::now();
                if now >= deadline {
                    break;
                }
                let (next, _timeout) = batch
                    .changed
                    .wait_timeout(state, deadline - now)
                    .expect("batch state lock");
                state = next;
            }
        }
        // Free the slot *before* computing, so the next batch collects
        // while this one runs. After this point no request can join: joins
        // go through the slot, and the slot no longer references us.
        {
            let mut slot = queue.slot.lock().expect("batch slot lock");
            if slot.as_ref().is_some_and(|b| Arc::ptr_eq(b, batch)) {
                *slot = None;
            }
            queue.freed.notify_all();
        }
        let (data, rows, members) = {
            let mut state = batch.state.lock().expect("batch state lock");
            (
                std::mem::take(&mut state.data),
                state.rows,
                state.spans.len(),
            )
        };
        self.batches.fetch_add(1, Ordering::Relaxed);
        self.batched_requests
            .fetch_add(members as u64, Ordering::Relaxed);
        self.batched_rows.fetch_add(rows as u64, Ordering::Relaxed);
        self.largest_batch
            .fetch_max(members as u64, Ordering::Relaxed);
        self.largest_batch_rows
            .fetch_max(rows as u64, Ordering::Relaxed);
        let fused = run_fused(model, endpoint, rows, cols, data, parallel);
        let shared: FusedResult = fused.map(Arc::new);
        let mut state = batch.state.lock().expect("batch state lock");
        state.result = Some(shared.clone());
        batch.changed.notify_all();
        let span = state.spans[0];
        drop(state);
        match &shared {
            Ok(fused) => slice_output(fused, span),
            Err(message) => Err(message.clone()),
        }
    }

    fn queue_for(&self, key: BatchKey) -> Arc<Queue> {
        let mut queues = self.queues.lock().expect("batch queues lock");
        Arc::clone(queues.entry(key).or_insert_with(|| {
            Arc::new(Queue {
                slot: Mutex::new(None),
                freed: Condvar::new(),
            })
        }))
    }
}

/// Follower path: park until the leader publishes, then slice out this
/// request's rows.
fn follow(batch: &Batch, index: usize) -> std::result::Result<BatchOutput, String> {
    let mut state = batch.state.lock().expect("batch state lock");
    while state.result.is_none() {
        state = batch.changed.wait(state).expect("batch state lock");
    }
    let span = state.spans[index];
    let result = state.result.clone().expect("result just observed");
    drop(state);
    match &result {
        Ok(fused) => slice_output(fused, span),
        Err(message) => Err(message.clone()),
    }
}

/// The single fused kernel launch for a closed batch. A panic inside the
/// model layer is caught and shared as an error so followers never hang.
fn run_fused(
    model: &ServingModel,
    endpoint: Endpoint,
    rows: usize,
    cols: usize,
    data: Vec<f64>,
    parallel: &ParallelPolicy,
) -> std::result::Result<Fused, String> {
    let computed = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        let matrix = Matrix::from_vec(rows, cols, data).map_err(|e| e.to_string())?;
        match endpoint {
            Endpoint::Features => model
                .features_with(&matrix, parallel)
                .map(Fused::Features)
                .map_err(|e| e.to_string()),
            Endpoint::Assign => model
                .assign_with(&matrix, parallel)
                .map(Fused::Assign)
                .map_err(|e| e.to_string()),
        }
    }));
    computed.unwrap_or_else(|panic| Err(format!("batched inference panicked: {panic:?}")))
}

/// Computes one request without coalescing — the reference the batched path
/// must match bit for bit.
pub(crate) fn compute_direct(
    model: &ServingModel,
    endpoint: Endpoint,
    matrix: &Matrix,
    parallel: &ParallelPolicy,
) -> std::result::Result<BatchOutput, String> {
    match endpoint {
        Endpoint::Features => model
            .features_with(matrix, parallel)
            .map(|features| BatchOutput::Features(matrix_rows(&features, 0, features.rows())))
            .map_err(|e| e.to_string()),
        Endpoint::Assign => model
            .assign_with(matrix, parallel)
            .map(BatchOutput::Assign)
            .map_err(|e| e.to_string()),
    }
}

fn slice_output(
    fused: &Fused,
    (start, len): (usize, usize),
) -> std::result::Result<BatchOutput, String> {
    Ok(match fused {
        Fused::Features(matrix) => BatchOutput::Features(matrix_rows(matrix, start, len)),
        Fused::Assign(labels) => BatchOutput::Assign(labels[start..start + len].to_vec()),
    })
}

fn matrix_rows(matrix: &Matrix, start: usize, len: usize) -> Vec<Vec<f64>> {
    (start..start + len)
        .map(|i| matrix.row(i).to_vec())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use sls_datasets::SyntheticBlobs;
    use sls_rbm_core::{ModelKind, PipelineArtifact, SlsPipelineConfig};
    use std::sync::Barrier;

    fn artifact() -> ServingModel {
        let mut rng = ChaCha8Rng::seed_from_u64(77);
        let ds = SyntheticBlobs::new(30, 4, 2)
            .separation(6.0)
            .generate(&mut rng);
        ServingModel::Full(
            PipelineArtifact::fit(
                ModelKind::Grbm,
                SlsPipelineConfig::quick_demo()
                    .with_clusters(2)
                    .with_hidden(4),
                ds.features(),
                &mut rng,
            )
            .expect("training succeeds")
            .artifact,
        )
    }

    fn rows(seed: u64, n: usize) -> Matrix {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        Matrix::from_fn(n, 4, |_, _| {
            use rand::Rng;
            rng.gen_range(-2.0..2.0)
        })
    }

    fn bits(rows: &[Vec<f64>]) -> Vec<Vec<u64>> {
        rows.iter()
            .map(|r| r.iter().map(|v| v.to_bits()).collect())
            .collect()
    }

    #[test]
    fn disabled_batcher_computes_directly() {
        let artifact = artifact();
        let batcher = Batcher::new(BatchConfig::disabled());
        let matrix = rows(1, 3);
        let direct = compute_direct(
            &artifact,
            Endpoint::Features,
            &matrix,
            &ParallelPolicy::serial(),
        )
        .unwrap();
        let via = batcher
            .submit(
                &artifact,
                "m",
                1,
                Endpoint::Features,
                &matrix,
                &ParallelPolicy::serial(),
            )
            .unwrap();
        assert_eq!(direct, via);
        assert_eq!(batcher.stats().batches, 0, "disabled batcher never fuses");
    }

    #[test]
    fn concurrent_submissions_coalesce_and_match_direct_bitwise() {
        let artifact = artifact();
        // A generous window so every barrier-released thread lands inside
        // the leader's wait.
        let batcher = Batcher::new(BatchConfig {
            window: Duration::from_millis(500),
            max_rows: 64,
        });
        let policy = ParallelPolicy::serial();
        let n_threads = 4;
        let barrier = Barrier::new(n_threads);
        std::thread::scope(|scope| {
            for t in 0..n_threads {
                let artifact = &artifact;
                let batcher = &batcher;
                let policy = &policy;
                let barrier = &barrier;
                scope.spawn(move || {
                    let matrix = rows(100 + t as u64, 2);
                    let expected =
                        compute_direct(artifact, Endpoint::Features, &matrix, policy).unwrap();
                    barrier.wait();
                    let got = batcher
                        .submit(artifact, "m", 1, Endpoint::Features, &matrix, policy)
                        .unwrap();
                    let (BatchOutput::Features(a), BatchOutput::Features(b)) = (&expected, &got)
                    else {
                        panic!("wrong output kinds");
                    };
                    assert_eq!(bits(a), bits(b), "batched bits differ for thread {t}");
                });
            }
        });
        let stats = batcher.stats();
        assert_eq!(stats.batched_requests, n_threads as u64);
        assert!(
            stats.largest_batch >= 2,
            "barrier-released submissions did not coalesce: {stats:?}"
        );
    }

    #[test]
    fn max_rows_cap_is_never_exceeded() {
        let artifact = artifact();
        let batcher = Batcher::new(BatchConfig {
            window: Duration::from_millis(200),
            max_rows: 4,
        });
        let policy = ParallelPolicy::serial();
        let n_threads = 6;
        let barrier = Barrier::new(n_threads);
        std::thread::scope(|scope| {
            for t in 0..n_threads {
                let artifact = &artifact;
                let batcher = &batcher;
                let policy = &policy;
                let barrier = &barrier;
                scope.spawn(move || {
                    let matrix = rows(200 + t as u64, 2);
                    let expected =
                        compute_direct(artifact, Endpoint::Assign, &matrix, policy).unwrap();
                    barrier.wait();
                    let got = batcher
                        .submit(artifact, "m", 1, Endpoint::Assign, &matrix, policy)
                        .unwrap();
                    assert_eq!(expected, got, "capped batching changed thread {t}'s labels");
                });
            }
        });
        let stats = batcher.stats();
        assert_eq!(stats.batched_requests, n_threads as u64);
        assert!(stats.largest_batch_rows <= 4, "row cap violated: {stats:?}");
    }

    #[test]
    fn request_at_or_above_cap_bypasses_coalescing() {
        let artifact = artifact();
        let batcher = Batcher::new(BatchConfig {
            window: Duration::from_millis(50),
            max_rows: 4,
        });
        let matrix = rows(5, 6);
        let direct = compute_direct(
            &artifact,
            Endpoint::Features,
            &matrix,
            &ParallelPolicy::serial(),
        )
        .unwrap();
        let got = batcher
            .submit(
                &artifact,
                "m",
                1,
                Endpoint::Features,
                &matrix,
                &ParallelPolicy::serial(),
            )
            .unwrap();
        assert_eq!(direct, got);
        assert_eq!(batcher.stats().batches, 0);
    }

    #[test]
    fn different_keys_never_share_a_batch() {
        let artifact = artifact();
        let batcher = Batcher::new(BatchConfig {
            window: Duration::from_millis(300),
            max_rows: 64,
        });
        let policy = ParallelPolicy::serial();
        let barrier = Barrier::new(2);
        std::thread::scope(|scope| {
            let a = scope.spawn(|| {
                let matrix = rows(300, 2);
                let expected =
                    compute_direct(&artifact, Endpoint::Features, &matrix, &policy).unwrap();
                barrier.wait();
                let got = batcher
                    .submit(&artifact, "alpha", 1, Endpoint::Features, &matrix, &policy)
                    .unwrap();
                assert_eq!(expected, got);
            });
            let b = scope.spawn(|| {
                let matrix = rows(301, 2);
                let expected =
                    compute_direct(&artifact, Endpoint::Assign, &matrix, &policy).unwrap();
                barrier.wait();
                let got = batcher
                    .submit(&artifact, "alpha", 1, Endpoint::Assign, &matrix, &policy)
                    .unwrap();
                assert_eq!(expected, got);
            });
            a.join().unwrap();
            b.join().unwrap();
        });
        // Two distinct keys -> two batches, each of one request.
        let stats = batcher.stats();
        assert_eq!(stats.batches, 2);
        assert_eq!(stats.largest_batch, 1);
    }

    #[test]
    fn different_generations_never_share_a_batch() {
        let artifact = artifact();
        let batcher = Batcher::new(BatchConfig {
            window: Duration::from_millis(300),
            max_rows: 64,
        });
        let policy = ParallelPolicy::serial();
        let barrier = Barrier::new(2);
        std::thread::scope(|scope| {
            for generation in [1u64, 2u64] {
                let artifact = &artifact;
                let batcher = &batcher;
                let policy = &policy;
                let barrier = &barrier;
                scope.spawn(move || {
                    let matrix = rows(400 + generation, 2);
                    let expected =
                        compute_direct(artifact, Endpoint::Features, &matrix, policy).unwrap();
                    barrier.wait();
                    let got = batcher
                        .submit(
                            artifact,
                            "m",
                            generation,
                            Endpoint::Features,
                            &matrix,
                            policy,
                        )
                        .unwrap();
                    assert_eq!(expected, got);
                });
            }
        });
        // Same model and endpoint, different generation -> no fusing: a hot
        // swap mid-window must not mix model versions in one launch.
        let stats = batcher.stats();
        assert_eq!(stats.batches, 2);
        assert_eq!(stats.largest_batch, 1);
    }
}
