//! The model registry: named, loaded [`PipelineArtifact`]s shared across
//! server worker threads.

use crate::{Result, ServeError};
use sls_rbm_core::PipelineArtifact;
use std::collections::BTreeMap;
use std::path::Path;
use std::sync::Arc;

/// Maps model names to loaded artifacts.
///
/// The registry is immutable once built, so worker threads share it behind a
/// plain `Arc` — no locking on the request hot path.
#[derive(Debug, Default, Clone)]
pub struct ModelRegistry {
    models: BTreeMap<String, Arc<PipelineArtifact>>,
}

impl ModelRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers `artifact` under `name`, replacing any previous entry.
    pub fn insert(&mut self, name: impl Into<String>, artifact: PipelineArtifact) {
        self.models.insert(name.into(), Arc::new(artifact));
    }

    /// Loads every `*.json` artifact in `dir`; each model is named after its
    /// file stem (`quick_demo.json` serves as `quick_demo`).
    ///
    /// # Errors
    ///
    /// Returns I/O errors, artifact parse errors (a corrupt file fails the
    /// whole load rather than being skipped silently) and
    /// [`ServeError::EmptyRegistry`] if no artifact was found.
    pub fn load_dir(dir: impl AsRef<Path>) -> Result<Self> {
        let dir = dir.as_ref();
        let mut registry = Self::new();
        let mut entries: Vec<_> = std::fs::read_dir(dir)?
            .collect::<std::result::Result<Vec<_>, _>>()?
            .into_iter()
            .map(|e| e.path())
            .filter(|p| p.extension().is_some_and(|ext| ext == "json"))
            .collect();
        entries.sort();
        for path in entries {
            let Some(name) = path.file_stem().and_then(|s| s.to_str()) else {
                continue;
            };
            registry.insert(name.to_string(), PipelineArtifact::load(&path)?);
        }
        if registry.is_empty() {
            return Err(ServeError::EmptyRegistry {
                dir: dir.display().to_string(),
            });
        }
        Ok(registry)
    }

    /// Looks up a model by name.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::UnknownModel`] if the name is not registered.
    pub fn get(&self, name: &str) -> Result<Arc<PipelineArtifact>> {
        self.models
            .get(name)
            .cloned()
            .ok_or_else(|| ServeError::UnknownModel {
                name: name.to_string(),
            })
    }

    /// Iterates over `(name, artifact)` pairs in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Arc<PipelineArtifact>)> {
        self.models.iter().map(|(n, a)| (n.as_str(), a))
    }

    /// Number of registered models.
    pub fn len(&self) -> usize {
        self.models.len()
    }

    /// `true` when no model is registered.
    pub fn is_empty(&self) -> bool {
        self.models.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use sls_rbm_core::{ModelKind, RbmParams};

    fn artifact() -> PipelineArtifact {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        PipelineArtifact::from_params(RbmParams::init(4, 2, &mut rng), ModelKind::Rbm)
    }

    #[test]
    fn insert_get_and_iterate() {
        let mut r = ModelRegistry::new();
        assert!(r.is_empty());
        r.insert("b", artifact());
        r.insert("a", artifact());
        assert_eq!(r.len(), 2);
        assert_eq!(r.get("a").unwrap().n_visible(), 4);
        assert!(matches!(
            r.get("missing"),
            Err(ServeError::UnknownModel { .. })
        ));
        let names: Vec<&str> = r.iter().map(|(n, _)| n).collect();
        assert_eq!(names, vec!["a", "b"]);
    }

    #[test]
    fn load_dir_reads_json_files_and_names_by_stem() {
        let dir = std::env::temp_dir().join("sls_serve_registry_load");
        std::fs::create_dir_all(&dir).unwrap();
        artifact().save(dir.join("first.json")).unwrap();
        artifact().save(dir.join("second.json")).unwrap();
        std::fs::write(dir.join("notes.txt"), "ignored").unwrap();
        let r = ModelRegistry::load_dir(&dir).unwrap();
        assert_eq!(r.len(), 2);
        assert!(r.get("first").is_ok());
        assert!(r.get("second").is_ok());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn load_dir_without_artifacts_errors() {
        let dir = std::env::temp_dir().join("sls_serve_registry_empty");
        std::fs::create_dir_all(&dir).unwrap();
        assert!(matches!(
            ModelRegistry::load_dir(&dir),
            Err(ServeError::EmptyRegistry { .. })
        ));
        std::fs::remove_dir_all(&dir).ok();
        assert!(ModelRegistry::load_dir("/nonexistent/artifacts").is_err());
    }

    #[test]
    fn load_dir_fails_on_corrupt_artifact() {
        let dir = std::env::temp_dir().join("sls_serve_registry_corrupt");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("bad.json"), "{ not json }").unwrap();
        assert!(ModelRegistry::load_dir(&dir).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }
}
