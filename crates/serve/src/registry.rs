//! The model registry: named, loaded artifacts shared across server worker
//! threads.
//!
//! Each entry is a [`ServingModel`] — either a full-precision
//! [`PipelineArtifact`] or its f32-quantized [`CompactArtifact`] twin. The
//! representation is chosen per registry load (`--compact 0|1`), so a node
//! that holds many models can halve its parameter footprint without the
//! request handlers caring which representation answers.
//!
//! A registry is immutable once built; worker threads share it behind a plain
//! `Arc` with no locking on the request hot path. Hot swaps replace the whole
//! registry atomically via [`crate::LiveRegistry`].

use crate::{Result, ServeError};
use sls_linalg::{Matrix, ParallelPolicy};
use sls_rbm_core::{CompactArtifact, PipelineArtifact};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// One loaded model in either serving representation.
///
/// Request handlers talk to this enum instead of a concrete artifact type, so
/// full-precision and compact registries serve through identical code paths.
#[derive(Debug, Clone, PartialEq)]
pub enum ServingModel {
    /// Full-precision f64 artifact, exactly as exported.
    Full(PipelineArtifact),
    /// f32-quantized artifact with error-bounded f64 arithmetic.
    Compact(CompactArtifact),
}

impl ServingModel {
    /// Wraps `artifact` in the representation selected by `compact`.
    pub fn from_artifact(artifact: PipelineArtifact, compact: bool) -> Self {
        if compact {
            ServingModel::Compact(CompactArtifact::from_artifact(&artifact))
        } else {
            ServingModel::Full(artifact)
        }
    }

    /// `true` for the f32-quantized representation.
    pub fn is_compact(&self) -> bool {
        matches!(self, ServingModel::Compact(_))
    }

    /// Artifact schema version this model was loaded from.
    pub fn schema_version(&self) -> u32 {
        match self {
            ServingModel::Full(a) => a.schema_version,
            ServingModel::Compact(a) => a.schema_version(),
        }
    }

    /// Model kind label (`"rbm"`, `"sls-grbm"`, ...).
    pub fn model_kind(&self) -> &'static str {
        match self {
            ServingModel::Full(a) => a.model_kind.as_str(),
            ServingModel::Compact(a) => a.model_kind().as_str(),
        }
    }

    /// Number of visible units (request row width).
    pub fn n_visible(&self) -> usize {
        match self {
            ServingModel::Full(a) => a.n_visible(),
            ServingModel::Compact(a) => a.n_visible(),
        }
    }

    /// Number of hidden units (feature row width).
    pub fn n_hidden(&self) -> usize {
        match self {
            ServingModel::Full(a) => a.n_hidden(),
            ServingModel::Compact(a) => a.n_hidden(),
        }
    }

    /// Number of clusters in the fitted head, if one is present.
    pub fn n_clusters(&self) -> Option<usize> {
        match self {
            ServingModel::Full(a) => a.cluster_head.as_ref().map(|h| h.n_clusters),
            ServingModel::Compact(a) => a.cluster_head().map(|h| h.n_clusters),
        }
    }

    /// `true` when the artifact carries a cluster head (can serve `/assign`).
    pub fn has_cluster_head(&self) -> bool {
        self.n_clusters().is_some()
    }

    /// Bytes held by the model parameters (weights + biases) in this
    /// representation.
    pub fn param_bytes(&self) -> usize {
        match self {
            ServingModel::Full(a) => a.params.param_bytes(),
            ServingModel::Compact(a) => a.param_bytes(),
        }
    }

    /// Training timestamp recorded at export time, if any.
    pub fn trained_at(&self) -> Option<&str> {
        match self {
            ServingModel::Full(a) => a.trained_at.as_deref(),
            ServingModel::Compact(a) => a.trained_at(),
        }
    }

    /// Provenance string recorded at export time, if any.
    pub fn source(&self) -> Option<&str> {
        match self {
            ServingModel::Full(a) => a.source.as_deref(),
            ServingModel::Compact(a) => a.source(),
        }
    }

    /// Preprocesses `rows` and computes hidden features.
    pub fn features_with(
        &self,
        rows: &Matrix,
        parallel: &ParallelPolicy,
    ) -> sls_rbm_core::Result<Matrix> {
        match self {
            ServingModel::Full(a) => a.features_with(rows, parallel),
            ServingModel::Compact(a) => a.features_with(rows, parallel),
        }
    }

    /// Preprocesses `rows` and assigns each to its nearest centroid.
    pub fn assign_with(
        &self,
        rows: &Matrix,
        parallel: &ParallelPolicy,
    ) -> sls_rbm_core::Result<Vec<usize>> {
        match self {
            ServingModel::Full(a) => a.assign_with(rows, parallel),
            ServingModel::Compact(a) => a.assign_with(rows, parallel),
        }
    }
}

/// Maps model names to loaded serving models.
#[derive(Debug, Default, Clone)]
pub struct ModelRegistry {
    models: BTreeMap<String, Arc<ServingModel>>,
}

/// Lists the `*.json` artifact files under `dir` as `(model name, path)`
/// pairs in name order.
///
/// # Errors
///
/// Returns I/O errors and [`ServeError::InvalidArtifactName`] when a file
/// stem is not valid UTF-8 — such a file can never be addressed by a request
/// path, so skipping it silently would hide a deployment mistake.
pub(crate) fn artifact_files(dir: &Path) -> Result<Vec<(String, PathBuf)>> {
    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)?
        .collect::<std::result::Result<Vec<_>, _>>()?
        .into_iter()
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|ext| ext == "json"))
        .collect();
    entries.sort();
    entries
        .into_iter()
        .map(|path| {
            let Some(name) = path.file_stem().and_then(|s| s.to_str()) else {
                return Err(ServeError::InvalidArtifactName {
                    path: path.display().to_string(),
                });
            };
            Ok((name.to_string(), path))
        })
        .collect()
}

/// Loads one artifact file into the representation selected by `compact`.
pub(crate) fn load_artifact(path: &Path, compact: bool) -> Result<ServingModel> {
    Ok(ServingModel::from_artifact(
        PipelineArtifact::load(path)?,
        compact,
    ))
}

impl ModelRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers `artifact` at full precision under `name`, replacing any
    /// previous entry.
    pub fn insert(&mut self, name: impl Into<String>, artifact: PipelineArtifact) {
        self.insert_model(name, ServingModel::Full(artifact));
    }

    /// Registers an already-built [`ServingModel`] under `name`.
    pub fn insert_model(&mut self, name: impl Into<String>, model: ServingModel) {
        self.models.insert(name.into(), Arc::new(model));
    }

    /// Loads every `*.json` artifact in `dir` at full precision; each model
    /// is named after its file stem (`quick_demo.json` serves as
    /// `quick_demo`).
    ///
    /// # Errors
    ///
    /// Returns I/O errors, artifact parse errors (a corrupt file fails the
    /// whole load rather than being skipped silently),
    /// [`ServeError::InvalidArtifactName`] for non-UTF-8 file stems and
    /// [`ServeError::EmptyRegistry`] if no artifact was found.
    pub fn load_dir(dir: impl AsRef<Path>) -> Result<Self> {
        Self::load_dir_with(dir, false)
    }

    /// [`Self::load_dir`], loading into the representation selected by
    /// `compact`.
    pub fn load_dir_with(dir: impl AsRef<Path>, compact: bool) -> Result<Self> {
        let dir = dir.as_ref();
        let mut registry = Self::new();
        for (name, path) in artifact_files(dir)? {
            registry.insert_model(name, load_artifact(&path, compact)?);
        }
        if registry.is_empty() {
            return Err(ServeError::EmptyRegistry {
                dir: dir.display().to_string(),
            });
        }
        Ok(registry)
    }

    /// Looks up a model by name.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::UnknownModel`] if the name is not registered.
    pub fn get(&self, name: &str) -> Result<Arc<ServingModel>> {
        self.models
            .get(name)
            .cloned()
            .ok_or_else(|| ServeError::UnknownModel {
                name: name.to_string(),
            })
    }

    /// Iterates over `(name, model)` pairs in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Arc<ServingModel>)> {
        self.models.iter().map(|(n, a)| (n.as_str(), a))
    }

    /// Number of registered models.
    pub fn len(&self) -> usize {
        self.models.len()
    }

    /// `true` when no model is registered.
    pub fn is_empty(&self) -> bool {
        self.models.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use sls_rbm_core::{ModelKind, RbmParams};
    use std::sync::atomic::{AtomicU64, Ordering};

    fn artifact() -> PipelineArtifact {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        PipelineArtifact::from_params(RbmParams::init(4, 2, &mut rng), ModelKind::Rbm)
    }

    /// A fresh per-test directory: pid plus a process-wide counter, so
    /// concurrent test binaries (and concurrent tests in one binary) never
    /// collide on a shared fixed path.
    fn unique_dir(tag: &str) -> PathBuf {
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "sls_serve_registry_{tag}_{}_{}",
            std::process::id(),
            COUNTER.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn insert_get_and_iterate() {
        let mut r = ModelRegistry::new();
        assert!(r.is_empty());
        r.insert("b", artifact());
        r.insert("a", artifact());
        assert_eq!(r.len(), 2);
        assert_eq!(r.get("a").unwrap().n_visible(), 4);
        assert!(matches!(
            r.get("missing"),
            Err(ServeError::UnknownModel { .. })
        ));
        let names: Vec<&str> = r.iter().map(|(n, _)| n).collect();
        assert_eq!(names, vec!["a", "b"]);
    }

    #[test]
    fn load_dir_reads_json_files_and_names_by_stem() {
        let dir = unique_dir("load");
        artifact().save(dir.join("first.json")).unwrap();
        artifact().save(dir.join("second.json")).unwrap();
        std::fs::write(dir.join("notes.txt"), "ignored").unwrap();
        let r = ModelRegistry::load_dir(&dir).unwrap();
        assert_eq!(r.len(), 2);
        assert!(r.get("first").is_ok());
        assert!(!r.get("second").unwrap().is_compact());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn load_dir_without_artifacts_errors() {
        let dir = unique_dir("empty");
        assert!(matches!(
            ModelRegistry::load_dir(&dir),
            Err(ServeError::EmptyRegistry { .. })
        ));
        std::fs::remove_dir_all(&dir).ok();
        assert!(ModelRegistry::load_dir("/nonexistent/artifacts").is_err());
    }

    #[test]
    fn load_dir_fails_on_corrupt_artifact() {
        let dir = unique_dir("corrupt");
        std::fs::write(dir.join("bad.json"), "{ not json }").unwrap();
        assert!(ModelRegistry::load_dir(&dir).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[cfg(unix)]
    #[test]
    fn load_dir_rejects_non_utf8_artifact_names() {
        use std::os::unix::ffi::OsStrExt;
        let dir = unique_dir("nonutf8");
        artifact().save(dir.join("good.json")).unwrap();
        let bad = dir.join(std::ffi::OsStr::from_bytes(b"bad\xFFname.json"));
        std::fs::write(&bad, "{}").unwrap();
        assert!(matches!(
            ModelRegistry::load_dir(&dir),
            Err(ServeError::InvalidArtifactName { .. })
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn compact_load_halves_params_and_stays_close() {
        let dir = unique_dir("compact");
        artifact().save(dir.join("m.json")).unwrap();
        let full = ModelRegistry::load_dir_with(&dir, false).unwrap();
        let compact = ModelRegistry::load_dir_with(&dir, true).unwrap();
        let full = full.get("m").unwrap();
        let compact = compact.get("m").unwrap();
        assert!(compact.is_compact());
        assert!(compact.param_bytes() < full.param_bytes());
        let rows = Matrix::from_rows(&[vec![0.2, -0.4, 0.8, 0.1]]).unwrap();
        let policy = ParallelPolicy::serial();
        let f = full.features_with(&rows, &policy).unwrap();
        let c = compact.features_with(&rows, &policy).unwrap();
        for (&a, &b) in f.as_slice().iter().zip(c.as_slice()) {
            assert!((a - b).abs() <= 1e-6 * (1.0 + a.abs()));
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn serving_model_delegates_metadata() {
        let full = ServingModel::from_artifact(
            artifact().with_provenance(Some("2026-01-01T00:00:00Z".into()), Some("test".into())),
            false,
        );
        let compact = ServingModel::from_artifact(
            artifact().with_provenance(Some("2026-01-01T00:00:00Z".into()), Some("test".into())),
            true,
        );
        for model in [&full, &compact] {
            assert_eq!(model.n_visible(), 4);
            assert_eq!(model.n_hidden(), 2);
            assert_eq!(model.model_kind(), "rbm");
            assert_eq!(model.n_clusters(), None);
            assert!(!model.has_cluster_head());
            assert_eq!(model.trained_at(), Some("2026-01-01T00:00:00Z"));
            assert_eq!(model.source(), Some("test"));
        }
        assert!(!full.is_compact());
        assert!(compact.is_compact());
        let rows = Matrix::from_rows(&[vec![1.0, 0.0, 1.0, 0.0]]).unwrap();
        assert!(matches!(
            full.assign_with(&rows, &ParallelPolicy::serial()),
            Err(sls_rbm_core::RbmError::MissingArtifactPart { .. })
        ));
    }
}
