//! Error type shared by the serving layers.

use std::fmt;

/// Errors raised by the registry, server, client and load tooling.
#[derive(Debug)]
pub enum ServeError {
    /// No artifact is registered under the requested name.
    UnknownModel {
        /// The name the request asked for.
        name: String,
    },
    /// An artifact directory contained no loadable artifacts.
    EmptyRegistry {
        /// The directory that was scanned.
        dir: String,
    },
    /// An artifact file's stem is not valid UTF-8, so it cannot become a
    /// model name (names travel in URL paths and JSON responses).
    InvalidArtifactName {
        /// The offending path, lossily rendered.
        path: String,
    },
    /// The request could not be parsed or fails validation.
    BadRequest {
        /// Explanation sent back to the client.
        message: String,
    },
    /// An HTTP message violated the subset of HTTP/1.1 this crate speaks.
    Protocol {
        /// Explanation of the violation.
        message: String,
    },
    /// The server answered with a non-success status.
    Status {
        /// HTTP status code received.
        status: u16,
        /// Response body (usually a JSON error object).
        body: String,
    },
    /// Propagated model/artifact error.
    Rbm(sls_rbm_core::RbmError),
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// JSON (de)serialisation failed.
    Serde(serde_json::Error),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::UnknownModel { name } => write!(f, "no model named `{name}` is loaded"),
            ServeError::EmptyRegistry { dir } => {
                write!(f, "no .json artifacts found under `{dir}`")
            }
            ServeError::InvalidArtifactName { path } => {
                write!(
                    f,
                    "artifact file `{path}` has a non-UTF-8 stem and cannot name a model"
                )
            }
            ServeError::BadRequest { message } => write!(f, "bad request: {message}"),
            ServeError::Protocol { message } => write!(f, "HTTP protocol error: {message}"),
            ServeError::Status { status, body } => {
                write!(f, "server answered {status}: {body}")
            }
            ServeError::Rbm(e) => write!(f, "model error: {e}"),
            ServeError::Io(e) => write!(f, "I/O error: {e}"),
            ServeError::Serde(e) => write!(f, "serialisation error: {e}"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Rbm(e) => Some(e),
            ServeError::Io(e) => Some(e),
            ServeError::Serde(e) => Some(e),
            _ => None,
        }
    }
}

impl From<sls_rbm_core::RbmError> for ServeError {
    fn from(e: sls_rbm_core::RbmError) -> Self {
        ServeError::Rbm(e)
    }
}

impl From<std::io::Error> for ServeError {
    fn from(e: std::io::Error) -> Self {
        ServeError::Io(e)
    }
}

impl From<serde_json::Error> for ServeError {
    fn from(e: serde_json::Error) -> Self {
        ServeError::Serde(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(ServeError::UnknownModel { name: "m".into() }
            .to_string()
            .contains("`m`"));
        assert!(ServeError::EmptyRegistry { dir: "d".into() }
            .to_string()
            .contains("`d`"));
        assert!(ServeError::InvalidArtifactName { path: "p".into() }
            .to_string()
            .contains("non-UTF-8"));
        assert!(ServeError::BadRequest {
            message: "rows must be non-empty".into()
        }
        .to_string()
        .contains("rows"));
        assert!(ServeError::Protocol {
            message: "missing request line".into()
        }
        .to_string()
        .contains("request line"));
        assert!(ServeError::Status {
            status: 404,
            body: "{}".into()
        }
        .to_string()
        .contains("404"));
    }

    #[test]
    fn conversions_preserve_sources() {
        use std::error::Error;
        let e: ServeError = std::io::Error::other("x").into();
        assert!(e.source().is_some());
        let e: ServeError = sls_rbm_core::RbmError::EmptyData.into();
        assert!(e.source().is_some());
        assert!(ServeError::UnknownModel { name: "m".into() }
            .source()
            .is_none());
    }
}
