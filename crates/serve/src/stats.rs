//! Latency summaries for the load generator and serving benchmarks.

use std::time::Duration;

/// Percentile/aggregate summary of a set of request latencies.
#[derive(Debug, Clone, PartialEq)]
pub struct LatencySummary {
    /// Number of samples.
    pub count: usize,
    /// Median latency.
    pub p50: Duration,
    /// 95th-percentile latency.
    pub p95: Duration,
    /// 99th-percentile latency.
    pub p99: Duration,
    /// Arithmetic mean.
    pub mean: Duration,
    /// Slowest sample.
    pub max: Duration,
}

impl LatencySummary {
    /// Computes the summary from raw samples (order irrelevant). Returns
    /// `None` for an empty set.
    ///
    /// Percentiles use the nearest-rank method: the p-th percentile is the
    /// smallest sample such that at least `p%` of samples are ≤ it, the
    /// convention load-testing tools report.
    pub fn from_samples(samples: &[Duration]) -> Option<Self> {
        if samples.is_empty() {
            return None;
        }
        let mut sorted = samples.to_vec();
        sorted.sort_unstable();
        let total: Duration = sorted.iter().sum();
        Some(Self {
            count: sorted.len(),
            p50: nearest_rank(&sorted, 50.0),
            p95: nearest_rank(&sorted, 95.0),
            p99: nearest_rank(&sorted, 99.0),
            mean: total / sorted.len() as u32,
            max: *sorted.last().expect("non-empty"),
        })
    }

    /// Nearest-rank percentile of raw samples (order irrelevant), for
    /// percentiles beyond the fixed p50/p95/p99 set — load tooling chasing
    /// batching-induced tail effects typically wants p99.9 too. Returns
    /// `None` for an empty set or a `p` outside `(0, 100]`.
    pub fn percentile(samples: &[Duration], p: f64) -> Option<Duration> {
        if samples.is_empty() || !(p > 0.0 && p <= 100.0) {
            return None;
        }
        let mut sorted = samples.to_vec();
        sorted.sort_unstable();
        Some(nearest_rank(&sorted, p))
    }

    /// Requests per second over a wall-clock window of `elapsed`.
    pub fn throughput(&self, elapsed: Duration) -> f64 {
        if elapsed.is_zero() {
            return 0.0;
        }
        self.count as f64 / elapsed.as_secs_f64()
    }
}

/// The p-th nearest-rank percentile of an already-sorted sample set: the
/// smallest sample such that at least `p%` of samples are ≤ it.
///
/// The tiny subtraction before the ceil absorbs the float error of
/// `p / 100.0` for percentiles like 99.9 that are not exactly representable
/// — without it `0.999 * 1000` lands epsilon above 999 and the ceil
/// silently promotes the rank.
fn nearest_rank(sorted: &[Duration], p: f64) -> Duration {
    let rank = ((p / 100.0) * sorted.len() as f64 - 1e-9).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

impl std::fmt::Display for LatencySummary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "n={} p50={:.2?} p95={:.2?} p99={:.2?} mean={:.2?} max={:.2?}",
            self.count, self.p50, self.p95, self.p99, self.mean, self.max
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> Duration {
        Duration::from_millis(v)
    }

    #[test]
    fn empty_samples_have_no_summary() {
        assert!(LatencySummary::from_samples(&[]).is_none());
    }

    #[test]
    fn single_sample_is_every_percentile() {
        let s = LatencySummary::from_samples(&[ms(7)]).unwrap();
        assert_eq!(s.count, 1);
        assert_eq!(s.p50, ms(7));
        assert_eq!(s.p95, ms(7));
        assert_eq!(s.p99, ms(7));
        assert_eq!(s.mean, ms(7));
        assert_eq!(s.max, ms(7));
    }

    #[test]
    fn nearest_rank_percentiles_on_a_known_ladder() {
        // 1..=100 ms: the p-th percentile is exactly p ms under nearest-rank.
        let samples: Vec<Duration> = (1..=100).map(ms).collect();
        let s = LatencySummary::from_samples(&samples).unwrap();
        assert_eq!(s.p50, ms(50));
        assert_eq!(s.p95, ms(95));
        assert_eq!(s.p99, ms(99));
        assert_eq!(s.max, ms(100));
        assert_eq!(s.mean, Duration::from_micros(50_500));
    }

    #[test]
    fn order_does_not_matter() {
        let a = LatencySummary::from_samples(&[ms(3), ms(1), ms(2)]).unwrap();
        let b = LatencySummary::from_samples(&[ms(1), ms(2), ms(3)]).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.p50, ms(2));
    }

    #[test]
    fn arbitrary_percentiles_match_the_ladder() {
        let samples: Vec<Duration> = (1..=1000).map(ms).collect();
        assert_eq!(LatencySummary::percentile(&samples, 99.9), Some(ms(999)));
        assert_eq!(LatencySummary::percentile(&samples, 100.0), Some(ms(1000)));
        assert_eq!(LatencySummary::percentile(&samples, 0.1), Some(ms(1)));
        assert_eq!(LatencySummary::percentile(&[], 50.0), None);
        assert_eq!(LatencySummary::percentile(&samples, 0.0), None);
        assert_eq!(LatencySummary::percentile(&samples, 101.0), None);
        // Consistent with the fixed summary percentiles.
        let s = LatencySummary::from_samples(&samples).unwrap();
        assert_eq!(LatencySummary::percentile(&samples, 50.0), Some(s.p50));
        assert_eq!(LatencySummary::percentile(&samples, 99.0), Some(s.p99));
    }

    #[test]
    fn throughput_is_count_over_elapsed() {
        let s = LatencySummary::from_samples(&[ms(1), ms(1), ms(1), ms(1)]).unwrap();
        assert!((s.throughput(Duration::from_secs(2)) - 2.0).abs() < 1e-12);
        assert_eq!(s.throughput(Duration::ZERO), 0.0);
    }

    #[test]
    fn display_mentions_percentiles() {
        let s = LatencySummary::from_samples(&[ms(5)]).unwrap();
        let text = s.to_string();
        assert!(text.contains("p50"));
        assert!(text.contains("p99"));
    }
}
