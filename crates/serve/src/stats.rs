//! Latency summaries for the load generator and serving benchmarks.

use std::time::Duration;

/// Percentile/aggregate summary of a set of request latencies.
#[derive(Debug, Clone, PartialEq)]
pub struct LatencySummary {
    /// Number of samples.
    pub count: usize,
    /// Median latency.
    pub p50: Duration,
    /// 95th-percentile latency.
    pub p95: Duration,
    /// 99th-percentile latency.
    pub p99: Duration,
    /// Arithmetic mean.
    pub mean: Duration,
    /// Slowest sample.
    pub max: Duration,
}

impl LatencySummary {
    /// Computes the summary from raw samples (order irrelevant). Returns
    /// `None` for an empty set.
    ///
    /// Percentiles use the nearest-rank method: the p-th percentile is the
    /// smallest sample such that at least `p%` of samples are ≤ it, the
    /// convention load-testing tools report.
    pub fn from_samples(samples: &[Duration]) -> Option<Self> {
        if samples.is_empty() {
            return None;
        }
        let mut sorted = samples.to_vec();
        sorted.sort_unstable();
        let nearest_rank = |p: f64| -> Duration {
            let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
            sorted[rank.clamp(1, sorted.len()) - 1]
        };
        let total: Duration = sorted.iter().sum();
        Some(Self {
            count: sorted.len(),
            p50: nearest_rank(50.0),
            p95: nearest_rank(95.0),
            p99: nearest_rank(99.0),
            mean: total / sorted.len() as u32,
            max: *sorted.last().expect("non-empty"),
        })
    }

    /// Requests per second over a wall-clock window of `elapsed`.
    pub fn throughput(&self, elapsed: Duration) -> f64 {
        if elapsed.is_zero() {
            return 0.0;
        }
        self.count as f64 / elapsed.as_secs_f64()
    }
}

impl std::fmt::Display for LatencySummary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "n={} p50={:.2?} p95={:.2?} p99={:.2?} mean={:.2?} max={:.2?}",
            self.count, self.p50, self.p95, self.p99, self.mean, self.max
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> Duration {
        Duration::from_millis(v)
    }

    #[test]
    fn empty_samples_have_no_summary() {
        assert!(LatencySummary::from_samples(&[]).is_none());
    }

    #[test]
    fn single_sample_is_every_percentile() {
        let s = LatencySummary::from_samples(&[ms(7)]).unwrap();
        assert_eq!(s.count, 1);
        assert_eq!(s.p50, ms(7));
        assert_eq!(s.p95, ms(7));
        assert_eq!(s.p99, ms(7));
        assert_eq!(s.mean, ms(7));
        assert_eq!(s.max, ms(7));
    }

    #[test]
    fn nearest_rank_percentiles_on_a_known_ladder() {
        // 1..=100 ms: the p-th percentile is exactly p ms under nearest-rank.
        let samples: Vec<Duration> = (1..=100).map(ms).collect();
        let s = LatencySummary::from_samples(&samples).unwrap();
        assert_eq!(s.p50, ms(50));
        assert_eq!(s.p95, ms(95));
        assert_eq!(s.p99, ms(99));
        assert_eq!(s.max, ms(100));
        assert_eq!(s.mean, Duration::from_micros(50_500));
    }

    #[test]
    fn order_does_not_matter() {
        let a = LatencySummary::from_samples(&[ms(3), ms(1), ms(2)]).unwrap();
        let b = LatencySummary::from_samples(&[ms(1), ms(2), ms(3)]).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.p50, ms(2));
    }

    #[test]
    fn throughput_is_count_over_elapsed() {
        let s = LatencySummary::from_samples(&[ms(1), ms(1), ms(1), ms(1)]).unwrap();
        assert!((s.throughput(Duration::from_secs(2)) - 2.0).abs() < 1e-12);
        assert_eq!(s.throughput(Duration::ZERO), 0.0);
    }

    #[test]
    fn display_mentions_percentiles() {
        let s = LatencySummary::from_samples(&[ms(5)]).unwrap();
        let text = s.to_string();
        assert!(text.contains("p50"));
        assert!(text.contains("p99"));
    }
}
