//! Shard-router integration suite: two in-process replicas behind a
//! [`Router`], proving stable hash ownership, retry-on-another-owner when a
//! replica dies, drain without dropping an in-flight response, and
//! generation-consistent fan-out reload (converged, rejected-atomically,
//! and torn rollouts).

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use sls_datasets::SyntheticBlobs;
use sls_rbm_core::{ModelKind, PipelineArtifact, SlsPipelineConfig};
use sls_serve::{
    replica_rank, Client, LiveRegistry, ModelsResponse, Router, RouterConfig, RouterDrainResponse,
    RouterHandle, RouterReloadResponse, RouterStatzResponse, ServeOptions, Server, ServerHandle,
};
use std::net::SocketAddr;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// A fresh per-test directory: pid plus a process-wide counter, so
/// concurrent test binaries never collide on a shared fixed path.
fn unique_dir(tag: &str) -> PathBuf {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("sls_serve_router_{tag}_{}_{n}", std::process::id()))
}

/// Trains one quick artifact; `seed` varies the bits so reloads are
/// observable.
fn train(seed: u64) -> PipelineArtifact {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let ds = SyntheticBlobs::new(30, 4, 2)
        .separation(6.0)
        .generate(&mut rng);
    PipelineArtifact::fit(
        ModelKind::Grbm,
        SlsPipelineConfig::quick_demo()
            .with_clusters(2)
            .with_hidden(4),
        ds.features(),
        &mut rng,
    )
    .expect("training succeeds")
    .artifact
}

/// Saves one artifact under each name in `models`, so rendezvous hashing
/// has several keys to spread across the replica set.
fn export(dir: &PathBuf, artifact: &PipelineArtifact, models: &[&str]) {
    std::fs::create_dir_all(dir).expect("create artifact dir");
    for name in models {
        artifact
            .save(dir.join(format!("{name}.json")))
            .expect("artifact saves");
    }
}

fn start_replica(dir: &PathBuf) -> ServerHandle {
    Server::bind_live(
        "127.0.0.1:0",
        LiveRegistry::from_dir(dir, false).expect("load artifact dir"),
        2,
    )
    .expect("bind ephemeral port")
    .with_options(ServeOptions::default())
    .start()
    .expect("replica starts")
}

fn start_router(replicas: Vec<SocketAddr>, replication: usize) -> RouterHandle {
    Router::bind(
        "127.0.0.1:0",
        RouterConfig::new(replicas)
            .with_replication(replication)
            .with_health_interval(Duration::from_millis(50)),
    )
    .expect("bind router")
    .start()
    .expect("router starts")
}

fn router_statz(client: &Client) -> RouterStatzResponse {
    let body = client
        .request_ok("GET", "/admin/statz", "")
        .expect("router statz")
        .body;
    serde_json::from_str(&body).expect("router statz parses")
}

const PROBE: &str = r#"{"rows": [[0.1, 0.2, 0.3, 0.4], [-1.5, 2.0, 0.25, -0.75]]}"#;

#[test]
fn ownership_is_stable_and_matches_the_published_hash() {
    let models = ["alpha", "beta", "gamma", "delta", "epsilon"];
    let dir = unique_dir("ownership");
    export(&dir, &train(1), &models);
    let replica_a = start_replica(&dir);
    let replica_b = start_replica(&dir);
    let addrs = vec![replica_a.addr(), replica_b.addr()];
    let router = start_router(addrs.clone(), 1);
    let client = Client::new(router.addr());

    // With replication 1 each model has exactly one owner — the head of the
    // public `replica_rank` — so per-replica forward counters are fully
    // predicted by the hash.
    const ROUNDS: u64 = 3;
    let mut expected = [0u64; 2];
    for model in &models {
        let owner = replica_rank(model, &addrs)[0];
        expected[owner] += ROUNDS;
        let direct = Client::new(addrs[owner])
            .request_ok("POST", &format!("/models/{model}/features"), PROBE)
            .expect("direct request")
            .body;
        for _ in 0..ROUNDS {
            let routed = client
                .request_ok("POST", &format!("/models/{model}/features"), PROBE)
                .expect("routed request")
                .body;
            assert_eq!(routed, direct, "router must forward `{model}` verbatim");
        }
    }
    assert!(
        expected.iter().all(|&n| n > 0),
        "the hash should spread 5 models over 2 replicas (got {expected:?})"
    );
    let statz = router_statz(&client);
    assert_eq!(statz.replication, 1);
    assert_eq!(statz.forwards, ROUNDS * models.len() as u64);
    for (index, replica) in statz.replicas.iter().enumerate() {
        assert_eq!(
            replica.forwards, expected[index],
            "replica {index} forward counter must match hash ownership"
        );
        assert!(replica.healthy);
        assert!(!replica.drained);
    }

    router.shutdown();
    replica_a.shutdown();
    replica_b.shutdown();
}

#[test]
fn a_killed_replica_is_retried_on_the_other_owner() {
    let models = ["alpha", "beta", "gamma", "delta", "epsilon"];
    let dir = unique_dir("retry");
    export(&dir, &train(2), &models);
    let replica_a = start_replica(&dir);
    let replica_b = start_replica(&dir);
    let addrs = vec![replica_a.addr(), replica_b.addr()];
    let router = start_router(addrs.clone(), 2);
    let client = Client::new(router.addr());

    // Kill replica 0. With replication 2 every model is owned by both, so
    // every request must still succeed via replica 1 — including models
    // whose *first-ranked* owner just died.
    let victim_first: Vec<&str> = models
        .iter()
        .filter(|m| replica_rank(m, &addrs)[0] == 0)
        .copied()
        .collect();
    assert!(
        !victim_first.is_empty(),
        "at least one of 5 models should rank the victim first"
    );
    let reference: Vec<String> = models
        .iter()
        .map(|model| {
            Client::new(addrs[1])
                .request_ok("POST", &format!("/models/{model}/features"), PROBE)
                .expect("direct request")
                .body
        })
        .collect();
    replica_a.shutdown();

    for (model, direct) in models.iter().zip(&reference) {
        let routed = client
            .request_ok("POST", &format!("/models/{model}/features"), PROBE)
            .expect("routed request survives the kill");
        assert_eq!(&routed.body, direct, "`{model}` must come back bit-equal");
    }
    let statz = router_statz(&client);
    assert_eq!(statz.forwards, models.len() as u64);
    assert!(
        statz.retried_requests >= 1,
        "models ranking the dead replica first must be counted as retried"
    );
    assert!(
        !statz.replicas[0].healthy,
        "dead replica must be marked down"
    );
    assert_eq!(statz.replicas[0].forwards, 0);
    assert_eq!(statz.replicas[1].forwards, models.len() as u64);
    assert_eq!(statz.unrouted, 0);

    router.shutdown();
    replica_b.shutdown();
}

#[test]
fn drain_under_load_loses_no_request_and_freezes_the_replica() {
    let models = ["alpha", "beta", "gamma"];
    let dir = unique_dir("drain");
    export(&dir, &train(3), &models);
    let replica_a = start_replica(&dir);
    let replica_b = start_replica(&dir);
    let addrs = vec![replica_a.addr(), replica_b.addr()];
    let router = start_router(addrs.clone(), 2);
    let client = Client::new(router.addr());
    let reference: Vec<String> = models
        .iter()
        .map(|model| {
            Client::new(addrs[0])
                .request_ok("POST", &format!("/models/{model}/features"), PROBE)
                .expect("direct request")
                .body
        })
        .collect();

    // 4 keep-alive workers hammer the router while the main thread drains
    // replica 0 mid-run. Every single response must succeed and match.
    let stop = Arc::new(AtomicBool::new(false));
    std::thread::scope(|scope| {
        let mut workers = Vec::new();
        for worker in 0..4usize {
            let stop = Arc::clone(&stop);
            let reference = &reference;
            let router_addr = router.addr();
            workers.push(scope.spawn(move || {
                let mut connection = Client::new(router_addr).connect();
                let mut served = 0u64;
                while !stop.load(Ordering::SeqCst) {
                    let model = models[(worker + served as usize) % models.len()];
                    let index = (worker + served as usize) % models.len();
                    let response = connection
                        .request_ok("POST", &format!("/models/{model}/features"), PROBE)
                        .expect("no request may fail across the drain");
                    assert_eq!(response.body, reference[index], "`{model}` bit-equal");
                    served += 1;
                }
                served
            }));
        }

        std::thread::sleep(Duration::from_millis(100));
        let body = format!("{{\"replica\": \"{}\"}}", addrs[0]);
        let response = client
            .request_ok("POST", "/admin/drain", &body)
            .expect("drain accepted");
        let drain: RouterDrainResponse =
            serde_json::from_str(&response.body).expect("drain body parses");
        assert_eq!(drain.status, "drained", "in-flight must reach zero");
        assert_eq!(drain.in_flight, 0);
        assert!(drain.node_drained, "the node itself must accept the drain");
        std::thread::sleep(Duration::from_millis(100));
        stop.store(true, Ordering::SeqCst);
        let served: u64 = workers.into_iter().map(|w| w.join().expect("worker")).sum();
        assert!(served > 0, "load must overlap the drain");
    });

    // The drained node health-fails for other traffic sources but keeps
    // serving: direct inference still answers, /healthz reports 503.
    let direct = Client::new(addrs[0]);
    let health = direct
        .request("GET", "/healthz", "")
        .expect("socket answers");
    assert_eq!(health.status, 503, "drained node must fail health checks");
    let after = direct
        .request_ok("POST", "/models/alpha/features", PROBE)
        .expect("drained node still serves in-flight style traffic")
        .body;
    assert_eq!(after, reference[0]);

    let statz = router_statz(&client);
    assert!(statz.replicas[0].drained);
    assert_eq!(statz.replicas[0].generation, None);
    assert_eq!(statz.replicas[0].in_flight, 0);
    let frozen = statz.replicas[0].forwards;
    for _ in 0..5 {
        client
            .request_ok("POST", "/models/alpha/features", PROBE)
            .expect("post-drain request");
    }
    let statz = router_statz(&client);
    assert_eq!(
        statz.replicas[0].forwards, frozen,
        "a drained replica must receive no new forwards"
    );
    assert_eq!(statz.unrouted, 0);

    // The survivor is the last active replica: draining it must be refused.
    let body = format!("{{\"replica\": \"{}\"}}", addrs[1]);
    let refused = client
        .request("POST", "/admin/drain", &body)
        .expect("socket answers");
    assert_eq!(refused.status, 409);
    assert!(refused.body.contains("last_replica"), "{}", refused.body);

    router.shutdown();
    replica_a.shutdown();
    replica_b.shutdown();
}

#[test]
fn fanout_reload_converges_or_rejects_atomically() {
    let dir = unique_dir("reload");
    let path = dir.join("demo.json");
    export(&dir, &train(4), &["demo"]);
    let replica_a = start_replica(&dir);
    let replica_b = start_replica(&dir);
    let addrs = vec![replica_a.addr(), replica_b.addr()];
    let router = start_router(addrs.clone(), 2);
    let client = Client::new(router.addr());

    // Happy path: both replicas swap 1 -> 2 and agree.
    train(5).save(&path).expect("save generation 2");
    let response = client
        .request_ok("POST", "/admin/reload", "")
        .expect("fan-out reload");
    let reload: RouterReloadResponse =
        serde_json::from_str(&response.body).expect("reload body parses");
    assert_eq!(reload.status, "swapped");
    assert!(reload.swapped);
    assert_eq!(reload.generation, Some(2));
    assert_eq!(reload.replicas.len(), 2);
    for replica in &reload.replicas {
        assert!(replica.reachable, "{}", replica.addr);
        let inner = replica.response.as_ref().expect("per-replica response");
        assert!(inner.swapped);
        assert_eq!(inner.generation, 2);
    }
    let statz = router_statz(&client);
    assert_eq!(statz.consistent_generation, Some(2));

    // Corrupt artifact: every replica rejects, nothing diverges, and the
    // old generation keeps serving *and* being advertised.
    std::fs::write(&path, "{ not an artifact").expect("corrupt artifact");
    let response = client
        .request("POST", "/admin/reload", "")
        .expect("socket answers");
    assert_eq!(response.status, 409);
    let reload: RouterReloadResponse =
        serde_json::from_str(&response.body).expect("reload body parses");
    assert_eq!(reload.status, "rejected");
    assert!(!reload.swapped);
    assert_eq!(reload.generation, Some(2), "old generation must survive");
    let models: ModelsResponse = serde_json::from_str(
        &client
            .request_ok("GET", "/models", "")
            .expect("router models")
            .body,
    )
    .expect("models body parses");
    assert_eq!(models.generation, 2);
    assert_eq!(models.models.len(), 1, "demo stays advertised");

    router.shutdown();
    replica_a.shutdown();
    replica_b.shutdown();
}

#[test]
fn a_torn_rollout_hides_the_model_until_generations_realign() {
    let dir = unique_dir("torn");
    let path = dir.join("demo.json");
    export(&dir, &train(6), &["demo"]);
    let replica_a = start_replica(&dir);
    let replica_b = start_replica(&dir);
    let addrs = vec![replica_a.addr(), replica_b.addr()];
    let router = start_router(addrs.clone(), 2);
    let client = Client::new(router.addr());

    // Skew the set on purpose: reload only replica 1 directly, bypassing
    // the router's fan-out. Replica 0 stays on generation 1.
    train(7).save(&path).expect("save generation 2");
    let skewed = Client::new(addrs[1]).reload().expect("direct reload");
    assert!(skewed.swapped);
    assert_eq!(skewed.generation, 2);

    let statz = router_statz(&client);
    assert_eq!(
        statz.consistent_generation, None,
        "mixed generations must not report consistency"
    );
    let models: ModelsResponse = serde_json::from_str(
        &client
            .request_ok("GET", "/models", "")
            .expect("router models")
            .body,
    )
    .expect("models body parses");
    assert_eq!(
        models.generation, 0,
        "0 is the explicit 'inconsistent' marker"
    );
    assert!(
        models.models.is_empty(),
        "a torn model must be withdrawn, not served mixed"
    );

    // Re-align by reloading the lagging replica directly; the router
    // advertises the model again.
    let healed = Client::new(addrs[0]).reload().expect("direct reload");
    assert!(healed.swapped);
    assert_eq!(healed.generation, 2);
    let statz = router_statz(&client);
    assert_eq!(statz.consistent_generation, Some(2));
    let models: ModelsResponse = serde_json::from_str(
        &client
            .request_ok("GET", "/models", "")
            .expect("router models")
            .body,
    )
    .expect("models body parses");
    assert_eq!(models.generation, 2);
    assert_eq!(models.models.len(), 1);

    router.shutdown();
    replica_a.shutdown();
    replica_b.shutdown();
}
