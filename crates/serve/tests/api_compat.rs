//! Versioned-API compatibility suite: every legacy route must stay a
//! byte-identical alias of its `/v1` twin, unknown version prefixes must
//! fail with a structured 404, and every failure class must carry its
//! stable machine-readable `code` so clients can branch without parsing
//! human-facing messages.

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use sls_datasets::SyntheticBlobs;
use sls_rbm_core::{ModelKind, PipelineArtifact, RbmParams, SlsPipelineConfig};
use sls_serve::http::Request;
use sls_serve::{route, ErrorResponse, ModelRegistry, ReloadResponse};

const MODEL: &str = "demo";

/// A trained model with a cluster head: both inference endpoints work.
fn fitted_registry() -> ModelRegistry {
    let mut rng = ChaCha8Rng::seed_from_u64(41);
    let ds = SyntheticBlobs::new(30, 4, 2)
        .separation(6.0)
        .generate(&mut rng);
    let fitted = PipelineArtifact::fit(
        ModelKind::Grbm,
        SlsPipelineConfig::quick_demo()
            .with_clusters(2)
            .with_hidden(4),
        ds.features(),
        &mut rng,
    )
    .expect("training succeeds");
    let mut registry = ModelRegistry::new();
    registry.insert(MODEL, fitted.artifact);
    registry
}

/// Raw RBM parameters without a cluster head: `/assign` must refuse.
fn headless_registry() -> ModelRegistry {
    let mut rng = ChaCha8Rng::seed_from_u64(7);
    let artifact = PipelineArtifact::from_params(RbmParams::init(4, 2, &mut rng), ModelKind::Rbm);
    let mut registry = ModelRegistry::new();
    registry.insert(MODEL, artifact);
    registry
}

fn call(registry: &ModelRegistry, method: &str, path: &str, body: &str) -> (u16, String) {
    route(
        registry,
        &Request {
            method: method.to_string(),
            path: path.to_string(),
            body: body.to_string(),
        },
    )
}

fn error_code(registry: &ModelRegistry, method: &str, path: &str, body: &str) -> (u16, String) {
    let (status, body) = call(registry, method, path, body);
    let parsed: ErrorResponse = serde_json::from_str(&body).expect("error body parses");
    assert!(!parsed.error.is_empty(), "error message must not be empty");
    (status, parsed.code)
}

const GOOD_BODY: &str = r#"{"rows": [[0.1, -0.2, 0.3, 0.4], [0.0, 1.0, -1.0, 0.5]]}"#;

#[test]
fn every_legacy_route_matches_its_v1_twin_byte_for_byte() {
    let registry = fitted_registry();
    let twins: &[(&str, &str, &str, &str)] = &[
        ("GET", "/healthz", "/v1/healthz", ""),
        ("GET", "/models", "/v1/models", ""),
        (
            "POST",
            "/models/demo/features",
            "/v1/models/demo/features",
            GOOD_BODY,
        ),
        (
            "POST",
            "/models/demo/assign",
            "/v1/models/demo/assign",
            GOOD_BODY,
        ),
        // Error paths must alias too: clients pinning /v1 see the same
        // failure bytes as legacy clients.
        (
            "POST",
            "/models/nope/features",
            "/v1/models/nope/features",
            GOOD_BODY,
        ),
        (
            "POST",
            "/models/demo/features",
            "/v1/models/demo/features",
            "{not json",
        ),
    ];
    for &(method, legacy, v1, body) in twins {
        let old = call(&registry, method, legacy, body);
        let new = call(&registry, method, v1, body);
        assert_eq!(old, new, "{method} {legacy} must alias {v1} byte-for-byte");
    }
}

#[test]
fn statz_is_aliased_under_admin() {
    let registry = fitted_registry();
    let legacy = call(&registry, "GET", "/statz", "");
    let admin = call(&registry, "GET", "/admin/statz", "");
    assert_eq!(legacy.0, 200);
    assert_eq!(legacy, admin, "/statz must alias /admin/statz");
}

#[test]
fn unknown_api_versions_fail_with_a_structured_404() {
    let registry = fitted_registry();
    for path in ["/v2/models", "/v0/healthz", "/v99/models/demo/features"] {
        let (status, code) = error_code(&registry, "GET", path, "");
        assert_eq!(status, 404, "{path} must 404");
        assert_eq!(code, "unsupported_api_version", "{path}");
    }
    // `/vX` only matches whole numeric version segments: other `v...`
    // prefixes fall through to the plain not-found class.
    let (status, code) = error_code(&registry, "GET", "/vnext/models", "");
    assert_eq!(status, 404);
    assert_eq!(code, "not_found");
}

#[test]
fn each_failure_class_has_a_stable_code() {
    let registry = fitted_registry();
    let cases: &[(&str, &str, &str, u16, &str)] = &[
        (
            "POST",
            "/models/nope/features",
            GOOD_BODY,
            404,
            "model_not_found",
        ),
        (
            "POST",
            "/models/demo/features",
            "{not json",
            400,
            "invalid_body",
        ),
        (
            "POST",
            "/models/demo/features",
            r#"{"rows": [[1.0, 2.0]]}"#,
            400,
            "bad_row_width",
        ),
        ("GET", "/nope", "", 404, "not_found"),
        ("DELETE", "/models", "", 405, "method_not_allowed"),
        ("POST", "/admin/drain", "", 409, "drain_unavailable"),
    ];
    for &(method, path, body, want_status, want_code) in cases {
        let (status, code) = error_code(&registry, method, path, body);
        assert_eq!(status, want_status, "{method} {path}");
        assert_eq!(code, want_code, "{method} {path}");
    }
}

#[test]
fn assign_without_a_cluster_head_reports_no_cluster_head() {
    let registry = headless_registry();
    let (status, code) = error_code(&registry, "POST", "/models/demo/assign", GOOD_BODY);
    assert_eq!(status, 400);
    assert_eq!(code, "no_cluster_head");
    // Features still work on the same model: only the assign head is gone.
    let (status, _) = call(&registry, "POST", "/models/demo/features", GOOD_BODY);
    assert_eq!(status, 200);
}

#[test]
fn reload_over_a_bare_registry_rejects_with_409() {
    let registry = fitted_registry();
    let (status, body) = call(&registry, "POST", "/admin/reload", "");
    assert_eq!(status, 409);
    let parsed: ReloadResponse = serde_json::from_str(&body).expect("reload body parses");
    assert_eq!(parsed.status, "rejected");
    assert!(!parsed.swapped);
}

#[test]
fn error_bodies_keep_the_human_message_alongside_the_code() {
    // The `error` string stays primary (older clients parse only it); `code`
    // rides alongside. Check the 404 names the model and the 400 names the
    // expected width, so messages stay actionable.
    let registry = fitted_registry();
    let (_, body) = call(&registry, "POST", "/models/nope/features", GOOD_BODY);
    let parsed: ErrorResponse = serde_json::from_str(&body).unwrap();
    assert!(
        parsed.error.contains("nope"),
        "message names the model: {}",
        parsed.error
    );
    let (_, body) = call(
        &registry,
        "POST",
        "/models/demo/features",
        r#"{"rows": [[1.0]]}"#,
    );
    let parsed: ErrorResponse = serde_json::from_str(&body).unwrap();
    assert!(
        parsed.error.contains('4'),
        "message names the width: {}",
        parsed.error
    );
    assert_eq!(parsed.code, "bad_row_width");
}
