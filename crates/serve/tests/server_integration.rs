//! End-to-end serving test: train a pipeline, export + reload the artifact,
//! serve it on an ephemeral port, and hammer it from concurrent client
//! threads, checking every response against the in-process pipeline.

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use sls_datasets::SyntheticBlobs;
use sls_rbm_core::{FittedPipeline, ModelKind, PipelineArtifact, SlsPipelineConfig};
use sls_serve::{Client, ModelRegistry, ServeError, Server};

const MODEL: &str = "quick_demo";

/// Trains the demo pipeline once and keeps the raw rows alongside.
fn fitted_with_rows() -> (FittedPipeline, Vec<Vec<f64>>) {
    let mut rng = ChaCha8Rng::seed_from_u64(2023);
    let ds = SyntheticBlobs::new(60, 6, 3)
        .separation(6.0)
        .generate(&mut rng);
    let fitted = PipelineArtifact::fit(
        ModelKind::SlsGrbm,
        SlsPipelineConfig::quick_demo(),
        ds.features(),
        &mut rng,
    )
    .expect("training succeeds");
    let rows: Vec<Vec<f64>> = ds.features().row_iter().map(<[f64]>::to_vec).collect();
    (fitted, rows)
}

/// Spins up a server on an ephemeral port whose registry holds the artifact
/// after a save/load round trip (so the test covers the on-disk format too).
fn start_server(artifact: &PipelineArtifact, tag: &str) -> sls_serve::ServerHandle {
    let dir = std::env::temp_dir().join(format!(
        "sls_serve_integration_{}_{tag}",
        std::process::id()
    ));
    artifact
        .save(dir.join(format!("{MODEL}.json")))
        .expect("artifact saves");
    let registry = ModelRegistry::load_dir(&dir).expect("artifacts load");
    std::fs::remove_dir_all(&dir).ok();
    Server::bind("127.0.0.1:0", registry, 4)
        .expect("bind ephemeral port")
        .start()
        .expect("server starts")
}

#[test]
fn concurrent_clients_match_in_process_pipeline() {
    let (fitted, rows) = fitted_with_rows();
    let expected_features = fitted
        .artifact
        .features(&sls_linalg_matrix(&rows))
        .expect("in-process features");
    let expected_assignments = fitted.assignments.clone();
    let handle = start_server(&fitted.artifact, "concurrent");
    let client = Client::new(handle.addr());

    let health = client.health().expect("healthz answers");
    assert_eq!(health.status, "ok");
    assert_eq!(health.models, 1);

    // 8 client threads, each slicing a different window of the training rows
    // and alternating between the two inference endpoints.
    std::thread::scope(|scope| {
        for worker in 0..8usize {
            let client = &client;
            let rows = &rows;
            let expected_features = &expected_features;
            let expected_assignments = &expected_assignments;
            scope.spawn(move || {
                for round in 0..5usize {
                    let start = (worker * 7 + round * 3) % (rows.len() - 10);
                    let batch = &rows[start..start + 10];
                    if (worker + round) % 2 == 0 {
                        let features = client.features(MODEL, batch).expect("features request");
                        for (i, row) in features.iter().enumerate() {
                            assert_eq!(
                                row.as_slice(),
                                expected_features.row(start + i),
                                "feature row {} differs from the in-process pipeline",
                                start + i
                            );
                        }
                    } else {
                        let assignments = client.assign(MODEL, batch).expect("assign request");
                        assert_eq!(
                            assignments.as_slice(),
                            &expected_assignments[start..start + 10],
                            "assignments differ from the in-process pipeline"
                        );
                    }
                }
            });
        }
    });

    // Whole-dataset batch in one request: identical to training-time labels.
    let all = client.assign(MODEL, &rows).expect("full-batch assign");
    assert_eq!(all, expected_assignments);

    handle.shutdown();
}

#[test]
fn server_reports_models_and_rejects_bad_requests() {
    let (fitted, rows) = fitted_with_rows();
    let handle = start_server(&fitted.artifact, "errors");
    let client = Client::new(handle.addr());

    let models = client.models().expect("models answers");
    assert_eq!(models.models.len(), 1);
    let info = &models.models[0];
    assert_eq!(info.name, MODEL);
    assert_eq!(info.kind, "sls-grbm");
    assert_eq!(info.n_visible, 6);
    assert_eq!(info.n_hidden, 12);
    assert_eq!(info.n_clusters, Some(3));

    // Unknown model -> 404.
    match client.assign("ghost", &rows[..1]) {
        Err(ServeError::Status { status, .. }) => assert_eq!(status, 404),
        other => panic!("expected a 404 status error, got {other:?}"),
    }
    // Wrong row width -> 400.
    match client.features(MODEL, &[vec![1.0, 2.0]]) {
        Err(ServeError::Status { status, body }) => {
            assert_eq!(status, 400);
            assert!(body.contains("error"));
        }
        other => panic!("expected a 400 status error, got {other:?}"),
    }
    // Malformed JSON body -> 400.
    let response = client
        .request("POST", &format!("/models/{MODEL}/features"), "not json")
        .expect("request completes");
    assert_eq!(response.status, 400);
    // Unknown path -> 404, wrong method -> 405.
    assert_eq!(client.request("GET", "/nope", "").unwrap().status, 404);
    assert_eq!(client.request("POST", "/healthz", "").unwrap().status, 405);

    handle.shutdown();
}

/// Builds a matrix from row vectors (test-local helper to keep the linalg
/// dependency explicit).
fn sls_linalg_matrix(rows: &[Vec<f64>]) -> sls_linalg::Matrix {
    sls_linalg::Matrix::from_rows(rows).expect("rows are rectangular")
}
