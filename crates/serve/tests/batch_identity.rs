//! Batcher identity suite: with the coalescing window open, concurrent
//! clients must receive responses **bitwise identical** (`f64::to_bits`) to
//! serial unbatched calls — across spawn/pool dispatch and SIMD on/off —
//! and a mixed-model, mixed-endpoint stress run must never leak rows across
//! requests or models.

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use sls_datasets::SyntheticBlobs;
use sls_linalg::{ParallelPolicy, SimdPolicy};
use sls_rbm_core::{ModelKind, PipelineArtifact, SlsPipelineConfig};
use sls_serve::http::Request;
use sls_serve::{
    route_with, BatchConfig, BatchStatsResponse, Client, FeaturesResponse, ModelRegistry, Server,
    ServerHandle,
};
use std::sync::Barrier;
use std::time::Duration;

/// Two models with different visible widths, so cross-model leakage cannot
/// masquerade as a correct answer shape.
const ALPHA: &str = "alpha"; // 4 visible
const BETA: &str = "beta"; // 6 visible

fn train(seed: u64, dims: usize, clusters: usize) -> PipelineArtifact {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let ds = SyntheticBlobs::new(40, dims, clusters)
        .separation(6.0)
        .generate(&mut rng);
    PipelineArtifact::fit(
        ModelKind::Grbm,
        SlsPipelineConfig::quick_demo()
            .with_clusters(clusters)
            .with_hidden(4),
        ds.features(),
        &mut rng,
    )
    .expect("training succeeds")
    .artifact
}

fn registry() -> ModelRegistry {
    let mut registry = ModelRegistry::new();
    registry.insert(ALPHA, train(41, 4, 2));
    registry.insert(BETA, train(42, 6, 3));
    registry
}

fn start(parallel: ParallelPolicy) -> ServerHandle {
    Server::bind("127.0.0.1:0", registry(), 2)
        .expect("bind ephemeral port")
        .with_parallel(parallel)
        .with_batching(BatchConfig {
            // Wide enough that concurrent requests actually coalesce, short
            // enough to keep the suite quick.
            window: Duration::from_millis(3),
            max_rows: 64,
        })
        .start()
        .expect("server starts")
}

/// Deterministic distinct rows for one (worker, round) cell.
fn rows_for(model: &str, worker: usize, round: usize) -> Vec<Vec<f64>> {
    let dims = if model == ALPHA { 4 } else { 6 };
    let n_rows = 1 + (worker + round) % 3;
    (0..n_rows)
        .map(|r| {
            (0..dims)
                .map(|c| {
                    let x = (worker * 31 + round * 7 + r * 3 + c) as f64;
                    (x * 0.37).sin() * 2.5
                })
                .collect()
        })
        .collect()
}

fn body_for(model: &str, worker: usize, round: usize) -> (String, String) {
    let rows = rows_for(model, worker, round);
    let cells: Vec<String> = rows
        .iter()
        .map(|row| {
            let vals: Vec<String> = row.iter().map(|v| format!("{v:?}")).collect();
            format!("[{}]", vals.join(","))
        })
        .collect();
    (
        format!("/models/{model}/features"),
        format!("{{\"rows\":[{}]}}", cells.join(",")),
    )
}

/// The serial, unbatched reference body — what the batched server must
/// reproduce byte for byte.
fn serial_reference(registry: &ModelRegistry, method: &str, path: &str, body: &str) -> String {
    let (status, reference) = route_with(
        registry,
        &Request {
            method: method.to_string(),
            path: path.to_string(),
            body: body.to_string(),
        },
        &ParallelPolicy::serial(),
    );
    assert_eq!(status, 200, "reference request failed: {reference}");
    reference
}

/// Extracts the feature bits from a response body, for the explicit
/// `to_bits` comparison on top of the byte-level one.
fn feature_bits(body: &str) -> Vec<Vec<u64>> {
    let parsed: FeaturesResponse = serde_json::from_str(body).expect("features body parses");
    parsed
        .features
        .iter()
        .map(|row| row.iter().map(|v| v.to_bits()).collect())
        .collect()
}

#[test]
fn batched_responses_are_bitwise_identical_across_policies() {
    let registry = registry();
    let policies = [
        ("spawn+simd", false, true),
        ("spawn+scalar", false, false),
        ("pool+simd", true, true),
        ("pool+scalar", true, false),
    ];
    for (label, pool, simd) in policies {
        let parallel = ParallelPolicy::new(4)
            .with_min_rows_per_thread(1)
            .with_pool(pool)
            .with_simd(SimdPolicy::from_enabled(simd));
        let handle = start(parallel);
        let client = Client::new(handle.addr());
        let workers = 8usize;
        let barrier = Barrier::new(workers);
        std::thread::scope(|scope| {
            for worker in 0..workers {
                let barrier = &barrier;
                let registry = &registry;
                scope.spawn(move || {
                    let mut connection = client.connect();
                    for round in 0..4 {
                        let (path, body) = body_for(ALPHA, worker, round);
                        let expected = serial_reference(registry, "POST", &path, &body);
                        // Release all workers into the batch window at once
                        // so the coalescing path actually runs.
                        barrier.wait();
                        let response = connection
                            .request_ok("POST", &path, &body)
                            .unwrap_or_else(|e| panic!("{label} worker {worker}: {e}"));
                        assert_eq!(
                            response.body, expected,
                            "{label} worker {worker} round {round}: batched body differs"
                        );
                        assert_eq!(
                            feature_bits(&response.body),
                            feature_bits(&expected),
                            "{label} worker {worker} round {round}: f64 bits differ"
                        );
                    }
                });
            }
        });
        // The window was open and 8 clients hammered one model: at least
        // one fused launch must have gone through the coalescing path.
        let statz = client
            .request_ok("GET", "/statz", "")
            .expect("statz answers");
        let stats: BatchStatsResponse = serde_json::from_str(&statz.body).unwrap();
        assert!(stats.batches >= 1, "{label}: no batch launched: {stats:?}");
        assert!(
            stats.batched_requests >= stats.batches,
            "{label}: inconsistent counters: {stats:?}"
        );
        handle.shutdown();
    }
}

#[test]
fn mixed_models_and_endpoints_never_leak_rows() {
    let registry = registry();
    let handle = start(
        ParallelPolicy::new(4)
            .with_min_rows_per_thread(1)
            .with_pool(true),
    );
    let client = Client::new(handle.addr());
    let workers = 12usize;
    let barrier = Barrier::new(workers);
    std::thread::scope(|scope| {
        for worker in 0..workers {
            let barrier = &barrier;
            let registry = &registry;
            scope.spawn(move || {
                let mut connection = client.connect();
                for round in 0..6 {
                    // Interleave models and endpoints across workers so one
                    // batch window sees a mix of keys; every response must
                    // match the serial reference for *its own* rows.
                    let model = if (worker + round) % 2 == 0 {
                        ALPHA
                    } else {
                        BETA
                    };
                    let endpoint = if (worker + round / 2) % 2 == 0 {
                        "features"
                    } else {
                        "assign"
                    };
                    let (_, body) = body_for(model, worker, round);
                    let path = format!("/models/{model}/{endpoint}");
                    let expected = serial_reference(registry, "POST", &path, &body);
                    barrier.wait();
                    let response = connection
                        .request_ok("POST", &path, &body)
                        .unwrap_or_else(|e| panic!("worker {worker} round {round}: {e}"));
                    assert_eq!(
                        response.body, expected,
                        "worker {worker} round {round} ({model}/{endpoint}): \
                         response does not match its own serial reference"
                    );
                }
            });
        }
    });
    handle.shutdown();
}
