//! Hot-swap integration suite: zero-downtime generation swaps under
//! keep-alive load, corrupt-artifact atomicity over HTTP, the directory
//! watcher, and the compact registry's error bound end to end.
//!
//! The centrepiece drives several keep-alive clients through `/features`
//! and `/assign` while the main thread re-exports the artifact and swaps
//! generations ten times with the micro-batch window forced on. Every
//! response must decode, carry a known generation, and match — bitwise —
//! the reference computed from the artifact that defined that generation.

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use sls_datasets::SyntheticBlobs;
use sls_linalg::{Matrix, ParallelPolicy};
use sls_rbm_core::{ModelKind, PipelineArtifact, SlsPipelineConfig};
use sls_serve::{
    BatchConfig, Client, LiveRegistry, ServeOptions, Server, ServerHandle, ServingModel,
};
use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

const MODEL: &str = "demo";
const SWAPS: u64 = 10;
const WORKERS: usize = 4;

/// A fresh per-test directory: pid plus a process-wide counter, so
/// concurrent test binaries never collide on a shared fixed path.
fn unique_dir(tag: &str) -> PathBuf {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!(
        "sls_serve_hotswap_{tag}_{}_{n}",
        std::process::id()
    ))
}

/// Trains a distinct artifact per generation: the seed shifts, so every
/// generation produces different bits for the same probe rows.
fn train(generation: u64) -> PipelineArtifact {
    let mut rng = ChaCha8Rng::seed_from_u64(1000 + generation);
    let ds = SyntheticBlobs::new(30, 4, 2)
        .separation(6.0)
        .generate(&mut rng);
    PipelineArtifact::fit(
        ModelKind::Grbm,
        SlsPipelineConfig::quick_demo()
            .with_clusters(2)
            .with_hidden(4),
        ds.features(),
        &mut rng,
    )
    .expect("training succeeds")
    .artifact
}

/// Fixed probe rows shared by every load worker.
fn probe_rows() -> Vec<Vec<f64>> {
    vec![vec![0.1, 0.2, 0.3, 0.4], vec![-1.5, 2.0, 0.25, -0.75]]
}

/// What the server must answer for the probe rows under one generation:
/// feature bit patterns plus assignments, computed from the defining
/// artifact through the same `ServingModel` code path the server uses.
#[derive(Debug, PartialEq, Eq)]
struct Expected {
    feature_bits: Vec<Vec<u64>>,
    assignments: Vec<usize>,
}

fn expected(artifact: &PipelineArtifact, compact: bool) -> Expected {
    let model = ServingModel::from_artifact(artifact.clone(), compact);
    let matrix = Matrix::from_rows(&probe_rows()).expect("probe rows are rectangular");
    let parallel = ParallelPolicy::global();
    let features = model
        .features_with(&matrix, &parallel)
        .expect("reference features");
    Expected {
        feature_bits: (0..features.rows())
            .map(|r| features.row(r).iter().map(|v| v.to_bits()).collect())
            .collect(),
        assignments: model
            .assign_with(&matrix, &parallel)
            .expect("reference assignments"),
    }
}

fn start_from_dir(dir: &PathBuf, batch_window: Duration) -> ServerHandle {
    Server::bind_live(
        "127.0.0.1:0",
        LiveRegistry::from_dir(dir, false).expect("load artifact dir"),
        WORKERS,
    )
    .expect("bind ephemeral port")
    .with_options(ServeOptions::default())
    .with_batching(BatchConfig {
        window: batch_window,
        ..BatchConfig::disabled()
    })
    .start()
    .expect("server starts")
}

/// Ten atomic swaps under sustained keep-alive load: no request may fail,
/// every response must be bitwise consistent with the generation that
/// served it, and every client must ride a single socket throughout.
#[test]
fn ten_swaps_under_keep_alive_load_lose_nothing() {
    let dir = unique_dir("load");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(format!("{MODEL}.json"));

    // Precompute the per-generation truth before any traffic starts.
    let artifacts: Vec<PipelineArtifact> = (1..=SWAPS + 1).map(train).collect();
    let references: BTreeMap<u64, Expected> = artifacts
        .iter()
        .enumerate()
        .map(|(i, a)| (i as u64 + 1, expected(a, false)))
        .collect();
    artifacts[0].save(&path).expect("save generation 1");

    // Force the micro-batch window on so swaps land while batches are open.
    let handle = start_from_dir(&dir, Duration::from_micros(300));
    let live = handle.live();
    let client = Client::new(handle.addr());

    let stop = Arc::new(AtomicBool::new(false));
    let references = Arc::new(references);
    let workers: Vec<_> = (0..WORKERS)
        .map(|w| {
            let stop = Arc::clone(&stop);
            let references = Arc::clone(&references);
            std::thread::spawn(move || {
                let mut connection = client.connect();
                let rows = probe_rows();
                let mut served = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let features = connection
                        .features_response(MODEL, &rows)
                        .unwrap_or_else(|e| panic!("worker {w}: features failed: {e}"));
                    let reference = references
                        .get(&features.generation)
                        .unwrap_or_else(|| panic!("worker {w}: unknown generation"));
                    let bits: Vec<Vec<u64>> = features
                        .features
                        .iter()
                        .map(|row| row.iter().map(|v| v.to_bits()).collect())
                        .collect();
                    assert_eq!(
                        bits, reference.feature_bits,
                        "worker {w}: generation {} served torn features",
                        features.generation
                    );
                    let assign = connection
                        .assign_response(MODEL, &rows)
                        .unwrap_or_else(|e| panic!("worker {w}: assign failed: {e}"));
                    let reference = references
                        .get(&assign.generation)
                        .unwrap_or_else(|| panic!("worker {w}: unknown generation"));
                    assert_eq!(
                        assign.assignments, reference.assignments,
                        "worker {w}: generation {} served torn assignments",
                        assign.generation
                    );
                    served += 2;
                }
                assert_eq!(
                    connection.connections_opened(),
                    1,
                    "worker {w}: a swap must never drop a keep-alive socket"
                );
                served
            })
        })
        .collect();

    // Swap through generations 2..=11 while the workers hammer away.
    for (swap, artifact) in artifacts.iter().skip(1).enumerate() {
        std::thread::sleep(Duration::from_millis(30));
        artifact.save(&path).expect("save next generation");
        let outcome = live.reload();
        assert!(outcome.swapped, "swap {}: {:?}", swap + 1, outcome.error);
        assert_eq!(outcome.generation, swap as u64 + 2);
    }
    std::thread::sleep(Duration::from_millis(30));
    stop.store(true, Ordering::Relaxed);
    let total: u64 = workers
        .into_iter()
        .map(|w| w.join().expect("load worker panicked"))
        .sum();

    assert!(
        total > 0,
        "the load workers must actually have served traffic"
    );
    assert_eq!(live.generation(), SWAPS + 1);
    assert_eq!(live.swaps(), SWAPS);
    assert_eq!(live.failed_reloads(), 0);
    handle.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

/// A corrupt artifact rejects the whole reload over HTTP with a structured
/// 409 body, the old generation keeps serving bit-for-bit, and repairing
/// the file heals the next reload.
#[test]
fn corrupt_artifact_keeps_old_generation_serving_over_http() {
    let dir = unique_dir("corrupt");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(format!("{MODEL}.json"));
    let v1 = train(1);
    v1.save(&path).unwrap();

    let handle = start_from_dir(&dir, Duration::ZERO);
    let client = Client::new(handle.addr());
    let before = client.features(MODEL, &probe_rows()).expect("baseline");

    std::fs::write(&path, "{\"schema_version\": \"not even close\"").unwrap();
    let outcome = client.reload().expect("reload answers");
    assert!(!outcome.swapped);
    assert_eq!(outcome.status, "rejected");
    assert_eq!(outcome.generation, 1, "old generation must be kept");
    let error = outcome.error.expect("a rejection explains itself");
    assert!(error.contains("kept old generation"), "{error}");
    let broken: Vec<_> = outcome.models.iter().filter(|m| !m.loaded).collect();
    assert_eq!(broken.len(), 1);
    assert_eq!(broken[0].name, MODEL);
    assert!(broken[0].message.is_some());

    // The old generation still answers, bitwise unchanged.
    let after = client
        .features(MODEL, &probe_rows())
        .expect("still serving");
    let bits = |rows: &[Vec<f64>]| -> Vec<Vec<u64>> {
        rows.iter()
            .map(|r| r.iter().map(|v| v.to_bits()).collect())
            .collect()
    };
    assert_eq!(bits(&before), bits(&after));
    let stats = client.statz().expect("statz");
    assert_eq!(stats.generation, 1);
    assert_eq!(stats.registry_swaps, 0);
    assert_eq!(stats.failed_reloads, 1);

    // Repairing the artifact heals the very next reload.
    train(2).save(&path).unwrap();
    let outcome = client.reload().expect("healed reload answers");
    assert!(outcome.swapped, "{:?}", outcome.error);
    assert_eq!(outcome.generation, 2);
    assert_eq!(client.statz().expect("statz").failed_reloads, 1);
    handle.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

/// The directory watcher notices a changed artifact and swaps without any
/// `POST /admin/reload` — the `--watch-interval-ms` path end to end.
#[test]
fn directory_watcher_swaps_without_an_admin_call() {
    let dir = unique_dir("watch");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(format!("{MODEL}.json"));
    train(1).save(&path).unwrap();

    let handle = Server::bind_live(
        "127.0.0.1:0",
        LiveRegistry::from_dir(&dir, false).expect("load artifact dir"),
        2,
    )
    .expect("bind")
    .with_watch(Some(Duration::from_millis(25)))
    .start()
    .expect("server starts");
    let live = handle.live();
    assert_eq!(live.generation(), 1);

    train(2).save(&path).unwrap();
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    while live.generation() < 2 {
        assert!(
            std::time::Instant::now() < deadline,
            "watcher never picked up the changed artifact"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
    assert_eq!(live.swaps(), 1);
    assert_eq!(live.failed_reloads(), 0);
    handle.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

/// A retrain that exports an equal-size artifact within the filesystem's
/// mtime granularity must still be picked up. The old `(name, mtime, len)`
/// fingerprint was blind to such a rewrite; the content checksum closes the
/// hole. The test forces the worst case deterministically: both artifacts
/// padded to the same byte length (JSON tolerates trailing whitespace) and
/// the second write's mtime restored to the first's.
#[test]
fn watcher_detects_same_size_same_mtime_rewrite() {
    let dir = unique_dir("samesize");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(format!("{MODEL}.json"));

    // Two distinct generations, padded to identical byte length.
    let staging = dir.join("staging.tmp");
    train(1).save(&path).unwrap();
    train(2).save(&staging).unwrap();
    let mut v1 = std::fs::read(&path).unwrap();
    let mut v2 = std::fs::read(&staging).unwrap();
    std::fs::remove_file(&staging).unwrap();
    let len = v1.len().max(v2.len());
    v1.resize(len, b' ');
    v2.resize(len, b' ');
    assert_ne!(v1, v2, "the padded artifacts must differ in content");
    std::fs::write(&path, &v1).unwrap();
    let mtime = std::fs::metadata(&path).unwrap().modified().unwrap();

    let handle = Server::bind_live(
        "127.0.0.1:0",
        LiveRegistry::from_dir(&dir, false).expect("load artifact dir"),
        2,
    )
    .expect("bind")
    .with_watch(Some(Duration::from_millis(25)))
    .start()
    .expect("server starts");
    let live = handle.live();
    assert_eq!(live.generation(), 1);

    // Same-size rewrite with the mtime pinned back to the first export's —
    // every pre-checksum fingerprint component is now identical.
    std::fs::write(&path, &v2).unwrap();
    let file = std::fs::File::options().append(true).open(&path).unwrap();
    file.set_modified(mtime).unwrap();
    drop(file);
    assert_eq!(
        std::fs::metadata(&path).unwrap().modified().unwrap(),
        mtime,
        "the rewrite must present the original mtime"
    );

    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    while live.generation() < 2 {
        assert!(
            std::time::Instant::now() < deadline,
            "watcher never noticed the same-size same-mtime rewrite"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
    assert_eq!(live.swaps(), 1);
    assert_eq!(live.failed_reloads(), 0);
    handle.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

/// A compact registry serves every endpoint over HTTP within the documented
/// error bound of the full-precision registry, and advertises itself in
/// `/models`.
#[test]
fn compact_registry_stays_within_bound_over_http() {
    let dir = unique_dir("compact");
    std::fs::create_dir_all(&dir).unwrap();
    let artifact = train(1);
    artifact.save(dir.join(format!("{MODEL}.json"))).unwrap();

    let handle = Server::bind_live(
        "127.0.0.1:0",
        LiveRegistry::from_dir(&dir, true).expect("load compact dir"),
        2,
    )
    .expect("bind")
    .start()
    .expect("server starts");
    let client = Client::new(handle.addr());

    let models = client.models().expect("models");
    assert_eq!(models.models.len(), 1);
    assert!(models.models[0].compact);
    assert_eq!(
        models.models[0].param_bytes,
        ServingModel::from_artifact(artifact.clone(), true).param_bytes()
    );

    let served = client.features(MODEL, &probe_rows()).expect("features");
    let matrix = Matrix::from_rows(&probe_rows()).unwrap();
    let full = ServingModel::from_artifact(artifact.clone(), false)
        .features_with(&matrix, &ParallelPolicy::global())
        .expect("full-precision reference");
    for (r, row) in served.iter().enumerate() {
        for (c, &got) in row.iter().enumerate() {
            let want = full.row(r)[c];
            assert!(
                (got - want).abs() <= 1e-6 * (1.0 + want.abs()),
                "feature [{r}][{c}] drifted: compact {got} vs full {want}"
            );
        }
    }

    // The compact reference predicts the served bits exactly.
    let reference = expected(&artifact, true);
    let served_bits: Vec<Vec<u64>> = served
        .iter()
        .map(|row| row.iter().map(|v| v.to_bits()).collect())
        .collect();
    assert_eq!(served_bits, reference.feature_bits);
    assert_eq!(
        client.assign(MODEL, &probe_rows()).expect("assign"),
        reference.assignments
    );
    handle.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}
