//! Keep-alive integration suite: connection reuse, pipelining, idle
//! timeouts, per-connection request caps, and the framing guards that keep
//! a reused connection immune to desync (oversized and malformed requests —
//! the request-smuggling regression tests, extending the duplicate
//! `Content-Length` coverage in `http.rs`).
//!
//! The raw-socket tests speak the wire format through the `http` module
//! directly, so they observe the `Connection` response header and the exact
//! close behaviour instead of trusting the client wrapper.

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use sls_datasets::SyntheticBlobs;
use sls_linalg::ParallelPolicy;
use sls_rbm_core::{ModelKind, PipelineArtifact, SlsPipelineConfig};
use sls_serve::http::{read_response_meta, write_request_keep_alive, Request};
use sls_serve::{route_with, Client, ModelRegistry, ServeOptions, Server, ServerHandle};
use std::io::{BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

const MODEL: &str = "demo";

fn registry() -> ModelRegistry {
    let mut rng = ChaCha8Rng::seed_from_u64(31);
    let ds = SyntheticBlobs::new(30, 4, 2)
        .separation(6.0)
        .generate(&mut rng);
    let fitted = PipelineArtifact::fit(
        ModelKind::Grbm,
        SlsPipelineConfig::quick_demo()
            .with_clusters(2)
            .with_hidden(4),
        ds.features(),
        &mut rng,
    )
    .expect("training succeeds");
    let mut registry = ModelRegistry::new();
    registry.insert(MODEL, fitted.artifact);
    registry
}

fn start(options: ServeOptions) -> ServerHandle {
    Server::bind("127.0.0.1:0", registry(), 2)
        .expect("bind ephemeral port")
        .with_options(options)
        .start()
        .expect("server starts")
}

/// The response body the server must produce for `POST path body`, computed
/// through the in-process router (the bitwise reference).
fn reference(method: &str, path: &str, body: &str) -> (u16, String) {
    route_with(
        &registry(),
        &Request {
            method: method.to_string(),
            path: path.to_string(),
            body: body.to_string(),
        },
        &ParallelPolicy::global(),
    )
}

/// A distinct, valid features request body per `tag`.
fn features_body(tag: usize) -> String {
    let t = tag as f64;
    format!(
        "{{\"rows\":[[{},{},{},{}]]}}",
        0.1 + t,
        0.2 + t,
        0.3 - t,
        0.4 * (t + 1.0)
    )
}

fn connect(addr: SocketAddr) -> (BufReader<TcpStream>, TcpStream) {
    let stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    stream
        .set_write_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    (BufReader::new(stream.try_clone().unwrap()), stream)
}

/// Asserts the server half of the socket is closed: the next read returns
/// EOF instead of blocking or yielding bytes.
fn assert_closed(reader: &mut BufReader<TcpStream>) {
    let mut probe = [0u8; 1];
    match reader.read(&mut probe) {
        Ok(0) => {}
        Ok(n) => panic!("expected EOF on a closed connection, read {n} stray byte(s)"),
        Err(e) => panic!("expected clean EOF on a closed connection, got {e}"),
    }
}

#[test]
fn sequential_requests_share_one_connection() {
    let handle = start(ServeOptions::default());
    let (mut reader, mut writer) = connect(handle.addr());
    for tag in 0..5 {
        let body = features_body(tag);
        let path = format!("/models/{MODEL}/features");
        write_request_keep_alive(&mut writer, "POST", &path, &body, true).unwrap();
        let (response, close) = read_response_meta(&mut reader).expect("response arrives");
        assert!(!close, "request {tag}: server must keep the connection");
        let (expected_status, expected_body) = reference("POST", &path, &body);
        assert_eq!(response.status, expected_status, "request {tag}");
        assert_eq!(response.body, expected_body, "request {tag}");
    }
    handle.shutdown();
}

#[test]
fn pipelined_requests_answer_in_order() {
    let handle = start(ServeOptions::default());
    let (mut reader, mut writer) = connect(handle.addr());
    let path = format!("/models/{MODEL}/features");
    // All three requests hit the wire before any response is read.
    let bodies: Vec<String> = (10..13).map(features_body).collect();
    for body in &bodies {
        write_request_keep_alive(&mut writer, "POST", &path, body, true).unwrap();
    }
    for (i, body) in bodies.iter().enumerate() {
        let (response, close) = read_response_meta(&mut reader).expect("pipelined response");
        assert!(!close, "pipelined response {i} must keep the connection");
        let (_, expected_body) = reference("POST", &path, body);
        assert_eq!(
            response.body, expected_body,
            "pipelined response {i} out of order or corrupted"
        );
    }
    handle.shutdown();
}

#[test]
fn idle_timeout_closes_the_connection() {
    let handle = start(ServeOptions {
        idle_timeout: Duration::from_millis(200),
        ..ServeOptions::default()
    });
    let (mut reader, mut writer) = connect(handle.addr());
    write_request_keep_alive(&mut writer, "GET", "/healthz", "", true).unwrap();
    let (response, close) = read_response_meta(&mut reader).unwrap();
    assert_eq!(response.status, 200);
    assert!(!close);
    // Stay idle well past the timeout: the server must hang up.
    std::thread::sleep(Duration::from_millis(700));
    assert_closed(&mut reader);
    handle.shutdown();
}

#[test]
fn connection_close_is_honored_mid_stream() {
    let handle = start(ServeOptions::default());
    let (mut reader, mut writer) = connect(handle.addr());
    // First request keeps the connection alive...
    write_request_keep_alive(&mut writer, "GET", "/healthz", "", true).unwrap();
    let (_, close) = read_response_meta(&mut reader).unwrap();
    assert!(!close);
    // ...the second asks to close, and the server must comply.
    write_request_keep_alive(&mut writer, "GET", "/healthz", "", false).unwrap();
    let (response, close) = read_response_meta(&mut reader).unwrap();
    assert_eq!(response.status, 200);
    assert!(close, "server must announce the close it was asked for");
    assert_closed(&mut reader);
    handle.shutdown();
}

#[test]
fn request_cap_closes_the_connection() {
    let handle = start(ServeOptions {
        max_requests_per_connection: 3,
        ..ServeOptions::default()
    });
    let (mut reader, mut writer) = connect(handle.addr());
    for served in 1..=3 {
        write_request_keep_alive(&mut writer, "GET", "/healthz", "", true).unwrap();
        let (response, close) = read_response_meta(&mut reader).unwrap();
        assert_eq!(response.status, 200);
        assert_eq!(
            close,
            served == 3,
            "only the capping (3rd) response may close"
        );
    }
    assert_closed(&mut reader);
    handle.shutdown();
}

#[test]
fn oversized_body_is_rejected_without_desyncing_the_connection() {
    let handle = start(ServeOptions {
        max_body_bytes: 4096,
        ..ServeOptions::default()
    });
    let (mut reader, mut writer) = connect(handle.addr());
    // 8000 declared-and-sent bytes: over the limit but within the drain
    // allowance, so the connection must survive with valid framing.
    let huge = "x".repeat(8000);
    let path = format!("/models/{MODEL}/features");
    write_request_keep_alive(&mut writer, "POST", &path, &huge, true).unwrap();
    let (response, close) = read_response_meta(&mut reader).unwrap();
    assert_eq!(response.status, 413, "{}", response.body);
    assert!(response.body.contains("4096"), "{}", response.body);
    assert!(!close, "drained rejection must keep the connection");
    // The very next request on the same socket parses and answers cleanly —
    // the smuggling regression: rejected bytes must not shift the framing.
    let body = features_body(7);
    write_request_keep_alive(&mut writer, "POST", &path, &body, true).unwrap();
    let (response, close) = read_response_meta(&mut reader).unwrap();
    let (_, expected_body) = reference("POST", &path, &body);
    assert_eq!(response.status, 200);
    assert_eq!(response.body, expected_body);
    assert!(!close);
    handle.shutdown();
}

#[test]
fn undrainable_body_declaration_closes_the_connection() {
    let handle = start(ServeOptions {
        max_body_bytes: 1024,
        ..ServeOptions::default()
    });
    let (mut reader, mut writer) = connect(handle.addr());
    // Declare far beyond the drain allowance (4 × 1024) and send nothing:
    // the server must answer 413 immediately — before any body byte — and
    // close, never waiting to buffer what was declared.
    write!(
        writer,
        "POST /models/{MODEL}/features HTTP/1.1\r\nContent-Length: 100000000\r\n\r\n"
    )
    .unwrap();
    writer.flush().unwrap();
    let (response, close) = read_response_meta(&mut reader).unwrap();
    assert_eq!(response.status, 413, "{}", response.body);
    assert!(close, "an undrained rejection must close the connection");
    assert_closed(&mut reader);
    handle.shutdown();
}

#[test]
fn malformed_request_on_a_reused_connection_closes_with_400() {
    let handle = start(ServeOptions::default());
    let (mut reader, mut writer) = connect(handle.addr());
    // A healthy request first, so the malformed one arrives on a *reused*
    // connection.
    write_request_keep_alive(&mut writer, "GET", "/healthz", "", true).unwrap();
    let (_, close) = read_response_meta(&mut reader).unwrap();
    assert!(!close);
    // Conflicting Content-Length values: the parsers-disagree smuggling
    // vector. The server must refuse to guess and drop the connection.
    write!(
        writer,
        "POST /models/{MODEL}/features HTTP/1.1\r\nContent-Length: 2\r\nContent-Length: 5\r\n\r\nhi~~~"
    )
    .unwrap();
    writer.flush().unwrap();
    let (response, close) = read_response_meta(&mut reader).unwrap();
    assert_eq!(response.status, 400, "{}", response.body);
    assert!(
        response.body.contains("Content-Length"),
        "{}",
        response.body
    );
    assert!(close, "a desynced connection must never be reused");
    assert_closed(&mut reader);
    handle.shutdown();
}

#[test]
fn client_connection_reuses_one_socket() {
    let handle = start(ServeOptions::default());
    let client = Client::new(handle.addr());
    let mut connection = client.connect();
    for tag in 0..10 {
        let rows = vec![vec![0.1 + tag as f64, 0.2, 0.3, 0.4]];
        let features = connection.features(MODEL, &rows).expect("features request");
        assert_eq!(features.len(), 1);
        assert_eq!(features[0].len(), 4);
    }
    assert_eq!(
        connection.connections_opened(),
        1,
        "all 10 requests must ride one socket"
    );
    handle.shutdown();
}

#[test]
fn client_connection_redials_after_server_side_close() {
    let handle = start(ServeOptions {
        idle_timeout: Duration::from_millis(200),
        ..ServeOptions::default()
    });
    let client = Client::new(handle.addr());
    let mut connection = client.connect();
    let rows = vec![vec![0.1, 0.2, 0.3, 0.4]];
    connection.features(MODEL, &rows).expect("first request");
    // Let the server idle-close our socket, then request again: the
    // connection must recover transparently on a fresh socket.
    std::thread::sleep(Duration::from_millis(700));
    connection
        .features(MODEL, &rows)
        .expect("request after idle close");
    assert_eq!(connection.connections_opened(), 2);
    handle.shutdown();
}

#[test]
fn keep_alive_disabled_closes_after_every_request() {
    let handle = start(ServeOptions {
        keep_alive: false,
        ..ServeOptions::default()
    });
    // Raw socket: the response must announce the close even though the
    // client asked for keep-alive.
    let (mut reader, mut writer) = connect(handle.addr());
    write_request_keep_alive(&mut writer, "GET", "/healthz", "", true).unwrap();
    let (response, close) = read_response_meta(&mut reader).unwrap();
    assert_eq!(response.status, 200);
    assert!(close, "keep_alive=false must close every connection");
    assert_closed(&mut reader);
    // The reusing client keeps working — by redialing per request.
    let client = Client::new(handle.addr());
    let mut connection = client.connect();
    for _ in 0..3 {
        connection
            .request_ok("GET", "/healthz", "")
            .expect("request");
    }
    assert_eq!(connection.connections_opened(), 3);
    handle.shutdown();
}
