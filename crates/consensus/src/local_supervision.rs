//! Local credible clusters — the "self-learning local supervision".
//!
//! [`LocalSupervision`] is the data structure consumed by the slsRBM /
//! slsGRBM training loop: a set of disjoint groups of instance indices (the
//! local clusters `V_1..V_K` of the paper) that the hidden features should
//! constrict within and disperse across. [`LocalSupervisionBuilder`] produces
//! it either from pre-computed partitions or by running a set of clusterers.

use crate::{integrate_partitions_with, ConsensusError, Result, VotingPolicy};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};
use sls_clustering::Clusterer;
use sls_linalg::{Matrix, ParallelPolicy};

/// The self-learning local supervision: disjoint local credible clusters of
/// instance indices.
///
/// Only instances that survived the voting strategy appear; the rest of the
/// dataset is unconstrained (the CD term of the objective still covers it).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LocalSupervision {
    clusters: Vec<Vec<usize>>,
    n_instances: usize,
    policy: VotingPolicy,
}

/// Aggregate statistics of a supervision, used in logs and experiment
/// reports.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SupervisionSummary {
    /// Number of local clusters.
    pub n_clusters: usize,
    /// Number of supervised (covered) instances.
    pub n_covered: usize,
    /// Total number of instances in the dataset.
    pub n_instances: usize,
    /// Fraction of instances covered by the supervision.
    pub coverage: f64,
    /// Size of the smallest local cluster.
    pub min_cluster_size: usize,
    /// Size of the largest local cluster.
    pub max_cluster_size: usize,
}

impl LocalSupervision {
    /// Builds a supervision directly from per-instance consensus labels
    /// (`None` = not covered). Clusters with fewer than two members are
    /// dropped: a singleton provides no constrict pair and no usable centre
    /// statistics.
    ///
    /// # Errors
    ///
    /// Returns [`ConsensusError::EmptySupervision`] if nothing survives.
    pub fn from_consensus(consensus: &[Option<usize>], policy: VotingPolicy) -> Result<Self> {
        let mut groups: std::collections::BTreeMap<usize, Vec<usize>> =
            std::collections::BTreeMap::new();
        for (i, label) in consensus.iter().enumerate() {
            if let Some(l) = label {
                groups.entry(*l).or_default().push(i);
            }
        }
        let clusters: Vec<Vec<usize>> = groups
            .into_values()
            .filter(|members| members.len() >= 2)
            .collect();
        if clusters.is_empty() {
            return Err(ConsensusError::EmptySupervision);
        }
        Ok(Self {
            clusters,
            n_instances: consensus.len(),
            policy,
        })
    }

    /// The local clusters, each a sorted list of instance indices.
    pub fn clusters(&self) -> &[Vec<usize>] {
        &self.clusters
    }

    /// Number of local clusters `K`.
    pub fn n_clusters(&self) -> usize {
        self.clusters.len()
    }

    /// Number of instances in the underlying dataset.
    pub fn n_instances(&self) -> usize {
        self.n_instances
    }

    /// The voting policy that produced this supervision.
    pub fn policy(&self) -> VotingPolicy {
        self.policy
    }

    /// Indices of all covered instances, sorted.
    pub fn covered_indices(&self) -> Vec<usize> {
        let mut all: Vec<usize> = self.clusters.iter().flatten().copied().collect();
        all.sort_unstable();
        all
    }

    /// Per-instance cluster membership (`None` when uncovered).
    pub fn membership(&self) -> Vec<Option<usize>> {
        let mut membership = vec![None; self.n_instances];
        for (k, members) in self.clusters.iter().enumerate() {
            for &i in members {
                membership[i] = Some(k);
            }
        }
        membership
    }

    /// Restricts the supervision to instance indices below `limit` (used when
    /// training on a mini-batch prefix or a subset of the data).
    ///
    /// # Errors
    ///
    /// Returns [`ConsensusError::EmptySupervision`] if no cluster retains at
    /// least two members.
    pub fn restrict_to(&self, limit: usize) -> Result<Self> {
        let clusters: Vec<Vec<usize>> = self
            .clusters
            .iter()
            .map(|members| members.iter().copied().filter(|&i| i < limit).collect())
            .filter(|members: &Vec<usize>| members.len() >= 2)
            .collect();
        if clusters.is_empty() {
            return Err(ConsensusError::EmptySupervision);
        }
        Ok(Self {
            clusters,
            n_instances: limit.min(self.n_instances),
            policy: self.policy,
        })
    }

    /// Computes the mean of each local cluster in the given feature space
    /// (`data` has one row per instance). These are the centres `O_k` (or
    /// `C_k` when called on hidden features) of Eqs. 25–27.
    ///
    /// # Panics
    ///
    /// Panics if any member index is out of range for `data`.
    pub fn cluster_centers(&self, data: &Matrix) -> Matrix {
        let mut centers = Matrix::zeros(self.clusters.len(), data.cols());
        for (k, members) in self.clusters.iter().enumerate() {
            let c = centers.row_mut(k);
            for &i in members {
                for (cj, &xj) in c.iter_mut().zip(data.row(i)) {
                    *cj += xj;
                }
            }
            let denom = members.len().max(1) as f64;
            for cj in c.iter_mut() {
                *cj /= denom;
            }
        }
        centers
    }

    /// Aggregate statistics.
    pub fn summary(&self) -> SupervisionSummary {
        let sizes: Vec<usize> = self.clusters.iter().map(Vec::len).collect();
        let n_covered: usize = sizes.iter().sum();
        SupervisionSummary {
            n_clusters: self.clusters.len(),
            n_covered,
            n_instances: self.n_instances,
            coverage: if self.n_instances == 0 {
                0.0
            } else {
                n_covered as f64 / self.n_instances as f64
            },
            min_cluster_size: sizes.iter().copied().min().unwrap_or(0),
            max_cluster_size: sizes.iter().copied().max().unwrap_or(0),
        }
    }
}

/// Builder that produces a [`LocalSupervision`] from base clusterings.
#[derive(Debug, Clone)]
pub struct LocalSupervisionBuilder {
    expected_clusters: usize,
    policy: VotingPolicy,
    parallel: ParallelPolicy,
}

impl LocalSupervisionBuilder {
    /// Creates a builder. `expected_clusters` is the number of clusters each
    /// base clusterer targets (the paper uses the known class count).
    pub fn new(expected_clusters: usize) -> Self {
        Self {
            expected_clusters,
            policy: VotingPolicy::Unanimous,
            parallel: ParallelPolicy::serial(),
        }
    }

    /// Number of clusters the builder expects from the base clusterers.
    pub fn expected_clusters(&self) -> usize {
        self.expected_clusters
    }

    /// Sets the voting policy (default: unanimous).
    pub fn with_policy(mut self, policy: VotingPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Sets the parallel execution policy (default: serial), the same way
    /// trainers accept one. Under a multi-threaded policy the base
    /// clusterers run concurrently and the pairwise alignment step fans out
    /// across threads; the result is identical to serial for every policy
    /// (see [`LocalSupervisionBuilder::build_with_clusterers`]).
    pub fn with_parallel(mut self, parallel: ParallelPolicy) -> Self {
        self.parallel = parallel;
        self
    }

    /// The builder's parallel execution policy.
    pub fn parallel(&self) -> ParallelPolicy {
        self.parallel
    }

    /// Builds supervision from partitions that were already computed.
    ///
    /// # Errors
    ///
    /// Propagates voting/alignment errors and
    /// [`ConsensusError::EmptySupervision`].
    pub fn build_from_partitions(&self, partitions: &[Vec<usize>]) -> Result<LocalSupervision> {
        let consensus = integrate_partitions_with(partitions, self.policy, &self.parallel)?;
        LocalSupervision::from_consensus(&consensus, self.policy)
    }

    /// Runs every clusterer on `data` and integrates the resulting
    /// partitions.
    ///
    /// ## Determinism under parallel execution
    ///
    /// One `u64` sub-seed per clusterer is drawn from `rng` serially, in
    /// clusterer order, before any clusterer runs; each clusterer then
    /// consumes its own [`ChaCha8Rng`] seeded from that value. The caller's
    /// RNG therefore advances by exactly `clusterers.len()` draws no matter
    /// how the work is scheduled, and every clusterer sees the same random
    /// stream whether it runs inline, on scoped threads or on the worker
    /// pool — parallel output is *identical* to serial output by
    /// construction (the same invariant discipline as the linalg kernels).
    ///
    /// # Errors
    ///
    /// Returns [`ConsensusError::BaseClusterer`] naming the failed
    /// clusterer (the lowest-index failure when several fail), plus the
    /// same errors as [`LocalSupervisionBuilder::build_from_partitions`].
    pub fn build_with_clusterers(
        &self,
        clusterers: &[Box<dyn Clusterer>],
        data: &Matrix,
        rng: &mut impl rand::Rng,
    ) -> Result<LocalSupervision> {
        if clusterers.is_empty() {
            return Err(ConsensusError::NoPartitions);
        }
        let sub_seeds: Vec<u64> = clusterers.iter().map(|_| rng.next_u64()).collect();
        let results = crate::dispatch::run_indexed(clusterers.len(), &self.parallel, |i| {
            let mut sub_rng = ChaCha8Rng::seed_from_u64(sub_seeds[i]);
            clusterers[i].cluster(data, &mut sub_rng)
        });
        let mut partitions = Vec::with_capacity(clusterers.len());
        for (index, result) in results.into_iter().enumerate() {
            match result {
                Ok(assignment) => partitions.push(assignment.labels().to_vec()),
                Err(source) => {
                    return Err(ConsensusError::BaseClusterer {
                        index,
                        name: clusterers[index].name(),
                        source,
                    })
                }
            }
        }
        self.build_from_partitions(&partitions)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn supervision() -> LocalSupervision {
        let consensus = vec![
            Some(0),
            Some(0),
            None,
            Some(1),
            Some(1),
            Some(1),
            None,
            Some(2), // singleton: dropped
        ];
        LocalSupervision::from_consensus(&consensus, VotingPolicy::Unanimous).unwrap()
    }

    #[test]
    fn from_consensus_groups_and_drops_singletons() {
        let s = supervision();
        assert_eq!(s.n_clusters(), 2);
        assert_eq!(s.clusters()[0], vec![0, 1]);
        assert_eq!(s.clusters()[1], vec![3, 4, 5]);
        assert_eq!(s.n_instances(), 8);
        assert_eq!(s.policy(), VotingPolicy::Unanimous);
    }

    #[test]
    fn empty_consensus_errors() {
        let consensus = vec![None, None, Some(0)];
        assert!(matches!(
            LocalSupervision::from_consensus(&consensus, VotingPolicy::Unanimous),
            Err(ConsensusError::EmptySupervision)
        ));
    }

    #[test]
    fn covered_indices_and_membership() {
        let s = supervision();
        assert_eq!(s.covered_indices(), vec![0, 1, 3, 4, 5]);
        let m = s.membership();
        assert_eq!(m[0], Some(0));
        assert_eq!(m[2], None);
        assert_eq!(m[5], Some(1));
        assert_eq!(m[7], None);
        assert_eq!(m.len(), 8);
    }

    #[test]
    fn summary_statistics() {
        let s = supervision().summary();
        assert_eq!(s.n_clusters, 2);
        assert_eq!(s.n_covered, 5);
        assert_eq!(s.n_instances, 8);
        assert!((s.coverage - 5.0 / 8.0).abs() < 1e-12);
        assert_eq!(s.min_cluster_size, 2);
        assert_eq!(s.max_cluster_size, 3);
    }

    #[test]
    fn cluster_centers_are_group_means() {
        let s = supervision();
        let data = Matrix::from_fn(8, 2, |i, j| (i * 10 + j) as f64);
        let centers = s.cluster_centers(&data);
        assert_eq!(centers.shape(), (2, 2));
        // Cluster 0 = instances {0, 1}: mean of rows [0,1] and [10,11].
        assert_eq!(centers.row(0), &[5.0, 6.0]);
        // Cluster 1 = instances {3,4,5}: mean of [30,31],[40,41],[50,51].
        assert_eq!(centers.row(1), &[40.0, 41.0]);
    }

    #[test]
    fn restrict_to_prefix() {
        let s = supervision();
        let r = s.restrict_to(5).unwrap();
        // Cluster 1 loses instance 5 but keeps {3, 4}.
        assert_eq!(r.clusters()[1], vec![3, 4]);
        assert_eq!(r.n_instances(), 5);
        // Restricting below any pair leaves nothing.
        assert!(matches!(
            s.restrict_to(1),
            Err(ConsensusError::EmptySupervision)
        ));
    }

    #[test]
    fn builder_from_partitions_round_trip() {
        let partitions = vec![
            vec![0, 0, 0, 1, 1, 1],
            vec![2, 2, 2, 0, 0, 0],
            vec![1, 1, 0, 0, 0, 0],
        ];
        let builder = LocalSupervisionBuilder::new(2);
        let s = builder.build_from_partitions(&partitions).unwrap();
        // Instances 0,1 agree on cluster 0; instances 3,4,5 agree on 1;
        // instance 2 is contested.
        assert_eq!(s.n_clusters(), 2);
        assert_eq!(s.covered_indices(), vec![0, 1, 3, 4, 5]);
        assert_eq!(builder.expected_clusters(), 2);
    }

    #[test]
    fn builder_with_majority_policy_covers_more() {
        let partitions = vec![
            vec![0, 0, 0, 1, 1, 1],
            vec![0, 0, 0, 1, 1, 1],
            vec![1, 1, 0, 0, 1, 1],
        ];
        let unanimous = LocalSupervisionBuilder::new(2)
            .build_from_partitions(&partitions)
            .unwrap();
        let majority = LocalSupervisionBuilder::new(2)
            .with_policy(VotingPolicy::Majority)
            .build_from_partitions(&partitions)
            .unwrap();
        assert!(majority.summary().n_covered >= unanimous.summary().n_covered);
    }

    #[test]
    fn builder_with_no_clusterers_errors() {
        let data = Matrix::zeros(4, 2);
        let mut rng = rand::thread_rng();
        let clusterers: Vec<Box<dyn Clusterer>> = vec![];
        assert!(matches!(
            LocalSupervisionBuilder::new(2).build_with_clusterers(&clusterers, &data, &mut rng),
            Err(ConsensusError::NoPartitions)
        ));
    }

    #[test]
    fn serde_round_trip() {
        let s = supervision();
        let json = serde_json::to_string(&s).unwrap();
        let back: LocalSupervision = serde_json::from_str(&json).unwrap();
        assert_eq!(back, s);
    }
}
