//! Voting strategies over aligned partitions.
//!
//! The paper uses **unanimous voting**: an instance contributes to the local
//! supervision only when every base clustering assigns it to the same aligned
//! cluster. This trades coverage for precision — the surviving "local
//! credible clusters" are small but trustworthy, which is what makes them
//! safe to use as pseudo-supervision inside CD learning. Majority voting and
//! single-clusterer selection are provided for the ablation study.

use crate::{alignment::align_partitions_with, ConsensusError, Result};
use serde::{Deserialize, Serialize};
use sls_linalg::ParallelPolicy;
use std::collections::BTreeMap;

/// How the aligned base partitions are combined into local supervision.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum VotingPolicy {
    /// Keep an instance only if **all** partitions agree on its (aligned)
    /// cluster. This is the paper's strategy.
    #[default]
    Unanimous,
    /// Keep an instance if **more than half** of the partitions agree; the
    /// instance joins the majority cluster.
    Majority,
    /// Ignore all partitions except the one at this index (no integration);
    /// used as an ablation baseline.
    Single(usize),
}

/// Integrates base partitions into per-instance consensus labels.
///
/// Returns a vector with one entry per instance: `Some(cluster)` if the
/// instance survived the vote, `None` otherwise. Cluster identifiers live in
/// the label space of the first (reference) partition.
///
/// # Errors
///
/// * [`ConsensusError::NoPartitions`] if `partitions` is empty.
/// * [`ConsensusError::PartitionLengthMismatch`] if the partitions differ in
///   length.
/// * For [`VotingPolicy::Single`], an out-of-range index is reported as
///   [`ConsensusError::NoPartitions`].
pub fn integrate_partitions(
    partitions: &[Vec<usize>],
    policy: VotingPolicy,
) -> Result<Vec<Option<usize>>> {
    integrate_partitions_with(partitions, policy, &ParallelPolicy::serial())
}

/// [`integrate_partitions`] under an explicit [`ParallelPolicy`]: the
/// alignment step fans partitions out across threads
/// ([`crate::align_partitions_with`]); the per-instance vote itself stays
/// serial (a cheap counting pass). Output is identical to serial for every
/// policy.
///
/// # Errors
///
/// Same as [`integrate_partitions`].
pub fn integrate_partitions_with(
    partitions: &[Vec<usize>],
    policy: VotingPolicy,
    parallel: &ParallelPolicy,
) -> Result<Vec<Option<usize>>> {
    if partitions.is_empty() {
        return Err(ConsensusError::NoPartitions);
    }
    if let VotingPolicy::Single(index) = policy {
        let partition = partitions.get(index).ok_or(ConsensusError::NoPartitions)?;
        return Ok(partition.iter().map(|&l| Some(l)).collect());
    }

    let aligned = align_partitions_with(partitions, parallel)?;
    let n = aligned[0].len();
    let m = aligned.len();
    let mut consensus = Vec::with_capacity(n);
    for i in 0..n {
        let mut votes: BTreeMap<usize, usize> = BTreeMap::new();
        for partition in &aligned {
            *votes.entry(partition[i]).or_insert(0) += 1;
        }
        let (&winner, &count) = votes
            .iter()
            .max_by_key(|&(_, &count)| count)
            .expect("at least one vote per instance");
        let keep = match policy {
            VotingPolicy::Unanimous => count == m,
            VotingPolicy::Majority => 2 * count > m,
            VotingPolicy::Single(_) => unreachable!("handled above"),
        };
        consensus.push(if keep { Some(winner) } else { None });
    }
    Ok(consensus)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn partitions() -> Vec<Vec<usize>> {
        // Reference, an identical partition with permuted ids, and one that
        // disagrees on instances 2 and 5.
        vec![
            vec![0, 0, 0, 1, 1, 1],
            vec![1, 1, 1, 0, 0, 0],
            vec![0, 0, 1, 1, 1, 0],
        ]
    }

    #[test]
    fn unanimous_keeps_only_full_agreement() {
        let consensus = integrate_partitions(&partitions(), VotingPolicy::Unanimous).unwrap();
        assert_eq!(
            consensus,
            vec![Some(0), Some(0), None, Some(1), Some(1), None]
        );
    }

    #[test]
    fn majority_keeps_more_instances_than_unanimous() {
        let unanimous = integrate_partitions(&partitions(), VotingPolicy::Unanimous).unwrap();
        let majority = integrate_partitions(&partitions(), VotingPolicy::Majority).unwrap();
        let unanimous_count = unanimous.iter().flatten().count();
        let majority_count = majority.iter().flatten().count();
        assert!(majority_count >= unanimous_count);
        // With 3 partitions and 2 agreeing everywhere, majority covers all.
        assert_eq!(majority_count, 6);
        assert_eq!(majority[2], Some(0));
    }

    #[test]
    fn single_policy_passes_through_unaligned_partition() {
        let consensus = integrate_partitions(&partitions(), VotingPolicy::Single(1)).unwrap();
        assert_eq!(
            consensus,
            vec![Some(1), Some(1), Some(1), Some(0), Some(0), Some(0)]
        );
        assert!(matches!(
            integrate_partitions(&partitions(), VotingPolicy::Single(9)),
            Err(ConsensusError::NoPartitions)
        ));
    }

    #[test]
    fn identical_partitions_give_full_coverage() {
        let p = vec![vec![0, 1, 2, 0], vec![0, 1, 2, 0], vec![2, 0, 1, 2]];
        let consensus = integrate_partitions(&p, VotingPolicy::Unanimous).unwrap();
        assert!(consensus.iter().all(Option::is_some));
    }

    #[test]
    fn single_partition_unanimously_agrees_with_itself() {
        let p = vec![vec![0, 1, 0, 1]];
        let consensus = integrate_partitions(&p, VotingPolicy::Unanimous).unwrap();
        assert_eq!(consensus, vec![Some(0), Some(1), Some(0), Some(1)]);
    }

    #[test]
    fn empty_input_errors() {
        assert!(matches!(
            integrate_partitions(&[], VotingPolicy::Unanimous),
            Err(ConsensusError::NoPartitions)
        ));
    }

    #[test]
    fn mismatched_lengths_error() {
        let p = vec![vec![0, 1], vec![0, 1, 2]];
        assert!(matches!(
            integrate_partitions(&p, VotingPolicy::Unanimous),
            Err(ConsensusError::PartitionLengthMismatch { .. })
        ));
    }

    #[test]
    fn totally_disagreeing_partitions_yield_no_consensus() {
        // Three partitions that place every instance differently once
        // aligned: agreement never reaches unanimity on instance 1.
        let p = vec![vec![0, 0, 1, 1], vec![0, 1, 1, 0], vec![0, 1, 0, 1]];
        let consensus = integrate_partitions(&p, VotingPolicy::Unanimous).unwrap();
        assert_eq!(consensus[0], Some(0));
        assert!(consensus[1].is_none() || consensus[2].is_none() || consensus[3].is_none());
    }

    #[test]
    fn default_policy_is_unanimous() {
        assert_eq!(VotingPolicy::default(), VotingPolicy::Unanimous);
    }
}
