//! # sls-consensus
//!
//! Multi-clustering integration: the machinery that turns several independent
//! clusterings of the *visible* data into the **self-learning local
//! supervision** that drives the slsRBM / slsGRBM update rules.
//!
//! The paper's recipe (Section V-A-2):
//!
//! 1. run several unsupervised clusterers (DP, K-means, AP) on the raw data;
//! 2. align their label spaces (cluster identifiers are arbitrary, so the
//!    partitions must be matched before they can be compared — we use a
//!    Hungarian assignment on the pairwise contingency tables);
//! 3. apply an **unanimous voting** strategy: an instance is kept only if
//!    *every* base clustering places it in the same (aligned) cluster;
//! 4. the surviving instances, grouped by their agreed cluster, form the
//!    *local credible clusters* `V_1 .. V_K` — a partial, high-precision
//!    partition of the visible data.
//!
//! These local clusters are what the core crate's constrict/disperse
//! gradients consume (Eqs. 14–35). A majority-voting policy and a
//! single-clusterer policy are also provided for the ablation benchmarks.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod alignment;
mod dispatch;
mod error;
mod local_supervision;
mod voting;

pub use alignment::{align_partition, align_partitions, align_partitions_with};
pub use error::ConsensusError;
pub use local_supervision::{LocalSupervision, LocalSupervisionBuilder, SupervisionSummary};
pub use voting::{integrate_partitions, integrate_partitions_with, VotingPolicy};

/// Result alias used across the crate.
pub type Result<T> = std::result::Result<T, ConsensusError>;

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use sls_clustering::{AffinityPropagation, Clusterer, DensityPeaks, KMeans};
    use sls_datasets::SyntheticBlobs;

    /// End-to-end: three clusterers on separable data produce a supervision
    /// covering most instances with pure local clusters.
    #[test]
    fn full_integration_on_separable_data() {
        let mut rng = ChaCha8Rng::seed_from_u64(77);
        let ds = SyntheticBlobs::new(90, 5, 3)
            .separation(7.0)
            .generate(&mut rng);
        let clusterers: Vec<Box<dyn Clusterer>> = vec![
            Box::new(DensityPeaks::new(3)),
            Box::new(KMeans::new(3)),
            Box::new(AffinityPropagation::default().with_target_clusters(3)),
        ];
        let supervision = LocalSupervisionBuilder::new(3)
            .with_policy(VotingPolicy::Unanimous)
            .build_with_clusterers(&clusterers, ds.features(), &mut rng)
            .unwrap();
        let summary = supervision.summary();
        assert!(summary.coverage > 0.8, "coverage {}", summary.coverage);
        assert_eq!(supervision.n_clusters(), 3);
        // Local clusters should be nearly pure w.r.t. the hidden ground truth.
        for cluster in supervision.clusters() {
            let mut labels: Vec<usize> = cluster.iter().map(|&i| ds.labels()[i]).collect();
            labels.sort_unstable();
            labels.dedup();
            assert_eq!(labels.len(), 1, "local cluster mixes ground-truth classes");
        }
    }
}
