//! Error type for multi-clustering integration.

use std::fmt;

/// Errors raised while integrating clusterings into local supervision.
#[derive(Debug)]
pub enum ConsensusError {
    /// Fewer than one base partition was supplied.
    NoPartitions,
    /// The partitions do not all cover the same number of instances.
    PartitionLengthMismatch {
        /// Length of the first partition (the reference).
        expected: usize,
        /// Index of the offending partition.
        partition: usize,
        /// Its length.
        found: usize,
    },
    /// After voting, no instance survived — the supervision would be empty.
    EmptySupervision,
    /// A specific base clusterer failed inside
    /// [`crate::LocalSupervisionBuilder::build_with_clusterers`]; carries
    /// which one so a failing member of the ensemble is identifiable (the
    /// same per-member discipline as the serving layer's per-model load
    /// results).
    BaseClusterer {
        /// Position of the clusterer in the slice passed to the builder.
        index: usize,
        /// The clusterer's [`sls_clustering::Clusterer::name`].
        name: &'static str,
        /// The underlying failure.
        source: sls_clustering::ClusteringError,
    },
    /// A base clusterer failed.
    Clustering(sls_clustering::ClusteringError),
    /// A metric computation (alignment) failed.
    Metrics(sls_metrics::MetricsError),
}

impl fmt::Display for ConsensusError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConsensusError::NoPartitions => write!(f, "at least one base partition is required"),
            ConsensusError::PartitionLengthMismatch {
                expected,
                partition,
                found,
            } => write!(
                f,
                "partition {partition} has {found} labels, expected {expected}"
            ),
            ConsensusError::EmptySupervision => {
                write!(
                    f,
                    "no instance survived the voting strategy; supervision is empty"
                )
            }
            ConsensusError::BaseClusterer {
                index,
                name,
                source,
            } => write!(f, "base clusterer {index} ({name}) failed: {source}"),
            ConsensusError::Clustering(e) => write!(f, "base clustering failed: {e}"),
            ConsensusError::Metrics(e) => write!(f, "alignment failed: {e}"),
        }
    }
}

impl std::error::Error for ConsensusError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ConsensusError::BaseClusterer { source, .. } => Some(source),
            ConsensusError::Clustering(e) => Some(e),
            ConsensusError::Metrics(e) => Some(e),
            _ => None,
        }
    }
}

impl From<sls_clustering::ClusteringError> for ConsensusError {
    fn from(e: sls_clustering::ClusteringError) -> Self {
        ConsensusError::Clustering(e)
    }
}

impl From<sls_metrics::MetricsError> for ConsensusError {
    fn from(e: sls_metrics::MetricsError) -> Self {
        ConsensusError::Metrics(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(ConsensusError::NoPartitions
            .to_string()
            .contains("at least one"));
        assert!(ConsensusError::PartitionLengthMismatch {
            expected: 10,
            partition: 2,
            found: 8
        }
        .to_string()
        .contains("partition 2"));
        assert!(ConsensusError::EmptySupervision
            .to_string()
            .contains("empty"));
        let e = ConsensusError::BaseClusterer {
            index: 1,
            name: "K-means",
            source: sls_clustering::ClusteringError::EmptyData,
        };
        let text = e.to_string();
        assert!(text.contains("base clusterer 1"), "{text}");
        assert!(text.contains("K-means"), "{text}");
        use std::error::Error;
        assert!(e.source().is_some());
    }

    #[test]
    fn conversions_work() {
        let c: ConsensusError = sls_clustering::ClusteringError::EmptyData.into();
        assert!(matches!(c, ConsensusError::Clustering(_)));
        let m: ConsensusError = sls_metrics::MetricsError::EmptyLabels.into();
        assert!(matches!(m, ConsensusError::Metrics(_)));
        use std::error::Error;
        assert!(c.source().is_some());
        assert!(ConsensusError::NoPartitions.source().is_none());
    }
}
