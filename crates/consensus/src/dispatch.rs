//! Task-level parallel dispatch for the consensus pipeline.
//!
//! The linalg kernels partition *rows*; the consensus stages partition
//! *tasks* — whole base clusterers and whole partition alignments. Tasks are
//! few and heavy, so the `min_rows_per_thread` cutover that protects tiny
//! matrices from spawn latency does not apply here: a policy with a thread
//! budget above one always fans out (up to one thread per task).
//!
//! Determinism discipline matches the kernel layer: every task is a pure
//! function of its index (any randomness comes from a pre-drawn sub-seed),
//! results are collected back in index order, and the task bodies themselves
//! only call bitwise-reproducible kernels — so the output is identical for
//! every thread count and dispatch mode.

use sls_linalg::{ParallelPolicy, WorkerPool};

/// Runs `task(0..n)` under `policy` and returns the results in index order.
///
/// Dispatch mirrors the linalg kernels: inline when the policy is serial, or
/// when already inside a pool job — nested dispatch runs inline regardless of
/// the nested policy's `pool` flag, so a spawn-path policy invoked from a
/// worker cannot stack fresh scoped threads on an already-saturated machine.
/// Otherwise the pool path spawns *one job per task*: tasks are few and
/// heavy (whole clusterers, whole alignments) with very unequal runtimes, so
/// per-task granularity lets the pool's work-stealing rebalance stragglers
/// instead of pinning a fixed band to each thread. The spawn path keeps
/// contiguous index bands — fresh threads are too expensive per task.
pub(crate) fn run_indexed<T, F>(n: usize, policy: &ParallelPolicy, task: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let mut threads = if policy.is_serial() {
        1
    } else {
        policy.threads.max(1).min(n)
    };
    if threads > 1 && WorkerPool::on_worker_thread() {
        threads = 1;
    }
    if threads <= 1 {
        return (0..n).map(task).collect();
    }

    let mut slots: Vec<Option<T>> = Vec::with_capacity(n);
    slots.resize_with(n, || None);
    if policy.pool {
        WorkerPool::global().scope(|scope| {
            let mut rest = slots.as_mut_slice();
            let mut first = None;
            for i in 0..n {
                let (slot, tail) = rest.split_first_mut().expect("n slots");
                rest = tail;
                if i == 0 {
                    first = Some(slot);
                } else {
                    let task = &task;
                    scope.spawn(move || *slot = Some(task(i)));
                }
            }
            // The submitter runs task 0 itself, then helps drain the rest.
            *first.expect("n >= 2 tasks") = Some(task(0));
        });
    } else {
        let base = n / threads;
        let extra = n % threads;
        let mut bands = Vec::with_capacity(threads);
        let mut rest = slots.as_mut_slice();
        let mut start = 0;
        for t in 0..threads {
            let len = base + usize::from(t < extra);
            let (band, tail) = rest.split_at_mut(len);
            rest = tail;
            bands.push((start, band));
            start += len;
        }
        let work = |start: usize, band: &mut [Option<T>]| {
            for (offset, slot) in band.iter_mut().enumerate() {
                *slot = Some(task(start + offset));
            }
        };
        std::thread::scope(|scope| {
            for (band_start, band) in bands {
                scope.spawn(move || work(band_start, band));
            }
        });
    }
    slots
        .into_iter()
        .map(|slot| slot.expect("every task slot is filled"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn squares(n: usize, policy: &ParallelPolicy) -> Vec<usize> {
        run_indexed(n, policy, |i| i * i)
    }

    #[test]
    fn serial_and_parallel_agree_in_index_order() {
        let expected: Vec<usize> = (0..23).map(|i| i * i).collect();
        assert_eq!(squares(23, &ParallelPolicy::serial()), expected);
        for threads in [2, 3, 8, 64] {
            for pool in [false, true] {
                let policy = ParallelPolicy::new(threads).with_pool(pool);
                assert_eq!(
                    squares(23, &policy),
                    expected,
                    "threads {threads} pool {pool}"
                );
            }
        }
    }

    #[test]
    fn degenerate_sizes_are_handled() {
        let policy = ParallelPolicy::new(4).with_pool(true);
        assert_eq!(squares(0, &policy), Vec::<usize>::new());
        assert_eq!(squares(1, &policy), vec![0]);
    }

    #[test]
    fn ignores_min_rows_cutover_for_heavy_tasks() {
        // Three clusterer-sized tasks must fan out even under the default
        // 64-row kernel cutover; only the thread budget and task count cap
        // the fan-out.
        let policy = ParallelPolicy::new(8).with_min_rows_per_thread(1_000_000);
        assert_eq!(squares(3, &policy), vec![0, 1, 4]);
    }
}
