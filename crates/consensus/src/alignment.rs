//! Label-space alignment between partitions.
//!
//! Cluster identifiers are arbitrary: k-means' cluster `0` and density
//! peaks' cluster `2` may describe the same group of instances. Before the
//! voting strategy can ask "do all clusterings agree on this instance?", all
//! partitions are re-labelled into the label space of a *reference* partition
//! by solving a maximum-agreement assignment (Hungarian algorithm on the
//! contingency table between the two partitions).

use crate::{ConsensusError, Result};
use sls_metrics::{hungarian_max_assignment, ContingencyTable};

/// Relabels `partition` so its cluster identifiers agree as much as possible
/// with `reference`. Clusters that cannot be matched (when `partition` has
/// more clusters than `reference`) keep fresh identifiers beyond the
/// reference's range, so no two source clusters are merged by alignment.
///
/// # Errors
///
/// Returns an error if the partitions are empty or of different length.
pub fn align_partition(reference: &[usize], partition: &[usize]) -> Result<Vec<usize>> {
    let table = ContingencyTable::from_labels(partition, reference)?;
    let weights: Vec<Vec<f64>> = table
        .counts()
        .iter()
        .map(|row| row.iter().map(|&c| c as f64).collect())
        .collect();
    let assignment = hungarian_max_assignment(&weights)?;

    // Map each source cluster id -> target reference id (or a fresh id).
    let source_ids = table.cluster_ids();
    let target_ids = table.class_ids();
    let max_reference_id = reference.iter().copied().max().unwrap_or(0);
    let mut next_fresh = max_reference_id + 1;
    let mut mapping = std::collections::BTreeMap::new();
    for (row, maybe_col) in assignment.iter().enumerate() {
        let source = source_ids[row];
        match maybe_col {
            Some(col) => {
                mapping.insert(source, target_ids[*col]);
            }
            None => {
                mapping.insert(source, next_fresh);
                next_fresh += 1;
            }
        }
    }
    Ok(partition.iter().map(|l| mapping[l]).collect())
}

/// Aligns every partition to the first one (the reference), returning the
/// re-labelled partitions with the reference first and unchanged.
///
/// # Errors
///
/// * [`ConsensusError::NoPartitions`] if `partitions` is empty.
/// * [`ConsensusError::PartitionLengthMismatch`] if lengths differ.
/// * Propagates alignment errors from the metric layer.
pub fn align_partitions(partitions: &[Vec<usize>]) -> Result<Vec<Vec<usize>>> {
    let Some(reference) = partitions.first() else {
        return Err(ConsensusError::NoPartitions);
    };
    for (idx, p) in partitions.iter().enumerate() {
        if p.len() != reference.len() {
            return Err(ConsensusError::PartitionLengthMismatch {
                expected: reference.len(),
                partition: idx,
                found: p.len(),
            });
        }
    }
    let mut aligned = Vec::with_capacity(partitions.len());
    aligned.push(reference.clone());
    for p in &partitions[1..] {
        aligned.push(align_partition(reference, p)?);
    }
    Ok(aligned)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn permuted_labels_are_mapped_back() {
        let reference = vec![0, 0, 1, 1, 2, 2];
        let permuted = vec![2, 2, 0, 0, 1, 1];
        let aligned = align_partition(&reference, &permuted).unwrap();
        assert_eq!(aligned, reference);
    }

    #[test]
    fn identical_partitions_are_unchanged() {
        let p = vec![1, 0, 2, 1, 0];
        assert_eq!(align_partition(&p, &p).unwrap(), p);
    }

    #[test]
    fn partial_agreement_maximises_matches() {
        let reference = vec![0, 0, 0, 1, 1, 1];
        // Partition agrees except for one instance, with swapped ids.
        let partition = vec![1, 1, 0, 0, 0, 0];
        let aligned = align_partition(&reference, &partition).unwrap();
        // After alignment the majority of instances must agree.
        let agreement = aligned
            .iter()
            .zip(&reference)
            .filter(|(a, b)| a == b)
            .count();
        assert_eq!(agreement, 5);
    }

    #[test]
    fn surplus_clusters_get_fresh_ids() {
        let reference = vec![0, 0, 0, 0, 1, 1, 1, 1];
        // Three clusters in the partition, two in the reference.
        let partition = vec![0, 0, 2, 2, 1, 1, 1, 1];
        let aligned = align_partition(&reference, &partition).unwrap();
        // The two matched clusters map onto 0 and 1; the surplus cluster gets
        // an id outside the reference's range (>= 2) and stays distinct.
        let distinct: std::collections::BTreeSet<usize> = aligned.iter().copied().collect();
        assert_eq!(distinct.len(), 3);
        assert!(aligned.iter().any(|&l| l >= 2));
        // No merging: instances 2,3 still share a label distinct from 0,1.
        assert_eq!(aligned[2], aligned[3]);
        assert_ne!(aligned[2], aligned[0]);
    }

    #[test]
    fn align_partitions_checks_lengths_and_emptiness() {
        assert!(matches!(
            align_partitions(&[]),
            Err(ConsensusError::NoPartitions)
        ));
        let err = align_partitions(&[vec![0, 1], vec![0]]).unwrap_err();
        assert!(matches!(
            err,
            ConsensusError::PartitionLengthMismatch {
                partition: 1,
                expected: 2,
                found: 1
            }
        ));
    }

    #[test]
    fn align_partitions_aligns_everything_to_first() {
        let a = vec![0, 0, 1, 1];
        let b = vec![1, 1, 0, 0];
        let c = vec![5, 5, 9, 9];
        let aligned = align_partitions(&[a.clone(), b, c]).unwrap();
        assert_eq!(aligned[0], a);
        assert_eq!(aligned[1], a);
        assert_eq!(aligned[2], a);
    }

    #[test]
    fn alignment_of_empty_partitions_errors() {
        assert!(align_partition(&[], &[]).is_err());
    }
}
