//! Label-space alignment between partitions.
//!
//! Cluster identifiers are arbitrary: k-means' cluster `0` and density
//! peaks' cluster `2` may describe the same group of instances. Before the
//! voting strategy can ask "do all clusterings agree on this instance?", all
//! partitions are re-labelled into the label space of a *reference* partition
//! by solving a maximum-agreement assignment (Hungarian algorithm on the
//! contingency table between the two partitions).

use crate::{ConsensusError, Result};
use sls_linalg::ParallelPolicy;
use sls_metrics::{hungarian_max_assignment, ContingencyTable};

/// Relabels `partition` so its cluster identifiers agree as much as possible
/// with `reference`. Clusters that cannot be matched (when `partition` has
/// more clusters than `reference`) keep fresh identifiers beyond the
/// reference's range, so no two source clusters are merged by alignment.
///
/// # Errors
///
/// Returns an error if the partitions are empty or of different length.
pub fn align_partition(reference: &[usize], partition: &[usize]) -> Result<Vec<usize>> {
    let table = ContingencyTable::from_labels(partition, reference)?;
    let weights: Vec<Vec<f64>> = table
        .counts()
        .iter()
        .map(|row| row.iter().map(|&c| c as f64).collect())
        .collect();
    let assignment = hungarian_max_assignment(&weights)?;

    // Map each source cluster id -> target reference id (or a fresh id).
    let source_ids = table.cluster_ids();
    let target_ids = table.class_ids();
    let max_reference_id = reference.iter().copied().max().unwrap_or(0);
    let mut next_fresh = max_reference_id + 1;
    let mut mapping = std::collections::BTreeMap::new();
    for (row, maybe_col) in assignment.iter().enumerate() {
        let source = source_ids[row];
        match maybe_col {
            Some(col) => {
                mapping.insert(source, target_ids[*col]);
            }
            None => {
                mapping.insert(source, next_fresh);
                next_fresh += 1;
            }
        }
    }
    Ok(partition.iter().map(|l| mapping[l]).collect())
}

/// Aligns every partition to the first one (the reference), returning the
/// re-labelled partitions with the reference first and unchanged.
///
/// Serial convenience wrapper over [`align_partitions_with`].
///
/// # Errors
///
/// * [`ConsensusError::NoPartitions`] if `partitions` is empty.
/// * [`ConsensusError::PartitionLengthMismatch`] if lengths differ.
/// * Propagates alignment errors from the metric layer.
pub fn align_partitions(partitions: &[Vec<usize>]) -> Result<Vec<Vec<usize>>> {
    align_partitions_with(partitions, &ParallelPolicy::serial())
}

/// [`align_partitions`] under an explicit [`ParallelPolicy`].
///
/// Each non-reference partition is aligned against the reference
/// independently (one Hungarian assignment per partition), so the pairwise
/// contingency/alignment step fans the partitions out across threads.
/// Every alignment is a deterministic function of its input partition and
/// the reference, and results are collected back in partition order, so
/// the output — including *which* error surfaces when several partitions
/// are invalid (always the lowest-index one) — is identical for every
/// thread count and dispatch mode.
///
/// # Errors
///
/// Same as [`align_partitions`].
pub fn align_partitions_with(
    partitions: &[Vec<usize>],
    parallel: &ParallelPolicy,
) -> Result<Vec<Vec<usize>>> {
    let Some(reference) = partitions.first() else {
        return Err(ConsensusError::NoPartitions);
    };
    for (idx, p) in partitions.iter().enumerate() {
        if p.len() != reference.len() {
            return Err(ConsensusError::PartitionLengthMismatch {
                expected: reference.len(),
                partition: idx,
                found: p.len(),
            });
        }
    }
    let rest = crate::dispatch::run_indexed(partitions.len() - 1, parallel, |i| {
        align_partition(reference, &partitions[i + 1])
    });
    let mut aligned = Vec::with_capacity(partitions.len());
    aligned.push(reference.clone());
    for result in rest {
        aligned.push(result?);
    }
    Ok(aligned)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn permuted_labels_are_mapped_back() {
        let reference = vec![0, 0, 1, 1, 2, 2];
        let permuted = vec![2, 2, 0, 0, 1, 1];
        let aligned = align_partition(&reference, &permuted).unwrap();
        assert_eq!(aligned, reference);
    }

    #[test]
    fn identical_partitions_are_unchanged() {
        let p = vec![1, 0, 2, 1, 0];
        assert_eq!(align_partition(&p, &p).unwrap(), p);
    }

    #[test]
    fn partial_agreement_maximises_matches() {
        let reference = vec![0, 0, 0, 1, 1, 1];
        // Partition agrees except for one instance, with swapped ids.
        let partition = vec![1, 1, 0, 0, 0, 0];
        let aligned = align_partition(&reference, &partition).unwrap();
        // After alignment the majority of instances must agree.
        let agreement = aligned
            .iter()
            .zip(&reference)
            .filter(|(a, b)| a == b)
            .count();
        assert_eq!(agreement, 5);
    }

    #[test]
    fn surplus_clusters_get_fresh_ids() {
        let reference = vec![0, 0, 0, 0, 1, 1, 1, 1];
        // Three clusters in the partition, two in the reference.
        let partition = vec![0, 0, 2, 2, 1, 1, 1, 1];
        let aligned = align_partition(&reference, &partition).unwrap();
        // The two matched clusters map onto 0 and 1; the surplus cluster gets
        // an id outside the reference's range (>= 2) and stays distinct.
        let distinct: std::collections::BTreeSet<usize> = aligned.iter().copied().collect();
        assert_eq!(distinct.len(), 3);
        assert!(aligned.iter().any(|&l| l >= 2));
        // No merging: instances 2,3 still share a label distinct from 0,1.
        assert_eq!(aligned[2], aligned[3]);
        assert_ne!(aligned[2], aligned[0]);
    }

    #[test]
    fn align_partitions_checks_lengths_and_emptiness() {
        assert!(matches!(
            align_partitions(&[]),
            Err(ConsensusError::NoPartitions)
        ));
        let err = align_partitions(&[vec![0, 1], vec![0]]).unwrap_err();
        assert!(matches!(
            err,
            ConsensusError::PartitionLengthMismatch {
                partition: 1,
                expected: 2,
                found: 1
            }
        ));
    }

    #[test]
    fn align_partitions_aligns_everything_to_first() {
        let a = vec![0, 0, 1, 1];
        let b = vec![1, 1, 0, 0];
        let c = vec![5, 5, 9, 9];
        let aligned = align_partitions(&[a.clone(), b, c]).unwrap();
        assert_eq!(aligned[0], a);
        assert_eq!(aligned[1], a);
        assert_eq!(aligned[2], a);
    }

    #[test]
    fn alignment_of_empty_partitions_errors() {
        assert!(align_partition(&[], &[]).is_err());
        assert!(matches!(
            align_partitions_with(&[], &ParallelPolicy::serial()),
            Err(ConsensusError::NoPartitions)
        ));
        // An empty partition *inside* a non-empty set fails the metric
        // layer's contingency construction, not a panic.
        assert!(align_partitions(&[vec![], vec![]]).is_err());
    }

    #[test]
    fn single_cluster_partitions_align_without_loss() {
        // Everyone in one cluster, on both sides: a 1x1 contingency table
        // through the Hungarian step.
        let reference = vec![3, 3, 3, 3];
        let partition = vec![0, 0, 0, 0];
        assert_eq!(align_partition(&reference, &partition).unwrap(), reference);
        // Single-cluster partition against a multi-cluster reference: the
        // lone source cluster maps onto its best reference match (the
        // majority cluster) and nothing is merged or invented.
        let reference = vec![0, 0, 0, 1];
        let partition = vec![7, 7, 7, 7];
        assert_eq!(
            align_partition(&reference, &partition).unwrap(),
            vec![0, 0, 0, 0]
        );
        // Multi-cluster partition against a single-cluster reference: one
        // source cluster wins the only reference id, the other keeps a
        // fresh id — still two distinct clusters after alignment.
        let reference = vec![0, 0, 0, 0];
        let partition = vec![1, 1, 2, 2];
        let aligned = align_partition(&reference, &partition).unwrap();
        assert_eq!(aligned[0], aligned[1]);
        assert_eq!(aligned[2], aligned[3]);
        assert_ne!(aligned[0], aligned[2]);
    }

    #[test]
    fn unequal_cluster_counts_survive_the_hungarian_step() {
        // Partition observes fewer clusters than the reference (a base
        // clusterer collapsed two groups): the rectangular contingency
        // table must still produce a valid assignment, and both source
        // clusters map onto distinct reference ids.
        let reference = vec![0, 0, 1, 1, 2, 2];
        let partition = vec![4, 4, 4, 4, 9, 9];
        let aligned = align_partition(&reference, &partition).unwrap();
        let distinct: std::collections::BTreeSet<usize> = aligned.iter().copied().collect();
        assert_eq!(distinct.len(), 2);
        assert!(aligned.iter().all(|&l| l <= 2), "{aligned:?}");
        assert_eq!(aligned[4], aligned[5]);
        assert_ne!(aligned[0], aligned[4]);
        // And the transposed case (more observed clusters than the
        // reference) keeps every surplus cluster distinct via fresh ids.
        let aligned = align_partition(&partition, &reference).unwrap();
        let distinct: std::collections::BTreeSet<usize> = aligned.iter().copied().collect();
        assert_eq!(distinct.len(), 3);
    }

    #[test]
    fn parallel_alignment_is_identical_to_serial() {
        // Ten partitions with permuted, surplus and collapsed labels.
        let mut partitions = vec![vec![0, 0, 0, 1, 1, 1, 2, 2, 2]];
        for shift in 1..10usize {
            partitions.push(
                (0..9)
                    .map(|i| (i / 3 + shift) % (2 + shift % 2) + 1)
                    .collect(),
            );
        }
        let serial = align_partitions(&partitions).unwrap();
        for threads in [2, 4, 8] {
            for pool in [false, true] {
                let policy = ParallelPolicy::new(threads).with_pool(pool);
                let par = align_partitions_with(&partitions, &policy).unwrap();
                assert_eq!(par, serial, "threads {threads} pool {pool}");
            }
        }
    }
}
