//! Property suite for the PR's central invariant: consensus supervision
//! built under ANY dispatch policy — serial, scoped spawns or the
//! persistent worker pool, with the SIMD inner loops on or off, across
//! thread budgets 1–8 — is *identical* to the serial build, and consumes
//! the caller's RNG identically.
//!
//! The invariant holds by construction (per-clusterer sub-seeds are drawn
//! serially before any clusterer runs; every per-row reduction keeps the
//! serial accumulation order), and this suite is what keeps it true.

use rand::{RngCore, SeedableRng};
use rand_chacha::ChaCha8Rng;
use sls_clustering::{AffinityPropagation, Clusterer, DensityPeaks, KMeans};
use sls_consensus::{LocalSupervision, LocalSupervisionBuilder, VotingPolicy};
use sls_datasets::SyntheticBlobs;
use sls_linalg::{Matrix, ParallelPolicy, SimdPolicy};

const K: usize = 3;
const SEED: u64 = 4242;

fn blobs() -> Matrix {
    let mut rng = ChaCha8Rng::seed_from_u64(31);
    SyntheticBlobs::new(84, 6, K)
        .separation(5.0)
        .generate(&mut rng)
        .features()
        .clone()
}

/// The paper's base-clusterer trio, every stage threaded with `policy`.
fn clusterers(policy: ParallelPolicy) -> Vec<Box<dyn Clusterer>> {
    vec![
        Box::new(DensityPeaks::new(K).with_parallel(policy)),
        Box::new(KMeans::new(K).with_parallel(policy)),
        Box::new(
            AffinityPropagation::default()
                .with_target_clusters(K)
                .with_parallel(policy),
        ),
    ]
}

/// Builds supervision under `policy` and returns it with the caller RNG's
/// next draw, so tests can also assert the RNG advanced identically.
fn build(data: &Matrix, policy: ParallelPolicy, voting: VotingPolicy) -> (LocalSupervision, u64) {
    let mut rng = ChaCha8Rng::seed_from_u64(SEED);
    let supervision = LocalSupervisionBuilder::new(K)
        .with_policy(voting)
        .with_parallel(policy)
        .build_with_clusterers(&clusterers(policy), data, &mut rng)
        .expect("consensus builds");
    (supervision, rng.next_u64())
}

/// Every point of the {serial, spawn, pool} x {simd on, off} x threads 1–8
/// grid must reproduce the serial supervision exactly: same membership,
/// same cluster count, same covered indices, same RNG consumption.
#[test]
fn consensus_is_identical_to_serial_across_the_policy_grid() {
    let data = blobs();
    let (reference, reference_draw) =
        build(&data, ParallelPolicy::serial(), VotingPolicy::Unanimous);
    assert!(reference.n_clusters() > 0, "reference supervision is empty");

    for threads in 1..=8usize {
        for pool in [false, true] {
            for simd in [SimdPolicy::Lanes4, SimdPolicy::Scalar] {
                let policy = ParallelPolicy::new(threads)
                    .with_min_rows_per_thread(1)
                    .with_pool(pool)
                    .with_simd(simd);
                let (supervision, draw) = build(&data, policy, VotingPolicy::Unanimous);
                let label = format!("threads={threads} pool={pool} simd={simd:?}");
                assert_eq!(
                    supervision.membership(),
                    reference.membership(),
                    "membership diverged under {label}"
                );
                assert_eq!(
                    supervision.n_clusters(),
                    reference.n_clusters(),
                    "cluster count diverged under {label}"
                );
                assert_eq!(
                    supervision.covered_indices(),
                    reference.covered_indices(),
                    "coverage diverged under {label}"
                );
                assert_eq!(
                    draw, reference_draw,
                    "caller RNG consumption diverged under {label}"
                );
            }
        }
    }
}

/// The identity must hold for every voting policy, not just the paper's
/// unanimous default — the pooled integration path is shared.
#[test]
fn pooled_consensus_matches_serial_for_every_voting_policy() {
    let data = blobs();
    let pooled = ParallelPolicy::new(4)
        .with_min_rows_per_thread(1)
        .with_pool(true);
    for voting in [
        VotingPolicy::Unanimous,
        VotingPolicy::Majority,
        VotingPolicy::Single(1),
    ] {
        let (reference, _) = build(&data, ParallelPolicy::serial(), voting);
        let (supervision, _) = build(&data, pooled, voting);
        assert_eq!(
            supervision.membership(),
            reference.membership(),
            "membership diverged under {voting:?}"
        );
    }
}
