//! Training hyper-parameters shared by the plain CD trainer and the sls
//! trainer.

use crate::{RbmError, Result};
use serde::{Deserialize, Serialize};

/// Hyper-parameters of contrastive-divergence training.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrainConfig {
    /// Learning rate ε of Eqs. 10–12. The paper uses `1e-4` for slsGRBM and
    /// `1e-5` for slsRBM.
    pub learning_rate: f64,
    /// Number of passes over the training data.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Number of Gibbs steps per update (CD-k). The paper uses CD-1.
    pub cd_steps: usize,
    /// L2 weight decay applied to the connection weights.
    pub weight_decay: f64,
    /// Momentum coefficient on all parameter updates.
    pub momentum: f64,
    /// Whether to shuffle instances between epochs.
    pub shuffle: bool,
}

impl Default for TrainConfig {
    fn default() -> Self {
        Self {
            learning_rate: 1e-3,
            epochs: 20,
            batch_size: 64,
            cd_steps: 1,
            weight_decay: 1e-4,
            momentum: 0.5,
            shuffle: true,
        }
    }
}

impl TrainConfig {
    /// The configuration the paper reports for the slsGRBM experiments
    /// (learning rate `1e-4`, CD-1).
    pub fn paper_grbm() -> Self {
        Self {
            learning_rate: 1e-4,
            epochs: 30,
            batch_size: 64,
            ..Self::default()
        }
    }

    /// The configuration the paper reports for the slsRBM experiments
    /// (learning rate `1e-5`, CD-1).
    pub fn paper_rbm() -> Self {
        Self {
            learning_rate: 1e-5,
            epochs: 30,
            batch_size: 64,
            ..Self::default()
        }
    }

    /// A small configuration for tests and quick demos.
    pub fn quick() -> Self {
        Self {
            learning_rate: 0.05,
            epochs: 5,
            batch_size: 32,
            weight_decay: 0.0,
            momentum: 0.0,
            ..Self::default()
        }
    }

    /// Overrides the learning rate.
    pub fn with_learning_rate(mut self, learning_rate: f64) -> Self {
        self.learning_rate = learning_rate;
        self
    }

    /// Overrides the number of epochs.
    pub fn with_epochs(mut self, epochs: usize) -> Self {
        self.epochs = epochs;
        self
    }

    /// Overrides the mini-batch size.
    pub fn with_batch_size(mut self, batch_size: usize) -> Self {
        self.batch_size = batch_size;
        self
    }

    /// Overrides the number of CD steps.
    pub fn with_cd_steps(mut self, cd_steps: usize) -> Self {
        self.cd_steps = cd_steps;
        self
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`RbmError::InvalidConfig`] for non-positive learning rates,
    /// zero epochs/batch/CD steps, negative weight decay or a momentum
    /// outside `[0, 1)`.
    pub fn validate(&self) -> Result<()> {
        if !(self.learning_rate > 0.0 && self.learning_rate.is_finite()) {
            return Err(RbmError::InvalidConfig {
                name: "learning_rate",
                message: format!("must be positive and finite, got {}", self.learning_rate),
            });
        }
        if self.epochs == 0 {
            return Err(RbmError::InvalidConfig {
                name: "epochs",
                message: "must be at least 1".to_string(),
            });
        }
        if self.batch_size == 0 {
            return Err(RbmError::InvalidConfig {
                name: "batch_size",
                message: "must be at least 1".to_string(),
            });
        }
        if self.cd_steps == 0 {
            return Err(RbmError::InvalidConfig {
                name: "cd_steps",
                message: "must be at least 1".to_string(),
            });
        }
        if self.weight_decay < 0.0 {
            return Err(RbmError::InvalidConfig {
                name: "weight_decay",
                message: "must be non-negative".to_string(),
            });
        }
        if !(0.0..1.0).contains(&self.momentum) {
            return Err(RbmError::InvalidConfig {
                name: "momentum",
                message: format!("must be in [0, 1), got {}", self.momentum),
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_valid() {
        assert!(TrainConfig::default().validate().is_ok());
        assert!(TrainConfig::paper_grbm().validate().is_ok());
        assert!(TrainConfig::paper_rbm().validate().is_ok());
        assert!(TrainConfig::quick().validate().is_ok());
    }

    #[test]
    fn paper_configs_use_reported_learning_rates() {
        assert_eq!(TrainConfig::paper_grbm().learning_rate, 1e-4);
        assert_eq!(TrainConfig::paper_rbm().learning_rate, 1e-5);
        assert_eq!(TrainConfig::paper_grbm().cd_steps, 1);
    }

    #[test]
    fn builders_override_fields() {
        let c = TrainConfig::default()
            .with_learning_rate(0.5)
            .with_epochs(3)
            .with_batch_size(16)
            .with_cd_steps(2);
        assert_eq!(c.learning_rate, 0.5);
        assert_eq!(c.epochs, 3);
        assert_eq!(c.batch_size, 16);
        assert_eq!(c.cd_steps, 2);
    }

    #[test]
    fn invalid_values_are_rejected() {
        assert!(TrainConfig::default()
            .with_learning_rate(0.0)
            .validate()
            .is_err());
        assert!(TrainConfig::default()
            .with_learning_rate(f64::NAN)
            .validate()
            .is_err());
        assert!(TrainConfig::default().with_epochs(0).validate().is_err());
        assert!(TrainConfig::default()
            .with_batch_size(0)
            .validate()
            .is_err());
        assert!(TrainConfig::default().with_cd_steps(0).validate().is_err());
        let c = TrainConfig {
            weight_decay: -1.0,
            ..TrainConfig::default()
        };
        assert!(c.validate().is_err());
        let c = TrainConfig {
            momentum: 1.0,
            ..TrainConfig::default()
        };
        assert!(c.validate().is_err());
    }

    #[test]
    fn serde_round_trip() {
        let c = TrainConfig::paper_grbm();
        let json = serde_json::to_string(&c).unwrap();
        let back: TrainConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(back, c);
    }
}
