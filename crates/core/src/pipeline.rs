//! End-to-end pipelines reproducing the paper's experimental protocol.
//!
//! Every experiment in Section V follows the same stages:
//!
//! 1. **Preprocess** — standardise real-valued data for the Gaussian models,
//!    binarise data for the binary models.
//! 2. **Self-learning supervision** (sls models only) — run DP, K-means and
//!    AP on the preprocessed data and integrate them by unanimous voting.
//! 3. **Train** the energy model (plain CD for the baselines, the sls
//!    objective for slsRBM / slsGRBM).
//! 4. **Extract** hidden features; a downstream clusterer (chosen by the
//!    caller / the experiment harness) then clusters them.
//!
//! The pipeline types bundle stages 1–4 behind a single `run` call.

use crate::artifact::FittedPreprocessor;
use crate::model::{BoltzmannMachine, RbmParams};
use crate::sls::{SlsConfig, SlsGrbm, SlsRbm};
use crate::{CdTrainer, Grbm, Rbm, Result, TrainConfig, TrainingHistory};
use rand::Rng;
use serde::{Deserialize, Serialize};
use sls_clustering::{AffinityPropagation, Clusterer, DensityPeaks, KMeans};
use sls_consensus::{LocalSupervisionBuilder, SupervisionSummary, VotingPolicy};
use sls_linalg::{Matrix, ParallelPolicy};

/// How the input data is prepared before it reaches the energy model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Preprocessing {
    /// Column-wise standardisation (zero mean, unit variance); the right
    /// choice for Gaussian-visible models.
    Standardize,
    /// Median binarisation per column; the right choice for binary-visible
    /// models on real-valued inputs.
    BinarizeMedian,
    /// Use the data as-is (it is already binary / already standardised).
    None,
}

/// Configuration shared by all four pipelines.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SlsPipelineConfig {
    /// Number of hidden units of the energy model.
    pub n_hidden: usize,
    /// Number of clusters the base clusterers target (the paper uses the
    /// ground-truth class count) and that downstream evaluation uses.
    pub n_clusters: usize,
    /// CD training hyper-parameters.
    pub train: TrainConfig,
    /// sls hyper-parameters (ignored by the baseline pipelines).
    pub sls: SlsConfig,
    /// Voting policy used to integrate the base clusterings.
    pub voting: VotingPolicy,
    /// Preprocessing applied before training.
    pub preprocessing: Preprocessing,
    /// Parallel execution policy for the training and feature-extraction
    /// hot paths. Results are bitwise identical for every policy, so this
    /// only affects speed. **Process-local**: the field is skipped during
    /// serialisation (an artifact must not bake in the exporting machine's
    /// core count) and deserialises to the process-wide policy.
    pub parallel: ParallelPolicy,
}

// Hand-written (de)serialisation instead of the derive: `parallel` is an
// execution-speed knob, not model provenance — writing it would make
// artifact bytes depend on the exporting machine (`--threads 0` resolves to
// its core count) and carry that machine's policy into whichever process
// later reloads the config. It is therefore omitted on output and filled
// from the process-wide policy on input, which also keeps artifacts written
// before the parallel layer loading unchanged.
impl serde::Serialize for SlsPipelineConfig {
    fn to_value(&self) -> serde::Value {
        serde::Value::Object(vec![
            ("n_hidden".to_string(), self.n_hidden.to_value()),
            ("n_clusters".to_string(), self.n_clusters.to_value()),
            ("train".to_string(), self.train.to_value()),
            ("sls".to_string(), self.sls.to_value()),
            ("voting".to_string(), self.voting.to_value()),
            ("preprocessing".to_string(), self.preprocessing.to_value()),
        ])
    }
}

impl serde::Deserialize for SlsPipelineConfig {
    fn from_value(value: &serde::Value) -> std::result::Result<Self, serde::DeError> {
        let entries = value
            .as_object()
            .ok_or_else(|| serde::DeError::mismatch("object", value))?;
        Ok(Self {
            n_hidden: serde::Deserialize::from_value(serde::field(entries, "n_hidden")?)?,
            n_clusters: serde::Deserialize::from_value(serde::field(entries, "n_clusters")?)?,
            train: serde::Deserialize::from_value(serde::field(entries, "train")?)?,
            sls: serde::Deserialize::from_value(serde::field(entries, "sls")?)?,
            voting: serde::Deserialize::from_value(serde::field(entries, "voting")?)?,
            preprocessing: serde::Deserialize::from_value(serde::field(entries, "preprocessing")?)?,
            parallel: ParallelPolicy::global(),
        })
    }
}

impl SlsPipelineConfig {
    /// Paper settings for the MSRA-MM experiments (slsGRBM, η = 0.4,
    /// learning rate 1e-4, standardised inputs).
    pub fn paper_grbm(n_clusters: usize) -> Self {
        Self {
            n_hidden: 64,
            n_clusters,
            train: TrainConfig::paper_grbm(),
            sls: SlsConfig::paper_grbm(),
            voting: VotingPolicy::Unanimous,
            preprocessing: Preprocessing::Standardize,
            parallel: ParallelPolicy::global(),
        }
    }

    /// Paper settings for the UCI experiments (slsRBM, η = 0.5, learning
    /// rate 1e-5, median-binarised inputs).
    pub fn paper_rbm(n_clusters: usize) -> Self {
        Self {
            n_hidden: 32,
            n_clusters,
            train: TrainConfig::paper_rbm(),
            sls: SlsConfig::paper_rbm(),
            voting: VotingPolicy::Unanimous,
            preprocessing: Preprocessing::BinarizeMedian,
            parallel: ParallelPolicy::global(),
        }
    }

    /// A small, fast configuration for demos and tests.
    pub fn quick_demo() -> Self {
        Self {
            n_hidden: 12,
            n_clusters: 3,
            train: TrainConfig::default()
                .with_learning_rate(5e-3)
                .with_epochs(15)
                .with_batch_size(32),
            // Paper-style single learning rate: the supervision gradient
            // reuses the CD rate. A much larger dedicated rate makes the
            // constrict/disperse term overpower the likelihood term and
            // distorts the hidden features.
            sls: SlsConfig::new(0.5),
            voting: VotingPolicy::Unanimous,
            preprocessing: Preprocessing::Standardize,
            parallel: ParallelPolicy::global(),
        }
    }

    /// Overrides the hidden-layer width.
    pub fn with_hidden(mut self, n_hidden: usize) -> Self {
        self.n_hidden = n_hidden;
        self
    }

    /// Overrides the cluster count.
    pub fn with_clusters(mut self, n_clusters: usize) -> Self {
        self.n_clusters = n_clusters;
        self
    }

    /// Overrides the training configuration.
    pub fn with_train(mut self, train: TrainConfig) -> Self {
        self.train = train;
        self
    }

    /// Overrides the sls configuration.
    pub fn with_sls(mut self, sls: SlsConfig) -> Self {
        self.sls = sls;
        self
    }

    /// Overrides the voting policy.
    pub fn with_voting(mut self, voting: VotingPolicy) -> Self {
        self.voting = voting;
        self
    }

    /// Overrides the preprocessing step.
    pub fn with_preprocessing(mut self, preprocessing: Preprocessing) -> Self {
        self.preprocessing = preprocessing;
        self
    }

    /// Overrides the parallel execution policy used by training and feature
    /// extraction. Outputs are bitwise identical for every policy.
    pub fn with_parallel(mut self, parallel: ParallelPolicy) -> Self {
        self.parallel = parallel;
        self
    }
}

/// Everything a pipeline run produces.
#[derive(Debug, Clone)]
pub struct PipelineOutcome {
    /// Hidden-layer features, one row per instance — the representation the
    /// paper clusters.
    pub hidden_features: Matrix,
    /// The preprocessed data actually fed to the model.
    pub preprocessed: Matrix,
    /// Per-epoch training history.
    pub history: TrainingHistory,
    /// Summary of the self-learning supervision (`None` for the baseline
    /// pipelines that do not build one).
    pub supervision: Option<SupervisionSummary>,
    /// The trained model's parameters — everything needed to re-instantiate
    /// the energy model later (e.g. in a [`crate::PipelineArtifact`]).
    pub model_params: RbmParams,
    /// The preprocessor fitted on the training data, reusable on unseen rows
    /// and embedded into serving artifacts.
    pub preprocessor: FittedPreprocessor,
}

/// Fits the preprocessor on `data` and transforms `data` with it — the one
/// preprocessing path, shared with served artifacts so training-time and
/// serving-time transforms cannot diverge. The transform runs under the
/// pipeline's parallel policy (row-independent, bitwise identical for
/// every policy).
fn preprocess(
    data: &Matrix,
    preprocessing: Preprocessing,
    parallel: &ParallelPolicy,
) -> Result<(FittedPreprocessor, Matrix)> {
    let fitted = FittedPreprocessor::fit(preprocessing, data)?;
    let transformed = fitted.transform_with(data, parallel)?;
    Ok((fitted, transformed))
}

/// The paper's base clusterers (DP, K-means, AP) targeting `k` clusters,
/// each with its distance inner loops routed through the pooled kernels of
/// `parallel` (bitwise identical to serial for every policy).
///
/// Public so out-of-pipeline supervision construction (e.g. the streaming
/// `retrain` path, which fits supervision on a leading sample) uses exactly
/// the clusterer set the in-memory pipelines use.
pub fn base_clusterers(k: usize, parallel: &ParallelPolicy) -> Vec<Box<dyn Clusterer>> {
    vec![
        Box::new(DensityPeaks::new(k).with_parallel(*parallel)),
        Box::new(KMeans::new(k).with_parallel(*parallel)),
        Box::new(
            AffinityPropagation::default()
                .with_target_clusters(k)
                .with_parallel(*parallel),
        ),
    ]
}

macro_rules! sls_pipeline {
    ($(#[$doc:meta])* $name:ident, $model:ty) => {
        $(#[$doc])*
        #[derive(Debug, Clone)]
        pub struct $name {
            config: SlsPipelineConfig,
        }

        impl $name {
            /// Creates the pipeline with the given configuration.
            pub fn new(config: SlsPipelineConfig) -> Self {
                Self { config }
            }

            /// The active configuration.
            pub fn config(&self) -> &SlsPipelineConfig {
                &self.config
            }

            /// Runs preprocessing, supervision construction, training and
            /// feature extraction on `data` (one row per instance).
            ///
            /// # Errors
            ///
            /// Propagates preprocessing, clustering, supervision and training
            /// errors.
            pub fn run(&self, data: &Matrix, rng: &mut impl Rng) -> Result<PipelineOutcome> {
                let (preprocessor, preprocessed) =
                    preprocess(data, self.config.preprocessing, &self.config.parallel)?;
                let clusterers =
                    base_clusterers(self.config.n_clusters, &self.config.parallel);
                let supervision = LocalSupervisionBuilder::new(self.config.n_clusters)
                    .with_policy(self.config.voting)
                    .with_parallel(self.config.parallel)
                    .build_with_clusterers(&clusterers, &preprocessed, rng)?;
                let mut model =
                    <$model>::new(preprocessed.cols(), self.config.n_hidden, rng);
                let history = model.train_with(
                    &preprocessed,
                    &supervision,
                    self.config.train,
                    self.config.sls,
                    self.config.parallel,
                    rng,
                )?;
                let hidden_features =
                    model.hidden_features_with(&preprocessed, &self.config.parallel)?;
                Ok(PipelineOutcome {
                    hidden_features,
                    preprocessed,
                    history,
                    supervision: Some(supervision.summary()),
                    model_params: model.params().clone(),
                    preprocessor,
                })
            }
        }
    };
}

macro_rules! baseline_pipeline {
    ($(#[$doc:meta])* $name:ident, $model:ty) => {
        $(#[$doc])*
        #[derive(Debug, Clone)]
        pub struct $name {
            config: SlsPipelineConfig,
        }

        impl $name {
            /// Creates the pipeline with the given configuration (the `sls`
            /// and `voting` fields are ignored).
            pub fn new(config: SlsPipelineConfig) -> Self {
                Self { config }
            }

            /// The active configuration.
            pub fn config(&self) -> &SlsPipelineConfig {
                &self.config
            }

            /// Runs preprocessing, plain CD training and feature extraction.
            ///
            /// # Errors
            ///
            /// Propagates preprocessing and training errors.
            pub fn run(&self, data: &Matrix, rng: &mut impl Rng) -> Result<PipelineOutcome> {
                let (preprocessor, preprocessed) =
                    preprocess(data, self.config.preprocessing, &self.config.parallel)?;
                let mut model =
                    <$model>::new(preprocessed.cols(), self.config.n_hidden, rng);
                let history = CdTrainer::new(self.config.train)?
                    .with_parallel(self.config.parallel)
                    .train(&mut model, &preprocessed, rng)?;
                let hidden_features =
                    model.hidden_probabilities_with(&preprocessed, &self.config.parallel)?;
                Ok(PipelineOutcome {
                    hidden_features,
                    preprocessed,
                    history,
                    supervision: None,
                    model_params: model.params().clone(),
                    preprocessor,
                })
            }
        }
    };
}

sls_pipeline!(
    /// Full slsGRBM pipeline: standardise → multi-clustering supervision →
    /// sls training of a Gaussian-visible model → hidden features.
    SlsGrbmPipeline,
    SlsGrbm
);

sls_pipeline!(
    /// Full slsRBM pipeline: binarise → multi-clustering supervision → sls
    /// training of a binary model → hidden features.
    SlsRbmPipeline,
    SlsRbm
);

baseline_pipeline!(
    /// Baseline GRBM pipeline (plain CD, no supervision), the `X+GRBM`
    /// columns of Tables IV–VI.
    GrbmPipeline,
    Grbm
);

baseline_pipeline!(
    /// Baseline RBM pipeline (plain CD, no supervision), the `X+RBM` columns
    /// of Tables VII–IX.
    RbmPipeline,
    Rbm
);

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use sls_datasets::SyntheticBlobs;

    fn rng() -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(808)
    }

    fn dataset() -> sls_datasets::Dataset {
        SyntheticBlobs::new(60, 6, 3)
            .separation(6.0)
            .generate(&mut rng())
    }

    #[test]
    fn config_builders_override_fields() {
        let c = SlsPipelineConfig::quick_demo()
            .with_hidden(5)
            .with_clusters(4)
            .with_voting(VotingPolicy::Majority)
            .with_preprocessing(Preprocessing::None)
            .with_train(TrainConfig::quick().with_epochs(1))
            .with_sls(SlsConfig::new(0.9))
            .with_parallel(ParallelPolicy::new(2).with_min_rows_per_thread(8));
        assert_eq!(c.n_hidden, 5);
        assert_eq!(c.n_clusters, 4);
        assert_eq!(c.voting, VotingPolicy::Majority);
        assert_eq!(c.preprocessing, Preprocessing::None);
        assert_eq!(c.train.epochs, 1);
        assert_eq!(c.sls.eta, 0.9);
        assert_eq!(c.parallel.threads, 2);
        assert_eq!(c.parallel.min_rows_per_thread, 8);
    }

    #[test]
    fn parallel_policy_is_process_local_not_persisted() {
        // The policy is an execution-speed knob: serialised configs must be
        // byte-identical across machines and thread settings, and a config
        // (from any era, including pre-parallel-layer artifacts) must
        // deserialise to the loading process's own policy.
        let config = SlsPipelineConfig::quick_demo()
            .with_parallel(ParallelPolicy::new(16).with_min_rows_per_thread(2));
        let value = serde::Serialize::to_value(&config);
        let serde::Value::Object(entries) = &value else {
            panic!("config serialises to an object");
        };
        assert!(
            entries.iter().all(|(key, _)| key != "parallel"),
            "the execution policy must not be baked into artifacts"
        );
        assert_eq!(
            value,
            serde::Serialize::to_value(&config.with_parallel(ParallelPolicy::serial())),
            "serialised bytes must not depend on the policy"
        );
        let back = <SlsPipelineConfig as serde::Deserialize>::from_value(&value).unwrap();
        assert_eq!(back.n_hidden, config.n_hidden);
        assert_eq!(back.train, config.train);
        assert_eq!(back.parallel, ParallelPolicy::global());
    }

    #[test]
    fn parallel_pipeline_reproduces_serial_pipeline_bitwise() {
        // End-to-end reproducibility: the full pipeline (supervision
        // construction, sls training, feature extraction) must give the same
        // bits regardless of the thread count.
        let ds = dataset();
        let serial = SlsGrbmPipeline::new(
            SlsPipelineConfig::quick_demo().with_parallel(ParallelPolicy::serial()),
        )
        .run(ds.features(), &mut rng())
        .unwrap();
        let parallel = SlsGrbmPipeline::new(
            SlsPipelineConfig::quick_demo()
                .with_parallel(ParallelPolicy::new(4).with_min_rows_per_thread(1)),
        )
        .run(ds.features(), &mut rng())
        .unwrap();
        assert_eq!(
            serial.hidden_features.as_slice(),
            parallel.hidden_features.as_slice()
        );
        assert_eq!(serial.model_params, parallel.model_params);
    }

    #[test]
    fn paper_configs_use_paper_hyperparameters() {
        let g = SlsPipelineConfig::paper_grbm(3);
        assert_eq!(g.train.learning_rate, 1e-4);
        assert_eq!(g.sls.eta, 0.4);
        assert_eq!(g.preprocessing, Preprocessing::Standardize);
        let r = SlsPipelineConfig::paper_rbm(2);
        assert_eq!(r.train.learning_rate, 1e-5);
        assert_eq!(r.sls.eta, 0.5);
        assert_eq!(r.preprocessing, Preprocessing::BinarizeMedian);
    }

    #[test]
    fn sls_grbm_pipeline_produces_features_and_supervision() {
        let ds = dataset();
        let outcome = SlsGrbmPipeline::new(SlsPipelineConfig::quick_demo())
            .run(ds.features(), &mut rng())
            .unwrap();
        assert_eq!(outcome.hidden_features.rows(), 60);
        assert_eq!(outcome.hidden_features.cols(), 12);
        assert!(outcome.supervision.is_some());
        assert!(outcome.supervision.unwrap().coverage > 0.0);
        assert!(outcome.hidden_features.is_finite());
        assert_eq!(outcome.model_params.n_hidden(), 12);
        assert_eq!(outcome.model_params.n_visible(), 6);
        assert!(outcome.model_params.is_finite());
        assert_eq!(outcome.preprocessor.kind(), Preprocessing::Standardize);
    }

    #[test]
    fn sls_rbm_pipeline_binarizes_and_runs() {
        let ds = dataset();
        let config =
            SlsPipelineConfig::quick_demo().with_preprocessing(Preprocessing::BinarizeMedian);
        let outcome = SlsRbmPipeline::new(config)
            .run(ds.features(), &mut rng())
            .unwrap();
        // Preprocessed data must be binary.
        assert!(outcome
            .preprocessed
            .as_slice()
            .iter()
            .all(|&x| x == 0.0 || x == 1.0));
        assert_eq!(outcome.hidden_features.rows(), 60);
        // The fitted preprocessor reproduces exactly what the pipeline fed
        // the model — the invariant serving relies on.
        assert_eq!(outcome.preprocessor.kind(), Preprocessing::BinarizeMedian);
        assert_eq!(
            outcome.preprocessor.transform(ds.features()).unwrap(),
            outcome.preprocessed
        );
    }

    #[test]
    fn baseline_pipelines_have_no_supervision() {
        let ds = dataset();
        let outcome = GrbmPipeline::new(SlsPipelineConfig::quick_demo())
            .run(ds.features(), &mut rng())
            .unwrap();
        assert!(outcome.supervision.is_none());
        let config =
            SlsPipelineConfig::quick_demo().with_preprocessing(Preprocessing::BinarizeMedian);
        let outcome = RbmPipeline::new(config)
            .run(ds.features(), &mut rng())
            .unwrap();
        assert!(outcome.supervision.is_none());
        assert_eq!(outcome.hidden_features.rows(), 60);
    }

    #[test]
    fn pipeline_with_invalid_train_config_errors() {
        let ds = dataset();
        let config =
            SlsPipelineConfig::quick_demo().with_train(TrainConfig::quick().with_epochs(0));
        assert!(SlsGrbmPipeline::new(config)
            .run(ds.features(), &mut rng())
            .is_err());
        assert!(GrbmPipeline::new(config)
            .run(ds.features(), &mut rng())
            .is_err());
    }

    #[test]
    fn config_accessors_round_trip() {
        let config = SlsPipelineConfig::quick_demo();
        assert_eq!(SlsGrbmPipeline::new(config).config(), &config);
        assert_eq!(SlsRbmPipeline::new(config).config(), &config);
        assert_eq!(GrbmPipeline::new(config).config(), &config);
        assert_eq!(RbmPipeline::new(config).config(), &config);
    }
}
