//! Shared parameter container and the [`BoltzmannMachine`] trait.

use crate::{RbmError, Result};
use rand::Rng;
use serde::{Deserialize, Serialize};
use sls_linalg::{Matrix, MatrixRandomExt, ParallelPolicy};

/// Kind of visible layer a model exposes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum VisibleKind {
    /// Binary (Bernoulli) visible units reconstructed through a sigmoid.
    Binary,
    /// Gaussian linear visible units with unit variance, reconstructed
    /// linearly (Section III-B of the paper).
    Gaussian,
}

/// Parameters shared by every model in the RBM family: a weight matrix
/// (`n_visible x n_hidden`), visible biases `a` and hidden biases `b`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RbmParams {
    /// Symmetric connection weights `w_ij`, one row per visible unit.
    pub weights: Matrix,
    /// Visible-layer biases `a_i`.
    pub visible_bias: Vec<f64>,
    /// Hidden-layer biases `b_j`.
    pub hidden_bias: Vec<f64>,
}

impl RbmParams {
    /// Initialises parameters with small zero-mean Gaussian weights
    /// (`std = 0.01`, Hinton's practical recommendation) and zero biases.
    pub fn init(n_visible: usize, n_hidden: usize, rng: &mut impl Rng) -> Self {
        Self {
            weights: Matrix::random_normal(n_visible, n_hidden, 0.0, 0.01, rng),
            visible_bias: vec![0.0; n_visible],
            hidden_bias: vec![0.0; n_hidden],
        }
    }

    /// Number of visible units.
    pub fn n_visible(&self) -> usize {
        self.weights.rows()
    }

    /// Number of hidden units.
    pub fn n_hidden(&self) -> usize {
        self.weights.cols()
    }

    /// Checks that the parameter shapes agree with each other: the bias
    /// vectors must match the weight matrix's dimensions.
    ///
    /// Persisted parameters deserialise field by field with no cross-field
    /// validation, so artifact loading calls this to reject a malformed
    /// file once at load time — the fused activation passes assert these
    /// lengths per call, and a panic there would cost a serving worker
    /// thread per request instead of one clean load error.
    ///
    /// # Errors
    ///
    /// Returns [`RbmError::InvalidConfig`] if either bias length disagrees
    /// with the weight matrix.
    pub fn check_consistent(&self) -> Result<()> {
        if self.visible_bias.len() != self.n_visible() || self.hidden_bias.len() != self.n_hidden()
        {
            return Err(RbmError::InvalidConfig {
                name: "params",
                message: format!(
                    "bias lengths ({} visible, {} hidden) do not match the {}x{} weight matrix",
                    self.visible_bias.len(),
                    self.hidden_bias.len(),
                    self.n_visible(),
                    self.n_hidden()
                ),
            });
        }
        Ok(())
    }

    /// `true` if every parameter is finite.
    pub fn is_finite(&self) -> bool {
        self.weights.is_finite()
            && self.visible_bias.iter().all(|x| x.is_finite())
            && self.hidden_bias.iter().all(|x| x.is_finite())
    }

    /// Checks that a data matrix is compatible with the visible layer.
    ///
    /// # Errors
    ///
    /// Returns [`RbmError::VisibleSizeMismatch`] or [`RbmError::EmptyData`].
    pub fn check_data(&self, data: &Matrix) -> Result<()> {
        if data.rows() == 0 {
            return Err(RbmError::EmptyData);
        }
        if data.cols() != self.n_visible() {
            return Err(RbmError::VisibleSizeMismatch {
                data: data.cols(),
                model: self.n_visible(),
            });
        }
        Ok(())
    }
}

/// Behaviour common to the binary RBM and the Gaussian-visible GRBM.
///
/// The hidden layer is binary in both models, so `p(h_j = 1 | v)` is always a
/// sigmoid (Eq. 2); models differ only in how the visible layer is
/// reconstructed from hidden activity (Eq. 3 vs. Eq. 5).
pub trait BoltzmannMachine {
    /// Immutable access to the parameters.
    fn params(&self) -> &RbmParams;

    /// Mutable access to the parameters.
    fn params_mut(&mut self) -> &mut RbmParams;

    /// Which kind of visible layer this model has.
    fn visible_kind(&self) -> VisibleKind;

    /// Hidden unit activation probabilities `p(h_j = 1 | v)` for each row of
    /// `visible` — the hidden features used for clustering. Runs under the
    /// process-wide [`ParallelPolicy::global`].
    ///
    /// # Errors
    ///
    /// Returns an error if `visible` has the wrong width or no rows.
    fn hidden_probabilities(&self, visible: &Matrix) -> Result<Matrix> {
        self.hidden_probabilities_with(visible, &ParallelPolicy::global())
    }

    /// [`BoltzmannMachine::hidden_probabilities`] under an explicit
    /// [`ParallelPolicy`] — the form the trainers and pipelines use so a
    /// configured policy reaches the `V · W` product and the sigmoid map.
    ///
    /// # Errors
    ///
    /// Returns an error if `visible` has the wrong width or no rows.
    fn hidden_probabilities_with(
        &self,
        visible: &Matrix,
        parallel: &ParallelPolicy,
    ) -> Result<Matrix> {
        let params = self.params();
        params.check_data(visible)?;
        let pre = visible.matmul_with(&params.weights, parallel)?;
        // Bias broadcast and sigmoid fused into one row-wise pass: same
        // per-element arithmetic as broadcast-then-map, one less allocation.
        // The pass runs through the simd layer under the policy's knob;
        // results are bitwise identical either way.
        let n_hidden = params.n_hidden();
        let bias = &params.hidden_bias;
        let simd = parallel.simd;
        Ok(pre.map_rows_with(n_hidden, parallel, |_, row, out| {
            sls_linalg::simd::fused_bias_sigmoid(row, bias, out, simd);
        }))
    }

    /// Samples a binary hidden state from the probabilities.
    ///
    /// # Errors
    ///
    /// Propagates errors from [`BoltzmannMachine::hidden_probabilities`].
    fn sample_hidden(&self, visible: &Matrix, rng: &mut impl Rng) -> Result<Matrix>
    where
        Self: Sized,
    {
        let probs = self.hidden_probabilities(visible)?;
        Ok(Matrix::sample_bernoulli(&probs, rng))
    }

    /// Reconstructs the visible layer from hidden activities.
    ///
    /// For binary models this is `σ(a + h Wᵀ)`; for Gaussian models it is the
    /// linear mean `a + h Wᵀ` (unit-variance, noise-free reconstruction).
    /// Runs under the process-wide [`ParallelPolicy::global`].
    ///
    /// # Errors
    ///
    /// Returns an error if `hidden` has the wrong width.
    fn reconstruct_visible(&self, hidden: &Matrix) -> Result<Matrix> {
        self.reconstruct_visible_with(hidden, &ParallelPolicy::global())
    }

    /// [`BoltzmannMachine::reconstruct_visible`] under an explicit
    /// [`ParallelPolicy`]. This is the one method models implement; the
    /// policy-less form delegates here.
    ///
    /// # Errors
    ///
    /// Returns an error if `hidden` has the wrong width.
    fn reconstruct_visible_with(
        &self,
        hidden: &Matrix,
        parallel: &ParallelPolicy,
    ) -> Result<Matrix>;

    /// One full Gibbs round trip `v -> h -> v̂` returning the reconstruction,
    /// using hidden *samples* for the downward pass (CD-1 convention).
    ///
    /// # Errors
    ///
    /// Propagates shape errors from the individual passes.
    fn reconstruct(&self, visible: &Matrix, rng: &mut impl Rng) -> Result<Matrix>
    where
        Self: Sized,
    {
        let hidden = self.sample_hidden(visible, rng)?;
        self.reconstruct_visible(&hidden)
    }

    /// Mean squared reconstruction error of one deterministic round trip
    /// (hidden probabilities instead of samples), a convenient progress
    /// metric for training.
    ///
    /// # Errors
    ///
    /// Propagates shape errors.
    fn reconstruction_error(&self, visible: &Matrix) -> Result<f64> {
        self.reconstruction_error_with(visible, &ParallelPolicy::global())
    }

    /// [`BoltzmannMachine::reconstruction_error`] under an explicit
    /// [`ParallelPolicy`].
    ///
    /// # Errors
    ///
    /// Propagates shape errors.
    fn reconstruction_error_with(
        &self,
        visible: &Matrix,
        parallel: &ParallelPolicy,
    ) -> Result<f64> {
        let hidden = self.hidden_probabilities_with(visible, parallel)?;
        let recon = self.reconstruct_visible_with(&hidden, parallel)?;
        if visible.shape() != recon.shape() {
            return Err(RbmError::VisibleSizeMismatch {
                data: visible.cols(),
                model: recon.cols(),
            });
        }
        // Row-wise squared-error reduction: per-row sums run in parallel
        // (each row is one unit, so the result is identical for every
        // thread count), then combine serially in row order.
        let per_row = visible.reduce_rows_with(parallel, |i, row| {
            row.iter()
                .zip(recon.row(i))
                .map(|(&v, &r)| {
                    let d = v - r;
                    d * d
                })
                .sum()
        });
        Ok(per_row.iter().sum::<f64>() / visible.len() as f64)
    }
}

/// Numerically stable logistic sigmoid — the single shared definition lives
/// in the linalg simd layer so the fused activation passes and the scalar
/// call sites (e.g. the sls gradient terms) can never drift apart.
#[inline]
pub(crate) fn sigmoid(x: f64) -> f64 {
    sls_linalg::simd::sigmoid(x)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng() -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(17)
    }

    #[test]
    fn init_shapes_and_scale() {
        let p = RbmParams::init(20, 8, &mut rng());
        assert_eq!(p.n_visible(), 20);
        assert_eq!(p.n_hidden(), 8);
        assert_eq!(p.visible_bias.len(), 20);
        assert_eq!(p.hidden_bias.len(), 8);
        assert!(p.is_finite());
        // Weights are small.
        assert!(p.weights.max().unwrap().abs() < 0.1);
    }

    #[test]
    fn check_data_validates() {
        let p = RbmParams::init(4, 2, &mut rng());
        assert!(p.check_data(&Matrix::zeros(3, 4)).is_ok());
        assert!(matches!(
            p.check_data(&Matrix::zeros(3, 5)),
            Err(RbmError::VisibleSizeMismatch { data: 5, model: 4 })
        ));
        assert!(matches!(
            p.check_data(&Matrix::zeros(0, 4)),
            Err(RbmError::EmptyData)
        ));
    }

    #[test]
    fn check_consistent_rejects_mismatched_bias_lengths() {
        let good = RbmParams::init(4, 2, &mut rng());
        assert!(good.check_consistent().is_ok());
        let mut short_hidden = good.clone();
        short_hidden.hidden_bias.pop();
        assert!(matches!(
            short_hidden.check_consistent(),
            Err(RbmError::InvalidConfig { name: "params", .. })
        ));
        let mut long_visible = good.clone();
        long_visible.visible_bias.push(0.0);
        assert!(matches!(
            long_visible.check_consistent(),
            Err(RbmError::InvalidConfig { name: "params", .. })
        ));
    }

    #[test]
    fn is_finite_detects_nan() {
        let mut p = RbmParams::init(3, 3, &mut rng());
        assert!(p.is_finite());
        p.hidden_bias[1] = f64::NAN;
        assert!(!p.is_finite());
    }

    #[test]
    fn sigmoid_properties() {
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-12);
        assert!(sigmoid(40.0) > 0.999_999);
        assert!(sigmoid(-40.0) < 1e-6);
        assert!(sigmoid(-800.0) >= 0.0);
        assert!(sigmoid(800.0) <= 1.0);
        // Symmetry: σ(-x) = 1 - σ(x).
        for x in [-3.0, -0.5, 0.7, 2.2] {
            assert!((sigmoid(-x) - (1.0 - sigmoid(x))).abs() < 1e-12);
        }
    }

    #[test]
    fn serde_round_trip() {
        let p = RbmParams::init(5, 3, &mut rng());
        let json = serde_json::to_string(&p).unwrap();
        let back: RbmParams = serde_json::from_str(&json).unwrap();
        assert_eq!(back, p);
    }
}
