//! Gaussian-visible restricted Boltzmann machine (the paper's `GRBM`
//! baseline, Section III-B).

use crate::model::{BoltzmannMachine, RbmParams, VisibleKind};
use crate::Result;
use rand::Rng;
use serde::{Deserialize, Serialize};
use sls_linalg::{Matrix, ParallelPolicy};

/// RBM with Gaussian linear visible units (unit variance) and binary hidden
/// units, for real-valued data. The reconstruction of the visible layer is
/// the linear mean `a + h Wᵀ` — "the reconstructed values of Gaussian linear
/// visible units are equal to their top-down input from the binary hidden
/// units plus their bias" (Section III-B).
///
/// Inputs are expected to be standardised column-wise to zero mean and unit
/// variance (see `sls_datasets::standardize_columns`), matching the
/// unit-variance assumption behind the simplified update rules.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Grbm {
    params: RbmParams,
}

impl Grbm {
    /// Creates a GRBM with `n_visible x n_hidden` randomly initialised
    /// weights.
    pub fn new(n_visible: usize, n_hidden: usize, rng: &mut impl Rng) -> Self {
        Self {
            params: RbmParams::init(n_visible, n_hidden, rng),
        }
    }

    /// Wraps existing parameters (used when loading a persisted model).
    pub fn from_params(params: RbmParams) -> Self {
        Self { params }
    }
}

impl BoltzmannMachine for Grbm {
    fn params(&self) -> &RbmParams {
        &self.params
    }

    fn params_mut(&mut self) -> &mut RbmParams {
        &mut self.params
    }

    fn visible_kind(&self) -> VisibleKind {
        VisibleKind::Gaussian
    }

    fn reconstruct_visible_with(
        &self,
        hidden: &Matrix,
        parallel: &ParallelPolicy,
    ) -> Result<Matrix> {
        let pre = hidden.matmul_transpose_right_with(&self.params.weights, parallel)?;
        // Linear mean `a + h Wᵀ`: bias broadcast as one row-wise pass
        // through the simd layer (bitwise identical for either knob).
        let bias = &self.params.visible_bias;
        let simd = parallel.simd;
        Ok(pre.map_rows_with(bias.len(), parallel, |_, row, out| {
            sls_linalg::simd::fused_bias_add(row, bias, out, simd);
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use sls_linalg::MatrixRandomExt;

    fn rng() -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(8)
    }

    #[test]
    fn hidden_probabilities_are_probabilities() {
        let mut r = rng();
        let grbm = Grbm::new(12, 5, &mut r);
        let data = Matrix::random_normal(15, 12, 0.0, 1.0, &mut r);
        let h = grbm.hidden_probabilities(&data).unwrap();
        assert_eq!(h.shape(), (15, 5));
        assert!(h.as_slice().iter().all(|&p| (0.0..=1.0).contains(&p)));
    }

    #[test]
    fn reconstruction_is_linear_and_unbounded() {
        let mut r = rng();
        let mut grbm = Grbm::new(3, 2, &mut r);
        // With large weights the linear reconstruction exceeds [0, 1], which
        // a sigmoid reconstruction could never do.
        grbm.params_mut().weights = Matrix::filled(3, 2, 3.0);
        grbm.params_mut().visible_bias = vec![1.0, 1.0, 1.0];
        let hidden = Matrix::from_rows(&[vec![1.0, 1.0]]).unwrap();
        let recon = grbm.reconstruct_visible(&hidden).unwrap();
        assert_eq!(recon.row(0), &[7.0, 7.0, 7.0]);
    }

    #[test]
    fn zero_hidden_reconstructs_to_bias() {
        let mut r = rng();
        let mut grbm = Grbm::new(4, 3, &mut r);
        grbm.params_mut().visible_bias = vec![0.5, -0.5, 1.5, 0.0];
        let hidden = Matrix::zeros(2, 3);
        let recon = grbm.reconstruct_visible(&hidden).unwrap();
        assert_eq!(recon.row(0), &[0.5, -0.5, 1.5, 0.0]);
        assert_eq!(recon.row(1), &[0.5, -0.5, 1.5, 0.0]);
    }

    #[test]
    fn visible_bias_matching_the_data_mean_lowers_reconstruction_error() {
        // With zero weights the reconstruction is exactly the visible bias,
        // so a bias equal to the (constant) data reconstructs perfectly while
        // a zero bias pays the full squared mean.
        let mut r = rng();
        let data = Matrix::filled(20, 4, 2.0);
        let mut matched = Grbm::new(4, 3, &mut r);
        matched.params_mut().weights = Matrix::zeros(4, 3);
        matched.params_mut().visible_bias = vec![2.0; 4];
        let mut unmatched = Grbm::new(4, 3, &mut r);
        unmatched.params_mut().weights = Matrix::zeros(4, 3);
        let err_matched = matched.reconstruction_error(&data).unwrap();
        let err_unmatched = unmatched.reconstruction_error(&data).unwrap();
        assert!(err_matched < 1e-12);
        assert!((err_unmatched - 4.0).abs() < 1e-12);
    }

    #[test]
    fn shape_mismatch_is_reported() {
        let grbm = Grbm::new(6, 2, &mut rng());
        assert!(grbm.hidden_probabilities(&Matrix::zeros(3, 5)).is_err());
    }

    #[test]
    fn visible_kind_is_gaussian() {
        assert_eq!(
            Grbm::new(2, 2, &mut rng()).visible_kind(),
            VisibleKind::Gaussian
        );
    }

    #[test]
    fn serde_round_trip() {
        let grbm = Grbm::new(5, 3, &mut rng());
        let json = serde_json::to_string(&grbm).unwrap();
        let back: Grbm = serde_json::from_str(&json).unwrap();
        assert_eq!(back, grbm);
    }
}
