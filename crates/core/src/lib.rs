//! # sls-rbm-core
//!
//! The paper's primary contribution: restricted Boltzmann machines whose
//! contrastive-divergence (CD) learning is steered by **self-learning local
//! supervision** obtained from multi-clustering integration, so that hidden
//! features of the same local cluster *constrict* together while the centres
//! of different local clusters *disperse*.
//!
//! ## Models
//!
//! | Type | Visible units | Reconstruction | Paper name |
//! |------|---------------|----------------|------------|
//! | [`Rbm`] | binary | sigmoid | RBM (baseline) |
//! | [`Grbm`] | Gaussian (unit variance) | linear | GRBM (baseline) |
//! | [`SlsRbm`] | binary | sigmoid | slsRBM |
//! | [`SlsGrbm`] | Gaussian | linear | slsGRBM |
//!
//! The sls models wrap the corresponding baseline and add the
//! constrict/disperse gradient of Eqs. 14–35 (see [`sls`]).
//!
//! ## Pipelines
//!
//! The paper's experiments always follow the same four stages: preprocess →
//! self-learning supervision (for sls models) → train the energy model →
//! cluster the hidden features. [`SlsGrbmPipeline`], [`SlsRbmPipeline`],
//! [`GrbmPipeline`] and [`RbmPipeline`] package those stages behind one
//! `run` call so the experiment harness and downstream users do not have to
//! re-assemble them.
//!
//! ## Serving artifacts
//!
//! [`PipelineArtifact`] packages a trained pipeline as schema-versioned JSON
//! — model kind, parameters, *fitted* preprocessing statistics and the
//! fitted cluster head — so the `sls-serve` crate can reload it and answer
//! hidden-feature and cluster-assignment requests without retraining.
//! [`CompactArtifact`] is the memory-lean serving twin: f32-quantized
//! weights with error-bounded f64 arithmetic, for nodes that hold many
//! models.
//!
//! ## Quickstart
//!
//! ```
//! use rand::SeedableRng;
//! use rand_chacha::ChaCha8Rng;
//! use sls_datasets::SyntheticBlobs;
//! use sls_rbm_core::{SlsGrbmPipeline, SlsPipelineConfig};
//!
//! let mut rng = ChaCha8Rng::seed_from_u64(3);
//! let dataset = SyntheticBlobs::new(60, 6, 3).separation(5.0).generate(&mut rng);
//! let outcome = SlsGrbmPipeline::new(SlsPipelineConfig::quick_demo())
//!     .run(dataset.features(), &mut rng)
//!     .expect("pipeline runs");
//! assert_eq!(outcome.hidden_features.rows(), 60);
//! assert!(outcome.supervision.is_some());
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod artifact;
mod cd;
mod compact;
mod config;
mod error;
mod grbm;
mod model;
mod model_io;
mod pipeline;
mod rbm;
pub mod sls;
mod stream;

pub use artifact::{
    ClusterHead, FittedPipeline, FittedPreprocessor, ModelKind, PipelineArtifact,
    ARTIFACT_SCHEMA_VERSION,
};
pub use cd::{CdTrainer, EpochStats, TrainingHistory};
pub use compact::{CompactArtifact, CompactParams};
pub use config::TrainConfig;
pub use error::RbmError;
pub use grbm::Grbm;
pub use model::{BoltzmannMachine, RbmParams, VisibleKind};
pub use model_io::{load_params_json, save_params_json};
pub use pipeline::{
    base_clusterers, GrbmPipeline, PipelineOutcome, Preprocessing, RbmPipeline, SlsGrbmPipeline,
    SlsPipelineConfig, SlsRbmPipeline,
};
pub use rbm::Rbm;
pub use sls::{SlsConfig, SlsGrbm, SlsRbm, SlsTrainer};
pub use stream::{StreamLimit, StreamTrainer, TrainCheckpoint, CHECKPOINT_SCHEMA_VERSION};

/// Result alias used across the crate.
pub type Result<T> = std::result::Result<T, RbmError>;

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use sls_datasets::SyntheticBlobs;

    /// Cross-module smoke test: the full slsGRBM pipeline must improve (or at
    /// least not destroy) k-means clustering of well-separated data.
    #[test]
    fn sls_grbm_pipeline_preserves_separable_structure() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let ds = SyntheticBlobs::new(75, 8, 3)
            .separation(6.0)
            .generate(&mut rng);
        let outcome = SlsGrbmPipeline::new(SlsPipelineConfig::quick_demo())
            .run(ds.features(), &mut rng)
            .unwrap();
        assert_eq!(outcome.hidden_features.rows(), 75);
        let assignment = sls_clustering::KMeans::new(3)
            .fit(&outcome.hidden_features, &mut rng)
            .unwrap()
            .assignment;
        let acc = sls_metrics::clustering_accuracy(assignment.labels(), ds.labels()).unwrap();
        assert!(acc > 0.7, "accuracy {acc} on hidden features");
    }
}
