//! Contrastive-divergence (CD-k) training for the plain RBM / GRBM baselines.
//!
//! The update rules are Eqs. 10–12 of the paper, with the standard practical
//! additions of mini-batches, momentum and L2 weight decay (Hinton's
//! "Practical Guide to Training RBMs"). The positive statistics use hidden
//! *probabilities*; the Gibbs chain uses hidden *samples* for the downward
//! pass and probabilities for the final upward pass, which is the customary
//! low-variance CD-1 estimator.

use crate::model::BoltzmannMachine;
use crate::{RbmError, Result, TrainConfig};
use rand::Rng;
use serde::{Deserialize, Serialize};
use sls_linalg::{Matrix, MatrixRandomExt, ParallelPolicy, WorkerPool};

/// Per-epoch training statistics.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EpochStats {
    /// Epoch index (0-based).
    pub epoch: usize,
    /// Mean squared reconstruction error over the full dataset at the end of
    /// the epoch.
    pub reconstruction_error: f64,
}

/// History of a training run.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct TrainingHistory {
    /// One entry per epoch, in order.
    pub epochs: Vec<EpochStats>,
}

impl TrainingHistory {
    /// Reconstruction error after the final epoch, if any epoch ran.
    pub fn final_error(&self) -> Option<f64> {
        self.epochs.last().map(|e| e.reconstruction_error)
    }

    /// Reconstruction error after the first epoch, if any epoch ran.
    pub fn initial_error(&self) -> Option<f64> {
        self.epochs.first().map(|e| e.reconstruction_error)
    }

    /// `true` if the final error is no worse than the initial error.
    pub fn improved(&self) -> bool {
        match (self.initial_error(), self.final_error()) {
            (Some(first), Some(last)) => last <= first,
            _ => false,
        }
    }
}

/// The CD gradient of one mini-batch, plus the intermediate quantities the
/// sls trainer reuses (hidden probabilities and the reconstruction).
#[derive(Debug, Clone)]
pub(crate) struct CdBatchGradients {
    /// Gradient on the weights (`n_visible x n_hidden`), already averaged
    /// over the batch: `<v h>_data - <v h>_recon`.
    pub dw: Matrix,
    /// Gradient on the visible biases.
    pub da: Vec<f64>,
    /// Gradient on the hidden biases.
    pub db: Vec<f64>,
    /// Hidden probabilities driven by the data (`H_data`).
    pub hidden_data: Matrix,
    /// Reconstructed visible batch (`V_recon`).
    pub visible_recon: Matrix,
    /// Hidden probabilities driven by the reconstruction (`H_recon`).
    pub hidden_recon: Matrix,
}

/// Computes the CD-k gradients for one mini-batch without touching the model
/// parameters. All matrix products (the Gibbs chain's `V·W` / `H·Wᵀ` passes
/// and the `Vᵀ·H` statistics) run under `parallel`; the Bernoulli sampling
/// stays strictly serial so the RNG stream — and therefore every reproduced
/// table — is independent of the thread count.
pub(crate) fn cd_batch_gradients<M: BoltzmannMachine>(
    model: &M,
    batch: &Matrix,
    cd_steps: usize,
    parallel: &ParallelPolicy,
    rng: &mut impl Rng,
) -> Result<CdBatchGradients> {
    let n = batch.rows() as f64;
    let hidden_data = model.hidden_probabilities_with(batch, parallel)?;

    // Gibbs chain: sample the hidden layer, reconstruct, repeat.
    let mut visible_recon = batch.clone();
    let mut hidden_probs = hidden_data.clone();
    for _ in 0..cd_steps.max(1) {
        let hidden_sample = Matrix::sample_bernoulli(&hidden_probs, rng);
        visible_recon = model.reconstruct_visible_with(&hidden_sample, parallel)?;
        hidden_probs = model.hidden_probabilities_with(&visible_recon, parallel)?;
    }
    let hidden_recon = hidden_probs;

    // <v h>_data - <v h>_recon, averaged over the batch.
    let positive = batch.matmul_transpose_left_with(&hidden_data, parallel)?;
    let negative = visible_recon.matmul_transpose_left_with(&hidden_recon, parallel)?;
    let dw = positive.sub(&negative)?.scale(1.0 / n);

    let da: Vec<f64> = batch
        .column_means()
        .iter()
        .zip(visible_recon.column_means())
        .map(|(&d, r)| d - r)
        .collect();
    let db: Vec<f64> = hidden_data
        .column_means()
        .iter()
        .zip(hidden_recon.column_means())
        .map(|(&d, r)| d - r)
        .collect();

    Ok(CdBatchGradients {
        dw,
        da,
        db,
        hidden_data,
        visible_recon,
        hidden_recon,
    })
}

/// Momentum buffers for the three parameter groups.
#[derive(Debug, Clone)]
pub(crate) struct Velocity {
    pub w: Matrix,
    pub a: Vec<f64>,
    pub b: Vec<f64>,
}

impl Velocity {
    pub(crate) fn zeros(n_visible: usize, n_hidden: usize) -> Self {
        Self {
            w: Matrix::zeros(n_visible, n_hidden),
            a: vec![0.0; n_visible],
            b: vec![0.0; n_hidden],
        }
    }
}

/// Applies one momentum-smoothed update with the given gradients (already
/// scaled by the learning rate by the caller).
pub(crate) fn apply_update<M: BoltzmannMachine>(
    model: &mut M,
    velocity: &mut Velocity,
    momentum: f64,
    step_w: &Matrix,
    step_a: &[f64],
    step_b: &[f64],
) -> Result<()> {
    velocity.w = velocity.w.scale(momentum).add(step_w)?;
    for (v, s) in velocity.a.iter_mut().zip(step_a) {
        *v = momentum * *v + s;
    }
    for (v, s) in velocity.b.iter_mut().zip(step_b) {
        *v = momentum * *v + s;
    }
    let params = model.params_mut();
    params.weights = params.weights.add(&velocity.w)?;
    for (p, v) in params.visible_bias.iter_mut().zip(&velocity.a) {
        *p += v;
    }
    for (p, v) in params.hidden_bias.iter_mut().zip(&velocity.b) {
        *p += v;
    }
    Ok(())
}

/// Shuffles (or not) the row order for one epoch.
pub(crate) fn epoch_order(n: usize, shuffle: bool, rng: &mut impl Rng) -> Vec<usize> {
    let mut order: Vec<usize> = (0..n).collect();
    if shuffle {
        for i in (1..n).rev() {
            let j = rng.gen_range(0..=i);
            order.swap(i, j);
        }
    }
    order
}

/// Plain contrastive-divergence trainer for [`crate::Rbm`] and
/// [`crate::Grbm`].
#[derive(Debug, Clone)]
pub struct CdTrainer {
    config: TrainConfig,
    parallel: ParallelPolicy,
}

impl CdTrainer {
    /// Creates a trainer after validating the configuration. The trainer
    /// starts with the process-wide [`ParallelPolicy::global`]; override it
    /// with [`CdTrainer::with_parallel`].
    ///
    /// # Errors
    ///
    /// Returns [`RbmError::InvalidConfig`] if the configuration is invalid.
    pub fn new(config: TrainConfig) -> Result<Self> {
        config.validate()?;
        Ok(Self::with_parallel_policy(config, ParallelPolicy::global()))
    }

    /// Sets the parallel execution policy for the training hot path. Results
    /// are bitwise identical for every policy.
    pub fn with_parallel(self, parallel: ParallelPolicy) -> Self {
        Self::with_parallel_policy(self.config, parallel)
    }

    fn with_parallel_policy(config: TrainConfig, parallel: ParallelPolicy) -> Self {
        if parallel.pool {
            // Warm the persistent pool once at trainer construction: every
            // mini-batch of every epoch then reuses the same workers instead
            // of paying per-call thread spawns (or a first-batch pool start).
            let _ = WorkerPool::global();
        }
        Self { config, parallel }
    }

    /// The active configuration.
    pub fn config(&self) -> &TrainConfig {
        &self.config
    }

    /// The active parallel execution policy.
    pub fn parallel(&self) -> &ParallelPolicy {
        &self.parallel
    }

    /// Trains `model` on `data` and returns the per-epoch history.
    ///
    /// # Errors
    ///
    /// * [`RbmError::EmptyData`] / [`RbmError::VisibleSizeMismatch`] for bad
    ///   input shapes.
    /// * [`RbmError::Diverged`] if parameters become non-finite.
    pub fn train<M: BoltzmannMachine>(
        &self,
        model: &mut M,
        data: &Matrix,
        rng: &mut impl Rng,
    ) -> Result<TrainingHistory> {
        model.params().check_data(data)?;
        let (n_visible, n_hidden) = (model.params().n_visible(), model.params().n_hidden());
        let mut velocity = Velocity::zeros(n_visible, n_hidden);
        let mut history = TrainingHistory::default();
        let lr = self.config.learning_rate;

        for epoch in 0..self.config.epochs {
            let order = epoch_order(data.rows(), self.config.shuffle, rng);
            for chunk in order.chunks(self.config.batch_size) {
                let batch = data.select_rows(chunk)?;
                let grads =
                    cd_batch_gradients(model, &batch, self.config.cd_steps, &self.parallel, rng)?;
                // ε(<vh>_data - <vh>_recon) - ε·λ·w  (weight decay)
                let decay = model.params().weights.scale(-self.config.weight_decay);
                let step_w = grads.dw.add(&decay)?.scale(lr);
                let step_a: Vec<f64> = grads.da.iter().map(|g| lr * g).collect();
                let step_b: Vec<f64> = grads.db.iter().map(|g| lr * g).collect();
                apply_update(
                    model,
                    &mut velocity,
                    self.config.momentum,
                    &step_w,
                    &step_a,
                    &step_b,
                )?;
            }
            if !model.params().is_finite() {
                return Err(RbmError::Diverged { epoch });
            }
            history.epochs.push(EpochStats {
                epoch,
                reconstruction_error: model.reconstruction_error_with(data, &self.parallel)?,
            });
        }
        Ok(history)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Grbm, Rbm};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use sls_linalg::MatrixRandomExt;

    fn rng() -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(100)
    }

    /// Binary toy data with two clear prototypes.
    fn binary_prototype_data(rng: &mut impl Rng) -> Matrix {
        let proto_a = [1.0, 1.0, 1.0, 0.0, 0.0, 0.0];
        let proto_b = [0.0, 0.0, 0.0, 1.0, 1.0, 1.0];
        let mut rows = Vec::new();
        for i in 0..60 {
            let proto = if i % 2 == 0 { proto_a } else { proto_b };
            let row: Vec<f64> = proto
                .iter()
                .map(|&p| if rng.gen::<f64>() < 0.05 { 1.0 - p } else { p })
                .collect();
            rows.push(row);
        }
        Matrix::from_rows(&rows).unwrap()
    }

    #[test]
    fn trainer_rejects_invalid_config() {
        assert!(CdTrainer::new(TrainConfig::default().with_epochs(0)).is_err());
        assert!(CdTrainer::new(TrainConfig::default()).is_ok());
    }

    #[test]
    fn rbm_training_reduces_reconstruction_error() {
        let mut r = rng();
        let data = binary_prototype_data(&mut r);
        let mut rbm = Rbm::new(6, 4, &mut r);
        let before = rbm.reconstruction_error(&data).unwrap();
        let config = TrainConfig::quick().with_epochs(30).with_learning_rate(0.1);
        let history = CdTrainer::new(config)
            .unwrap()
            .train(&mut rbm, &data, &mut r)
            .unwrap();
        let after = rbm.reconstruction_error(&data).unwrap();
        assert!(
            after < before,
            "reconstruction error did not improve: {before} -> {after}"
        );
        assert_eq!(history.epochs.len(), 30);
        assert!(history.improved());
    }

    #[test]
    fn grbm_training_reduces_reconstruction_error() {
        let mut r = rng();
        // Two Gaussian prototypes in 5 dimensions (already standardised-ish).
        let mut rows = Vec::new();
        for i in 0..80 {
            let sign = if i % 2 == 0 { 1.0 } else { -1.0 };
            let row: Vec<f64> = (0..5)
                .map(|_| sign + 0.3 * (r.gen::<f64>() - 0.5))
                .collect();
            rows.push(row);
        }
        let data = Matrix::from_rows(&rows).unwrap();
        let mut grbm = Grbm::new(5, 3, &mut r);
        let before = grbm.reconstruction_error(&data).unwrap();
        let config = TrainConfig::quick()
            .with_epochs(40)
            .with_learning_rate(0.01);
        CdTrainer::new(config)
            .unwrap()
            .train(&mut grbm, &data, &mut r)
            .unwrap();
        let after = grbm.reconstruction_error(&data).unwrap();
        assert!(after < before, "{before} -> {after}");
    }

    #[test]
    fn history_records_every_epoch_in_order() {
        let mut r = rng();
        let data = Matrix::random_bernoulli(20, 4, 0.5, &mut r);
        let mut rbm = Rbm::new(4, 2, &mut r);
        let history = CdTrainer::new(TrainConfig::quick().with_epochs(7))
            .unwrap()
            .train(&mut rbm, &data, &mut r)
            .unwrap();
        assert_eq!(history.epochs.len(), 7);
        for (i, e) in history.epochs.iter().enumerate() {
            assert_eq!(e.epoch, i);
            assert!(e.reconstruction_error.is_finite());
        }
        assert!(history.final_error().is_some());
        assert!(history.initial_error().is_some());
    }

    #[test]
    fn training_rejects_mismatched_data() {
        let mut r = rng();
        let mut rbm = Rbm::new(4, 2, &mut r);
        let wrong = Matrix::zeros(5, 6);
        assert!(matches!(
            CdTrainer::new(TrainConfig::quick())
                .unwrap()
                .train(&mut rbm, &wrong, &mut r),
            Err(RbmError::VisibleSizeMismatch { .. })
        ));
        let empty = Matrix::zeros(0, 4);
        assert!(matches!(
            CdTrainer::new(TrainConfig::quick())
                .unwrap()
                .train(&mut rbm, &empty, &mut r),
            Err(RbmError::EmptyData)
        ));
    }

    #[test]
    fn excessive_learning_rate_is_reported_as_divergence() {
        let mut r = rng();
        let data = Matrix::random_normal(30, 4, 0.0, 1.0, &mut r).scale(1e3);
        let mut grbm = Grbm::new(4, 3, &mut r);
        let config = TrainConfig::quick()
            .with_learning_rate(1e12)
            .with_epochs(50);
        let result = CdTrainer::new(config)
            .unwrap()
            .train(&mut grbm, &data, &mut r);
        // Either it diverges (expected) or the reconstruction error is
        // finite; what must never happen is a silent NaN model.
        match result {
            Err(RbmError::Diverged { .. }) => {}
            Ok(_) => assert!(grbm.params().is_finite()),
            Err(e) => panic!("unexpected error: {e}"),
        }
    }

    #[test]
    fn cd_gradients_have_expected_shapes() {
        let mut r = rng();
        let rbm = Rbm::new(6, 4, &mut r);
        let batch = Matrix::random_bernoulli(10, 6, 0.5, &mut r);
        let grads = cd_batch_gradients(&rbm, &batch, 1, &ParallelPolicy::serial(), &mut r).unwrap();
        assert_eq!(grads.dw.shape(), (6, 4));
        assert_eq!(grads.da.len(), 6);
        assert_eq!(grads.db.len(), 4);
        assert_eq!(grads.hidden_data.shape(), (10, 4));
        assert_eq!(grads.visible_recon.shape(), (10, 6));
        assert_eq!(grads.hidden_recon.shape(), (10, 4));
    }

    #[test]
    fn cd_gradient_is_zero_when_reconstruction_is_perfect() {
        // With weights = 0 and visible bias matching the data statistics on a
        // constant dataset, the reconstruction equals the data and the CD
        // gradient on the weights vanishes in expectation. Use a fully
        // deterministic setup: all-ones data, huge positive visible bias.
        let mut r = rng();
        let mut rbm = Rbm::new(3, 2, &mut r);
        rbm.params_mut().weights = Matrix::zeros(3, 2);
        rbm.params_mut().visible_bias = vec![50.0, 50.0, 50.0];
        let data = Matrix::filled(8, 3, 1.0);
        let grads = cd_batch_gradients(&rbm, &data, 1, &ParallelPolicy::serial(), &mut r).unwrap();
        assert!(grads.dw.frobenius_norm() < 1e-9);
        assert!(grads.da.iter().all(|x| x.abs() < 1e-9));
        assert!(grads.db.iter().all(|x| x.abs() < 1e-9));
    }

    #[test]
    fn epoch_order_is_a_permutation() {
        let mut r = rng();
        let order = epoch_order(50, true, &mut r);
        let mut sorted = order.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        let unshuffled = epoch_order(5, false, &mut r);
        assert_eq!(unshuffled, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn parallel_training_is_bitwise_identical_to_serial() {
        // The reproducibility contract of the parallel layer: identical
        // seeds give identical parameters for every thread count, because
        // the kernels are bitwise deterministic and the RNG is only consumed
        // by strictly serial sampling.
        let data = binary_prototype_data(&mut rng());
        let config = TrainConfig::quick().with_epochs(5);
        let mut trained = Vec::new();
        for parallel in [
            ParallelPolicy::serial(),
            ParallelPolicy::new(4).with_min_rows_per_thread(1),
            ParallelPolicy::new(7).with_min_rows_per_thread(2),
            // Persistent-pool dispatch: same identity contract, reusing the
            // process-global workers across all epochs.
            ParallelPolicy::new(4)
                .with_min_rows_per_thread(1)
                .with_pool(true),
            ParallelPolicy::new(7)
                .with_min_rows_per_thread(2)
                .with_pool(true),
            // The SIMD axis: the scalar fallback computes the same
            // canonical reduction order as the unrolled default, so the
            // trained parameters must stay identical with SIMD forced off,
            // serial and fanned-out alike.
            ParallelPolicy::serial().with_simd(sls_linalg::SimdPolicy::Scalar),
            ParallelPolicy::new(4)
                .with_min_rows_per_thread(1)
                .with_pool(true)
                .with_simd(sls_linalg::SimdPolicy::Scalar),
        ] {
            let mut model = Rbm::new(6, 4, &mut rng());
            CdTrainer::new(config)
                .unwrap()
                .with_parallel(parallel)
                .train(&mut model, &data, &mut rng())
                .unwrap();
            trained.push(model);
        }
        let reference = trained[0].params();
        for model in &trained[1..] {
            assert_eq!(model.params(), reference);
            assert_eq!(
                model.params().weights.as_slice(),
                reference.weights.as_slice()
            );
        }
    }

    #[test]
    fn momentum_accumulates_velocity() {
        let mut r = rng();
        let mut rbm = Rbm::new(2, 2, &mut r);
        rbm.params_mut().weights = Matrix::zeros(2, 2);
        let mut velocity = Velocity::zeros(2, 2);
        let step = Matrix::filled(2, 2, 1.0);
        apply_update(
            &mut rbm,
            &mut velocity,
            0.5,
            &step,
            &[0.0, 0.0],
            &[0.0, 0.0],
        )
        .unwrap();
        apply_update(
            &mut rbm,
            &mut velocity,
            0.5,
            &step,
            &[0.0, 0.0],
            &[0.0, 0.0],
        )
        .unwrap();
        // First update: +1, second: +1.5 (momentum carries half of the first).
        assert!((rbm.params().weights[(0, 0)] - 2.5).abs() < 1e-12);
    }
}
