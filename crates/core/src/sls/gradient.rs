//! Analytic gradients of the constrict/disperse loss (Eqs. 27–32).
//!
//! For one phase (data or reconstruction) the loss over a mini-batch is
//!
//! ```text
//! L = (1/N_h) Σ_k Σ_{s<t ∈ H_k} ‖h_s - h_t‖²
//!   - (1/N_C) Σ_{p<q}           ‖C_p - C_q‖²
//! ```
//!
//! with `h_s = σ(b + v_s W)`, `O_k` the visible-space centre of local cluster
//! `k` and `C_k = σ(b + O_k W)` its hidden response, `N_h` the number of
//! supervised instances in the batch and `N_C = K(K-1)/2`.
//!
//! The within-cluster (constrict) term is computed with the algebraic
//! identity
//!
//! ```text
//! Σ_{s<t} ∂‖h_s - h_t‖²/∂w_ij  =  2 m Σ_s g_sj (h_sj - h̄_j) v_si ,
//! g_sj = h_sj (1 - h_sj),  h̄ = cluster mean,  m = |H_k|
//! ```
//!
//! which is exactly the pairwise sum of Eq. 27 but costs `O(m·d·n_h)` instead
//! of `O(m²·d·n_h)`. The between-centres (disperse) term follows Eqs. 25–27
//! with the centres' hidden responses used for the sigmoid derivative.

use crate::model::{sigmoid, RbmParams};
use crate::Result;
use sls_linalg::{Matrix, ParallelPolicy};

/// Gradient of the constrict/disperse loss with respect to the weights and
/// hidden biases. The visible biases do not appear in the loss
/// (∂L/∂a_i = 0, Section IV-A).
#[derive(Debug, Clone)]
pub(crate) struct SlsBatchGradients {
    /// ∂L/∂W, shape `n_visible x n_hidden`.
    pub dw: Matrix,
    /// ∂L/∂b, length `n_hidden`.
    pub db: Vec<f64>,
}

impl SlsBatchGradients {
    fn zeros(n_visible: usize, n_hidden: usize) -> Self {
        Self {
            dw: Matrix::zeros(n_visible, n_hidden),
            db: vec![0.0; n_hidden],
        }
    }

    /// Adds another gradient in place (used to combine the data-phase and
    /// reconstruction-phase terms).
    pub(crate) fn accumulate(&mut self, other: &SlsBatchGradients) -> Result<()> {
        self.dw = self.dw.add(&other.dw)?;
        for (a, b) in self.db.iter_mut().zip(&other.db) {
            *a += b;
        }
        Ok(())
    }
}

/// Computes ∂L/∂W and ∂L/∂b for one phase.
///
/// * `visible` — the visible rows of this phase (original batch or its
///   reconstruction), one row per batch instance.
/// * `hidden` — the corresponding hidden probabilities.
/// * `clusters` — local clusters as lists of **row indices into the batch**;
///   clusters with fewer than two members are ignored.
/// * `parallel` — execution policy for the `Vᵀ·E` constrict statistics (the
///   only product here that grows with the data dimensionality).
pub(crate) fn sls_batch_gradients(
    params: &RbmParams,
    visible: &Matrix,
    hidden: &Matrix,
    clusters: &[Vec<usize>],
    parallel: &ParallelPolicy,
) -> Result<SlsBatchGradients> {
    let n_visible = params.n_visible();
    let n_hidden = params.n_hidden();
    let mut grads = SlsBatchGradients::zeros(n_visible, n_hidden);

    let active: Vec<&Vec<usize>> = clusters.iter().filter(|c| c.len() >= 2).collect();
    if active.is_empty() {
        return Ok(grads);
    }
    let n_supervised: usize = active.iter().map(|c| c.len()).sum();
    let nh = n_supervised as f64;

    // --- Within-cluster constrict term -------------------------------------
    for members in &active {
        let m = members.len() as f64;
        let v_rows = visible.select_rows(members)?;
        let h_rows = hidden.select_rows(members)?;
        let h_mean = h_rows.column_means();
        // E = g ⊙ (h - h̄), with g = h ⊙ (1 - h).
        let mut e = Matrix::zeros(h_rows.rows(), n_hidden);
        for (r, h_row) in h_rows.row_iter().enumerate() {
            let e_row = e.row_mut(r);
            for j in 0..n_hidden {
                let h = h_row[j];
                e_row[j] = h * (1.0 - h) * (h - h_mean[j]);
            }
        }
        // ∂/∂W of Σ_{s<t} ‖h_s - h_t‖² = 2 m · VᵀE ; normalised by N_h.
        let dw_k = v_rows
            .matmul_transpose_left_with(&e, parallel)?
            .scale(2.0 * m / nh);
        grads.dw = grads.dw.add(&dw_k)?;
        // ∂/∂b is the same expression without the v factor.
        for (j, col_sum) in e.column_sums().iter().enumerate() {
            grads.db[j] += 2.0 * m / nh * col_sum;
        }
    }

    // --- Between-centres disperse term --------------------------------------
    let k = active.len();
    if k >= 2 {
        let nc = (k * (k - 1) / 2) as f64;
        // Visible-space centres O_k and their hidden responses C_k.
        let mut centers_visible = Matrix::zeros(k, visible.cols());
        for (idx, members) in active.iter().enumerate() {
            let rows = visible.select_rows(members)?;
            centers_visible
                .row_mut(idx)
                .copy_from_slice(&rows.column_means());
        }
        let centers_hidden = centers_visible
            .matmul(&params.weights)?
            .add_row_broadcast(&params.hidden_bias)?
            .map(sigmoid);

        for p in 0..k {
            for q in (p + 1)..k {
                for j in 0..n_hidden {
                    let cp = centers_hidden[(p, j)];
                    let cq = centers_hidden[(q, j)];
                    let diff = cp - cq;
                    let gp = cp * (1.0 - cp);
                    let gq = cq * (1.0 - cq);
                    // Minus sign: the centre term enters L with a minus.
                    grads.db[j] -= 2.0 / nc * diff * (gp - gq);
                    for i in 0..n_visible {
                        let opi = centers_visible[(p, i)];
                        let oqi = centers_visible[(q, i)];
                        grads.dw[(i, j)] -= 2.0 / nc * diff * (gp * opi - gq * oqi);
                    }
                }
            }
        }
    }

    Ok(grads)
}

/// The loss value itself, used by the finite-difference tests as the ground
/// truth the analytic gradients are checked against.
#[cfg(test)]
pub(crate) fn sls_loss(
    params: &RbmParams,
    visible: &Matrix,
    clusters: &[Vec<usize>],
) -> Result<f64> {
    let hidden = visible
        .matmul(&params.weights)?
        .add_row_broadcast(&params.hidden_bias)?
        .map(sigmoid);

    let active: Vec<&Vec<usize>> = clusters.iter().filter(|c| c.len() >= 2).collect();
    if active.is_empty() {
        return Ok(0.0);
    }
    let nh: usize = active.iter().map(|c| c.len()).sum();
    let mut within = 0.0;
    for members in &active {
        for (a, &s) in members.iter().enumerate() {
            for &t in members.iter().skip(a + 1) {
                within += sls_linalg::squared_euclidean_distance(hidden.row(s), hidden.row(t));
            }
        }
    }
    within /= nh as f64;

    let k = active.len();
    let mut between = 0.0;
    if k >= 2 {
        let nc = (k * (k - 1) / 2) as f64;
        let mut centers_visible = Matrix::zeros(k, visible.cols());
        for (idx, members) in active.iter().enumerate() {
            let rows = visible.select_rows(members)?;
            centers_visible
                .row_mut(idx)
                .copy_from_slice(&rows.column_means());
        }
        let centers_hidden = centers_visible
            .matmul(&params.weights)?
            .add_row_broadcast(&params.hidden_bias)?
            .map(sigmoid);
        for p in 0..k {
            for q in (p + 1)..k {
                between += sls_linalg::squared_euclidean_distance(
                    centers_hidden.row(p),
                    centers_hidden.row(q),
                );
            }
        }
        between /= nc;
    }
    Ok(within - between)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use sls_linalg::MatrixRandomExt;

    /// Serial policy shared by the numeric tests.
    const POL: ParallelPolicy = ParallelPolicy {
        threads: 1,
        min_rows_per_thread: 64,
        pool: false,
        simd: sls_linalg::SimdPolicy::Lanes4,
        chunk_rows: 0,
    };

    fn setup() -> (RbmParams, Matrix, Vec<Vec<usize>>) {
        let mut rng = ChaCha8Rng::seed_from_u64(55);
        let params = RbmParams {
            weights: Matrix::random_normal(5, 4, 0.0, 0.5, &mut rng),
            visible_bias: vec![0.1; 5],
            hidden_bias: vec![-0.2, 0.1, 0.0, 0.3],
        };
        let visible = Matrix::random_normal(10, 5, 0.0, 1.0, &mut rng);
        let clusters = vec![vec![0, 1, 2], vec![4, 5], vec![7, 8, 9]];
        (params, visible, clusters)
    }

    fn hidden_of(params: &RbmParams, visible: &Matrix) -> Matrix {
        visible
            .matmul(&params.weights)
            .unwrap()
            .add_row_broadcast(&params.hidden_bias)
            .unwrap()
            .map(sigmoid)
    }

    #[test]
    fn gradient_matches_finite_differences_for_weights() {
        let (params, visible, clusters) = setup();
        let hidden = hidden_of(&params, &visible);
        let grads = sls_batch_gradients(&params, &visible, &hidden, &clusters, &POL).unwrap();
        let eps = 1e-6;
        for &(i, j) in &[(0usize, 0usize), (2, 1), (4, 3), (1, 2)] {
            let mut plus = params.clone();
            plus.weights[(i, j)] += eps;
            let mut minus = params.clone();
            minus.weights[(i, j)] -= eps;
            let numeric = (sls_loss(&plus, &visible, &clusters).unwrap()
                - sls_loss(&minus, &visible, &clusters).unwrap())
                / (2.0 * eps);
            let analytic = grads.dw[(i, j)];
            assert!(
                (numeric - analytic).abs() < 1e-5,
                "w[{i},{j}]: numeric {numeric} vs analytic {analytic}"
            );
        }
    }

    #[test]
    fn gradient_matches_finite_differences_for_hidden_bias() {
        let (params, visible, clusters) = setup();
        let hidden = hidden_of(&params, &visible);
        let grads = sls_batch_gradients(&params, &visible, &hidden, &clusters, &POL).unwrap();
        let eps = 1e-6;
        for j in 0..4 {
            let mut plus = params.clone();
            plus.hidden_bias[j] += eps;
            let mut minus = params.clone();
            minus.hidden_bias[j] -= eps;
            let numeric = (sls_loss(&plus, &visible, &clusters).unwrap()
                - sls_loss(&minus, &visible, &clusters).unwrap())
                / (2.0 * eps);
            assert!(
                (numeric - grads.db[j]).abs() < 1e-5,
                "b[{j}]: numeric {numeric} vs analytic {}",
                grads.db[j]
            );
        }
    }

    #[test]
    fn no_supervision_gives_zero_gradient() {
        let (params, visible, _) = setup();
        let hidden = hidden_of(&params, &visible);
        let grads = sls_batch_gradients(&params, &visible, &hidden, &[], &POL).unwrap();
        assert_eq!(grads.dw.frobenius_norm(), 0.0);
        assert!(grads.db.iter().all(|&x| x == 0.0));
        // Singleton clusters are equally ignored.
        let grads = sls_batch_gradients(&params, &visible, &hidden, &[vec![3]], &POL).unwrap();
        assert_eq!(grads.dw.frobenius_norm(), 0.0);
        assert_eq!(sls_loss(&params, &visible, &[vec![3]]).unwrap(), 0.0);
    }

    #[test]
    fn single_cluster_has_no_disperse_term() {
        // With one cluster the loss is purely the within term, which is
        // non-negative, and descending it must shrink it.
        let (mut params, visible, _) = setup();
        let clusters = vec![vec![0, 1, 2, 3]];
        let before = sls_loss(&params, &visible, &clusters).unwrap();
        assert!(before >= 0.0);
        for _ in 0..50 {
            let hidden = hidden_of(&params, &visible);
            let grads = sls_batch_gradients(&params, &visible, &hidden, &clusters, &POL).unwrap();
            params.weights = params.weights.add(&grads.dw.scale(-0.5)).unwrap();
            for (b, g) in params.hidden_bias.iter_mut().zip(&grads.db) {
                *b -= 0.5 * g;
            }
        }
        let after = sls_loss(&params, &visible, &clusters).unwrap();
        assert!(after < before, "{before} -> {after}");
    }

    #[test]
    fn descending_the_gradient_reduces_the_full_loss() {
        let (mut params, visible, clusters) = setup();
        let before = sls_loss(&params, &visible, &clusters).unwrap();
        for _ in 0..100 {
            let hidden = hidden_of(&params, &visible);
            let grads = sls_batch_gradients(&params, &visible, &hidden, &clusters, &POL).unwrap();
            params.weights = params.weights.add(&grads.dw.scale(-0.2)).unwrap();
            for (b, g) in params.hidden_bias.iter_mut().zip(&grads.db) {
                *b -= 0.2 * g;
            }
        }
        let after = sls_loss(&params, &visible, &clusters).unwrap();
        assert!(
            after < before,
            "descent did not reduce the loss: {before} -> {after}"
        );
    }

    #[test]
    fn descent_constricts_within_and_disperses_between() {
        // After descending the sls loss, hidden features of the same cluster
        // should be closer together and the cluster centres further apart
        // than before.
        let (mut params, visible, clusters) = setup();
        let spread = |params: &RbmParams| -> (f64, f64) {
            let hidden = hidden_of(params, &visible);
            let mut within = 0.0;
            let mut count = 0.0;
            for members in &clusters {
                for (a, &s) in members.iter().enumerate() {
                    for &t in members.iter().skip(a + 1) {
                        within += sls_linalg::euclidean_distance(hidden.row(s), hidden.row(t));
                        count += 1.0;
                    }
                }
            }
            let centers: Vec<Vec<f64>> = clusters
                .iter()
                .map(|m| hidden.select_rows(m).unwrap().column_means())
                .collect();
            let mut between = 0.0;
            let mut bcount = 0.0;
            for p in 0..centers.len() {
                for q in (p + 1)..centers.len() {
                    between += sls_linalg::euclidean_distance(&centers[p], &centers[q]);
                    bcount += 1.0;
                }
            }
            (within / count, between / bcount)
        };
        let (within_before, between_before) = spread(&params);
        for _ in 0..200 {
            let hidden = hidden_of(&params, &visible);
            let grads = sls_batch_gradients(&params, &visible, &hidden, &clusters, &POL).unwrap();
            params.weights = params.weights.add(&grads.dw.scale(-0.3)).unwrap();
            for (b, g) in params.hidden_bias.iter_mut().zip(&grads.db) {
                *b -= 0.3 * g;
            }
        }
        let (within_after, between_after) = spread(&params);
        assert!(
            within_after < within_before,
            "within-cluster spread grew: {within_before} -> {within_after}"
        );
        assert!(
            between_after > between_before,
            "between-centre spread shrank: {between_before} -> {between_after}"
        );
    }

    #[test]
    fn parallel_gradients_are_bitwise_identical_to_serial() {
        let (params, visible, clusters) = setup();
        let hidden = hidden_of(&params, &visible);
        let serial = sls_batch_gradients(&params, &visible, &hidden, &clusters, &POL).unwrap();
        for threads in [2, 4, 8] {
            for simd in [
                sls_linalg::SimdPolicy::Lanes4,
                sls_linalg::SimdPolicy::Scalar,
            ] {
                let policy = ParallelPolicy::new(threads)
                    .with_min_rows_per_thread(1)
                    .with_simd(simd);
                let par =
                    sls_batch_gradients(&params, &visible, &hidden, &clusters, &policy).unwrap();
                assert_eq!(serial.dw.as_slice(), par.dw.as_slice(), "{policy:?}");
                assert_eq!(serial.db, par.db, "{policy:?}");
            }
        }
    }

    #[test]
    fn accumulate_sums_gradients() {
        let (params, visible, clusters) = setup();
        let hidden = hidden_of(&params, &visible);
        let g1 = sls_batch_gradients(&params, &visible, &hidden, &clusters, &POL).unwrap();
        let mut total = sls_batch_gradients(&params, &visible, &hidden, &clusters, &POL).unwrap();
        total.accumulate(&g1).unwrap();
        assert!(total.dw.approx_eq(&g1.dw.scale(2.0), 1e-12));
        for (t, g) in total.db.iter().zip(&g1.db) {
            assert!((t - 2.0 * g).abs() < 1e-12);
        }
    }
}
