//! The sls training loop: CD-1 plus the constrict/disperse gradients
//! (Eqs. 33–35).

use crate::cd::{apply_update, cd_batch_gradients, epoch_order, Velocity};
use crate::model::BoltzmannMachine;
use crate::sls::{sls_batch_gradients, SlsConfig};
use crate::{EpochStats, RbmError, Result, TrainConfig, TrainingHistory};
use rand::Rng;
use sls_consensus::LocalSupervision;
use sls_linalg::{Matrix, ParallelPolicy};

/// Trainer implementing the paper's update rules: for each mini-batch the
/// weight and hidden-bias updates combine the CD gradient (weight η·ε) with
/// the descent direction of the constrict/disperse loss evaluated on both
/// the data-driven hidden features and the reconstruction-driven hidden
/// features (weight (1-η)·ε_sls); the visible biases receive only the CD
/// term (Eq. 35).
#[derive(Debug, Clone)]
pub struct SlsTrainer {
    train: TrainConfig,
    sls: SlsConfig,
    parallel: ParallelPolicy,
}

impl SlsTrainer {
    /// Creates a trainer after validating both configurations. The trainer
    /// starts with the process-wide [`ParallelPolicy::global`]; override it
    /// with [`SlsTrainer::with_parallel`].
    ///
    /// # Errors
    ///
    /// Returns [`RbmError::InvalidConfig`] if either configuration is
    /// invalid.
    pub fn new(train: TrainConfig, sls: SlsConfig) -> Result<Self> {
        train.validate()?;
        sls.validate()?;
        Ok(Self {
            train,
            sls,
            parallel: ParallelPolicy::global(),
        }
        .warmed())
    }

    /// Sets the parallel execution policy for the training hot path. Results
    /// are bitwise identical for every policy.
    pub fn with_parallel(mut self, parallel: ParallelPolicy) -> Self {
        self.parallel = parallel;
        self.warmed()
    }

    /// Warms the persistent pool once at trainer construction when the
    /// policy uses it, so every mini-batch of every epoch reuses the same
    /// workers.
    fn warmed(self) -> Self {
        if self.parallel.pool {
            let _ = sls_linalg::WorkerPool::global();
        }
        self
    }

    /// The CD training configuration.
    pub fn train_config(&self) -> &TrainConfig {
        &self.train
    }

    /// The sls configuration.
    pub fn sls_config(&self) -> &SlsConfig {
        &self.sls
    }

    /// The active parallel execution policy.
    pub fn parallel(&self) -> &ParallelPolicy {
        &self.parallel
    }

    /// Trains `model` on `data` guided by the local supervision.
    ///
    /// # Errors
    ///
    /// * Shape errors for incompatible data.
    /// * [`RbmError::SupervisionOutOfRange`] if the supervision references
    ///   instances that do not exist.
    /// * [`RbmError::Diverged`] if parameters become non-finite.
    pub fn train<M: BoltzmannMachine>(
        &self,
        model: &mut M,
        data: &Matrix,
        supervision: &LocalSupervision,
        rng: &mut impl Rng,
    ) -> Result<TrainingHistory> {
        model.params().check_data(data)?;
        if let Some(&max_index) = supervision.covered_indices().last() {
            if max_index >= data.rows() {
                return Err(RbmError::SupervisionOutOfRange {
                    index: max_index,
                    instances: data.rows(),
                });
            }
        }

        let membership = supervision.membership();
        let n_local_clusters = supervision.n_clusters();
        let (n_visible, n_hidden) = (model.params().n_visible(), model.params().n_hidden());
        let mut velocity = Velocity::zeros(n_visible, n_hidden);
        let mut history = TrainingHistory::default();

        let eta = self.sls.eta;
        let lr = self.train.learning_rate;
        let sls_lr = self.sls.resolve_supervision_lr(lr);

        for epoch in 0..self.train.epochs {
            let order = epoch_order(data.rows(), self.train.shuffle, rng);
            for chunk in order.chunks(self.train.batch_size) {
                let batch = data.select_rows(chunk)?;
                // Local clusters restricted to this batch, expressed as batch
                // row indices.
                let batch_clusters = clusters_in_batch(chunk, &membership, n_local_clusters);

                let cd =
                    cd_batch_gradients(model, &batch, self.train.cd_steps, &self.parallel, rng)?;

                // Supervision gradients on both phases (Eqs. 27–32): the data
                // phase uses (V, H_data); the reconstruction phase uses
                // (V_recon, H_recon) for the same instances.
                let mut sls_grads = sls_batch_gradients(
                    model.params(),
                    &batch,
                    &cd.hidden_data,
                    &batch_clusters,
                    &self.parallel,
                )?;
                let recon_grads = sls_batch_gradients(
                    model.params(),
                    &cd.visible_recon,
                    &cd.hidden_recon,
                    &batch_clusters,
                    &self.parallel,
                )?;
                sls_grads.accumulate(&recon_grads)?;

                // Combine: ascend the CD objective, descend the sls loss.
                let decay = model.params().weights.scale(-self.train.weight_decay);
                let step_w = cd
                    .dw
                    .scale(eta * lr)
                    .add(&sls_grads.dw.scale(-(1.0 - eta) * sls_lr))?
                    .add(&decay.scale(lr))?;
                let step_a: Vec<f64> = cd.da.iter().map(|g| eta * lr * g).collect();
                let step_b: Vec<f64> = cd
                    .db
                    .iter()
                    .zip(&sls_grads.db)
                    .map(|(cd_g, sls_g)| eta * lr * cd_g - (1.0 - eta) * sls_lr * sls_g)
                    .collect();
                apply_update(
                    model,
                    &mut velocity,
                    self.train.momentum,
                    &step_w,
                    &step_a,
                    &step_b,
                )?;
            }
            if !model.params().is_finite() {
                return Err(RbmError::Diverged { epoch });
            }
            history.epochs.push(EpochStats {
                epoch,
                reconstruction_error: model.reconstruction_error_with(data, &self.parallel)?,
            });
        }
        Ok(history)
    }
}

/// Groups the positions of `chunk` (batch row indices) by local cluster.
pub(crate) fn clusters_in_batch(
    chunk: &[usize],
    membership: &[Option<usize>],
    n_clusters: usize,
) -> Vec<Vec<usize>> {
    let mut clusters = vec![Vec::new(); n_clusters];
    for (row, &dataset_index) in chunk.iter().enumerate() {
        if let Some(Some(cluster)) = membership.get(dataset_index) {
            clusters[*cluster].push(row);
        }
    }
    clusters
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Grbm, Rbm};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use sls_consensus::{LocalSupervision, VotingPolicy};
    use sls_datasets::SyntheticBlobs;
    use sls_linalg::MatrixRandomExt;

    fn rng() -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(200)
    }

    /// Builds a supervision that covers a prefix of each ground-truth class.
    fn supervision_from_labels(labels: &[usize], coverage: usize) -> LocalSupervision {
        let mut consensus: Vec<Option<usize>> = vec![None; labels.len()];
        let mut counts = std::collections::BTreeMap::new();
        for (i, &l) in labels.iter().enumerate() {
            let c = counts.entry(l).or_insert(0usize);
            if *c < coverage {
                consensus[i] = Some(l);
                *c += 1;
            }
        }
        LocalSupervision::from_consensus(&consensus, VotingPolicy::Unanimous).unwrap()
    }

    #[test]
    fn trainer_validates_configs() {
        assert!(SlsTrainer::new(TrainConfig::quick(), SlsConfig::new(0.5)).is_ok());
        assert!(SlsTrainer::new(TrainConfig::quick(), SlsConfig::new(1.5)).is_err());
        assert!(SlsTrainer::new(TrainConfig::quick().with_epochs(0), SlsConfig::new(0.5)).is_err());
    }

    #[test]
    fn supervision_out_of_range_is_rejected() {
        let mut r = rng();
        let data = Matrix::random_bernoulli(10, 6, 0.5, &mut r);
        let mut rbm = Rbm::new(6, 4, &mut r);
        let consensus: Vec<Option<usize>> = (0..20).map(|i| Some(i % 2)).collect();
        let supervision =
            LocalSupervision::from_consensus(&consensus, VotingPolicy::Unanimous).unwrap();
        let trainer = SlsTrainer::new(TrainConfig::quick(), SlsConfig::new(0.5)).unwrap();
        assert!(matches!(
            trainer.train(&mut rbm, &data, &supervision, &mut r),
            Err(RbmError::SupervisionOutOfRange { .. })
        ));
    }

    #[test]
    fn sls_grbm_training_constricts_supervised_clusters_in_hidden_space() {
        let mut r = rng();
        let ds = SyntheticBlobs::new(90, 8, 3)
            .separation(3.0)
            .generate(&mut r);
        let supervision = supervision_from_labels(ds.labels(), 12);
        let mut grbm = Grbm::new(8, 6, &mut r);
        let config = TrainConfig::quick()
            .with_epochs(25)
            .with_learning_rate(0.05);
        let sls_config = SlsConfig::new(0.4).with_supervision_learning_rate(0.5);
        let trainer = SlsTrainer::new(config, sls_config).unwrap();

        // Constriction is relative: after training, the average
        // within-cluster distance of the supervised instances should be small
        // compared with the distance between the local-cluster centres. The
        // absolute spread necessarily grows from initialisation (random small
        // weights put every hidden probability near 0.5), so the meaningful
        // quantity is the within/between ratio.
        let spread_ratio = |model: &Grbm| {
            let hidden = model.hidden_probabilities(ds.features()).unwrap();
            let mut within = 0.0;
            let mut count = 0.0;
            for members in supervision.clusters() {
                for (a, &s) in members.iter().enumerate() {
                    for &t in members.iter().skip(a + 1) {
                        within += sls_linalg::euclidean_distance(hidden.row(s), hidden.row(t));
                        count += 1.0;
                    }
                }
            }
            let centers = supervision.cluster_centers(&hidden);
            let mut between = 0.0;
            let mut bcount = 0.0;
            for p in 0..centers.rows() {
                for q in (p + 1)..centers.rows() {
                    between += sls_linalg::euclidean_distance(centers.row(p), centers.row(q));
                    bcount += 1.0;
                }
            }
            (within / count) / (between / bcount).max(1e-12)
        };

        let before = spread_ratio(&grbm);
        trainer
            .train(&mut grbm, ds.features(), &supervision, &mut r)
            .unwrap();
        let after = spread_ratio(&grbm);
        assert!(
            after < before,
            "within/between spread ratio did not shrink: {before} -> {after}"
        );
    }

    #[test]
    fn sls_rbm_training_runs_and_stays_finite() {
        let mut r = rng();
        let data = Matrix::random_bernoulli(60, 12, 0.4, &mut r);
        let labels: Vec<usize> = (0..60).map(|i| i % 2).collect();
        let supervision = supervision_from_labels(&labels, 10);
        let mut rbm = Rbm::new(12, 5, &mut r);
        let trainer =
            SlsTrainer::new(TrainConfig::quick().with_epochs(10), SlsConfig::paper_rbm()).unwrap();
        let history = trainer
            .train(&mut rbm, &data, &supervision, &mut r)
            .unwrap();
        assert_eq!(history.epochs.len(), 10);
        assert!(rbm.params().is_finite());
    }

    #[test]
    fn parallel_sls_training_is_bitwise_identical_to_serial() {
        let mut r = rng();
        let data = Matrix::random_bernoulli(50, 10, 0.4, &mut r);
        let labels: Vec<usize> = (0..50).map(|i| i % 3).collect();
        let supervision = supervision_from_labels(&labels, 8);
        let train_one = |parallel: ParallelPolicy| {
            let mut model = Rbm::new(10, 4, &mut ChaCha8Rng::seed_from_u64(4));
            SlsTrainer::new(TrainConfig::quick().with_epochs(4), SlsConfig::new(0.5))
                .unwrap()
                .with_parallel(parallel)
                .train(
                    &mut model,
                    &data,
                    &supervision,
                    &mut ChaCha8Rng::seed_from_u64(5),
                )
                .unwrap();
            model
        };
        let serial = train_one(ParallelPolicy::serial());
        for threads in [2, 8] {
            let par = train_one(ParallelPolicy::new(threads).with_min_rows_per_thread(1));
            assert_eq!(serial.params(), par.params(), "threads = {threads}");
            // Same identity through the persistent worker pool.
            let pooled = train_one(
                ParallelPolicy::new(threads)
                    .with_min_rows_per_thread(1)
                    .with_pool(true),
            );
            assert_eq!(
                serial.params(),
                pooled.params(),
                "pooled threads = {threads}"
            );
            // And with the SIMD layer forced to its scalar fallback: same
            // canonical reduction order, identical trained parameters.
            let scalar_simd = train_one(
                ParallelPolicy::new(threads)
                    .with_min_rows_per_thread(1)
                    .with_simd(sls_linalg::SimdPolicy::Scalar),
            );
            assert_eq!(
                serial.params(),
                scalar_simd.params(),
                "simd-off threads = {threads}"
            );
        }
    }

    #[test]
    fn eta_one_sided_behaviour() {
        // η close to 1 should behave almost like plain CD: the sls gradient
        // contribution is scaled by (1-η) ≈ 0.
        let mut r = rng();
        let data = Matrix::random_bernoulli(40, 8, 0.5, &mut r);
        let labels: Vec<usize> = (0..40).map(|i| i % 2).collect();
        let supervision = supervision_from_labels(&labels, 8);

        let mut sls_model = Rbm::new(8, 4, &mut ChaCha8Rng::seed_from_u64(1));
        let mut cd_model = Rbm::new(8, 4, &mut ChaCha8Rng::seed_from_u64(1));
        assert_eq!(sls_model.params(), cd_model.params());

        let config = TrainConfig::quick().with_epochs(3);
        let mut cfg_no_shuffle = config;
        cfg_no_shuffle.shuffle = false;

        let trainer = SlsTrainer::new(cfg_no_shuffle, SlsConfig::new(0.999_999)).unwrap();
        trainer
            .train(
                &mut sls_model,
                &data,
                &supervision,
                &mut ChaCha8Rng::seed_from_u64(9),
            )
            .unwrap();
        // Plain CD for comparison, but scaled: with η≈1 the CD term keeps its
        // full weight, so the two runs should be nearly identical.
        let cd_trainer = crate::CdTrainer::new(cfg_no_shuffle).unwrap();
        cd_trainer
            .train(&mut cd_model, &data, &mut ChaCha8Rng::seed_from_u64(9))
            .unwrap();
        assert!(sls_model
            .params()
            .weights
            .approx_eq(&cd_model.params().weights, 1e-3));
    }

    #[test]
    fn clusters_in_batch_maps_dataset_indices_to_rows() {
        let membership = vec![Some(0), None, Some(1), Some(0), None, Some(1)];
        // Batch contains dataset indices 5, 0, 1, 3.
        let chunk = vec![5, 0, 1, 3];
        let clusters = clusters_in_batch(&chunk, &membership, 2);
        assert_eq!(clusters[0], vec![1, 3]); // dataset 0 -> row 1, dataset 3 -> row 3
        assert_eq!(clusters[1], vec![0]); // dataset 5 -> row 0
    }

    #[test]
    fn history_is_recorded_per_epoch() {
        let mut r = rng();
        let data = Matrix::random_bernoulli(30, 6, 0.5, &mut r);
        let labels: Vec<usize> = (0..30).map(|i| i % 3).collect();
        let supervision = supervision_from_labels(&labels, 5);
        let mut rbm = Rbm::new(6, 3, &mut r);
        let trainer =
            SlsTrainer::new(TrainConfig::quick().with_epochs(4), SlsConfig::new(0.5)).unwrap();
        let history = trainer
            .train(&mut rbm, &data, &supervision, &mut r)
            .unwrap();
        assert_eq!(history.epochs.len(), 4);
        assert!(history.final_error().unwrap().is_finite());
    }
}
