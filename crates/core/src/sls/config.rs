//! Configuration of the self-learning local supervision term.

use crate::{RbmError, Result};
use serde::{Deserialize, Serialize};

/// Hyper-parameters of the sls objective (Eq. 16).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SlsConfig {
    /// Scale coefficient η ∈ (0, 1) balancing the CD likelihood term (weight
    /// η) against the constrict/disperse term (weight 1-η). The paper uses
    /// 0.4 for slsGRBM and 0.5 for slsRBM.
    pub eta: f64,
    /// Learning rate applied to the supervision gradient. `None` reuses the
    /// CD learning rate ε, which matches the paper's single-learning-rate
    /// formulation.
    pub supervision_learning_rate: Option<f64>,
}

impl Default for SlsConfig {
    fn default() -> Self {
        Self {
            eta: 0.5,
            supervision_learning_rate: None,
        }
    }
}

impl SlsConfig {
    /// Creates a config with the given η.
    pub fn new(eta: f64) -> Self {
        Self {
            eta,
            ..Self::default()
        }
    }

    /// The paper's slsGRBM setting (η = 0.4).
    pub fn paper_grbm() -> Self {
        Self::new(0.4)
    }

    /// The paper's slsRBM setting (η = 0.5).
    pub fn paper_rbm() -> Self {
        Self::new(0.5)
    }

    /// Overrides the supervision learning rate.
    pub fn with_supervision_learning_rate(mut self, lr: f64) -> Self {
        self.supervision_learning_rate = Some(lr);
        self
    }

    /// Resolves the supervision learning rate given the CD learning rate.
    pub fn resolve_supervision_lr(&self, cd_learning_rate: f64) -> f64 {
        self.supervision_learning_rate.unwrap_or(cd_learning_rate)
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`RbmError::InvalidConfig`] if η is outside `(0, 1)` or the
    /// supervision learning rate is not positive.
    pub fn validate(&self) -> Result<()> {
        if !(self.eta > 0.0 && self.eta < 1.0) {
            return Err(RbmError::InvalidConfig {
                name: "eta",
                message: format!("must be in (0, 1), got {}", self.eta),
            });
        }
        if let Some(lr) = self.supervision_learning_rate {
            if !(lr > 0.0 && lr.is_finite()) {
                return Err(RbmError::InvalidConfig {
                    name: "supervision_learning_rate",
                    message: format!("must be positive and finite, got {lr}"),
                });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_settings_match_section_v() {
        assert_eq!(SlsConfig::paper_grbm().eta, 0.4);
        assert_eq!(SlsConfig::paper_rbm().eta, 0.5);
        assert!(SlsConfig::paper_grbm().validate().is_ok());
    }

    #[test]
    fn validation_rejects_bad_eta() {
        assert!(SlsConfig::new(0.0).validate().is_err());
        assert!(SlsConfig::new(1.0).validate().is_err());
        assert!(SlsConfig::new(-0.2).validate().is_err());
        assert!(SlsConfig::new(0.7).validate().is_ok());
    }

    #[test]
    fn validation_rejects_bad_supervision_lr() {
        assert!(SlsConfig::new(0.5)
            .with_supervision_learning_rate(0.0)
            .validate()
            .is_err());
        assert!(SlsConfig::new(0.5)
            .with_supervision_learning_rate(1e-3)
            .validate()
            .is_ok());
    }

    #[test]
    fn supervision_lr_defaults_to_cd_lr() {
        assert_eq!(SlsConfig::new(0.5).resolve_supervision_lr(0.01), 0.01);
        assert_eq!(
            SlsConfig::new(0.5)
                .with_supervision_learning_rate(0.5)
                .resolve_supervision_lr(0.01),
            0.5
        );
    }
}
