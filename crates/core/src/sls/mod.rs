//! Self-learning local supervision (sls) training — the paper's
//! contribution.
//!
//! The sls models have exactly the same architecture as their baselines
//! ([`crate::Rbm`], [`crate::Grbm`]); what changes is the *objective*
//! (Eq. 16):
//!
//! ```text
//! F(θ) = -(η/N) Σ log p(v; θ) + (1-η) [ L_data(θ) + L_recon(θ) ]
//! ```
//!
//! where `L_data` (Eq. 14) penalises the spread of hidden features within
//! each local credible cluster and rewards the spread between cluster
//! centres, and `L_recon` (Eq. 15) applies the same pressure to the hidden
//! features of the *reconstructed* visible layer. The CD term is handled
//! exactly as in the baselines; [`gradient`] implements the analytic
//! gradients of `L_data` / `L_recon` (Eqs. 27–32) and [`SlsTrainer`] combines
//! both into the parameter updates (Eqs. 33–35).
//!
//! ## A note on the sign of the supervision term
//!
//! Eq. 33 of the paper writes the supervision contribution with a `+` sign,
//! i.e. gradient *ascent* on `L_data + L_recon`. Taken literally this would
//! spread the members of a local cluster apart and pull different cluster
//! centres together — the opposite of the constrict/disperse behaviour the
//! paper describes and observes. We therefore apply gradient **descent** on
//! `L_data + L_recon` (equivalently, we read Eq. 33's braces as the negative
//! gradient), which realises the stated goal. This is the only place where
//! the implementation deviates from the paper's literal equations; it is
//! called out in DESIGN.md and EXPERIMENTS.md.

mod config;
mod gradient;
mod models;
mod trainer;

pub use config::SlsConfig;
pub use models::{SlsGrbm, SlsRbm};
pub use trainer::SlsTrainer;

pub(crate) use gradient::sls_batch_gradients;
pub(crate) use trainer::clusters_in_batch;
