//! The slsRBM and slsGRBM model types.
//!
//! Architecturally these are the same energy models as [`crate::Rbm`] and
//! [`crate::Grbm`]; the "sls" in their name refers to how they are trained.
//! Wrapping them in dedicated types keeps the paper's terminology visible in
//! downstream code and bundles the right trainer with the right model.

use crate::model::{BoltzmannMachine, RbmParams, VisibleKind};
use crate::sls::{SlsConfig, SlsTrainer};
use crate::{Grbm, Rbm, Result, TrainConfig, TrainingHistory};
use rand::Rng;
use serde::{Deserialize, Serialize};
use sls_consensus::LocalSupervision;
use sls_linalg::{Matrix, ParallelPolicy};

macro_rules! sls_model {
    ($(#[$doc:meta])* $name:ident, $inner:ty, $default_train:expr, $default_sls:expr) => {
        $(#[$doc])*
        #[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
        pub struct $name {
            inner: $inner,
        }

        impl $name {
            /// Creates a model with randomly initialised parameters.
            pub fn new(n_visible: usize, n_hidden: usize, rng: &mut impl Rng) -> Self {
                Self {
                    inner: <$inner>::new(n_visible, n_hidden, rng),
                }
            }

            /// Wraps existing parameters.
            pub fn from_params(params: RbmParams) -> Self {
                Self {
                    inner: <$inner>::from_params(params),
                }
            }

            /// Borrow the underlying energy model.
            pub fn inner(&self) -> &$inner {
                &self.inner
            }

            /// The paper's default hyper-parameters for this model.
            pub fn paper_configs() -> (TrainConfig, SlsConfig) {
                ($default_train, $default_sls)
            }

            /// Trains the model with the sls objective using explicit
            /// configurations.
            ///
            /// # Errors
            ///
            /// Propagates configuration, shape and divergence errors from
            /// [`SlsTrainer::train`].
            pub fn train(
                &mut self,
                data: &Matrix,
                supervision: &LocalSupervision,
                train_config: TrainConfig,
                sls_config: SlsConfig,
                rng: &mut impl Rng,
            ) -> Result<TrainingHistory> {
                self.train_with(
                    data,
                    supervision,
                    train_config,
                    sls_config,
                    ParallelPolicy::global(),
                    rng,
                )
            }

            /// [`Self::train`] under an explicit parallel execution policy.
            /// Results are bitwise identical for every policy.
            ///
            /// # Errors
            ///
            /// Same as [`Self::train`].
            pub fn train_with(
                &mut self,
                data: &Matrix,
                supervision: &LocalSupervision,
                train_config: TrainConfig,
                sls_config: SlsConfig,
                parallel: ParallelPolicy,
                rng: &mut impl Rng,
            ) -> Result<TrainingHistory> {
                SlsTrainer::new(train_config, sls_config)?
                    .with_parallel(parallel)
                    .train(&mut self.inner, data, supervision, rng)
            }

            /// Trains with the paper's default hyper-parameters.
            ///
            /// # Errors
            ///
            /// Same as [`Self::train`].
            pub fn train_with_paper_defaults(
                &mut self,
                data: &Matrix,
                supervision: &LocalSupervision,
                rng: &mut impl Rng,
            ) -> Result<TrainingHistory> {
                let (train, sls) = Self::paper_configs();
                self.train(data, supervision, train, sls, rng)
            }

            /// Hidden-layer features (activation probabilities) of `data` —
            /// the representation handed to the downstream clusterers.
            ///
            /// # Errors
            ///
            /// Returns a shape error if `data` does not match the visible
            /// layer.
            pub fn hidden_features(&self, data: &Matrix) -> Result<Matrix> {
                self.inner.hidden_probabilities(data)
            }

            /// [`Self::hidden_features`] under an explicit parallel
            /// execution policy.
            ///
            /// # Errors
            ///
            /// Returns a shape error if `data` does not match the visible
            /// layer.
            pub fn hidden_features_with(
                &self,
                data: &Matrix,
                parallel: &ParallelPolicy,
            ) -> Result<Matrix> {
                self.inner.hidden_probabilities_with(data, parallel)
            }
        }

        impl BoltzmannMachine for $name {
            fn params(&self) -> &RbmParams {
                self.inner.params()
            }

            fn params_mut(&mut self) -> &mut RbmParams {
                self.inner.params_mut()
            }

            fn visible_kind(&self) -> VisibleKind {
                self.inner.visible_kind()
            }

            fn reconstruct_visible_with(
                &self,
                hidden: &Matrix,
                parallel: &ParallelPolicy,
            ) -> Result<Matrix> {
                self.inner.reconstruct_visible_with(hidden, parallel)
            }
        }
    };
}

sls_model!(
    /// Self-learning local supervision RBM (binary visible and hidden units,
    /// sigmoid reconstruction) — the paper's **slsRBM** instantiation, used
    /// for the UCI experiments with η = 0.5 and learning rate `1e-5`.
    SlsRbm,
    Rbm,
    TrainConfig::paper_rbm(),
    SlsConfig::paper_rbm()
);

sls_model!(
    /// Self-learning local supervision GRBM (Gaussian linear visible units,
    /// binary hidden units, linear reconstruction) — the paper's **slsGRBM**
    /// instantiation, used for the MSRA-MM experiments with η = 0.4 and
    /// learning rate `1e-4`.
    SlsGrbm,
    Grbm,
    TrainConfig::paper_grbm(),
    SlsConfig::paper_grbm()
);

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use sls_consensus::VotingPolicy;
    use sls_linalg::MatrixRandomExt;

    fn rng() -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(404)
    }

    fn simple_supervision(n: usize) -> LocalSupervision {
        let consensus: Vec<Option<usize>> = (0..n).map(|i| Some(i % 2)).collect();
        LocalSupervision::from_consensus(&consensus, VotingPolicy::Unanimous).unwrap()
    }

    #[test]
    fn paper_configs_match_section_v() {
        let (train, sls) = SlsGrbm::paper_configs();
        assert_eq!(train.learning_rate, 1e-4);
        assert_eq!(sls.eta, 0.4);
        let (train, sls) = SlsRbm::paper_configs();
        assert_eq!(train.learning_rate, 1e-5);
        assert_eq!(sls.eta, 0.5);
    }

    #[test]
    fn sls_rbm_trains_and_extracts_features() {
        let mut r = rng();
        let data = Matrix::random_bernoulli(24, 10, 0.5, &mut r);
        let mut model = SlsRbm::new(10, 4, &mut r);
        let history = model
            .train(
                &data,
                &simple_supervision(24),
                TrainConfig::quick().with_epochs(3),
                SlsConfig::new(0.5),
                &mut r,
            )
            .unwrap();
        assert_eq!(history.epochs.len(), 3);
        let features = model.hidden_features(&data).unwrap();
        assert_eq!(features.shape(), (24, 4));
        assert_eq!(model.visible_kind(), VisibleKind::Binary);
    }

    #[test]
    fn sls_grbm_trains_and_extracts_features() {
        let mut r = rng();
        let data = Matrix::random_normal(24, 10, 0.0, 1.0, &mut r);
        let mut model = SlsGrbm::new(10, 4, &mut r);
        model
            .train(
                &data,
                &simple_supervision(24),
                TrainConfig::quick().with_epochs(3).with_learning_rate(0.01),
                SlsConfig::new(0.4),
                &mut r,
            )
            .unwrap();
        let features = model.hidden_features(&data).unwrap();
        assert_eq!(features.shape(), (24, 4));
        assert_eq!(model.visible_kind(), VisibleKind::Gaussian);
    }

    #[test]
    fn from_params_preserves_parameters() {
        let params = RbmParams::init(6, 3, &mut rng());
        let model = SlsGrbm::from_params(params.clone());
        assert_eq!(model.params(), &params);
        assert_eq!(model.inner().params(), &params);
    }

    #[test]
    fn train_with_paper_defaults_runs() {
        let mut r = rng();
        let data = Matrix::random_bernoulli(20, 6, 0.5, &mut r);
        let mut model = SlsRbm::new(6, 3, &mut r);
        // Paper defaults use 30 epochs; just make sure the call is wired up.
        let history = model
            .train_with_paper_defaults(&data, &simple_supervision(20), &mut r)
            .unwrap();
        assert_eq!(history.epochs.len(), TrainConfig::paper_rbm().epochs);
    }

    #[test]
    fn serde_round_trip() {
        let model = SlsRbm::new(4, 2, &mut rng());
        let json = serde_json::to_string(&model).unwrap();
        let back: SlsRbm = serde_json::from_str(&json).unwrap();
        assert_eq!(back, model);
    }
}
