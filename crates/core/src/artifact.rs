//! Versioned pipeline artifacts: everything needed to *serve* a trained
//! pipeline, not just its raw parameters.
//!
//! [`crate::save_params_json`] historically persisted bare [`RbmParams`],
//! which cannot answer an inference request on its own: the preprocessing
//! statistics fitted on the training data, the model kind and the fitted
//! clustering head are all required to map a raw feature row to a hidden
//! feature vector or a cluster assignment. [`PipelineArtifact`] bundles all
//! of them behind a schema-versioned JSON file:
//!
//! * `schema_version` — integer, bumped on any breaking layout change; a
//!   build refuses to load artifacts from a *newer* schema but keeps reading
//!   every older one (including the pre-artifact param-only snapshots).
//! * `model_kind` — which of the paper's four models produced the weights.
//! * `params` — the trained [`RbmParams`].
//! * `preprocessor` — the *fitted* preprocessing statistics
//!   ([`FittedPreprocessor`]), so unseen rows are transformed with the
//!   training-time column means / medians rather than their own.
//! * `cluster_head` — the fitted downstream clusterer ([`ClusterHead`]):
//!   centroids in hidden-feature space plus the clusterer configuration.
//! * `train_config` — provenance: the [`SlsPipelineConfig`] used at training
//!   time (`None` for artifacts converted from param-only snapshots).
//!
//! The inference path is deliberately batched: [`PipelineArtifact::features`]
//! pushes *all* rows of a request through one matrix multiply instead of N
//! vector products, so a serving layer gets the linalg crate's blocked
//! matmul for free.

use crate::pipeline::{
    GrbmPipeline, PipelineOutcome, Preprocessing, RbmPipeline, SlsGrbmPipeline, SlsPipelineConfig,
    SlsRbmPipeline,
};
use crate::{RbmError, RbmParams, Result, VisibleKind};
use rand::Rng;
use serde::{Deserialize, Serialize};
use sls_clustering::KMeans;
use sls_datasets::MedianBinarizer;
use sls_linalg::{LinalgError, Matrix, ParallelPolicy, Standardizer};
use std::path::Path;

/// Newest artifact schema version this build reads and writes.
pub const ARTIFACT_SCHEMA_VERSION: u32 = 1;

/// Which of the paper's four energy models produced an artifact's weights.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ModelKind {
    /// Baseline binary RBM (plain CD).
    Rbm,
    /// Baseline Gaussian-visible GRBM (plain CD).
    Grbm,
    /// Self-learning local supervision RBM.
    SlsRbm,
    /// Self-learning local supervision GRBM.
    SlsGrbm,
}

impl ModelKind {
    /// Stable lower-case name, used in CLI arguments and API responses.
    pub fn as_str(self) -> &'static str {
        match self {
            ModelKind::Rbm => "rbm",
            ModelKind::Grbm => "grbm",
            ModelKind::SlsRbm => "sls-rbm",
            ModelKind::SlsGrbm => "sls-grbm",
        }
    }

    /// Parses the name produced by [`ModelKind::as_str`].
    pub fn parse(name: &str) -> Option<Self> {
        match name {
            "rbm" => Some(ModelKind::Rbm),
            "grbm" => Some(ModelKind::Grbm),
            "sls-rbm" => Some(ModelKind::SlsRbm),
            "sls-grbm" => Some(ModelKind::SlsGrbm),
            _ => None,
        }
    }

    /// The visible-layer kind of this model.
    pub fn visible_kind(self) -> VisibleKind {
        match self {
            ModelKind::Rbm | ModelKind::SlsRbm => VisibleKind::Binary,
            ModelKind::Grbm | ModelKind::SlsGrbm => VisibleKind::Gaussian,
        }
    }

    /// `true` for the models trained with the sls objective.
    pub fn is_sls(self) -> bool {
        matches!(self, ModelKind::SlsRbm | ModelKind::SlsGrbm)
    }
}

/// Fitted preprocessing statistics, applied to unseen rows at inference time.
///
/// The variants mirror [`Preprocessing`], but carry the statistics captured
/// on the *training* data instead of re-deriving them per request.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum FittedPreprocessor {
    /// Column standardisation with the training-time means and deviations.
    Standardize(Standardizer),
    /// Median binarisation with the training-time column thresholds.
    BinarizeMedian(MedianBinarizer),
    /// Pass rows through unchanged.
    Identity,
}

impl FittedPreprocessor {
    /// Fits the preprocessor matching `preprocessing` on `data`.
    ///
    /// # Errors
    ///
    /// Returns an error if `data` is empty and the step needs statistics.
    pub fn fit(preprocessing: Preprocessing, data: &Matrix) -> Result<Self> {
        Ok(match preprocessing {
            Preprocessing::Standardize => FittedPreprocessor::Standardize(Standardizer::fit(data)?),
            Preprocessing::BinarizeMedian => {
                FittedPreprocessor::BinarizeMedian(MedianBinarizer::fit(data))
            }
            Preprocessing::None => FittedPreprocessor::Identity,
        })
    }

    /// The corresponding (unfitted) [`Preprocessing`] step.
    pub fn kind(&self) -> Preprocessing {
        match self {
            FittedPreprocessor::Standardize(_) => Preprocessing::Standardize,
            FittedPreprocessor::BinarizeMedian(_) => Preprocessing::BinarizeMedian,
            FittedPreprocessor::Identity => Preprocessing::None,
        }
    }

    /// Applies the fitted transformation to `rows` under the process-wide
    /// [`ParallelPolicy::global`]; see [`FittedPreprocessor::transform_with`]
    /// for an explicit policy.
    ///
    /// # Errors
    ///
    /// Returns a shape error if `rows` has a different column count than the
    /// data the preprocessor was fitted on.
    pub fn transform(&self, rows: &Matrix) -> Result<Matrix> {
        self.transform_with(rows, &ParallelPolicy::global())
    }

    /// [`FittedPreprocessor::transform`] under an explicit parallel
    /// execution policy: rows transform independently (row-wise map in the
    /// linalg layer), so results are bitwise identical for every policy.
    /// This puts the serving path's preprocessing on the same worker pool
    /// as its matmul instead of leaving it the only serial stage.
    ///
    /// # Errors
    ///
    /// Returns a shape error if `rows` has a different column count than the
    /// data the preprocessor was fitted on.
    pub fn transform_with(&self, rows: &Matrix, parallel: &ParallelPolicy) -> Result<Matrix> {
        match self {
            FittedPreprocessor::Standardize(s) => Ok(s.transform_with(rows, parallel)?),
            FittedPreprocessor::BinarizeMedian(b) => {
                b.transform_with(rows, parallel)
                    .map_err(|e| RbmError::InvalidConfig {
                        name: "preprocessing",
                        message: e.to_string(),
                    })
            }
            FittedPreprocessor::Identity => Ok(rows.clone()),
        }
    }
}

/// The fitted downstream clusterer: centroids in hidden-feature space.
///
/// Serving assigns a row to its nearest centroid, which reproduces the final
/// assignment step of the k-means run that produced the centroids (both use
/// first-wins tie-breaking over the same centre order).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterHead {
    /// Name of the algorithm that produced the centroids.
    pub algorithm: String,
    /// Number of clusters the algorithm targeted.
    pub n_clusters: usize,
    /// Cluster centroids, one row per cluster, in hidden-feature space.
    pub centroids: Matrix,
}

impl ClusterHead {
    /// Runs k-means on `features` and captures the resulting centroids.
    ///
    /// Returns the head together with the training-time labels so callers
    /// can report or verify the in-process assignment.
    ///
    /// # Errors
    ///
    /// Propagates k-means errors (empty data, too many clusters, ...).
    pub fn fit_kmeans(
        features: &Matrix,
        n_clusters: usize,
        rng: &mut impl Rng,
    ) -> Result<(Self, Vec<usize>)> {
        let outcome = KMeans::new(n_clusters).fit(features, rng)?;
        let labels = outcome.assignment.labels().to_vec();
        let head = Self {
            algorithm: outcome.assignment.algorithm().to_string(),
            n_clusters,
            centroids: outcome.assignment.centers().clone(),
        };
        Ok((head, labels))
    }

    /// Assigns every row of `features` to its nearest centroid.
    ///
    /// # Errors
    ///
    /// Returns a shape error if the feature width differs from the centroid
    /// width, or [`RbmError::MissingArtifactPart`] if there are no centroids.
    pub fn assign(&self, features: &Matrix) -> Result<Vec<usize>> {
        if features.cols() != self.centroids.cols() {
            return Err(RbmError::Linalg(LinalgError::ShapeMismatch {
                op: "ClusterHead::assign",
                left: features.shape(),
                right: (1, self.centroids.cols()),
            }));
        }
        features
            .row_iter()
            .map(|row| {
                self.centroids
                    .nearest_row(row)
                    .ok_or(RbmError::MissingArtifactPart {
                        part: "cluster centroids",
                    })
            })
            .collect()
    }
}

/// A trained pipeline packaged for persistence and serving.
///
/// See the [module documentation](self) for the schema and versioning
/// policy.
#[derive(Debug, Clone, PartialEq)]
pub struct PipelineArtifact {
    /// Schema version the artifact was written with.
    pub schema_version: u32,
    /// Which model produced the weights.
    pub model_kind: ModelKind,
    /// Trained energy-model parameters.
    pub params: RbmParams,
    /// Fitted preprocessing statistics.
    pub preprocessor: FittedPreprocessor,
    /// Fitted downstream clusterer (`None` if the artifact only extracts
    /// features).
    pub cluster_head: Option<ClusterHead>,
    /// The configuration the pipeline was trained with (`None` for artifacts
    /// converted from param-only snapshots).
    pub train_config: Option<SlsPipelineConfig>,
    /// When the pipeline was trained (free-form timestamp set by the
    /// exporter, e.g. `2026-08-07T12:00:00Z`). Optional and additive:
    /// pre-provenance artifacts deserialise to `None`, unset provenance is
    /// not written at all, and the schema version is unchanged.
    pub trained_at: Option<String>,
    /// Where the artifact came from (exporter command line, training job
    /// id, dataset tag, ...). Same compatibility rules as `trained_at`.
    pub source: Option<String>,
}

// Hand-written (de)serialisation instead of the derive: the vendored derive
// requires every field to be present, but `trained_at` / `source` are
// additive — pre-provenance artifacts must keep loading, and unset
// provenance must not be written (so artifacts from builds that never set
// it stay byte-identical to what those builds produced).
impl Serialize for PipelineArtifact {
    fn to_value(&self) -> serde::Value {
        let mut entries = vec![
            ("schema_version".to_string(), self.schema_version.to_value()),
            ("model_kind".to_string(), self.model_kind.to_value()),
            ("params".to_string(), self.params.to_value()),
            ("preprocessor".to_string(), self.preprocessor.to_value()),
            ("cluster_head".to_string(), self.cluster_head.to_value()),
            ("train_config".to_string(), self.train_config.to_value()),
        ];
        if self.trained_at.is_some() {
            entries.push(("trained_at".to_string(), self.trained_at.to_value()));
        }
        if self.source.is_some() {
            entries.push(("source".to_string(), self.source.to_value()));
        }
        serde::Value::Object(entries)
    }
}

impl Deserialize for PipelineArtifact {
    fn from_value(value: &serde::Value) -> std::result::Result<Self, serde::DeError> {
        let entries = value
            .as_object()
            .ok_or_else(|| serde::DeError::mismatch("object", value))?;
        let optional = |name: &str| -> std::result::Result<Option<String>, serde::DeError> {
            match entries.iter().find(|(key, _)| key == name) {
                Some((_, v)) => Deserialize::from_value(v),
                None => Ok(None),
            }
        };
        Ok(Self {
            schema_version: Deserialize::from_value(serde::field(entries, "schema_version")?)?,
            model_kind: Deserialize::from_value(serde::field(entries, "model_kind")?)?,
            params: Deserialize::from_value(serde::field(entries, "params")?)?,
            preprocessor: Deserialize::from_value(serde::field(entries, "preprocessor")?)?,
            cluster_head: Deserialize::from_value(serde::field(entries, "cluster_head")?)?,
            train_config: Deserialize::from_value(serde::field(entries, "train_config")?)?,
            trained_at: optional("trained_at")?,
            source: optional("source")?,
        })
    }
}

/// Everything [`PipelineArtifact::fit`] produces: the artifact plus the
/// training-time outcome and cluster labels for inspection and verification.
#[derive(Debug, Clone)]
pub struct FittedPipeline {
    /// The packaged artifact.
    pub artifact: PipelineArtifact,
    /// The raw pipeline outcome (features, history, supervision summary).
    pub outcome: PipelineOutcome,
    /// In-process cluster labels of the training rows, from the same k-means
    /// run whose centroids the artifact serves.
    pub assignments: Vec<usize>,
}

impl PipelineArtifact {
    /// Wraps bare parameters in a current-schema artifact with no fitted
    /// preprocessor and no cluster head.
    ///
    /// Param-only snapshots do not record the model kind; callers that know
    /// it should pass the right one, legacy loads default to
    /// [`ModelKind::Rbm`] (the kind only affects metadata — hidden-feature
    /// extraction is identical across kinds because the hidden layer is
    /// always sigmoid).
    pub fn from_params(params: RbmParams, model_kind: ModelKind) -> Self {
        Self {
            schema_version: ARTIFACT_SCHEMA_VERSION,
            model_kind,
            params,
            preprocessor: FittedPreprocessor::Identity,
            cluster_head: None,
            train_config: None,
            trained_at: None,
            source: None,
        }
    }

    /// Attaches provenance metadata (shown by the serving layer's
    /// `GET /models`): when the artifact was trained and where it came
    /// from. Either may be `None` to leave the field unset.
    pub fn with_provenance(mut self, trained_at: Option<String>, source: Option<String>) -> Self {
        self.trained_at = trained_at;
        self.source = source;
        self
    }

    /// Trains the pipeline selected by `model_kind` on `data` (one row per
    /// instance), fits the preprocessor and a k-means cluster head, and
    /// packages the result.
    ///
    /// # Errors
    ///
    /// Propagates preprocessing, supervision, training and clustering
    /// errors.
    pub fn fit(
        model_kind: ModelKind,
        config: SlsPipelineConfig,
        data: &Matrix,
        rng: &mut impl Rng,
    ) -> Result<FittedPipeline> {
        let outcome = match model_kind {
            ModelKind::Rbm => RbmPipeline::new(config).run(data, rng)?,
            ModelKind::Grbm => GrbmPipeline::new(config).run(data, rng)?,
            ModelKind::SlsRbm => SlsRbmPipeline::new(config).run(data, rng)?,
            ModelKind::SlsGrbm => SlsGrbmPipeline::new(config).run(data, rng)?,
        };
        // Reuse the preprocessor the pipeline fitted during training — one
        // preprocessing path, so served transforms are the training-time
        // transforms by construction.
        let preprocessor = outcome.preprocessor.clone();
        let (cluster_head, assignments) =
            ClusterHead::fit_kmeans(&outcome.hidden_features, config.n_clusters, rng)?;
        let artifact = Self {
            schema_version: ARTIFACT_SCHEMA_VERSION,
            model_kind,
            params: outcome.model_params.clone(),
            preprocessor,
            cluster_head: Some(cluster_head),
            train_config: Some(config),
            trained_at: None,
            source: None,
        };
        Ok(FittedPipeline {
            artifact,
            outcome,
            assignments,
        })
    }

    /// Number of visible units (raw feature columns the artifact expects).
    pub fn n_visible(&self) -> usize {
        self.params.n_visible()
    }

    /// Number of hidden units (feature columns the artifact produces).
    pub fn n_hidden(&self) -> usize {
        self.params.n_hidden()
    }

    /// Hidden-feature extraction for a batch of raw rows: fitted
    /// preprocessing followed by `sigmoid(v W + b)`.
    ///
    /// All rows go through one matrix multiply, so serving a request with
    /// hundreds of rows costs one blocked matmul rather than N vector
    /// products. Runs under the process-wide
    /// [`sls_linalg::ParallelPolicy::global`]; servers with a configured
    /// policy use [`Self::features_with`].
    ///
    /// # Errors
    ///
    /// Returns shape errors if `rows` does not match the visible layer.
    pub fn features(&self, rows: &Matrix) -> Result<Matrix> {
        self.features_with(rows, &ParallelPolicy::global())
    }

    /// [`Self::features`] under an explicit parallel execution policy — the
    /// serving micro-batch hot path. Results are bitwise identical for
    /// every policy.
    ///
    /// # Errors
    ///
    /// Returns shape errors if `rows` does not match the visible layer.
    pub fn features_with(&self, rows: &Matrix, parallel: &ParallelPolicy) -> Result<Matrix> {
        let pre = self.preprocessor.transform_with(rows, parallel)?;
        self.params.check_data(&pre)?;
        let logits = pre.matmul_with(&self.params.weights, parallel)?;
        // Bias broadcast and sigmoid fused into one row-wise pass, matching
        // `BoltzmannMachine::hidden_probabilities_with` bit for bit.
        let bias = &self.params.hidden_bias;
        let simd = parallel.simd;
        Ok(logits.map_rows_with(bias.len(), parallel, |_, row, out| {
            sls_linalg::simd::fused_bias_sigmoid(row, bias, out, simd);
        }))
    }

    /// Cluster assignment for a batch of raw rows: [`Self::features`]
    /// followed by nearest-centroid lookup in the cluster head.
    ///
    /// # Errors
    ///
    /// Returns [`RbmError::MissingArtifactPart`] if the artifact has no
    /// cluster head, and shape errors if `rows` does not match the visible
    /// layer.
    pub fn assign(&self, rows: &Matrix) -> Result<Vec<usize>> {
        self.assign_with(rows, &ParallelPolicy::global())
    }

    /// [`Self::assign`] under an explicit parallel execution policy.
    ///
    /// # Errors
    ///
    /// Same as [`Self::assign`].
    pub fn assign_with(&self, rows: &Matrix, parallel: &ParallelPolicy) -> Result<Vec<usize>> {
        let head = self
            .cluster_head
            .as_ref()
            .ok_or(RbmError::MissingArtifactPart {
                part: "cluster head",
            })?;
        head.assign(&self.features_with(rows, parallel)?)
    }

    /// Serialises the artifact as pretty-printed JSON.
    ///
    /// # Errors
    ///
    /// Returns serialisation errors.
    pub fn to_json_pretty(&self) -> Result<String> {
        Ok(serde_json::to_string_pretty(self)?)
    }

    /// Parses an artifact from JSON text.
    ///
    /// Accepts both the current artifact schema (any version up to
    /// [`ARTIFACT_SCHEMA_VERSION`]) and the legacy param-only snapshot
    /// format, which is wrapped via [`Self::from_params`].
    ///
    /// # Errors
    ///
    /// Returns [`RbmError::UnsupportedSchemaVersion`] for artifacts written
    /// by a newer build, [`RbmError::InvalidConfig`] if the parameters'
    /// bias lengths disagree with their weight matrix, and deserialisation
    /// errors for malformed input.
    pub fn from_json(text: &str) -> Result<Self> {
        /// Minimal probe: an object with a `schema_version` field is an
        /// artifact (extra fields are ignored by the facade's derive), while
        /// a legacy param-only snapshot lacks the field and fails the probe.
        #[derive(Deserialize)]
        struct SchemaProbe {
            schema_version: u32,
        }

        if let Ok(probe) = serde_json::from_str::<SchemaProbe>(text) {
            if probe.schema_version > ARTIFACT_SCHEMA_VERSION {
                return Err(RbmError::UnsupportedSchemaVersion {
                    found: probe.schema_version,
                    supported: ARTIFACT_SCHEMA_VERSION,
                });
            }
            let artifact = serde_json::from_str::<PipelineArtifact>(text)?;
            // Reject bias/weight shape disagreements here, once, instead of
            // panicking inside a fused activation pass on the first request
            // served from the malformed file.
            artifact.params.check_consistent()?;
            return Ok(artifact);
        }
        let params: RbmParams = serde_json::from_str(text)?;
        params.check_consistent()?;
        Ok(Self::from_params(params, ModelKind::Rbm))
    }

    /// Writes the artifact as JSON, creating parent directories if needed.
    ///
    /// # Errors
    ///
    /// Returns I/O or serialisation errors.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<()> {
        let path = path.as_ref();
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        std::fs::write(path, self.to_json_pretty()?)?;
        Ok(())
    }

    /// Reads an artifact (or a legacy param-only snapshot) from a JSON file.
    ///
    /// # Errors
    ///
    /// Same as [`Self::from_json`], plus I/O errors.
    pub fn load(path: impl AsRef<Path>) -> Result<Self> {
        let text = std::fs::read_to_string(path)?;
        Self::from_json(&text)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use sls_datasets::SyntheticBlobs;

    fn rng() -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(606)
    }

    fn fitted() -> FittedPipeline {
        let mut r = rng();
        let ds = SyntheticBlobs::new(45, 5, 3)
            .separation(6.0)
            .generate(&mut r);
        PipelineArtifact::fit(
            ModelKind::SlsGrbm,
            SlsPipelineConfig::quick_demo(),
            ds.features(),
            &mut r,
        )
        .unwrap()
    }

    #[test]
    fn model_kind_names_round_trip() {
        for kind in [
            ModelKind::Rbm,
            ModelKind::Grbm,
            ModelKind::SlsRbm,
            ModelKind::SlsGrbm,
        ] {
            assert_eq!(ModelKind::parse(kind.as_str()), Some(kind));
        }
        assert_eq!(ModelKind::parse("nope"), None);
        assert_eq!(ModelKind::Rbm.visible_kind(), VisibleKind::Binary);
        assert_eq!(ModelKind::SlsGrbm.visible_kind(), VisibleKind::Gaussian);
        assert!(ModelKind::SlsRbm.is_sls());
        assert!(!ModelKind::Grbm.is_sls());
    }

    #[test]
    fn fit_packages_a_complete_servable_artifact() {
        let f = fitted();
        let a = &f.artifact;
        assert_eq!(a.schema_version, ARTIFACT_SCHEMA_VERSION);
        assert_eq!(a.model_kind, ModelKind::SlsGrbm);
        assert_eq!(a.n_visible(), 5);
        assert_eq!(a.n_hidden(), 12);
        assert_eq!(a.preprocessor.kind(), Preprocessing::Standardize);
        let head = a.cluster_head.as_ref().unwrap();
        assert_eq!(head.n_clusters, 3);
        assert_eq!(head.centroids.shape(), (3, 12));
        assert_eq!(a.train_config.unwrap().n_clusters, 3);
        assert_eq!(f.assignments.len(), 45);
    }

    #[test]
    fn artifact_inference_matches_training_time_pipeline() {
        let mut r = rng();
        let ds = SyntheticBlobs::new(45, 5, 3)
            .separation(6.0)
            .generate(&mut r);
        let f = PipelineArtifact::fit(
            ModelKind::SlsGrbm,
            SlsPipelineConfig::quick_demo(),
            ds.features(),
            &mut r,
        )
        .unwrap();
        // Re-running inference on the raw training rows must reproduce the
        // training-time hidden features and cluster labels exactly: the
        // preprocessor refits to identical statistics and the cluster head
        // repeats k-means' final nearest-centroid assignment.
        let features = f.artifact.features(ds.features()).unwrap();
        assert_eq!(features, f.outcome.hidden_features);
        let assignments = f.artifact.assign(ds.features()).unwrap();
        assert_eq!(assignments, f.assignments);
    }

    #[test]
    fn save_load_round_trip_preserves_everything() {
        let f = fitted();
        let dir = std::env::temp_dir().join("sls_rbm_artifact_round_trip");
        let path = dir.join("nested").join("model.json");
        f.artifact.save(&path).unwrap();
        let back = PipelineArtifact::load(&path).unwrap();
        assert_eq!(back, f.artifact);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn legacy_param_only_snapshot_loads_as_artifact() {
        let params = RbmParams::init(6, 3, &mut rng());
        let json = serde_json::to_string_pretty(&params).unwrap();
        let a = PipelineArtifact::from_json(&json).unwrap();
        assert_eq!(a.params, params);
        assert_eq!(a.schema_version, ARTIFACT_SCHEMA_VERSION);
        assert_eq!(a.model_kind, ModelKind::Rbm);
        assert_eq!(a.preprocessor, FittedPreprocessor::Identity);
        assert!(a.cluster_head.is_none());
        assert!(a.train_config.is_none());
    }

    #[test]
    fn mismatched_bias_lengths_are_rejected_at_load() {
        // A malformed artifact whose hidden_bias disagrees with the weight
        // matrix must fail at load, not panic inside the fused activation
        // pass on the first request served from it.
        let mut artifact = fitted().artifact;
        artifact.params.hidden_bias.pop();
        let json = artifact.to_json_pretty().unwrap();
        assert!(matches!(
            PipelineArtifact::from_json(&json),
            Err(RbmError::InvalidConfig { name: "params", .. })
        ));
        // Legacy param-only snapshots get the same check.
        let mut params = RbmParams::init(4, 2, &mut rng());
        params.visible_bias.push(0.0);
        let legacy = serde_json::to_string(&params).unwrap();
        assert!(matches!(
            PipelineArtifact::from_json(&legacy),
            Err(RbmError::InvalidConfig { name: "params", .. })
        ));
    }

    #[test]
    fn provenance_round_trips_and_stays_optional() {
        let plain = fitted().artifact;
        assert_eq!(plain.trained_at, None);
        assert_eq!(plain.source, None);
        // Unset provenance is not serialised at all, so pre-provenance
        // consumers see byte-identical artifacts.
        assert!(!plain.to_json_pretty().unwrap().contains("trained_at"));
        let tagged = plain.clone().with_provenance(
            Some("2026-08-07T00:00:00Z".into()),
            Some("unit test".into()),
        );
        let back = PipelineArtifact::from_json(&tagged.to_json_pretty().unwrap()).unwrap();
        assert_eq!(back, tagged);
        assert_eq!(back.trained_at.as_deref(), Some("2026-08-07T00:00:00Z"));
        assert_eq!(back.source.as_deref(), Some("unit test"));
        // An artifact written before the fields existed still loads.
        let legacy = PipelineArtifact::from_json(&plain.to_json_pretty().unwrap()).unwrap();
        assert_eq!(legacy.trained_at, None);
    }

    #[test]
    fn newer_schema_version_is_rejected() {
        let f = fitted();
        let json = f
            .artifact
            .to_json_pretty()
            .unwrap()
            .replace("\"schema_version\": 1", "\"schema_version\": 999");
        match PipelineArtifact::from_json(&json) {
            Err(RbmError::UnsupportedSchemaVersion { found, supported }) => {
                assert_eq!(found, 999);
                assert_eq!(supported, ARTIFACT_SCHEMA_VERSION);
            }
            other => panic!("expected UnsupportedSchemaVersion, got {other:?}"),
        }
    }

    #[test]
    fn malformed_json_errors() {
        assert!(matches!(
            PipelineArtifact::from_json("{ not json }"),
            Err(RbmError::Serde(_))
        ));
    }

    #[test]
    fn assign_without_cluster_head_errors() {
        let a = PipelineArtifact::from_params(RbmParams::init(4, 2, &mut rng()), ModelKind::Rbm);
        let rows = Matrix::zeros(3, 4);
        assert!(a.features(&rows).is_ok());
        assert!(matches!(
            a.assign(&rows),
            Err(RbmError::MissingArtifactPart { .. })
        ));
    }

    #[test]
    fn inference_rejects_wrong_width_rows() {
        let f = fitted();
        assert!(f.artifact.features(&Matrix::zeros(2, 9)).is_err());
        assert!(f.artifact.assign(&Matrix::zeros(2, 9)).is_err());
    }

    #[test]
    fn preprocessor_transform_with_matches_serial_for_every_variant() {
        let train = Matrix::from_fn(20, 6, |i, j| (i as f64) * 0.3 - (j as f64) * 1.7);
        let unseen = Matrix::from_fn(33, 6, |i, j| (i as f64) * 0.9 + (j as f64));
        let variants = [
            FittedPreprocessor::fit(Preprocessing::Standardize, &train).unwrap(),
            FittedPreprocessor::fit(Preprocessing::BinarizeMedian, &train).unwrap(),
            FittedPreprocessor::fit(Preprocessing::None, &train).unwrap(),
        ];
        for pre in &variants {
            let serial = pre
                .transform_with(&unseen, &ParallelPolicy::serial())
                .unwrap();
            for pool in [false, true] {
                let policy = ParallelPolicy::new(4)
                    .with_min_rows_per_thread(1)
                    .with_pool(pool);
                let par = pre.transform_with(&unseen, &policy).unwrap();
                let same = serial
                    .as_slice()
                    .iter()
                    .zip(par.as_slice())
                    .all(|(a, b)| a.to_bits() == b.to_bits());
                assert!(same, "{:?} pool = {pool}", pre.kind());
            }
        }
    }

    #[test]
    fn pooled_inference_is_bitwise_identical_to_serial() {
        let f = fitted();
        let rows = Matrix::from_fn(48, 5, |i, j| (i as f64) * 0.11 - (j as f64) * 0.7);
        let serial = f
            .artifact
            .features_with(&rows, &ParallelPolicy::serial())
            .unwrap();
        let serial_assign = f
            .artifact
            .assign_with(&rows, &ParallelPolicy::serial())
            .unwrap();
        for pool in [false, true] {
            let policy = ParallelPolicy::new(4)
                .with_min_rows_per_thread(1)
                .with_pool(pool);
            let par = f.artifact.features_with(&rows, &policy).unwrap();
            let same = serial
                .as_slice()
                .iter()
                .zip(par.as_slice())
                .all(|(a, b)| a.to_bits() == b.to_bits());
            assert!(same, "pool = {pool}");
            assert_eq!(
                f.artifact.assign_with(&rows, &policy).unwrap(),
                serial_assign,
                "pool = {pool}"
            );
        }
    }

    #[test]
    fn cluster_head_assign_is_nearest_centroid() {
        let head = ClusterHead {
            algorithm: "K-means".into(),
            n_clusters: 2,
            centroids: Matrix::from_rows(&[vec![0.0, 0.0], vec![10.0, 10.0]]).unwrap(),
        };
        let features =
            Matrix::from_rows(&[vec![1.0, 1.0], vec![9.0, 9.5], vec![4.9, 5.0]]).unwrap();
        assert_eq!(head.assign(&features).unwrap(), vec![0, 1, 0]);
        assert!(head.assign(&Matrix::zeros(1, 3)).is_err());
    }
}
