//! Model persistence: save and load [`RbmParams`] as JSON.
//!
//! JSON keeps the snapshots human-inspectable and avoids any additional
//! binary-format dependency; the matrices involved (≤ ~900 × 64) stay well
//! within comfortable JSON sizes.

use crate::{RbmParams, Result};
use std::path::Path;

/// Serialises parameters to a JSON file, creating parent directories if
/// needed.
///
/// # Errors
///
/// Returns I/O or serialisation errors.
pub fn save_params_json(params: &RbmParams, path: impl AsRef<Path>) -> Result<()> {
    let path = path.as_ref();
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    let json = serde_json::to_string_pretty(params)?;
    std::fs::write(path, json)?;
    Ok(())
}

/// Loads parameters from a JSON file produced by [`save_params_json`].
///
/// # Errors
///
/// Returns I/O or deserialisation errors.
pub fn load_params_json(path: impl AsRef<Path>) -> Result<RbmParams> {
    let json = std::fs::read_to_string(path)?;
    Ok(serde_json::from_str(&json)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::RbmParams;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn save_and_load_round_trip() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let params = RbmParams::init(7, 3, &mut rng);
        let dir = std::env::temp_dir().join("sls_rbm_model_io_test");
        let path = dir.join("nested").join("model.json");
        save_params_json(&params, &path).unwrap();
        let loaded = load_params_json(&path).unwrap();
        assert_eq!(loaded, params);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn loading_missing_file_errors() {
        assert!(load_params_json("/nonexistent/not_a_model.json").is_err());
    }

    #[test]
    fn loading_corrupt_json_errors() {
        let dir = std::env::temp_dir().join("sls_rbm_model_io_corrupt");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bad.json");
        std::fs::write(&path, "{ not json }").unwrap();
        let err = load_params_json(&path).unwrap_err();
        assert!(matches!(err, crate::RbmError::Serde(_)));
        std::fs::remove_dir_all(&dir).ok();
    }
}
