//! Parameter-level persistence, kept for backward compatibility.
//!
//! These helpers predate [`crate::PipelineArtifact`] and are now thin
//! wrappers over it, so the workspace has exactly one serialisation path:
//!
//! * [`save_params_json`] writes a current-schema artifact that carries only
//!   the parameters (no fitted preprocessor, no cluster head).
//! * [`load_params_json`] reads *either* format — a full artifact (the
//!   parameters are extracted) or a pre-artifact param-only snapshot.
//!
//! New code should use [`crate::PipelineArtifact`] directly: it additionally
//! persists the fitted preprocessing statistics, model kind and cluster
//! head, which are required to serve inference requests.

use crate::artifact::{ModelKind, PipelineArtifact};
use crate::{RbmParams, Result};
use std::path::Path;

/// Serialises parameters to a JSON file, creating parent directories if
/// needed.
///
/// The file is a [`PipelineArtifact`] carrying only the parameters. The
/// param-only API cannot know which model produced them, so the artifact's
/// kind defaults to [`ModelKind::Rbm`]; prefer building an artifact directly
/// when the kind matters.
///
/// # Errors
///
/// Returns I/O or serialisation errors.
pub fn save_params_json(params: &RbmParams, path: impl AsRef<Path>) -> Result<()> {
    PipelineArtifact::from_params(params.clone(), ModelKind::Rbm).save(path)
}

/// Loads parameters from a JSON file: either a full [`PipelineArtifact`] or
/// a legacy param-only snapshot produced before the artifact schema existed.
///
/// # Errors
///
/// Returns I/O or deserialisation errors.
pub fn load_params_json(path: impl AsRef<Path>) -> Result<RbmParams> {
    Ok(PipelineArtifact::load(path)?.params)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::RbmParams;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn save_and_load_round_trip() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let params = RbmParams::init(7, 3, &mut rng);
        let dir = std::env::temp_dir().join("sls_rbm_model_io_test");
        let path = dir.join("nested").join("model.json");
        save_params_json(&params, &path).unwrap();
        let loaded = load_params_json(&path).unwrap();
        assert_eq!(loaded, params);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn saved_files_are_versioned_artifacts() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let params = RbmParams::init(4, 2, &mut rng);
        let dir = std::env::temp_dir().join("sls_rbm_model_io_artifact");
        let path = dir.join("model.json");
        save_params_json(&params, &path).unwrap();
        let artifact = PipelineArtifact::load(&path).unwrap();
        assert_eq!(artifact.schema_version, crate::ARTIFACT_SCHEMA_VERSION);
        assert_eq!(artifact.params, params);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn loads_pre_artifact_param_only_snapshot() {
        // A literal snapshot in the format `save_params_json` wrote before
        // the artifact schema existed: bare `RbmParams` JSON, no
        // `schema_version` field. This must stay loadable forever.
        let snapshot = r#"{
  "weights": { "rows": 2, "cols": 2, "data": [0.25, -0.5, 0.125, 1.0] },
  "visible_bias": [0.0, -1.5],
  "hidden_bias": [2.0, 0.5]
}"#;
        let dir = std::env::temp_dir().join("sls_rbm_model_io_legacy");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("legacy.json");
        std::fs::write(&path, snapshot).unwrap();
        let params = load_params_json(&path).unwrap();
        assert_eq!(params.n_visible(), 2);
        assert_eq!(params.n_hidden(), 2);
        assert_eq!(params.weights[(0, 1)], -0.5);
        assert_eq!(params.visible_bias, vec![0.0, -1.5]);
        assert_eq!(params.hidden_bias, vec![2.0, 0.5]);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn loading_missing_file_errors() {
        assert!(load_params_json("/nonexistent/not_a_model.json").is_err());
    }

    #[test]
    fn loading_corrupt_json_errors() {
        let dir = std::env::temp_dir().join("sls_rbm_model_io_corrupt");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bad.json");
        std::fs::write(&path, "{ not json }").unwrap();
        let err = load_params_json(&path).unwrap_err();
        assert!(matches!(err, crate::RbmError::Serde(_)));
        std::fs::remove_dir_all(&dir).ok();
    }
}
