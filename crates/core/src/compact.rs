//! Compact (f32-quantized) serving representation.
//!
//! A serving node that holds hundreds of models is bounded by parameter
//! memory, and the dominant term is the `n_visible × n_hidden` weight
//! matrix stored as `f64`. [`CompactParams`] stores the weights and hidden
//! biases as `f32` — half the bytes — while keeping all *arithmetic* in
//! `f64`: every weight is widened back with `f64::from` before it enters
//! the dot product, and the accumulator, bias add and sigmoid are the same
//! `f64` operations the full path uses. The only difference from the full
//! path is the one rounding step at quantization time, which gives a tight,
//! analyzable error bound instead of an accumulating one:
//!
//! * each weight/bias is off by at most one f32 ulp, i.e. a relative error
//!   of `2^-24 ≈ 6e-8`;
//! * a row of `n` products accumulates at most `n · 2^-24 · max|w| · max|v|`
//!   absolute pre-activation error (the f64 accumulation itself adds
//!   nothing on top of what the full path already incurs);
//! * the sigmoid is ¼-Lipschitz, so the activation error is at most a
//!   quarter of the pre-activation error.
//!
//! For the layer sizes this crate trains (hundreds of visible units,
//! standardized inputs, |w| ≲ 1) that lands far below the **documented
//! serving bound of `1e-6 · (1 + |full|)` per feature element**, which the
//! property suite (`tests/compact_properties.rs`) enforces across every
//! endpoint and parallel policy.
//!
//! The compact forward pass runs through the same row-partitioned
//! [`Matrix::map_rows_with`] dispatch as the full path, with a scalar
//! ascending-`k` accumulation per output element. Rows are independent and
//! the reduction order is fixed, so compact results are **bitwise identical
//! across {serial, spawn, pool} × {simd on, off}** by construction — the
//! serving layer's identity discipline holds for quantized models too.
//!
//! [`CompactParams`] is a *serving* form, not a persistence form: artifacts
//! on disk stay full-precision `f64` JSON (schema unchanged), and the
//! registry quantizes at load time when compact mode is selected. Nothing
//! lossy ever round-trips back to disk.

use crate::{
    ClusterHead, FittedPreprocessor, ModelKind, PipelineArtifact, RbmError, RbmParams, Result,
};
use sls_linalg::{Matrix, ParallelPolicy};

/// f32-quantized RBM parameters for serving: weights (row-major,
/// `n_visible × n_hidden`) and hidden biases. The visible biases are not
/// carried — the serving endpoints only ever run the upward pass
/// `sigmoid(v W + b)`, which never reads them.
#[derive(Debug, Clone, PartialEq)]
pub struct CompactParams {
    n_visible: usize,
    n_hidden: usize,
    weights: Vec<f32>,
    hidden_bias: Vec<f32>,
}

impl CompactParams {
    /// Quantizes full-precision parameters to the compact serving form.
    ///
    /// Each value is rounded to the nearest `f32` (at most one ulp, i.e.
    /// `2^-24` relative error); see the [module docs](self) for how that
    /// propagates through the forward pass.
    pub fn from_params(params: &RbmParams) -> Self {
        let n_visible = params.n_visible();
        let n_hidden = params.n_hidden();
        Self {
            n_visible,
            n_hidden,
            weights: params
                .weights
                .as_slice()
                .iter()
                .map(|&w| w as f32)
                .collect(),
            hidden_bias: params.hidden_bias.iter().map(|&b| b as f32).collect(),
        }
    }

    /// Number of visible units (raw feature columns expected).
    pub fn n_visible(&self) -> usize {
        self.n_visible
    }

    /// Number of hidden units (feature columns produced).
    pub fn n_hidden(&self) -> usize {
        self.n_hidden
    }

    /// Bytes of parameter payload this representation holds — the number a
    /// capacity planner compares against the full form's
    /// [`RbmParams::param_bytes`].
    pub fn param_bytes(&self) -> usize {
        (self.weights.len() + self.hidden_bias.len()) * std::mem::size_of::<f32>()
    }

    /// Checks that a (preprocessed) data matrix matches the visible layer.
    ///
    /// # Errors
    ///
    /// Returns [`RbmError::VisibleSizeMismatch`] or [`RbmError::EmptyData`],
    /// mirroring [`RbmParams::check_data`].
    pub fn check_data(&self, data: &Matrix) -> Result<()> {
        if data.rows() == 0 {
            return Err(RbmError::EmptyData);
        }
        if data.cols() != self.n_visible {
            return Err(RbmError::VisibleSizeMismatch {
                data: data.cols(),
                model: self.n_visible,
            });
        }
        Ok(())
    }

    /// The upward pass `sigmoid(v W + b)` over quantized parameters, for
    /// already-preprocessed rows.
    ///
    /// Per output element the products accumulate in `f64` in ascending-`k`
    /// order and the sigmoid is the shared [`sls_linalg::simd::sigmoid`];
    /// neither depends on the policy's thread count or simd knob, so the
    /// result is bitwise identical for every [`ParallelPolicy`].
    ///
    /// # Errors
    ///
    /// Returns shape errors if `pre` does not match the visible layer.
    pub fn hidden_features_with(&self, pre: &Matrix, parallel: &ParallelPolicy) -> Result<Matrix> {
        self.check_data(pre)?;
        let n_hidden = self.n_hidden;
        let weights = &self.weights;
        let bias = &self.hidden_bias;
        Ok(pre.map_rows_with(n_hidden, parallel, |_, row, out| {
            for (k, &v) in row.iter().enumerate() {
                let wrow = &weights[k * n_hidden..(k + 1) * n_hidden];
                for (o, &w) in out.iter_mut().zip(wrow) {
                    *o += v * f64::from(w);
                }
            }
            for (o, &b) in out.iter_mut().zip(bias) {
                *o = sls_linalg::simd::sigmoid(*o + f64::from(b));
            }
        }))
    }
}

impl RbmParams {
    /// Bytes of parameter payload the full-precision form holds, the
    /// baseline for [`CompactParams::param_bytes`].
    pub fn param_bytes(&self) -> usize {
        (self.weights.len() + self.visible_bias.len() + self.hidden_bias.len())
            * std::mem::size_of::<f64>()
    }
}

/// A [`PipelineArtifact`] quantized for serving: compact parameters plus the
/// (small, still full-precision) preprocessor, cluster head and metadata.
///
/// Preprocessing statistics and centroids stay `f64` — they are a few
/// vectors, not a matrix of `n_visible × n_hidden`, so quantizing them would
/// save little and widen the error bound for nothing.
#[derive(Debug, Clone, PartialEq)]
pub struct CompactArtifact {
    schema_version: u32,
    model_kind: ModelKind,
    params: CompactParams,
    preprocessor: FittedPreprocessor,
    cluster_head: Option<ClusterHead>,
    trained_at: Option<String>,
    source: Option<String>,
}

impl CompactArtifact {
    /// Quantizes a loaded artifact for compact serving.
    pub fn from_artifact(artifact: &PipelineArtifact) -> Self {
        Self {
            schema_version: artifact.schema_version,
            model_kind: artifact.model_kind,
            params: CompactParams::from_params(&artifact.params),
            preprocessor: artifact.preprocessor.clone(),
            cluster_head: artifact.cluster_head.clone(),
            trained_at: artifact.trained_at.clone(),
            source: artifact.source.clone(),
        }
    }

    /// Schema version of the artifact this was quantized from.
    pub fn schema_version(&self) -> u32 {
        self.schema_version
    }

    /// Which model produced the weights.
    pub fn model_kind(&self) -> ModelKind {
        self.model_kind
    }

    /// Number of visible units (raw feature columns expected).
    pub fn n_visible(&self) -> usize {
        self.params.n_visible()
    }

    /// Number of hidden units (feature columns produced).
    pub fn n_hidden(&self) -> usize {
        self.params.n_hidden()
    }

    /// The fitted cluster head, if the source artifact carried one.
    pub fn cluster_head(&self) -> Option<&ClusterHead> {
        self.cluster_head.as_ref()
    }

    /// Training timestamp carried over from the source artifact.
    pub fn trained_at(&self) -> Option<&str> {
        self.trained_at.as_deref()
    }

    /// Provenance string carried over from the source artifact.
    pub fn source(&self) -> Option<&str> {
        self.source.as_deref()
    }

    /// Bytes of parameter payload (see [`CompactParams::param_bytes`]).
    pub fn param_bytes(&self) -> usize {
        self.params.param_bytes()
    }

    /// Hidden-feature extraction for a batch of raw rows: fitted
    /// preprocessing (full `f64`) followed by the quantized upward pass.
    ///
    /// Within `1e-6 · (1 + |full|)` of [`PipelineArtifact::features_with`]
    /// per element, and bitwise identical across parallel policies — see
    /// the [module docs](self).
    ///
    /// # Errors
    ///
    /// Returns shape errors if `rows` does not match the visible layer.
    pub fn features_with(&self, rows: &Matrix, parallel: &ParallelPolicy) -> Result<Matrix> {
        let pre = self.preprocessor.transform_with(rows, parallel)?;
        self.params.hidden_features_with(&pre, parallel)
    }

    /// Cluster assignment for a batch of raw rows: [`Self::features_with`]
    /// followed by nearest-centroid lookup in the (full-precision) cluster
    /// head.
    ///
    /// # Errors
    ///
    /// Returns [`RbmError::MissingArtifactPart`] if the source artifact had
    /// no cluster head, and shape errors if `rows` does not match the
    /// visible layer.
    pub fn assign_with(&self, rows: &Matrix, parallel: &ParallelPolicy) -> Result<Vec<usize>> {
        let head = self
            .cluster_head
            .as_ref()
            .ok_or(RbmError::MissingArtifactPart {
                part: "cluster head",
            })?;
        head.assign(&self.features_with(rows, parallel)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FittedPipeline, SlsPipelineConfig};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use sls_datasets::SyntheticBlobs;

    fn fitted() -> FittedPipeline {
        let mut rng = ChaCha8Rng::seed_from_u64(606);
        let ds = SyntheticBlobs::new(45, 5, 3)
            .separation(6.0)
            .generate(&mut rng);
        PipelineArtifact::fit(
            ModelKind::SlsGrbm,
            SlsPipelineConfig::quick_demo(),
            ds.features(),
            &mut rng,
        )
        .unwrap()
    }

    fn request_rows() -> Matrix {
        Matrix::from_fn(48, 5, |i, j| (i as f64) * 0.11 - (j as f64) * 0.7)
    }

    #[test]
    fn quantization_stays_within_the_documented_bound() {
        let artifact = fitted().artifact;
        let compact = CompactArtifact::from_artifact(&artifact);
        let rows = request_rows();
        let policy = ParallelPolicy::serial();
        let full = artifact.features_with(&rows, &policy).unwrap();
        let quant = compact.features_with(&rows, &policy).unwrap();
        assert_eq!(full.shape(), quant.shape());
        for (&f, &q) in full.as_slice().iter().zip(quant.as_slice()) {
            assert!(
                (f - q).abs() <= 1e-6 * (1.0 + f.abs()),
                "full {f} vs compact {q}"
            );
        }
    }

    #[test]
    fn compact_path_is_bitwise_identical_across_policies() {
        let compact = CompactArtifact::from_artifact(&fitted().artifact);
        let rows = request_rows();
        let serial = compact
            .features_with(&rows, &ParallelPolicy::serial())
            .unwrap();
        let serial_assign = compact
            .assign_with(&rows, &ParallelPolicy::serial())
            .unwrap();
        for pool in [false, true] {
            for simd in [
                sls_linalg::SimdPolicy::Scalar,
                sls_linalg::SimdPolicy::Lanes4,
            ] {
                let policy = ParallelPolicy::new(4)
                    .with_min_rows_per_thread(1)
                    .with_pool(pool)
                    .with_simd(simd);
                let par = compact.features_with(&rows, &policy).unwrap();
                let same = serial
                    .as_slice()
                    .iter()
                    .zip(par.as_slice())
                    .all(|(a, b)| a.to_bits() == b.to_bits());
                assert!(same, "pool = {pool}, simd = {simd:?}");
                assert_eq!(
                    compact.assign_with(&rows, &policy).unwrap(),
                    serial_assign,
                    "pool = {pool}, simd = {simd:?}"
                );
            }
        }
    }

    #[test]
    fn assignments_agree_with_the_full_path_on_separated_data() {
        let mut rng = ChaCha8Rng::seed_from_u64(606);
        let ds = SyntheticBlobs::new(45, 5, 3)
            .separation(6.0)
            .generate(&mut rng);
        let artifact = PipelineArtifact::fit(
            ModelKind::SlsGrbm,
            SlsPipelineConfig::quick_demo(),
            ds.features(),
            &mut rng,
        )
        .unwrap()
        .artifact;
        let compact = CompactArtifact::from_artifact(&artifact);
        let policy = ParallelPolicy::serial();
        assert_eq!(
            compact.assign_with(ds.features(), &policy).unwrap(),
            artifact.assign_with(ds.features(), &policy).unwrap()
        );
    }

    #[test]
    fn compact_halves_parameter_bytes() {
        let artifact = fitted().artifact;
        let compact = CompactArtifact::from_artifact(&artifact);
        assert!(compact.param_bytes() * 2 <= artifact.params.param_bytes());
        assert_eq!(
            compact.param_bytes(),
            (5 * 12 + 12) * std::mem::size_of::<f32>()
        );
    }

    #[test]
    fn metadata_is_carried_over() {
        let artifact = fitted()
            .artifact
            .with_provenance(Some("2026-08-07T00:00:00Z".into()), Some("test".into()));
        let compact = CompactArtifact::from_artifact(&artifact);
        assert_eq!(compact.schema_version(), artifact.schema_version);
        assert_eq!(compact.model_kind(), ModelKind::SlsGrbm);
        assert_eq!(compact.n_visible(), 5);
        assert_eq!(compact.n_hidden(), 12);
        assert_eq!(compact.trained_at(), Some("2026-08-07T00:00:00Z"));
        assert_eq!(compact.source(), Some("test"));
        assert!(compact.cluster_head().is_some());
    }

    #[test]
    fn shape_errors_mirror_the_full_path() {
        let compact = CompactArtifact::from_artifact(&fitted().artifact);
        let policy = ParallelPolicy::serial();
        assert!(matches!(
            compact.features_with(&Matrix::zeros(2, 9), &policy),
            Err(RbmError::Linalg(_) | RbmError::VisibleSizeMismatch { .. })
        ));
        assert!(compact.assign_with(&Matrix::zeros(2, 9), &policy).is_err());
        // No cluster head: features fine, assign errors.
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let bare = PipelineArtifact::from_params(RbmParams::init(4, 2, &mut rng), ModelKind::Rbm);
        let bare_compact = CompactArtifact::from_artifact(&bare);
        assert!(bare_compact
            .features_with(&Matrix::zeros(3, 4), &policy)
            .is_ok());
        assert!(matches!(
            bare_compact.assign_with(&Matrix::zeros(3, 4), &policy),
            Err(RbmError::MissingArtifactPart { .. })
        ));
    }
}
