//! Binary-binary restricted Boltzmann machine (the paper's `RBM` baseline).

use crate::model::{BoltzmannMachine, RbmParams, VisibleKind};
use crate::Result;
use rand::Rng;
use serde::{Deserialize, Serialize};
use sls_linalg::{Matrix, ParallelPolicy};

/// Restricted Boltzmann machine with binary visible and hidden units
/// (Section III-A). The visible layer is reconstructed through a sigmoid
/// (Eq. 3).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Rbm {
    params: RbmParams,
}

impl Rbm {
    /// Creates an RBM with `n_visible x n_hidden` randomly initialised
    /// weights.
    pub fn new(n_visible: usize, n_hidden: usize, rng: &mut impl Rng) -> Self {
        Self {
            params: RbmParams::init(n_visible, n_hidden, rng),
        }
    }

    /// Wraps existing parameters (used when loading a persisted model).
    pub fn from_params(params: RbmParams) -> Self {
        Self { params }
    }

    /// The (unnormalised) free energy `F(v) = -a·v - Σ_j log(1 + e^{b_j + v·w_j})`
    /// of each row of `visible`. Lower is more probable under the model;
    /// useful for monitoring and for comparing model fits.
    ///
    /// # Errors
    ///
    /// Returns an error if `visible` has the wrong width or no rows.
    pub fn free_energy(&self, visible: &Matrix) -> Result<Vec<f64>> {
        self.params.check_data(visible)?;
        let pre = visible
            .matmul(&self.params.weights)?
            .add_row_broadcast(&self.params.hidden_bias)?;
        let mut energies = Vec::with_capacity(visible.rows());
        for (i, row) in visible.row_iter().enumerate() {
            let visible_term: f64 = row
                .iter()
                .zip(&self.params.visible_bias)
                .map(|(&v, &a)| v * a)
                .sum();
            let hidden_term: f64 = pre.row(i).iter().map(|&x| softplus(x)).sum();
            energies.push(-visible_term - hidden_term);
        }
        Ok(energies)
    }
}

/// `log(1 + e^x)` computed without overflow.
fn softplus(x: f64) -> f64 {
    if x > 30.0 {
        x
    } else if x < -30.0 {
        0.0
    } else {
        (1.0 + x.exp()).ln()
    }
}

impl BoltzmannMachine for Rbm {
    fn params(&self) -> &RbmParams {
        &self.params
    }

    fn params_mut(&mut self) -> &mut RbmParams {
        &mut self.params
    }

    fn visible_kind(&self) -> VisibleKind {
        VisibleKind::Binary
    }

    fn reconstruct_visible_with(
        &self,
        hidden: &Matrix,
        parallel: &ParallelPolicy,
    ) -> Result<Matrix> {
        let pre = hidden.matmul_transpose_right_with(&self.params.weights, parallel)?;
        // Bias broadcast and sigmoid fused into one row-wise pass through
        // the simd layer (bitwise identical for either knob setting).
        let bias = &self.params.visible_bias;
        let simd = parallel.simd;
        Ok(pre.map_rows_with(bias.len(), parallel, |_, row, out| {
            sls_linalg::simd::fused_bias_sigmoid(row, bias, out, simd);
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use sls_linalg::MatrixRandomExt;

    fn rng() -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(3)
    }

    #[test]
    fn hidden_probabilities_are_valid_probabilities() {
        let mut r = rng();
        let rbm = Rbm::new(10, 6, &mut r);
        let data = Matrix::random_bernoulli(20, 10, 0.5, &mut r);
        let h = rbm.hidden_probabilities(&data).unwrap();
        assert_eq!(h.shape(), (20, 6));
        assert!(h.as_slice().iter().all(|&p| (0.0..=1.0).contains(&p)));
    }

    #[test]
    fn zero_weights_give_half_probabilities() {
        let mut r = rng();
        let mut rbm = Rbm::new(4, 3, &mut r);
        rbm.params_mut().weights = Matrix::zeros(4, 3);
        rbm.params_mut().hidden_bias = vec![0.0; 3];
        let data = Matrix::random_bernoulli(5, 4, 0.5, &mut r);
        let h = rbm.hidden_probabilities(&data).unwrap();
        assert!(h.as_slice().iter().all(|&p| (p - 0.5).abs() < 1e-12));
    }

    #[test]
    fn reconstruction_is_in_unit_interval() {
        let mut r = rng();
        let rbm = Rbm::new(8, 4, &mut r);
        let data = Matrix::random_bernoulli(10, 8, 0.3, &mut r);
        let recon = rbm.reconstruct(&data, &mut r).unwrap();
        assert_eq!(recon.shape(), (10, 8));
        assert!(recon.as_slice().iter().all(|&p| (0.0..=1.0).contains(&p)));
    }

    #[test]
    fn sample_hidden_is_binary() {
        let mut r = rng();
        let rbm = Rbm::new(8, 4, &mut r);
        let data = Matrix::random_bernoulli(10, 8, 0.5, &mut r);
        let s = rbm.sample_hidden(&data, &mut r).unwrap();
        assert!(s.as_slice().iter().all(|&x| x == 0.0 || x == 1.0));
    }

    #[test]
    fn shape_mismatch_is_reported() {
        let mut r = rng();
        let rbm = Rbm::new(8, 4, &mut r);
        let wrong = Matrix::zeros(5, 9);
        assert!(rbm.hidden_probabilities(&wrong).is_err());
        assert!(rbm.reconstruction_error(&wrong).is_err());
    }

    #[test]
    fn free_energy_prefers_training_like_patterns() {
        // Build an RBM whose weights strongly tie visible unit 0 to hidden
        // unit 0; a vector with unit 0 on should have lower free energy than
        // the all-zero vector when the visible bias favours it.
        let mut r = rng();
        let mut rbm = Rbm::new(3, 2, &mut r);
        rbm.params_mut().weights =
            Matrix::from_rows(&[vec![4.0, 0.0], vec![0.0, 0.0], vec![0.0, 0.0]]).unwrap();
        rbm.params_mut().visible_bias = vec![2.0, 0.0, 0.0];
        let on = Matrix::from_rows(&[vec![1.0, 0.0, 0.0]]).unwrap();
        let off = Matrix::from_rows(&[vec![0.0, 0.0, 0.0]]).unwrap();
        let e_on = rbm.free_energy(&on).unwrap()[0];
        let e_off = rbm.free_energy(&off).unwrap()[0];
        assert!(e_on < e_off);
    }

    #[test]
    fn softplus_is_stable_at_extremes() {
        assert_eq!(softplus(100.0), 100.0);
        assert_eq!(softplus(-100.0), 0.0);
        assert!((softplus(0.0) - 2.0_f64.ln()).abs() < 1e-12);
    }

    #[test]
    fn visible_kind_is_binary() {
        let rbm = Rbm::new(2, 2, &mut rng());
        assert_eq!(rbm.visible_kind(), VisibleKind::Binary);
    }

    #[test]
    fn from_params_round_trips() {
        let params = RbmParams::init(5, 2, &mut rng());
        let rbm = Rbm::from_params(params.clone());
        assert_eq!(rbm.params(), &params);
    }
}
