//! Error type for model construction, training and persistence.

use std::fmt;

/// Errors raised by the RBM family.
#[derive(Debug)]
pub enum RbmError {
    /// The data fed to the model has the wrong number of columns.
    VisibleSizeMismatch {
        /// Columns of the data supplied.
        data: usize,
        /// Visible units of the model.
        model: usize,
    },
    /// The training data is empty.
    EmptyData,
    /// An invalid hyper-parameter value was supplied.
    InvalidConfig {
        /// Parameter name.
        name: &'static str,
        /// Explanation of the constraint that was violated.
        message: String,
    },
    /// Training produced a non-finite parameter (diverged).
    Diverged {
        /// Epoch at which divergence was detected.
        epoch: usize,
    },
    /// The supervision refers to instance indices outside the data.
    SupervisionOutOfRange {
        /// Largest index referenced by the supervision.
        index: usize,
        /// Number of instances in the data.
        instances: usize,
    },
    /// Propagated linear-algebra error.
    Linalg(sls_linalg::LinalgError),
    /// Propagated consensus error (supervision construction failed).
    Consensus(sls_consensus::ConsensusError),
    /// Propagated clustering error (base clusterers failed).
    Clustering(sls_clustering::ClusteringError),
    /// Propagated dataset error (streaming ingestion failed).
    Dataset(sls_datasets::DatasetError),
    /// A persisted artifact declares a schema version this build cannot read.
    UnsupportedSchemaVersion {
        /// Version found in the artifact file.
        found: u32,
        /// Newest version this build understands.
        supported: u32,
    },
    /// The requested operation needs a part the artifact does not carry
    /// (e.g. cluster assignment without a fitted cluster head).
    MissingArtifactPart {
        /// Name of the missing part.
        part: &'static str,
    },
    /// Model persistence failed.
    Io(std::io::Error),
    /// Model (de)serialisation failed.
    Serde(serde_json::Error),
}

impl fmt::Display for RbmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RbmError::VisibleSizeMismatch { data, model } => write!(
                f,
                "data has {data} features but the model has {model} visible units"
            ),
            RbmError::EmptyData => write!(f, "training data must contain at least one instance"),
            RbmError::InvalidConfig { name, message } => {
                write!(f, "invalid value for '{name}': {message}")
            }
            RbmError::Diverged { epoch } => {
                write!(f, "training diverged (non-finite parameters) at epoch {epoch}")
            }
            RbmError::SupervisionOutOfRange { index, instances } => write!(
                f,
                "supervision references instance {index} but the data has only {instances} instances"
            ),
            RbmError::Linalg(e) => write!(f, "linear algebra error: {e}"),
            RbmError::Consensus(e) => write!(f, "supervision construction failed: {e}"),
            RbmError::Clustering(e) => write!(f, "clustering failed: {e}"),
            RbmError::Dataset(e) => write!(f, "ingestion failed: {e}"),
            RbmError::UnsupportedSchemaVersion { found, supported } => write!(
                f,
                "artifact schema version {found} is newer than the supported version {supported}"
            ),
            RbmError::MissingArtifactPart { part } => {
                write!(f, "artifact does not carry a {part}")
            }
            RbmError::Io(e) => write!(f, "I/O error: {e}"),
            RbmError::Serde(e) => write!(f, "serialisation error: {e}"),
        }
    }
}

impl std::error::Error for RbmError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RbmError::Linalg(e) => Some(e),
            RbmError::Consensus(e) => Some(e),
            RbmError::Clustering(e) => Some(e),
            RbmError::Dataset(e) => Some(e),
            RbmError::Io(e) => Some(e),
            RbmError::Serde(e) => Some(e),
            _ => None,
        }
    }
}

impl From<sls_linalg::LinalgError> for RbmError {
    fn from(e: sls_linalg::LinalgError) -> Self {
        RbmError::Linalg(e)
    }
}

impl From<sls_consensus::ConsensusError> for RbmError {
    fn from(e: sls_consensus::ConsensusError) -> Self {
        RbmError::Consensus(e)
    }
}

impl From<sls_clustering::ClusteringError> for RbmError {
    fn from(e: sls_clustering::ClusteringError) -> Self {
        RbmError::Clustering(e)
    }
}

impl From<sls_datasets::DatasetError> for RbmError {
    fn from(e: sls_datasets::DatasetError) -> Self {
        RbmError::Dataset(e)
    }
}

impl From<std::io::Error> for RbmError {
    fn from(e: std::io::Error) -> Self {
        RbmError::Io(e)
    }
}

impl From<serde_json::Error> for RbmError {
    fn from(e: serde_json::Error) -> Self {
        RbmError::Serde(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(RbmError::VisibleSizeMismatch { data: 4, model: 8 }
            .to_string()
            .contains("4 features"));
        assert!(RbmError::EmptyData.to_string().contains("at least one"));
        assert!(RbmError::InvalidConfig {
            name: "learning_rate",
            message: "must be positive".into()
        }
        .to_string()
        .contains("learning_rate"));
        assert!(RbmError::Diverged { epoch: 7 }
            .to_string()
            .contains("epoch 7"));
        assert!(RbmError::SupervisionOutOfRange {
            index: 10,
            instances: 5
        }
        .to_string()
        .contains("instance 10"));
        assert!(RbmError::UnsupportedSchemaVersion {
            found: 9,
            supported: 1
        }
        .to_string()
        .contains("schema version 9"));
        assert!(RbmError::MissingArtifactPart {
            part: "cluster head"
        }
        .to_string()
        .contains("cluster head"));
    }

    #[test]
    fn conversions_preserve_sources() {
        use std::error::Error;
        let e: RbmError = sls_linalg::LinalgError::Empty { op: "x" }.into();
        assert!(e.source().is_some());
        let e: RbmError = sls_consensus::ConsensusError::NoPartitions.into();
        assert!(e.source().is_some());
        let e: RbmError = sls_clustering::ClusteringError::EmptyData.into();
        assert!(e.source().is_some());
        let e: RbmError = sls_datasets::DatasetError::EmptyDataset.into();
        assert!(e.source().is_some());
        assert!(e.to_string().contains("ingestion failed"));
        let e: RbmError = std::io::Error::other("x").into();
        assert!(e.source().is_some());
        assert!(RbmError::EmptyData.source().is_none());
    }
}
