//! Streaming mini-batch training with checkpoint-resume.
//!
//! [`CdTrainer`](crate::CdTrainer) and [`SlsTrainer`](crate::SlsTrainer)
//! hold the whole dataset in one [`Matrix`]. For corpora that do not fit in
//! memory (or for long runs that must survive interruption) this module
//! trains against a [`ChunkSource`] instead: each epoch walks the source
//! chunk by chunk, runs the usual mini-batch updates inside the chunk, and
//! records its position in a [`TrainCheckpoint`] — a schema-versioned JSON
//! artifact holding the model parameters, the momentum (optimizer) state and
//! the ingest cursor.
//!
//! ## Bit-exact resume
//!
//! The contract is that interrupting a run at *any* chunk boundary, saving
//! the checkpoint, reloading it (even in a new process) and resuming yields
//! parameters **bitwise identical** to an uninterrupted run. Two design
//! choices make this hold:
//!
//! * **Per-(epoch, chunk) RNG.** Instead of one RNG stream threaded through
//!   the whole run (whose position could not be persisted), every chunk
//!   derives a fresh [`ChaCha8Rng`] from `mix(base_seed, epoch, chunk)`.
//!   Resuming at a chunk boundary recreates exactly the stream an
//!   uninterrupted run would have used from that point on.
//! * **Full optimizer state in the checkpoint.** The momentum velocity is
//!   saved next to the parameters, so the first update after a resume sees
//!   the same smoothed gradient as the uninterrupted run.
//!
//! Shuffling is therefore *within-chunk*: the visit order of chunks is fixed
//! and `shuffle` permutes rows inside each chunk. This trades some global
//! mixing for restartability; chunk-level mixing can be recovered upstream
//! by shuffling the source file once before training.
//!
//! ## Supervision on a stream
//!
//! The sls models need a [`LocalSupervision`], which is built on an
//! in-memory sample (see [`sls_datasets::leading_sample`]). Its instance
//! indices are *global* stream indices; rows of chunk `c` have global
//! indices `c * chunk_size + local`. Rows beyond the sampled prefix are not
//! covered by any local cluster and receive only the CD gradient — exactly
//! the semantics the in-memory trainer gives uncovered instances.

use crate::cd::{apply_update, cd_batch_gradients, epoch_order, Velocity};
use crate::model::BoltzmannMachine;
use crate::sls::{clusters_in_batch, sls_batch_gradients, SlsConfig};
use crate::{
    EpochStats, FittedPreprocessor, Grbm, ModelKind, Rbm, RbmError, RbmParams, Result, TrainConfig,
    TrainingHistory, VisibleKind,
};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::Deserialize;
use sls_consensus::LocalSupervision;
use sls_datasets::ChunkSource;
use sls_linalg::{Matrix, ParallelPolicy};
use std::path::Path;

/// Newest checkpoint schema version this build reads and writes.
pub const CHECKPOINT_SCHEMA_VERSION: u32 = 1;

/// How far one [`StreamTrainer::advance`] call may run before returning.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StreamLimit {
    /// Run until the configured number of epochs is complete.
    ToCompletion,
    /// Complete at most this many epochs, then stop at the epoch boundary.
    Epochs(usize),
    /// Process at most this many chunks, then stop at the chunk boundary
    /// (possibly mid-epoch) — the fine-grained knob for controlled
    /// interruption tests and cooperative scheduling.
    Chunks(usize),
}

/// A resumable snapshot of a streaming training run: model parameters,
/// momentum state and the ingest cursor, persisted as schema-versioned JSON.
///
/// The cursor `(epochs_done, chunks_done)` always points at the next chunk
/// to process: `chunks_done` chunks of epoch `epochs_done` are already
/// applied. `chunks_done` is kept strictly below the source's chunk count —
/// completing the last chunk of an epoch rolls it over to
/// `(epochs_done + 1, 0)`.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainCheckpoint {
    /// Schema version the checkpoint was written with.
    pub schema_version: u32,
    /// Which model the parameters belong to.
    pub model_kind: ModelKind,
    /// Current model parameters.
    pub params: RbmParams,
    /// Momentum velocity of the weights.
    pub velocity_w: Matrix,
    /// Momentum velocity of the visible biases.
    pub velocity_a: Vec<f64>,
    /// Momentum velocity of the hidden biases.
    pub velocity_b: Vec<f64>,
    /// The training configuration the run was started with.
    pub train_config: TrainConfig,
    /// Seed every per-(epoch, chunk) RNG is derived from.
    pub base_seed: u64,
    /// Fully completed epochs.
    pub epochs_done: usize,
    /// Chunks of the current epoch already applied.
    pub chunks_done: usize,
    /// Where the run came from (command line, job id, dataset tag, ...).
    /// Optional and additive, like [`crate::PipelineArtifact`] provenance.
    pub source: Option<String>,
}

// Hand-written (de)serialisation for the same reasons as `PipelineArtifact`:
// the vendored derive requires every field, but `source` is additive and
// must not be written when unset. `base_seed` is stored as the
// two's-complement i64 bit pattern so every 64-bit seed round-trips through
// the facade's integer value.
impl serde::Serialize for TrainCheckpoint {
    fn to_value(&self) -> serde::Value {
        let mut entries = vec![
            ("schema_version".to_string(), self.schema_version.to_value()),
            ("model_kind".to_string(), self.model_kind.to_value()),
            ("params".to_string(), self.params.to_value()),
            ("velocity_w".to_string(), self.velocity_w.to_value()),
            ("velocity_a".to_string(), self.velocity_a.to_value()),
            ("velocity_b".to_string(), self.velocity_b.to_value()),
            ("train_config".to_string(), self.train_config.to_value()),
            (
                "base_seed".to_string(),
                serde::Value::Int(self.base_seed as i64),
            ),
            ("epochs_done".to_string(), self.epochs_done.to_value()),
            ("chunks_done".to_string(), self.chunks_done.to_value()),
        ];
        if self.source.is_some() {
            entries.push(("source".to_string(), self.source.to_value()));
        }
        serde::Value::Object(entries)
    }
}

impl serde::Deserialize for TrainCheckpoint {
    fn from_value(value: &serde::Value) -> std::result::Result<Self, serde::DeError> {
        let entries = value
            .as_object()
            .ok_or_else(|| serde::DeError::mismatch("object", value))?;
        let base_seed = match serde::field(entries, "base_seed")? {
            serde::Value::Int(i) => *i as u64,
            other => return Err(serde::DeError::mismatch("integer", other)),
        };
        let source = match entries.iter().find(|(key, _)| key == "source") {
            Some((_, v)) => Deserialize::from_value(v)?,
            None => None,
        };
        Ok(Self {
            schema_version: Deserialize::from_value(serde::field(entries, "schema_version")?)?,
            model_kind: Deserialize::from_value(serde::field(entries, "model_kind")?)?,
            params: Deserialize::from_value(serde::field(entries, "params")?)?,
            velocity_w: Deserialize::from_value(serde::field(entries, "velocity_w")?)?,
            velocity_a: Deserialize::from_value(serde::field(entries, "velocity_a")?)?,
            velocity_b: Deserialize::from_value(serde::field(entries, "velocity_b")?)?,
            train_config: Deserialize::from_value(serde::field(entries, "train_config")?)?,
            base_seed,
            epochs_done: Deserialize::from_value(serde::field(entries, "epochs_done")?)?,
            chunks_done: Deserialize::from_value(serde::field(entries, "chunks_done")?)?,
            source,
        })
    }
}

impl TrainCheckpoint {
    /// Starts a fresh run: parameters initialised from a RNG derived from
    /// `base_seed` (so the whole run is a pure function of the seed, the
    /// config and the source), zero velocity, cursor at the beginning.
    ///
    /// # Errors
    ///
    /// Returns [`RbmError::InvalidConfig`] if the configuration is invalid.
    pub fn fresh(
        model_kind: ModelKind,
        n_visible: usize,
        n_hidden: usize,
        train_config: TrainConfig,
        base_seed: u64,
    ) -> Result<Self> {
        train_config.validate()?;
        let mut init_rng = ChaCha8Rng::seed_from_u64(init_seed(base_seed));
        Ok(Self {
            schema_version: CHECKPOINT_SCHEMA_VERSION,
            model_kind,
            params: RbmParams::init(n_visible, n_hidden, &mut init_rng),
            velocity_w: Matrix::zeros(n_visible, n_hidden),
            velocity_a: vec![0.0; n_visible],
            velocity_b: vec![0.0; n_hidden],
            train_config,
            base_seed,
            epochs_done: 0,
            chunks_done: 0,
            source: None,
        })
    }

    /// Attaches a free-form provenance string (`None` leaves it unset).
    pub fn with_source(mut self, source: Option<String>) -> Self {
        self.source = source;
        self
    }

    /// `true` once every configured epoch has been applied.
    pub fn is_complete(&self) -> bool {
        self.epochs_done >= self.train_config.epochs
    }

    /// Validates internal shape agreement (params vs velocity).
    ///
    /// # Errors
    ///
    /// Returns [`RbmError::InvalidConfig`] on any disagreement.
    pub fn check_consistent(&self) -> Result<()> {
        self.params.check_consistent()?;
        self.train_config.validate()?;
        let shape = (self.params.n_visible(), self.params.n_hidden());
        if self.velocity_w.shape() != shape
            || self.velocity_a.len() != shape.0
            || self.velocity_b.len() != shape.1
        {
            return Err(RbmError::InvalidConfig {
                name: "checkpoint",
                message: format!(
                    "velocity shapes {:?}/{}/{} disagree with parameter shape {:?}",
                    self.velocity_w.shape(),
                    self.velocity_a.len(),
                    self.velocity_b.len(),
                    shape
                ),
            });
        }
        Ok(())
    }

    /// Serialises the checkpoint as pretty-printed JSON.
    ///
    /// # Errors
    ///
    /// Returns serialisation errors.
    pub fn to_json_pretty(&self) -> Result<String> {
        Ok(serde_json::to_string_pretty(self)?)
    }

    /// Parses a checkpoint from JSON text.
    ///
    /// # Errors
    ///
    /// Returns [`RbmError::UnsupportedSchemaVersion`] for checkpoints written
    /// by a newer build, shape errors for inconsistent contents, and
    /// deserialisation errors for malformed input.
    pub fn from_json(text: &str) -> Result<Self> {
        /// Minimal probe so a newer schema is rejected with a clear error
        /// instead of a field-level parse failure.
        #[derive(Deserialize)]
        struct SchemaProbe {
            schema_version: u32,
        }

        let probe = serde_json::from_str::<SchemaProbe>(text)?;
        if probe.schema_version > CHECKPOINT_SCHEMA_VERSION {
            return Err(RbmError::UnsupportedSchemaVersion {
                found: probe.schema_version,
                supported: CHECKPOINT_SCHEMA_VERSION,
            });
        }
        let checkpoint = serde_json::from_str::<TrainCheckpoint>(text)?;
        checkpoint.check_consistent()?;
        Ok(checkpoint)
    }

    /// Writes the checkpoint as JSON, creating parent directories if needed.
    ///
    /// # Errors
    ///
    /// Returns I/O or serialisation errors.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<()> {
        let path = path.as_ref();
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        std::fs::write(path, self.to_json_pretty()?)?;
        Ok(())
    }

    /// Reads a checkpoint from a JSON file.
    ///
    /// # Errors
    ///
    /// Same as [`Self::from_json`], plus I/O errors.
    pub fn load(path: impl AsRef<Path>) -> Result<Self> {
        let text = std::fs::read_to_string(path)?;
        Self::from_json(&text)
    }
}

/// SplitMix64 finaliser — the standard statistically-solid 64-bit mixer.
fn splitmix64(seed: u64) -> u64 {
    let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Seed of the parameter-initialisation RNG, kept distinct from every
/// per-chunk seed by a fixed tag.
fn init_seed(base_seed: u64) -> u64 {
    splitmix64(base_seed ^ 0x696E_6974) // "init"
}

/// Seed of the RNG used for epoch `epoch`, chunk `chunk`. Chained mixing
/// keeps distinct `(epoch, chunk)` pairs on distinct streams.
fn chunk_seed(base_seed: u64, epoch: usize, chunk: usize) -> u64 {
    splitmix64(splitmix64(splitmix64(base_seed) ^ epoch as u64) ^ chunk as u64)
}

/// The streaming training driver: advances a [`TrainCheckpoint`] over a
/// [`ChunkSource`].
///
/// On success the checkpoint is updated in place (parameters, velocity,
/// cursor); on error it is left exactly as committed by the last completed
/// chunk boundary before the call, so a caller can persist it and retry.
#[derive(Debug, Clone, Default)]
pub struct StreamTrainer {
    parallel: ParallelPolicy,
}

impl StreamTrainer {
    /// Creates a driver under the process-wide [`ParallelPolicy::global`].
    pub fn new() -> Self {
        Self {
            parallel: ParallelPolicy::global(),
        }
    }

    /// Sets the parallel execution policy for the training hot path. Results
    /// are bitwise identical for every policy.
    pub fn with_parallel(mut self, parallel: ParallelPolicy) -> Self {
        self.parallel = parallel;
        self
    }

    /// The active parallel execution policy.
    pub fn parallel(&self) -> &ParallelPolicy {
        &self.parallel
    }

    /// Advances the checkpointed run over `source` until `limit` is reached,
    /// the configured epochs complete, or an error occurs.
    ///
    /// Every chunk is read from `source`, pushed through `preprocessor`, and
    /// consumed in mini-batches with the same update rules as the in-memory
    /// trainers: plain CD for [`ModelKind::Rbm`] / [`ModelKind::Grbm`], the
    /// combined CD + constrict/disperse step for the sls kinds (which
    /// require `supervision`). Returns the per-epoch history of the epochs
    /// *completed by this call*; the reconstruction error is the row-weighted
    /// mean over all chunks.
    ///
    /// # Errors
    ///
    /// * [`RbmError::InvalidConfig`] for an inconsistent checkpoint, an sls
    ///   kind without supervision, or a non-sls kind with supervision.
    /// * [`RbmError::SupervisionOutOfRange`] if the supervision references
    ///   instances beyond the stream.
    /// * [`RbmError::Dataset`] when the source fails to produce a chunk.
    /// * [`RbmError::Diverged`] if parameters become non-finite.
    pub fn advance(
        &self,
        checkpoint: &mut TrainCheckpoint,
        source: &dyn ChunkSource,
        preprocessor: &FittedPreprocessor,
        supervision: Option<(&LocalSupervision, &SlsConfig)>,
        limit: StreamLimit,
    ) -> Result<TrainingHistory> {
        checkpoint.check_consistent()?;
        match (checkpoint.model_kind.is_sls(), &supervision) {
            (true, None) => {
                return Err(RbmError::InvalidConfig {
                    name: "supervision",
                    message: format!(
                        "model kind '{}' trains with the sls objective and needs a supervision",
                        checkpoint.model_kind.as_str()
                    ),
                })
            }
            (false, Some(_)) => {
                return Err(RbmError::InvalidConfig {
                    name: "supervision",
                    message: format!(
                        "model kind '{}' trains with plain CD and ignores supervision; \
                         pass None or pick an sls kind",
                        checkpoint.model_kind.as_str()
                    ),
                })
            }
            _ => {}
        }
        if let Some((sup, sls)) = supervision {
            sls.validate()?;
            if let Some(&max_index) = sup.covered_indices().last() {
                if max_index >= source.n_instances() {
                    return Err(RbmError::SupervisionOutOfRange {
                        index: max_index,
                        instances: source.n_instances(),
                    });
                }
            }
        }

        match checkpoint.model_kind.visible_kind() {
            VisibleKind::Binary => {
                let mut model = Rbm::from_params(checkpoint.params.clone());
                self.drive(
                    &mut model,
                    checkpoint,
                    source,
                    preprocessor,
                    supervision,
                    limit,
                )
            }
            VisibleKind::Gaussian => {
                let mut model = Grbm::from_params(checkpoint.params.clone());
                self.drive(
                    &mut model,
                    checkpoint,
                    source,
                    preprocessor,
                    supervision,
                    limit,
                )
            }
        }
    }

    /// The generic driver loop. Commits parameters, velocity and cursor back
    /// into the checkpoint after every chunk, so the checkpoint is always a
    /// valid resume point even when a later chunk errors.
    fn drive<M: BoltzmannMachine>(
        &self,
        model: &mut M,
        checkpoint: &mut TrainCheckpoint,
        source: &dyn ChunkSource,
        preprocessor: &FittedPreprocessor,
        supervision: Option<(&LocalSupervision, &SlsConfig)>,
        limit: StreamLimit,
    ) -> Result<TrainingHistory> {
        let cfg = checkpoint.train_config;
        let base_seed = checkpoint.base_seed;
        let n_chunks = source.n_chunks();
        let chunk_cap = source.chunk_size();
        let sup_data = supervision.map(|(sup, sls)| (sup.membership(), sup.n_clusters(), sls));

        let mut velocity = Velocity {
            w: checkpoint.velocity_w.clone(),
            a: checkpoint.velocity_a.clone(),
            b: checkpoint.velocity_b.clone(),
        };
        let mut history = TrainingHistory::default();
        let mut epochs_run = 0usize;
        let mut chunks_run = 0usize;
        let budget_left = |epochs_run: usize, chunks_run: usize| match limit {
            StreamLimit::ToCompletion => true,
            StreamLimit::Epochs(n) => epochs_run < n,
            StreamLimit::Chunks(n) => chunks_run < n,
        };

        while checkpoint.epochs_done < cfg.epochs && budget_left(epochs_run, chunks_run) {
            let epoch = checkpoint.epochs_done;
            while checkpoint.chunks_done < n_chunks && budget_left(epochs_run, chunks_run) {
                let chunk_index = checkpoint.chunks_done;
                let mut rng = ChaCha8Rng::seed_from_u64(chunk_seed(base_seed, epoch, chunk_index));
                let raw = source.read_chunk(chunk_index)?;
                let data = preprocessor.transform_with(&raw, &self.parallel)?;
                model.params().check_data(&data)?;
                let global_start = chunk_index * chunk_cap;

                let order = epoch_order(data.rows(), cfg.shuffle, &mut rng);
                for batch_rows in order.chunks(cfg.batch_size) {
                    let batch = data.select_rows(batch_rows)?;
                    let cd =
                        cd_batch_gradients(model, &batch, cfg.cd_steps, &self.parallel, &mut rng)?;
                    let decay = model.params().weights.scale(-cfg.weight_decay);
                    let (step_w, step_a, step_b) = match &sup_data {
                        None => {
                            // Plain CD, exactly as `CdTrainer`.
                            let lr = cfg.learning_rate;
                            (
                                cd.dw.add(&decay)?.scale(lr),
                                cd.da.iter().map(|g| lr * g).collect::<Vec<f64>>(),
                                cd.db.iter().map(|g| lr * g).collect::<Vec<f64>>(),
                            )
                        }
                        Some((membership, n_local_clusters, sls)) => {
                            // Combined CD + constrict/disperse, exactly as
                            // `SlsTrainer`, with batch rows mapped to their
                            // global stream indices first.
                            let global: Vec<usize> =
                                batch_rows.iter().map(|&r| global_start + r).collect();
                            let batch_clusters =
                                clusters_in_batch(&global, membership, *n_local_clusters);
                            let mut sls_grads = sls_batch_gradients(
                                model.params(),
                                &batch,
                                &cd.hidden_data,
                                &batch_clusters,
                                &self.parallel,
                            )?;
                            let recon_grads = sls_batch_gradients(
                                model.params(),
                                &cd.visible_recon,
                                &cd.hidden_recon,
                                &batch_clusters,
                                &self.parallel,
                            )?;
                            sls_grads.accumulate(&recon_grads)?;
                            let eta = sls.eta;
                            let lr = cfg.learning_rate;
                            let sls_lr = sls.resolve_supervision_lr(lr);
                            (
                                cd.dw
                                    .scale(eta * lr)
                                    .add(&sls_grads.dw.scale(-(1.0 - eta) * sls_lr))?
                                    .add(&decay.scale(lr))?,
                                cd.da.iter().map(|g| eta * lr * g).collect::<Vec<f64>>(),
                                cd.db
                                    .iter()
                                    .zip(&sls_grads.db)
                                    .map(|(cd_g, sls_g)| {
                                        eta * lr * cd_g - (1.0 - eta) * sls_lr * sls_g
                                    })
                                    .collect::<Vec<f64>>(),
                            )
                        }
                    };
                    apply_update(
                        model,
                        &mut velocity,
                        cfg.momentum,
                        &step_w,
                        &step_a,
                        &step_b,
                    )?;
                }
                if !model.params().is_finite() {
                    return Err(RbmError::Diverged { epoch });
                }

                // Commit the chunk: the checkpoint is a valid resume point.
                checkpoint.params = model.params().clone();
                checkpoint.velocity_w = velocity.w.clone();
                checkpoint.velocity_a = velocity.a.clone();
                checkpoint.velocity_b = velocity.b.clone();
                checkpoint.chunks_done += 1;
                chunks_run += 1;
            }
            if checkpoint.chunks_done == n_chunks {
                let error = self.streaming_reconstruction_error(model, source, preprocessor)?;
                history.epochs.push(EpochStats {
                    epoch,
                    reconstruction_error: error,
                });
                checkpoint.epochs_done += 1;
                checkpoint.chunks_done = 0;
                epochs_run += 1;
            }
        }
        Ok(history)
    }

    /// Row-weighted mean reconstruction error over every chunk of the
    /// source — the streaming counterpart of
    /// [`BoltzmannMachine::reconstruction_error`]. The chunked summation
    /// order differs from the in-memory one, so the value may differ from a
    /// whole-dataset evaluation in the last bits; it is a monitoring
    /// statistic, not part of the resume contract.
    fn streaming_reconstruction_error<M: BoltzmannMachine>(
        &self,
        model: &M,
        source: &dyn ChunkSource,
        preprocessor: &FittedPreprocessor,
    ) -> Result<f64> {
        let mut weighted = 0.0;
        let mut rows = 0usize;
        for index in 0..source.n_chunks() {
            let raw = source.read_chunk(index)?;
            let data = preprocessor.transform_with(&raw, &self.parallel)?;
            weighted +=
                model.reconstruction_error_with(&data, &self.parallel)? * data.rows() as f64;
            rows += data.rows();
        }
        if rows == 0 {
            return Err(RbmError::EmptyData);
        }
        Ok(weighted / rows as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use sls_consensus::{LocalSupervision, VotingPolicy};
    use sls_datasets::InMemoryChunks;
    use sls_linalg::MatrixRandomExt;

    fn bernoulli_source(rows: usize, cols: usize, chunk_size: usize, seed: u64) -> InMemoryChunks {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let features = Matrix::random_bernoulli(rows, cols, 0.5, &mut rng);
        InMemoryChunks::new(features, chunk_size, "test-stream").unwrap()
    }

    fn quick_config(epochs: usize) -> TrainConfig {
        TrainConfig::quick()
            .with_epochs(epochs)
            .with_batch_size(4)
            .with_learning_rate(0.05)
    }

    /// Supervision covering the leading `covered` instances of a
    /// `n_instances`-row stream, split into two local clusters.
    fn leading_supervision(covered: usize, n_instances: usize) -> LocalSupervision {
        let consensus: Vec<Option<usize>> = (0..n_instances)
            .map(|i| (i < covered).then_some(i % 2))
            .collect();
        LocalSupervision::from_consensus(&consensus, VotingPolicy::default()).unwrap()
    }

    fn straight_run(
        kind: ModelKind,
        source: &InMemoryChunks,
        supervision: Option<(&LocalSupervision, &SlsConfig)>,
        epochs: usize,
    ) -> TrainCheckpoint {
        let mut checkpoint =
            TrainCheckpoint::fresh(kind, source.n_features(), 5, quick_config(epochs), 99).unwrap();
        StreamTrainer::new()
            .with_parallel(ParallelPolicy::serial())
            .advance(
                &mut checkpoint,
                source,
                &FittedPreprocessor::Identity,
                supervision,
                StreamLimit::ToCompletion,
            )
            .unwrap();
        checkpoint
    }

    #[test]
    fn fresh_checkpoint_is_deterministic_in_the_seed() {
        let a = TrainCheckpoint::fresh(ModelKind::Rbm, 6, 4, quick_config(2), 7).unwrap();
        let b = TrainCheckpoint::fresh(ModelKind::Rbm, 6, 4, quick_config(2), 7).unwrap();
        let c = TrainCheckpoint::fresh(ModelKind::Rbm, 6, 4, quick_config(2), 8).unwrap();
        assert_eq!(a, b);
        assert_ne!(a.params, c.params);
        assert!(!a.is_complete());
    }

    #[test]
    fn interrupted_resume_is_bitwise_identical_cd() {
        let source = bernoulli_source(30, 6, 7, 11);
        let reference = straight_run(ModelKind::Rbm, &source, None, 3);
        assert!(reference.is_complete());

        // Same run, interrupted every 3 chunks with a JSON round-trip in
        // between — simulating kill + restart from the persisted file.
        let mut checkpoint =
            TrainCheckpoint::fresh(ModelKind::Rbm, source.n_features(), 5, quick_config(3), 99)
                .unwrap();
        let trainer = StreamTrainer::new().with_parallel(ParallelPolicy::serial());
        let mut guard = 0;
        while !checkpoint.is_complete() {
            trainer
                .advance(
                    &mut checkpoint,
                    &source,
                    &FittedPreprocessor::Identity,
                    None,
                    StreamLimit::Chunks(3),
                )
                .unwrap();
            checkpoint = TrainCheckpoint::from_json(&checkpoint.to_json_pretty().unwrap()).unwrap();
            guard += 1;
            assert!(guard < 100, "run did not converge to completion");
        }

        assert_eq!(
            reference.params.weights.as_slice(),
            checkpoint.params.weights.as_slice(),
            "weights must be bitwise identical after checkpoint-resume"
        );
        assert_eq!(reference.params, checkpoint.params);
        assert_eq!(reference.velocity_w, checkpoint.velocity_w);
        assert_eq!(reference.velocity_a, checkpoint.velocity_a);
        assert_eq!(reference.velocity_b, checkpoint.velocity_b);
    }

    #[test]
    fn interrupted_resume_is_bitwise_identical_sls() {
        let source = bernoulli_source(30, 6, 7, 12);
        let supervision = leading_supervision(14, 30);
        let sls = SlsConfig::paper_rbm();
        let reference = straight_run(ModelKind::SlsRbm, &source, Some((&supervision, &sls)), 2);
        assert!(reference.is_complete());

        let mut checkpoint = TrainCheckpoint::fresh(
            ModelKind::SlsRbm,
            source.n_features(),
            5,
            quick_config(2),
            99,
        )
        .unwrap();
        let trainer = StreamTrainer::new().with_parallel(ParallelPolicy::serial());
        let mut guard = 0;
        while !checkpoint.is_complete() {
            trainer
                .advance(
                    &mut checkpoint,
                    &source,
                    &FittedPreprocessor::Identity,
                    Some((&supervision, &sls)),
                    StreamLimit::Chunks(2),
                )
                .unwrap();
            checkpoint = TrainCheckpoint::from_json(&checkpoint.to_json_pretty().unwrap()).unwrap();
            guard += 1;
            assert!(guard < 100, "run did not converge to completion");
        }

        assert_eq!(
            reference.params.weights.as_slice(),
            checkpoint.params.weights.as_slice(),
            "sls weights must be bitwise identical after checkpoint-resume"
        );
        assert_eq!(reference.params, checkpoint.params);
    }

    #[test]
    fn streaming_is_invariant_to_parallel_policy() {
        let source = bernoulli_source(26, 6, 9, 13);
        let serial = straight_run(ModelKind::Grbm, &source, None, 2);
        for threads in [2, 4] {
            for pool in [false, true] {
                let policy = ParallelPolicy::new(threads)
                    .with_min_rows_per_thread(1)
                    .with_pool(pool);
                let mut checkpoint = TrainCheckpoint::fresh(
                    ModelKind::Grbm,
                    source.n_features(),
                    5,
                    quick_config(2),
                    99,
                )
                .unwrap();
                StreamTrainer::new()
                    .with_parallel(policy)
                    .advance(
                        &mut checkpoint,
                        &source,
                        &FittedPreprocessor::Identity,
                        None,
                        StreamLimit::ToCompletion,
                    )
                    .unwrap();
                assert_eq!(
                    serial.params.weights.as_slice(),
                    checkpoint.params.weights.as_slice(),
                    "threads={threads} pool={pool}"
                );
            }
        }
    }

    #[test]
    fn cursor_rolls_over_at_epoch_boundaries() {
        let source = bernoulli_source(20, 5, 6, 14); // 4 chunks
        let mut checkpoint =
            TrainCheckpoint::fresh(ModelKind::Rbm, 5, 4, quick_config(2), 1).unwrap();
        let trainer = StreamTrainer::new().with_parallel(ParallelPolicy::serial());
        let pre = FittedPreprocessor::Identity;

        let h = trainer
            .advance(&mut checkpoint, &source, &pre, None, StreamLimit::Chunks(3))
            .unwrap();
        assert_eq!((checkpoint.epochs_done, checkpoint.chunks_done), (0, 3));
        assert!(h.epochs.is_empty(), "no epoch completed yet");

        let h = trainer
            .advance(&mut checkpoint, &source, &pre, None, StreamLimit::Chunks(1))
            .unwrap();
        assert_eq!((checkpoint.epochs_done, checkpoint.chunks_done), (1, 0));
        assert_eq!(h.epochs.len(), 1);
        assert_eq!(h.epochs[0].epoch, 0);

        let h = trainer
            .advance(&mut checkpoint, &source, &pre, None, StreamLimit::Epochs(1))
            .unwrap();
        assert_eq!((checkpoint.epochs_done, checkpoint.chunks_done), (2, 0));
        assert_eq!(h.epochs.len(), 1);
        assert!(checkpoint.is_complete());

        // Advancing a complete run is a no-op.
        let h = trainer
            .advance(
                &mut checkpoint,
                &source,
                &pre,
                None,
                StreamLimit::ToCompletion,
            )
            .unwrap();
        assert!(h.epochs.is_empty());
        assert_eq!((checkpoint.epochs_done, checkpoint.chunks_done), (2, 0));
    }

    #[test]
    fn unset_source_is_not_serialized_and_loads_as_none() {
        let checkpoint = TrainCheckpoint::fresh(ModelKind::Rbm, 4, 3, quick_config(1), 5).unwrap();
        let json = checkpoint.to_json_pretty().unwrap();
        assert!(
            !json.contains("\"source\""),
            "unset provenance must not be written"
        );
        let back = TrainCheckpoint::from_json(&json).unwrap();
        assert_eq!(back, checkpoint);
        assert_eq!(back.source, None);

        let tagged = checkpoint.with_source(Some("retrain --epochs 1".into()));
        let json = tagged.to_json_pretty().unwrap();
        assert!(json.contains("retrain --epochs 1"));
        let back = TrainCheckpoint::from_json(&json).unwrap();
        assert_eq!(back.source.as_deref(), Some("retrain --epochs 1"));
    }

    #[test]
    fn large_seeds_round_trip_through_json() {
        let checkpoint =
            TrainCheckpoint::fresh(ModelKind::Rbm, 3, 2, quick_config(1), u64::MAX).unwrap();
        let back = TrainCheckpoint::from_json(&checkpoint.to_json_pretty().unwrap()).unwrap();
        assert_eq!(back.base_seed, u64::MAX);
    }

    #[test]
    fn newer_schema_version_is_rejected() {
        let checkpoint = TrainCheckpoint::fresh(ModelKind::Rbm, 4, 3, quick_config(1), 5).unwrap();
        let json = checkpoint
            .to_json_pretty()
            .unwrap()
            .replace("\"schema_version\": 1", "\"schema_version\": 999");
        match TrainCheckpoint::from_json(&json) {
            Err(RbmError::UnsupportedSchemaVersion { found, supported }) => {
                assert_eq!(found, 999);
                assert_eq!(supported, CHECKPOINT_SCHEMA_VERSION);
            }
            other => panic!("expected UnsupportedSchemaVersion, got {other:?}"),
        }
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join("sls_core_stream_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("checkpoint.json");
        let checkpoint = TrainCheckpoint::fresh(ModelKind::Grbm, 4, 3, quick_config(1), 5)
            .unwrap()
            .with_source(Some("unit test".into()));
        checkpoint.save(&path).unwrap();
        let back = TrainCheckpoint::load(&path).unwrap();
        assert_eq!(back, checkpoint);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn sls_kind_without_supervision_is_rejected() {
        let source = bernoulli_source(10, 4, 5, 15);
        let mut checkpoint =
            TrainCheckpoint::fresh(ModelKind::SlsRbm, 4, 3, quick_config(1), 5).unwrap();
        let err = StreamTrainer::new()
            .advance(
                &mut checkpoint,
                &source,
                &FittedPreprocessor::Identity,
                None,
                StreamLimit::ToCompletion,
            )
            .unwrap_err();
        assert!(matches!(
            err,
            RbmError::InvalidConfig {
                name: "supervision",
                ..
            }
        ));
    }

    #[test]
    fn non_sls_kind_with_supervision_is_rejected() {
        let source = bernoulli_source(10, 4, 5, 16);
        let supervision = leading_supervision(8, 10);
        let sls = SlsConfig::default();
        let mut checkpoint =
            TrainCheckpoint::fresh(ModelKind::Rbm, 4, 3, quick_config(1), 5).unwrap();
        let err = StreamTrainer::new()
            .advance(
                &mut checkpoint,
                &source,
                &FittedPreprocessor::Identity,
                Some((&supervision, &sls)),
                StreamLimit::ToCompletion,
            )
            .unwrap_err();
        assert!(matches!(
            err,
            RbmError::InvalidConfig {
                name: "supervision",
                ..
            }
        ));
    }

    #[test]
    fn supervision_beyond_the_stream_is_rejected() {
        let source = bernoulli_source(10, 4, 5, 17);
        let supervision = leading_supervision(12, 12); // covers indices up to 11
        let sls = SlsConfig::default();
        let mut checkpoint =
            TrainCheckpoint::fresh(ModelKind::SlsRbm, 4, 3, quick_config(1), 5).unwrap();
        let err = StreamTrainer::new()
            .advance(
                &mut checkpoint,
                &source,
                &FittedPreprocessor::Identity,
                Some((&supervision, &sls)),
                StreamLimit::ToCompletion,
            )
            .unwrap_err();
        assert!(matches!(
            err,
            RbmError::SupervisionOutOfRange {
                index: 11,
                instances: 10
            }
        ));
    }

    #[test]
    fn chunk_seeds_are_distinct_across_epochs_and_chunks() {
        let mut seen = std::collections::HashSet::new();
        for epoch in 0..16 {
            for chunk in 0..64 {
                assert!(seen.insert(chunk_seed(42, epoch, chunk)));
            }
        }
        assert_ne!(init_seed(42), chunk_seed(42, 0, 0));
    }

    #[test]
    fn velocity_shape_mismatch_is_rejected() {
        let mut checkpoint =
            TrainCheckpoint::fresh(ModelKind::Rbm, 4, 3, quick_config(1), 5).unwrap();
        checkpoint.velocity_a = vec![0.0; 2];
        assert!(matches!(
            checkpoint.check_consistent(),
            Err(RbmError::InvalidConfig {
                name: "checkpoint",
                ..
            })
        ));
    }
}
