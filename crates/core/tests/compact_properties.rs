//! Property-based bounds on the compact (f32-quantized) serving path.
//!
//! The serving contract for compact mode is documented in the `compact`
//! module: every feature element stays within `1e-6 · (1 + |full|)` of the
//! full-precision path, and the compact forward pass is bitwise identical
//! across the {serial, spawn, pool} × {simd on, simd off} policy grid.
//! These properties enforce both on randomly generated artifacts (weights,
//! biases, preprocessors and cluster heads far rougher than anything
//! training produces) and on every serving endpoint's compute: `/features`
//! (hidden features) and `/assign` (nearest-centroid labels, gated on the
//! full path's own decision margin so genuine near-ties are not counted
//! against quantization).

use proptest::prelude::*;
use sls_linalg::{Matrix, ParallelPolicy, SimdPolicy};
use sls_rbm_core::{
    ClusterHead, CompactArtifact, FittedPreprocessor, ModelKind, PipelineArtifact, Preprocessing,
    RbmParams,
};

/// One generated serving scenario: an artifact (with cluster head) plus a
/// request batch of raw rows.
#[derive(Debug)]
struct Case {
    artifact: PipelineArtifact,
    rows: Matrix,
}

/// The {serial, spawn, pool} × {simd on, simd off} grid the acceptance
/// criteria name, with an eager cutover so the 4-thread policies really fan
/// out on the generated row counts.
fn policy_grid() -> Vec<ParallelPolicy> {
    let mut grid = Vec::new();
    for simd in [SimdPolicy::Scalar, SimdPolicy::Lanes4] {
        grid.push(ParallelPolicy::serial().with_simd(simd));
        for pool in [false, true] {
            grid.push(
                ParallelPolicy::new(4)
                    .with_min_rows_per_thread(1)
                    .with_pool(pool)
                    .with_simd(simd),
            );
        }
    }
    grid
}

/// Builds an artifact from raw pieces: random weights/biases, a preprocessor
/// fitted on a random training matrix, and random centroids in hidden space.
fn case_strategy() -> impl Strategy<Value = Case> {
    (2..7usize, 1..10usize, 1..16usize, 1..4usize, 0..3usize).prop_flat_map(
        |(n_visible, n_hidden, n_rows, n_clusters, pre_kind)| {
            let weights = proptest::collection::vec(-3.0..3.0f64, n_visible * n_hidden);
            let hidden_bias = proptest::collection::vec(-2.0..2.0f64, n_hidden);
            // Training matrix for the fitted preprocessor: enough rows for
            // stable column statistics, values on the request scale.
            let train = proptest::collection::vec(-8.0..8.0f64, 12 * n_visible);
            let centroids = proptest::collection::vec(0.0..1.0f64, n_clusters * n_hidden);
            let rows = proptest::collection::vec(-8.0..8.0f64, n_rows * n_visible);
            (weights, hidden_bias, train, centroids, rows).prop_map(
                move |(weights, hidden_bias, train, centroids, rows)| {
                    let params = RbmParams {
                        weights: Matrix::from_vec(n_visible, n_hidden, weights).unwrap(),
                        visible_bias: vec![0.0; n_visible],
                        hidden_bias,
                    };
                    let mut artifact = PipelineArtifact::from_params(params, ModelKind::Grbm);
                    let train = Matrix::from_vec(12, n_visible, train).unwrap();
                    let preprocessing = match pre_kind {
                        0 => Preprocessing::Standardize,
                        1 => Preprocessing::BinarizeMedian,
                        _ => Preprocessing::None,
                    };
                    artifact.preprocessor = FittedPreprocessor::fit(preprocessing, &train).unwrap();
                    artifact.cluster_head = Some(ClusterHead {
                        algorithm: "K-means".into(),
                        n_clusters,
                        centroids: Matrix::from_vec(n_clusters, n_hidden, centroids).unwrap(),
                    });
                    Case {
                        artifact,
                        rows: Matrix::from_vec(n_rows, n_visible, rows).unwrap(),
                    }
                },
            )
        },
    )
}

/// Squared Euclidean distances from `row` to every centroid, plus the margin
/// between the best and second-best centroid (infinite for one cluster).
fn assignment_margin(head: &ClusterHead, row: &[f64]) -> f64 {
    let mut distances: Vec<f64> = head
        .centroids
        .row_iter()
        .map(|c| {
            c.iter()
                .zip(row)
                .map(|(&a, &b)| (a - b) * (a - b))
                .sum::<f64>()
        })
        .collect();
    distances.sort_by(|a, b| a.partial_cmp(b).unwrap());
    if distances.len() < 2 {
        f64::INFINITY
    } else {
        distances[1] - distances[0]
    }
}

proptest! {
    /// `/features` bound: every compact feature element is within
    /// `1e-6 · (1 + |full|)` of the full-precision element, under every
    /// policy in the grid.
    #[test]
    fn compact_features_stay_within_the_documented_bound(case in case_strategy()) {
        let compact = CompactArtifact::from_artifact(&case.artifact);
        for policy in policy_grid() {
            let full = case.artifact.features_with(&case.rows, &policy).unwrap();
            let quant = compact.features_with(&case.rows, &policy).unwrap();
            prop_assert_eq!(full.shape(), quant.shape());
            for (&f, &q) in full.as_slice().iter().zip(quant.as_slice()) {
                prop_assert!(
                    (f - q).abs() <= 1e-6 * (1.0 + f.abs()),
                    "full {} vs compact {}", f, q
                );
            }
        }
    }

    /// Policy identity: the compact path is bitwise identical across the
    /// whole grid — quantized models keep the serving layer's
    /// reproducibility contract.
    #[test]
    fn compact_path_is_bitwise_identical_across_the_policy_grid(case in case_strategy()) {
        let compact = CompactArtifact::from_artifact(&case.artifact);
        let reference = compact
            .features_with(&case.rows, &ParallelPolicy::serial())
            .unwrap();
        let reference_assign = compact
            .assign_with(&case.rows, &ParallelPolicy::serial())
            .unwrap();
        for policy in policy_grid() {
            let features = compact.features_with(&case.rows, &policy).unwrap();
            let same = reference
                .as_slice()
                .iter()
                .zip(features.as_slice())
                .all(|(a, b)| a.to_bits() == b.to_bits());
            prop_assert!(same, "policy {:?}", policy);
            prop_assert_eq!(
                compact.assign_with(&case.rows, &policy).unwrap(),
                reference_assign.clone()
            );
        }
    }

    /// `/assign` bound: wherever the full path's own decision is not a
    /// near-tie (best vs second-best squared distance separated by more
    /// than 1e-4 — far above what a 1e-6-bounded feature perturbation can
    /// move a distance by on these layer sizes), the compact label agrees
    /// exactly, under every policy in the grid.
    #[test]
    fn compact_assignments_agree_outside_near_ties(case in case_strategy()) {
        let compact = CompactArtifact::from_artifact(&case.artifact);
        let head = case.artifact.cluster_head.as_ref().unwrap();
        for policy in policy_grid() {
            let full_features = case.artifact.features_with(&case.rows, &policy).unwrap();
            let full = case.artifact.assign_with(&case.rows, &policy).unwrap();
            let quant = compact.assign_with(&case.rows, &policy).unwrap();
            prop_assert_eq!(full.len(), quant.len());
            for (i, (&f, &q)) in full.iter().zip(&quant).enumerate() {
                if assignment_margin(head, full_features.row(i)) > 1e-4 {
                    prop_assert_eq!(f, q, "row {} margin was decisive", i);
                }
            }
        }
    }
}
