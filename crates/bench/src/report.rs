//! Rendering of experiment results as the paper's tables and figure series.

use crate::experiments::{AlgorithmId, FamilyResults};
use serde::{Deserialize, Serialize};
use sls_metrics::EvaluationReport;
use std::path::Path;

/// Which metric a table or figure reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MetricKind {
    /// Clustering accuracy (Tables IV and VII, Figs. 2 and 6).
    Accuracy,
    /// Purity (Table V, Fig. 3).
    Purity,
    /// Rand index (Table VIII, Fig. 7).
    RandIndex,
    /// Fowlkes–Mallows index (Tables VI and IX, Figs. 4 and 8).
    Fmi,
    /// Normalised mutual information (extra ablation metric).
    Nmi,
}

impl MetricKind {
    /// Human-readable metric name.
    pub fn name(self) -> &'static str {
        match self {
            MetricKind::Accuracy => "Accuracy",
            MetricKind::Purity => "Purity",
            MetricKind::RandIndex => "Rand index",
            MetricKind::Fmi => "Fowlkes-Mallows index",
            MetricKind::Nmi => "NMI",
        }
    }

    /// Extracts the metric from an evaluation report.
    pub fn extract(self, report: &EvaluationReport) -> f64 {
        match self {
            MetricKind::Accuracy => report.accuracy,
            MetricKind::Purity => report.purity,
            MetricKind::RandIndex => report.rand_index,
            MetricKind::Fmi => report.fmi,
            MetricKind::Nmi => report.nmi,
        }
    }
}

/// One of the paper's tables: a dataset-by-algorithm matrix of a metric,
/// plus the per-algorithm averages the paper quotes in the text.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetricTable {
    /// Table caption.
    pub title: String,
    /// Metric reported by the cells.
    pub metric: MetricKind,
    /// Column headers (algorithm names), paper order.
    pub columns: Vec<String>,
    /// Row labels (dataset codes), paper order.
    pub rows: Vec<String>,
    /// `cells[row][column]`.
    pub cells: Vec<Vec<f64>>,
    /// Per-column averages across datasets.
    pub averages: Vec<f64>,
}

impl MetricTable {
    /// Value at `(dataset_code, column_name)`, if present.
    pub fn cell(&self, dataset_code: &str, column_name: &str) -> Option<f64> {
        let row = self.rows.iter().position(|r| r == dataset_code)?;
        let column = self.columns.iter().position(|c| c == column_name)?;
        Some(self.cells[row][column])
    }

    /// Average of the named column.
    pub fn column_average(&self, column_name: &str) -> Option<f64> {
        let column = self.columns.iter().position(|c| c == column_name)?;
        Some(self.averages[column])
    }

    /// Renders the table as aligned plain text (the format printed by the
    /// reproduction binaries and recorded in EXPERIMENTS.md).
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("{}\n", self.title));
        let width = 14usize;
        out.push_str(&format!("{:<10}", "Dataset"));
        for c in &self.columns {
            out.push_str(&format!("{c:>width$}"));
        }
        out.push('\n');
        for (row_label, row) in self.rows.iter().zip(&self.cells) {
            out.push_str(&format!("{row_label:<10}"));
            for v in row {
                out.push_str(&format!("{v:>width$.4}"));
            }
            out.push('\n');
        }
        out.push_str(&format!("{:<10}", "Average"));
        for v in &self.averages {
            out.push_str(&format!("{v:>width$.4}"));
        }
        out.push('\n');
        out
    }
}

/// Builds one of the paper's tables from a family's results.
pub fn metric_table(results: &FamilyResults, metric: MetricKind, title: &str) -> MetricTable {
    let columns_ids = AlgorithmId::table_columns();
    let columns: Vec<String> = columns_ids
        .iter()
        .map(|a| a.display_name(&results.model_name))
        .collect();
    let rows = results.dataset_codes.clone();
    let mut cells = Vec::with_capacity(rows.len());
    for code in &rows {
        let row: Vec<f64> = columns_ids
            .iter()
            .map(|a| {
                results
                    .get(code, *a)
                    .map(|r| metric.extract(r))
                    .unwrap_or(f64::NAN)
            })
            .collect();
        cells.push(row);
    }
    let averages: Vec<f64> = columns_ids
        .iter()
        .map(|a| results.average(*a, |r| metric.extract(r)))
        .collect();
    MetricTable {
        title: title.to_string(),
        metric,
        columns,
        rows,
        cells,
        averages,
    }
}

/// One curve of a figure: the metric of a single algorithm across datasets
/// (the x-axis is the dataset index, exactly like Figs. 2–4 and 6–8).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FigureSeries {
    /// Algorithm name (legend entry).
    pub algorithm: String,
    /// `(dataset_index, value)` points, in x order.
    pub points: Vec<(usize, f64)>,
}

/// Builds the figure series (one per algorithm) for a metric.
pub fn figure_series(results: &FamilyResults, metric: MetricKind) -> Vec<FigureSeries> {
    AlgorithmId::table_columns()
        .into_iter()
        .map(|a| {
            let mut points: Vec<(usize, f64)> = results
                .results
                .iter()
                .filter(|r| r.algorithm == a)
                .map(|r| (r.dataset_index, metric.extract(&r.report)))
                .collect();
            points.sort_by_key(|&(i, _)| i);
            FigureSeries {
                algorithm: a.display_name(&results.model_name),
                points,
            }
        })
        .collect()
}

/// Renders figure series as plain text (legend entry followed by its points).
pub fn render_figure(series: &[FigureSeries], title: &str) -> String {
    let mut out = String::new();
    out.push_str(&format!("{title}\n"));
    for s in series {
        out.push_str(&format!("  {:<18}", s.algorithm));
        for (x, y) in &s.points {
            out.push_str(&format!(" ({x}, {y:.4})"));
        }
        out.push('\n');
    }
    out
}

/// Persists a serialisable report as pretty JSON under `results/`.
///
/// # Errors
///
/// Returns a string describing the I/O or serialisation failure.
pub fn save_json<T: Serialize>(value: &T, path: impl AsRef<Path>) -> Result<(), String> {
    let path = path.as_ref();
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent).map_err(|e| e.to_string())?;
        }
    }
    let json = serde_json::to_string_pretty(value).map_err(|e| e.to_string())?;
    std::fs::write(path, json).map_err(|e| e.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::PipelineResult;

    fn toy_results() -> FamilyResults {
        let mut results = Vec::new();
        for (index, code) in [(1usize, "A"), (2, "B")] {
            for (value, algorithm) in AlgorithmId::table_columns().iter().enumerate() {
                // Distinct, predictable accuracies per column.
                let predicted: Vec<usize> = (0..10).map(|i| i % 2).collect();
                let truth: Vec<usize> = (0..10)
                    .map(|i| if i < value { 1 - (i % 2) } else { i % 2 })
                    .collect();
                let report = EvaluationReport::evaluate(&predicted, &truth).unwrap();
                results.push(PipelineResult {
                    dataset_code: code.to_string(),
                    dataset_index: index,
                    algorithm: *algorithm,
                    report,
                });
            }
        }
        FamilyResults {
            family: "test".into(),
            model_name: "GRBM".into(),
            dataset_codes: vec!["A".into(), "B".into()],
            results,
            scale: crate::ExperimentScale::Smoke,
        }
    }

    #[test]
    fn metric_extraction_matches_report_fields() {
        let r = EvaluationReport::evaluate(&[0, 0, 1, 1], &[0, 1, 1, 1]).unwrap();
        assert_eq!(MetricKind::Accuracy.extract(&r), r.accuracy);
        assert_eq!(MetricKind::Purity.extract(&r), r.purity);
        assert_eq!(MetricKind::RandIndex.extract(&r), r.rand_index);
        assert_eq!(MetricKind::Fmi.extract(&r), r.fmi);
        assert_eq!(MetricKind::Nmi.extract(&r), r.nmi);
        assert_eq!(MetricKind::Accuracy.name(), "Accuracy");
    }

    #[test]
    fn table_has_paper_shape() {
        let table = metric_table(&toy_results(), MetricKind::Accuracy, "Table IV");
        assert_eq!(table.columns.len(), 9);
        assert_eq!(table.rows, vec!["A", "B"]);
        assert_eq!(table.cells.len(), 2);
        assert_eq!(table.cells[0].len(), 9);
        assert_eq!(table.averages.len(), 9);
        assert!(table.cell("A", "DP").is_some());
        assert!(table.cell("A", "DP+slsGRBM").is_some());
        assert!(table.cell("Z", "DP").is_none());
        assert!(table.column_average("AP+GRBM").is_some());
        assert!(table.column_average("nope").is_none());
    }

    #[test]
    fn render_text_contains_headers_rows_and_average() {
        let table = metric_table(&toy_results(), MetricKind::Fmi, "Table VI: FMI");
        let text = table.render_text();
        assert!(text.contains("Table VI"));
        assert!(text.contains("DP+slsGRBM"));
        assert!(text.contains("Average"));
        assert!(text.lines().count() >= 4);
    }

    #[test]
    fn figure_series_are_sorted_by_dataset_index() {
        let series = figure_series(&toy_results(), MetricKind::Accuracy);
        assert_eq!(series.len(), 9);
        for s in &series {
            assert_eq!(s.points.len(), 2);
            assert!(s.points[0].0 < s.points[1].0);
        }
        let text = render_figure(&series, "Fig. 2");
        assert!(text.contains("Fig. 2"));
        assert!(text.contains("AP+slsGRBM"));
    }

    #[test]
    fn save_json_round_trips_through_disk() {
        let table = metric_table(&toy_results(), MetricKind::Accuracy, "t");
        let dir = std::env::temp_dir().join("sls_bench_report_test");
        let path = dir.join("table.json");
        save_json(&table, &path).unwrap();
        let loaded: MetricTable =
            serde_json::from_str(&std::fs::read_to_string(&path).unwrap()).unwrap();
        assert_eq!(loaded, table);
        std::fs::remove_dir_all(&dir).ok();
    }
}
