//! # sls-bench
//!
//! Experiment harness that regenerates every table and figure of the paper's
//! evaluation section, plus the repository's extra ablations.
//!
//! * [`experiments`] runs the full pipeline grid (3 clusterers × 3 feature
//!   spaces × all datasets of a family) and returns structured results.
//! * [`report`] renders those results as the paper's tables (one row per
//!   dataset, one column per algorithm) and figure series, and persists them
//!   as JSON under `results/`.
//!
//! Every binary in `src/bin/` is a thin wrapper: `table4_accuracy_datasets_i`
//! prints Table IV, `fig5_averages_datasets_i` prints the three panels of
//! Fig. 5, `reproduce_all` runs everything, and the `ablation_*` binaries
//! cover the design-choice sweeps listed in DESIGN.md.
//!
//! ## Scale control
//!
//! The paper-scale datasets (≈900 instances × ≈900 features, nine of them,
//! with O(n²) clusterers run dozens of times) take a while on a laptop, so
//! the harness honours the `SLS_SCALE` environment variable:
//!
//! | value | meaning |
//! |-------|---------|
//! | `full` | exact Table II / III shapes |
//! | `reduced` (default) | instances and features capped (≈300 × 128) — same qualitative behaviour, minutes instead of hours |
//! | `smoke` | tiny shapes for CI smoke tests |

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod experiments;
pub mod report;

pub use experiments::{
    run_datasets_i, run_datasets_ii, AlgorithmId, ClustererId, ExperimentScale, FamilyResults,
    FeatureSpace, PipelineResult,
};
pub use report::{figure_series, metric_table, MetricKind, MetricTable};
