//! The experiment grid of Section V: every (dataset, clusterer, feature
//! space) combination of the paper, for both dataset families.
//!
//! For one dataset the protocol is:
//!
//! 1. generate the dataset stand-in and preprocess it (standardise for the
//!    Gaussian family, median-binarise for the binary family);
//! 2. run the three base clusterers (DP, K-means, AP) on the preprocessed
//!    data — these assignments are evaluated as the `DP` / `K-means` / `AP`
//!    columns *and* reused as the base partitions of the self-learning
//!    supervision (unanimous voting);
//! 3. train the baseline model (GRBM / RBM) with plain CD and the sls model
//!    (slsGRBM / slsRBM) with the supervision;
//! 4. run the three clusterers again on each model's hidden features and
//!    evaluate every assignment against the ground truth.
//!
//! The result is a [`FamilyResults`] holding one [`sls_metrics::EvaluationReport`]
//! per (dataset, algorithm) cell, from which every table and figure of the
//! paper is a projection.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};
use sls_clustering::{AffinityPropagation, Clusterer, DensityPeaks, KMeans};
use sls_consensus::{LocalSupervisionBuilder, VotingPolicy};
use sls_datasets::{
    binarize_median, generate_msra_dataset, generate_uci_dataset, msra_catalog,
    standardize_columns, uci_catalog, Dataset,
};
use sls_linalg::Matrix;
use sls_metrics::EvaluationReport;
use sls_rbm_core::{
    BoltzmannMachine, CdTrainer, Grbm, Rbm, SlsConfig, SlsGrbm, SlsRbm, TrainConfig,
};

/// How much of the paper-scale workload to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ExperimentScale {
    /// Exact Table II / III dataset shapes and full training schedules.
    Full,
    /// Instances capped at 300 and features at 128 — the default. The
    /// qualitative comparison (who wins, by roughly what margin) is
    /// preserved while the grid finishes in minutes.
    Reduced,
    /// Tiny shapes for CI smoke tests.
    Smoke,
}

impl ExperimentScale {
    /// Reads the scale from the `SLS_SCALE` environment variable
    /// (`full` / `reduced` / `smoke`), defaulting to [`Self::Reduced`].
    pub fn from_env() -> Self {
        match std::env::var("SLS_SCALE")
            .unwrap_or_default()
            .to_lowercase()
            .as_str()
        {
            "full" => Self::Full,
            "smoke" => Self::Smoke,
            _ => Self::Reduced,
        }
    }

    /// Maximum number of instances kept per dataset (`None` = no cap).
    pub fn max_instances(self) -> Option<usize> {
        match self {
            Self::Full => None,
            Self::Reduced => Some(300),
            Self::Smoke => Some(60),
        }
    }

    /// Maximum number of features kept per dataset (`None` = no cap).
    pub fn max_features(self) -> Option<usize> {
        match self {
            Self::Full => None,
            Self::Reduced => Some(128),
            Self::Smoke => Some(16),
        }
    }

    /// Hidden-layer width for the Gaussian-family models.
    pub fn gaussian_hidden(self) -> usize {
        match self {
            Self::Full => 64,
            Self::Reduced => 32,
            Self::Smoke => 8,
        }
    }

    /// Hidden-layer width for the binary-family models.
    pub fn binary_hidden(self) -> usize {
        match self {
            Self::Full => 32,
            Self::Reduced => 16,
            Self::Smoke => 8,
        }
    }

    /// Training epochs.
    pub fn epochs(self) -> usize {
        match self {
            Self::Full => 30,
            Self::Reduced => 15,
            Self::Smoke => 3,
        }
    }
}

/// The three base clusterers of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ClustererId {
    /// Density peaks (Rodriguez & Laio 2014).
    Dp,
    /// K-means (Lloyd 1982).
    KMeans,
    /// Affinity propagation (Frey & Dueck 2007).
    Ap,
}

impl ClustererId {
    /// All clusterers, in the column order of the paper's tables.
    pub fn all() -> [ClustererId; 3] {
        [ClustererId::Dp, ClustererId::KMeans, ClustererId::Ap]
    }

    /// Display name used in the tables.
    pub fn name(self) -> &'static str {
        match self {
            ClustererId::Dp => "DP",
            ClustererId::KMeans => "K-means",
            ClustererId::Ap => "AP",
        }
    }

    fn build(self, k: usize) -> Box<dyn Clusterer> {
        match self {
            ClustererId::Dp => Box::new(DensityPeaks::new(k)),
            ClustererId::KMeans => Box::new(KMeans::new(k)),
            ClustererId::Ap => Box::new(AffinityPropagation::default().with_target_clusters(k)),
        }
    }
}

/// Which representation the clusterer consumed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FeatureSpace {
    /// The preprocessed input data itself (`DP`, `K-means`, `AP` columns).
    Raw,
    /// Hidden features of the plain CD-trained model (`X+GRBM` / `X+RBM`).
    Baseline,
    /// Hidden features of the sls-trained model (`X+slsGRBM` / `X+slsRBM`).
    Sls,
}

impl FeatureSpace {
    /// All feature spaces, in the column order of the paper's tables.
    pub fn all() -> [FeatureSpace; 3] {
        [FeatureSpace::Raw, FeatureSpace::Baseline, FeatureSpace::Sls]
    }
}

/// A (clusterer, feature space) pair — one algorithm column of a table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct AlgorithmId {
    /// Which clusterer produced the partition.
    pub clusterer: ClustererId,
    /// Which representation it clustered.
    pub space: FeatureSpace,
}

impl AlgorithmId {
    /// The nine columns of a table, in the paper's order: the three raw
    /// clusterers, then the baseline-model columns, then the sls columns.
    pub fn table_columns() -> Vec<AlgorithmId> {
        let mut columns = Vec::with_capacity(9);
        for space in FeatureSpace::all() {
            for clusterer in ClustererId::all() {
                columns.push(AlgorithmId { clusterer, space });
            }
        }
        columns
    }

    /// Display name, e.g. `"DP+slsGRBM"`. `model` is `"GRBM"` or `"RBM"`.
    pub fn display_name(&self, model: &str) -> String {
        match self.space {
            FeatureSpace::Raw => self.clusterer.name().to_string(),
            FeatureSpace::Baseline => format!("{}+{}", self.clusterer.name(), model),
            FeatureSpace::Sls => format!("{}+sls{}", self.clusterer.name(), model),
        }
    }
}

/// The evaluation of one algorithm on one dataset.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PipelineResult {
    /// Short dataset code (`"BO"`, `"IR"`, ...).
    pub dataset_code: String,
    /// 1-based dataset index (x-axis of the figures).
    pub dataset_index: usize,
    /// Which algorithm produced the partition.
    pub algorithm: AlgorithmId,
    /// All external metrics of that partition.
    pub report: EvaluationReport,
}

/// All results for one dataset family (datasets I or datasets II).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FamilyResults {
    /// `"datasets-I"` or `"datasets-II"`.
    pub family: String,
    /// `"GRBM"` or `"RBM"` — used to render column names.
    pub model_name: String,
    /// Dataset codes in table order.
    pub dataset_codes: Vec<String>,
    /// One entry per (dataset, algorithm) cell.
    pub results: Vec<PipelineResult>,
    /// The scale the experiments ran at.
    pub scale: ExperimentScale,
}

impl FamilyResults {
    /// Looks up the evaluation of `algorithm` on the dataset with `code`.
    pub fn get(&self, code: &str, algorithm: AlgorithmId) -> Option<&EvaluationReport> {
        self.results
            .iter()
            .find(|r| r.dataset_code == code && r.algorithm == algorithm)
            .map(|r| &r.report)
    }

    /// Average of `metric` over all datasets for one algorithm column.
    pub fn average(
        &self,
        algorithm: AlgorithmId,
        metric: impl Fn(&EvaluationReport) -> f64,
    ) -> f64 {
        let values: Vec<f64> = self
            .results
            .iter()
            .filter(|r| r.algorithm == algorithm)
            .map(|r| metric(&r.report))
            .collect();
        if values.is_empty() {
            0.0
        } else {
            values.iter().sum::<f64>() / values.len() as f64
        }
    }
}

/// Truncates a dataset to at most `max_instances` rows and `max_features`
/// columns. Rows are a prefix (the generator already shuffled instances);
/// columns are sampled with a uniform stride across the full feature range so
/// the informative/irrelevant mix of the original dataset is preserved —
/// taking a prefix of columns would keep only informative dimensions and make
/// the reduced-scale problem artificially easy.
fn truncate_dataset(ds: &Dataset, scale: ExperimentScale) -> Dataset {
    let n = scale
        .max_instances()
        .map_or(ds.n_instances(), |m| m.min(ds.n_instances()));
    let d = scale
        .max_features()
        .map_or(ds.n_features(), |m| m.min(ds.n_features()));
    if n == ds.n_instances() && d == ds.n_features() {
        return ds.clone();
    }
    let total = ds.n_features();
    let columns: Vec<usize> = (0..d).map(|j| j * total / d).collect();
    let rows: Vec<Vec<f64>> = (0..n)
        .map(|i| {
            let row = ds.features().row(i);
            columns.iter().map(|&j| row[j]).collect()
        })
        .collect();
    let features = Matrix::from_rows(&rows).expect("uniform rows");
    let labels = ds.labels()[..n].to_vec();
    Dataset::from_parts(&ds.spec().code, features, labels).expect("consistent truncation")
}

/// Training configuration for the Gaussian family at a given scale.
///
/// The paper's learning rates (1e-4 / 1e-5) are tied to the original MSRA-MM
/// feature scale; on the standardised synthetic stand-ins they barely move
/// the parameters within the epoch budget, so the harness uses re-tuned
/// rates. The relative comparison (raw vs. baseline vs. sls) is unaffected;
/// EXPERIMENTS.md discusses this substitution.
fn gaussian_train_config(scale: ExperimentScale) -> TrainConfig {
    TrainConfig::default()
        .with_learning_rate(5e-3)
        .with_epochs(scale.epochs())
        .with_batch_size(64)
}

/// Training configuration for the binary family at a given scale.
fn binary_train_config(scale: ExperimentScale) -> TrainConfig {
    TrainConfig::default()
        .with_learning_rate(5e-2)
        .with_epochs(scale.epochs())
        .with_batch_size(32)
}

/// Runs the three clusterers on one feature matrix and returns their
/// assignments (in [`ClustererId::all`] order).
fn cluster_all(
    features: &Matrix,
    k: usize,
    rng: &mut impl Rng,
) -> Result<Vec<(ClustererId, Vec<usize>)>, String> {
    let mut out = Vec::with_capacity(3);
    for id in ClustererId::all() {
        let assignment = id
            .build(k)
            .cluster(features, rng)
            .map_err(|e| format!("{} failed: {e}", id.name()))?;
        out.push((id, assignment.labels().to_vec()));
    }
    Ok(out)
}

fn evaluate(
    partitions: &[(ClustererId, Vec<usize>)],
    space: FeatureSpace,
    truth: &[usize],
    dataset_code: &str,
    dataset_index: usize,
) -> Result<Vec<PipelineResult>, String> {
    partitions
        .iter()
        .map(|(clusterer, labels)| {
            let report = EvaluationReport::evaluate(labels, truth)
                .map_err(|e| format!("evaluation failed: {e}"))?;
            Ok(PipelineResult {
                dataset_code: dataset_code.to_string(),
                dataset_index,
                algorithm: AlgorithmId {
                    clusterer: *clusterer,
                    space,
                },
                report,
            })
        })
        .collect()
}

/// Runs the complete grid for one dataset of the Gaussian family.
fn run_gaussian_dataset(
    ds: &Dataset,
    dataset_index: usize,
    scale: ExperimentScale,
    seed: u64,
) -> Result<Vec<PipelineResult>, String> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let ds = truncate_dataset(ds, scale);
    let k = ds.n_classes().max(2);
    let code = ds.spec().code.clone();
    let data = standardize_columns(ds.features()).map_err(|e| e.to_string())?;

    // Raw clusterings double as the supervision's base partitions.
    let raw = cluster_all(&data, k, &mut rng)?;
    let mut results = evaluate(&raw, FeatureSpace::Raw, ds.labels(), &code, dataset_index)?;

    // Baseline GRBM.
    let train = gaussian_train_config(scale);
    let mut grbm = Grbm::new(data.cols(), scale.gaussian_hidden(), &mut rng);
    CdTrainer::new(train)
        .map_err(|e| e.to_string())?
        .train(&mut grbm, &data, &mut rng)
        .map_err(|e| e.to_string())?;
    let baseline_features = grbm
        .hidden_probabilities(&data)
        .map_err(|e| e.to_string())?;
    let baseline = cluster_all(&baseline_features, k, &mut rng)?;
    results.extend(evaluate(
        &baseline,
        FeatureSpace::Baseline,
        ds.labels(),
        &code,
        dataset_index,
    )?);

    // slsGRBM guided by the unanimous vote of the raw clusterings.
    let partitions: Vec<Vec<usize>> = raw.iter().map(|(_, l)| l.clone()).collect();
    let supervision = LocalSupervisionBuilder::new(k)
        .with_policy(VotingPolicy::Unanimous)
        .build_from_partitions(&partitions)
        .map_err(|e| e.to_string())?;
    let mut sls_model = SlsGrbm::new(data.cols(), scale.gaussian_hidden(), &mut rng);
    let sls_config =
        SlsConfig::paper_grbm().with_supervision_learning_rate(train.learning_rate * 40.0);
    sls_model
        .train(&data, &supervision, train, sls_config, &mut rng)
        .map_err(|e| e.to_string())?;
    let sls_features = sls_model
        .hidden_features(&data)
        .map_err(|e| e.to_string())?;
    let sls = cluster_all(&sls_features, k, &mut rng)?;
    results.extend(evaluate(
        &sls,
        FeatureSpace::Sls,
        ds.labels(),
        &code,
        dataset_index,
    )?);
    Ok(results)
}

/// Runs the complete grid for one dataset of the binary family.
fn run_binary_dataset(
    ds: &Dataset,
    dataset_index: usize,
    scale: ExperimentScale,
    seed: u64,
) -> Result<Vec<PipelineResult>, String> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let ds = truncate_dataset(ds, scale);
    let k = ds.n_classes().max(2);
    let code = ds.spec().code.clone();
    let data = binarize_median(ds.features());

    let raw = cluster_all(&data, k, &mut rng)?;
    let mut results = evaluate(&raw, FeatureSpace::Raw, ds.labels(), &code, dataset_index)?;

    let train = binary_train_config(scale);
    let mut rbm = Rbm::new(data.cols(), scale.binary_hidden(), &mut rng);
    CdTrainer::new(train)
        .map_err(|e| e.to_string())?
        .train(&mut rbm, &data, &mut rng)
        .map_err(|e| e.to_string())?;
    let baseline_features = rbm.hidden_probabilities(&data).map_err(|e| e.to_string())?;
    let baseline = cluster_all(&baseline_features, k, &mut rng)?;
    results.extend(evaluate(
        &baseline,
        FeatureSpace::Baseline,
        ds.labels(),
        &code,
        dataset_index,
    )?);

    let partitions: Vec<Vec<usize>> = raw.iter().map(|(_, l)| l.clone()).collect();
    let supervision = LocalSupervisionBuilder::new(k)
        .with_policy(VotingPolicy::Unanimous)
        .build_from_partitions(&partitions)
        .map_err(|e| e.to_string())?;
    let mut sls_model = SlsRbm::new(data.cols(), scale.binary_hidden(), &mut rng);
    let sls_config =
        SlsConfig::paper_rbm().with_supervision_learning_rate(train.learning_rate * 10.0);
    sls_model
        .train(&data, &supervision, train, sls_config, &mut rng)
        .map_err(|e| e.to_string())?;
    let sls_features = sls_model
        .hidden_features(&data)
        .map_err(|e| e.to_string())?;
    let sls = cluster_all(&sls_features, k, &mut rng)?;
    results.extend(evaluate(
        &sls,
        FeatureSpace::Sls,
        ds.labels(),
        &code,
        dataset_index,
    )?);
    Ok(results)
}

/// Generic driver: generates every dataset of a family and runs its grid on
/// a worker thread per dataset. Per-dataset failures are collected and
/// propagated to the caller (annotated with the dataset code) instead of
/// aborting the whole process.
fn run_family<F>(
    family: &str,
    model_name: &str,
    datasets: Vec<(usize, Dataset)>,
    scale: ExperimentScale,
    seed: u64,
    runner: F,
) -> Result<FamilyResults, String>
where
    F: Fn(&Dataset, usize, ExperimentScale, u64) -> Result<Vec<PipelineResult>, String> + Sync,
{
    let dataset_codes: Vec<String> = datasets
        .iter()
        .map(|(_, d)| d.spec().code.clone())
        .collect();
    let mut results: Vec<PipelineResult> = Vec::new();
    let mut failures: Vec<String> = Vec::new();
    std::thread::scope(|scope| {
        let handles: Vec<_> = datasets
            .iter()
            .map(|(index, ds)| {
                let runner = &runner;
                scope.spawn(move || runner(ds, *index, scale, seed.wrapping_add(*index as u64)))
            })
            .collect();
        for (handle, (_, ds)) in handles.into_iter().zip(&datasets) {
            match handle.join().expect("experiment worker panicked") {
                Ok(mut r) => results.append(&mut r),
                Err(message) => failures.push(format!("{}: {message}", ds.spec().code)),
            }
        }
    });
    if !failures.is_empty() {
        return Err(format!(
            "{family} grid failed for {} of {} datasets — {}",
            failures.len(),
            dataset_codes.len(),
            failures.join("; ")
        ));
    }
    results.sort_by_key(|r| r.dataset_index);
    Ok(FamilyResults {
        family: family.to_string(),
        model_name: model_name.to_string(),
        dataset_codes,
        results,
        scale,
    })
}

/// Runs the full datasets I grid (Tables IV–VI, Figs. 2–5).
///
/// # Errors
///
/// Returns a message naming every dataset whose pipeline grid failed.
pub fn run_datasets_i(scale: ExperimentScale, seed: u64) -> Result<FamilyResults, String> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let datasets: Vec<(usize, Dataset)> = msra_catalog()
        .into_iter()
        .map(|id| (id.index(), generate_msra_dataset(id, &mut rng)))
        .collect();
    run_family(
        "datasets-I",
        "GRBM",
        datasets,
        scale,
        seed,
        run_gaussian_dataset,
    )
}

/// Runs the full datasets II grid (Tables VII–IX, Figs. 6–9).
///
/// # Errors
///
/// Returns a message naming every dataset whose pipeline grid failed.
pub fn run_datasets_ii(scale: ExperimentScale, seed: u64) -> Result<FamilyResults, String> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let datasets: Vec<(usize, Dataset)> = uci_catalog()
        .into_iter()
        .map(|id| (id.index(), generate_uci_dataset(id, &mut rng)))
        .collect();
    run_family(
        "datasets-II",
        "RBM",
        datasets,
        scale,
        seed,
        run_binary_dataset,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_from_env_defaults_to_reduced() {
        // The test environment does not set SLS_SCALE.
        if std::env::var("SLS_SCALE").is_err() {
            assert_eq!(ExperimentScale::from_env(), ExperimentScale::Reduced);
        }
        assert_eq!(ExperimentScale::Smoke.max_instances(), Some(60));
        assert_eq!(ExperimentScale::Full.max_instances(), None);
        assert!(ExperimentScale::Reduced.epochs() > ExperimentScale::Smoke.epochs());
    }

    #[test]
    fn algorithm_columns_match_paper_layout() {
        let columns = AlgorithmId::table_columns();
        assert_eq!(columns.len(), 9);
        assert_eq!(columns[0].display_name("GRBM"), "DP");
        assert_eq!(columns[3].display_name("GRBM"), "DP+GRBM");
        assert_eq!(columns[8].display_name("GRBM"), "AP+slsGRBM");
        assert_eq!(columns[8].display_name("RBM"), "AP+slsRBM");
    }

    #[test]
    fn truncation_respects_caps() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let ds = generate_uci_dataset(sls_datasets::UciDatasetId::QsarBiodegradation, &mut rng);
        let t = truncate_dataset(&ds, ExperimentScale::Smoke);
        assert_eq!(t.n_instances(), 60);
        assert_eq!(t.n_features(), 16);
        let untouched = truncate_dataset(&ds, ExperimentScale::Full);
        assert_eq!(untouched.n_instances(), ds.n_instances());
    }

    #[test]
    fn smoke_scale_binary_dataset_grid_runs_end_to_end() {
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let ds = generate_uci_dataset(sls_datasets::UciDatasetId::Iris, &mut rng);
        let results = run_binary_dataset(&ds, 6, ExperimentScale::Smoke, 42).unwrap();
        // 3 clusterers x 3 feature spaces.
        assert_eq!(results.len(), 9);
        for r in &results {
            assert!((0.0..=1.0).contains(&r.report.accuracy));
            assert_eq!(r.dataset_code, "IR");
        }
    }

    #[test]
    fn smoke_scale_gaussian_dataset_grid_runs_end_to_end() {
        let mut rng = ChaCha8Rng::seed_from_u64(10);
        let ds = generate_msra_dataset(sls_datasets::MsraDatasetId::Book, &mut rng);
        let results = run_gaussian_dataset(&ds, 1, ExperimentScale::Smoke, 43).unwrap();
        assert_eq!(results.len(), 9);
        let spaces: std::collections::HashSet<_> =
            results.iter().map(|r| r.algorithm.space).collect();
        assert_eq!(spaces.len(), 3);
    }

    #[test]
    fn family_results_lookup_and_average() {
        let report = EvaluationReport::evaluate(&[0, 0, 1, 1], &[0, 0, 1, 1]).unwrap();
        let algorithm = AlgorithmId {
            clusterer: ClustererId::Dp,
            space: FeatureSpace::Raw,
        };
        let results = FamilyResults {
            family: "test".into(),
            model_name: "GRBM".into(),
            dataset_codes: vec!["A".into(), "B".into()],
            results: vec![
                PipelineResult {
                    dataset_code: "A".into(),
                    dataset_index: 1,
                    algorithm,
                    report,
                },
                PipelineResult {
                    dataset_code: "B".into(),
                    dataset_index: 2,
                    algorithm,
                    report,
                },
            ],
            scale: ExperimentScale::Smoke,
        };
        assert!(results.get("A", algorithm).is_some());
        assert!(results
            .get(
                "A",
                AlgorithmId {
                    clusterer: ClustererId::Ap,
                    space: FeatureSpace::Sls
                }
            )
            .is_none());
        assert_eq!(results.average(algorithm, |r| r.accuracy), 1.0);
    }
}
