//! `parallel_bench`: measures the parallel linalg layer against serial
//! execution and emits `BENCH_parallel.json` — the repo's standing
//! performance data point, generated per commit by the CI `perf-tracking`
//! job on the 4-core runner.
//!
//! ```sh
//! parallel_bench [--out BENCH_parallel.json] [--quick] [--reps 3] [--gate TOL]
//! ```
//!
//! Sections:
//!
//! * `cd_epoch` — one full contrastive-divergence training epoch on a
//!   synthetic binary workload (default 2048x256 visible, 256 hidden,
//!   batch 64), the end-to-end number the roadmap tracks;
//! * `pipeline_transform` — full-dataset hidden-feature extraction, the
//!   batch-transform / serving micro-batch shape;
//! * `matmul`, `matmul_transpose_left`, `matmul_transpose_right` — the three
//!   product kernels in isolation; at one thread and at the core count each
//!   also runs with the SIMD layer forced to its scalar fallback
//!   (`*_simd_off` modes), so the vectorisation win is measured rather than
//!   asserted;
//! * `small_batch_{8,32,128}` — the serving micro-batch hot path
//!   (`hidden_probabilities` on 8/32/128-row batches), timed per call under
//!   three dispatch modes: `serial`, `spawn` (scoped threads per call) and
//!   `pool` (the persistent worker pool). At these row counts the thread
//!   spawn overhead dominates the kernel, which is exactly what the pool
//!   exists to remove;
//! * `skew_heavy_band` — a ragged map kernel where the last quarter of the
//!   rows costs ~8x the rest: the straggler shape fixed-equal-band dispatch
//!   loses to. `pool_fixed` pins the chunk size to one band per thread
//!   (emulating the pre-stealing split); `pool` is the shipping adaptive
//!   chunking + work-stealing, which the CI gate requires to be >= 1.5x
//!   faster on the 4-core runner;
//! * `skew_mixed_scopes` — serving-sized 8-row feature batches timed while
//!   a background thread saturates the same pool with training-sized
//!   matmuls: band-sized chunks pin a worker for a whole band, adaptive
//!   chunks free one up after a short chunk, so small-scope latency under
//!   load is the difference between the two;
//! * `transpose_right_tiling` — `matmul_transpose_right` at the ROADMAP's
//!   512x256x256 shape: scalar untiled (the pre-SIMD kernel), SIMD untiled,
//!   SIMD tiled (the shipping configuration) and a same-shape `matmul`
//!   reference — the acceptance bar is tiled `transpose_right` within 1.4x
//!   of `matmul`;
//! * `consensus_full` / `consensus_align` / `consensus_vote` — the
//!   supervision-construction pipeline on synthetic blobs, end to end
//!   (DP + K-means + AP base clusterers through alignment and voting) and
//!   per integration stage, under `serial`, `spawn` and `pool` dispatch;
//!   the pooled membership is asserted identical to the serial one before
//!   the report is written.
//!
//! Every section runs serially and under 2, 4, 8 threads plus the machine's
//! core count; speedups are relative to the serial run *on this machine*.
//! The report records `available_parallelism` — on a single-core box the
//! honest speedup is ~1.0 and the multi-threaded numbers measure scheduling
//! overhead, so read the speedup column together with that field. Outputs
//! are bitwise identical across thread counts and SIMD arms (asserted here
//! too).
//!
//! `--gate TOL` turns the run into a regression gate: after measuring, the
//! process exits non-zero if pooled dispatch is slower than serial on any
//! small-batch section, if SIMD is slower than the scalar fallback, or if
//! fanned-out dispatch at the core count is slower than serial — each
//! beyond the tolerance factor `TOL` — or if tiled `transpose_right`
//! misses the 1.4x-of-`matmul` bar, or if (with 4+ cores) work-stealing
//! dispatch on the skewed workload fails to beat the fixed-equal-band
//! split by 1.5x. This is how CI turns the committed report into an
//! enforced baseline instead of a snapshot.

use rand::{RngCore, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};
use sls_consensus::{
    align_partitions_with, integrate_partitions_with, LocalSupervisionBuilder, VotingPolicy,
};
use sls_datasets::SyntheticBlobs;
use sls_linalg::{Matrix, MatrixRandomExt, ParallelPolicy, SimdPolicy};
use sls_rbm_core::{base_clusterers, BoltzmannMachine, CdTrainer, Rbm, TrainConfig};
use std::time::Instant;

/// One timed configuration of one section.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct Measurement {
    /// Which workload was timed.
    section: String,
    /// Thread budget of the policy (1 = serial).
    threads: usize,
    /// Dispatch/execution mode: `serial`, `spawn` (scoped threads per
    /// call) or `pool` (persistent worker pool); `serial_simd_off` /
    /// `spawn_simd_off` for the scalar-fallback arms of the kernel
    /// sections; `scalar_untiled` / `simd_untiled` / `simd_tiled` /
    /// `matmul_ref` within the `transpose_right_tiling` section.
    mode: String,
    /// Best-of-`reps` wall-clock time in milliseconds (per call for the
    /// `small_batch_*` sections).
    millis: f64,
    /// Serial best time divided by this configuration's best time.
    speedup_vs_serial: f64,
}

/// The emitted `BENCH_parallel.json` document.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct Report {
    /// Report format marker.
    bench: String,
    /// Cores visible to the process when the report was generated —
    /// speedups are only meaningful relative to this.
    available_parallelism: usize,
    /// Whether the reduced CI smoke shape was used.
    quick: bool,
    /// Instances of the synthetic workload.
    instances: usize,
    /// Visible units (data columns).
    visible: usize,
    /// Hidden units.
    hidden: usize,
    /// Mini-batch size of the CD epoch.
    batch_size: usize,
    /// Timing repetitions per configuration (best is kept).
    reps: usize,
    /// `min_rows_per_thread` used by every non-serial policy.
    min_rows_per_thread: usize,
    /// All measurements, section by section.
    results: Vec<Measurement>,
}

fn main() -> std::process::ExitCode {
    match run(&std::env::args().skip(1).collect::<Vec<_>>()) {
        Ok(()) => std::process::ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("{message}");
            std::process::ExitCode::FAILURE
        }
    }
}

fn run(args: &[String]) -> Result<(), String> {
    let mut out = "BENCH_parallel.json".to_string();
    let mut quick = false;
    let mut reps = 3usize;
    let mut gate: Option<f64> = None;
    let mut iter = args.iter();
    while let Some(flag) = iter.next() {
        match flag.as_str() {
            "--out" => {
                out = iter
                    .next()
                    .ok_or("--out needs a value".to_string())?
                    .clone();
            }
            "--quick" => quick = true,
            "--reps" => {
                reps = iter
                    .next()
                    .ok_or("--reps needs a value".to_string())?
                    .parse()
                    .map_err(|_| "invalid value for --reps".to_string())?;
            }
            "--gate" => {
                let tol: f64 = iter
                    .next()
                    .ok_or("--gate needs a tolerance factor (e.g. 1.25)".to_string())?
                    .parse()
                    .map_err(|_| "invalid value for --gate".to_string())?;
                if !tol.is_finite() || tol < 1.0 {
                    return Err("--gate tolerance must be a finite factor >= 1.0".to_string());
                }
                gate = Some(tol);
            }
            other => {
                return Err(format!(
                    "unknown flag `{other}`\nusage: parallel_bench [--out PATH] [--quick] \
                     [--reps N] [--gate TOL]"
                ));
            }
        }
    }
    let reps = reps.max(1);

    // The acceptance workload: 2048x256 visible, 256 hidden; --quick keeps
    // the CI smoke run under a second.
    let (instances, visible, hidden, batch_size) = if quick {
        (128, 32, 16, 32)
    } else {
        (2048, 256, 256, 64)
    };
    let cores = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    // Fan out as soon as there is any work to split: the bench wants to
    // exercise the parallel code path even on the quick shape.
    let min_rows = 8;
    let mut thread_counts = vec![1, 2, 4, 8, cores];
    thread_counts.sort_unstable();
    thread_counts.dedup();

    eprintln!(
        "parallel_bench: {instances}x{visible} data, {hidden} hidden, batch {batch_size}, \
         {reps} rep(s), {cores} core(s) available"
    );

    let mut rng = ChaCha8Rng::seed_from_u64(42);
    let data = Matrix::random_bernoulli(instances, visible, 0.3, &mut rng);
    let weights = Matrix::random_normal(visible, hidden, 0.0, 0.1, &mut rng);
    let hidden_like = Matrix::random_normal(instances, hidden, 0.0, 1.0, &mut rng);
    let train_config = TrainConfig::quick()
        .with_epochs(1)
        .with_batch_size(batch_size);

    let mut results = Vec::new();
    for &threads in &thread_counts {
        let policy = if threads == 1 {
            ParallelPolicy::serial()
        } else {
            ParallelPolicy::new(threads).with_min_rows_per_thread(min_rows)
        };
        let mode = if threads == 1 { "serial" } else { "spawn" };

        // One CD training epoch, the end-to-end number.
        let cd_millis = best_of(reps, || {
            let mut model = Rbm::new(visible, hidden, &mut ChaCha8Rng::seed_from_u64(7));
            let trainer = CdTrainer::new(train_config)
                .expect("valid config")
                .with_parallel(policy);
            let start = Instant::now();
            trainer
                .train(&mut model, &data, &mut ChaCha8Rng::seed_from_u64(9))
                .expect("training");
            (start.elapsed(), model)
        });
        push(&mut results, "cd_epoch", threads, mode, cd_millis);

        // Full-dataset feature extraction (pipeline transform / serving
        // micro-batch shape).
        let model = Rbm::new(visible, hidden, &mut ChaCha8Rng::seed_from_u64(7));
        let transform_millis = best_of(reps, || {
            let start = Instant::now();
            let features = model
                .hidden_probabilities_with(&data, &policy)
                .expect("features");
            (start.elapsed(), features)
        });
        push(
            &mut results,
            "pipeline_transform",
            threads,
            mode,
            transform_millis,
        );

        // The three product kernels in isolation, with the scalar-fallback
        // SIMD arm measured alongside at one thread and at the core count
        // (`*_simd_off` modes) so the vectorisation win shows up in the
        // report.
        let simd_arms: &[(SimdPolicy, &str)] = if threads == 1 || threads == cores {
            &[(SimdPolicy::Lanes4, ""), (SimdPolicy::Scalar, "_simd_off")]
        } else {
            &[(SimdPolicy::Lanes4, "")]
        };
        for &(simd, suffix) in simd_arms {
            let policy = policy.with_simd(simd);
            let mode = format!("{mode}{suffix}");
            let mm = best_of(reps, || {
                let start = Instant::now();
                let out = data.matmul_with(&weights, &policy).expect("matmul");
                (start.elapsed(), out)
            });
            push(&mut results, "matmul", threads, &mode, mm);
            let tl = best_of(reps, || {
                let start = Instant::now();
                let out = data
                    .matmul_transpose_left_with(&hidden_like, &policy)
                    .expect("matmul_transpose_left");
                (start.elapsed(), out)
            });
            push(&mut results, "matmul_transpose_left", threads, &mode, tl);
            let tr = best_of(reps, || {
                let start = Instant::now();
                // H·Wᵀ: both operands have `hidden` columns.
                let out = hidden_like
                    .matmul_transpose_right_with(&weights, &policy)
                    .expect("matmul_transpose_right");
                (start.elapsed(), out)
            });
            push(&mut results, "matmul_transpose_right", threads, &mode, tr);
        }
    }

    // Spawn-per-call vs persistent pool on serving micro-batches: the row
    // counts where per-call thread spawns dominate the kernel itself. Each
    // configuration is timed per call over a batch of iterations; the pool
    // is warmed before timing so the numbers compare steady-state dispatch,
    // not pool construction.
    let small_threads = 4usize;
    let iters = if quick { 60 } else { 300 };
    let spawn_policy = ParallelPolicy::new(small_threads).with_min_rows_per_thread(2);
    let pool_policy = spawn_policy.with_pool(true);
    let _ = sls_linalg::WorkerPool::global();
    let model = Rbm::new(visible, hidden, &mut ChaCha8Rng::seed_from_u64(7));
    for &rows in &[8usize, 32, 128] {
        let batch = Matrix::random_bernoulli(rows, visible, 0.3, &mut rng);
        let section = format!("small_batch_{rows}");
        for (mode, policy) in [
            ("serial", ParallelPolicy::serial()),
            ("spawn", spawn_policy),
            ("pool", pool_policy),
        ] {
            let millis = best_of(reps, || {
                let start = Instant::now();
                let mut last = None;
                for _ in 0..iters {
                    last = Some(
                        model
                            .hidden_probabilities_with(&batch, &policy)
                            .expect("small-batch features"),
                    );
                }
                (start.elapsed(), last)
            }) / iters as f64;
            let threads = if mode == "serial" { 1 } else { small_threads };
            push(&mut results, &section, threads, mode, millis);
        }
    }

    // Skewed workloads: equal row counts are not equal costs. The last
    // quarter of the rows does ~8x the per-row work of the rest, so under
    // a fixed-equal-band split the whole call waits on the one heavy band
    // while chunked work-stealing dispatch spreads the heavy chunks over
    // every thread. `pool_fixed` emulates the old split by pinning the
    // chunk size to one band (ceil(rows/threads)); `pool` is the shipping
    // adaptive chunking.
    let (skew_rows, skew_cols) = if quick { (128, 256) } else { (256, 512) };
    let skew_data = Matrix::random_normal(skew_rows, skew_cols, 0.0, 1.0, &mut rng);
    let heavy_start = skew_rows - skew_rows / 4;
    let skew_work = move |i: usize, row: &[f64], out: &mut [f64]| {
        let reps = if i >= heavy_start { 160 } else { 20 };
        for slot in out.iter_mut() {
            *slot = 0.0;
        }
        for _ in 0..reps {
            for (slot, &x) in out.iter_mut().zip(row) {
                *slot += x / (1.0 + x * x);
            }
        }
    };
    let fixed_chunk = skew_rows.div_ceil(small_threads);
    let skew_modes: [(&str, ParallelPolicy); 4] = [
        ("serial", ParallelPolicy::serial()),
        ("spawn", spawn_policy),
        ("pool_fixed", pool_policy.with_chunk_rows(fixed_chunk)),
        ("pool", pool_policy),
    ];
    for (mode, policy) in skew_modes {
        let millis = best_of(reps, || {
            let start = Instant::now();
            let out = skew_data.map_rows_with(skew_cols, &policy, skew_work);
            (start.elapsed(), out)
        });
        let threads = if mode == "serial" { 1 } else { small_threads };
        push(&mut results, "skew_heavy_band", threads, mode, millis);
    }

    // Mixed scope sizes: serving-sized batches (8 rows) timed per call
    // while a background thread continuously pushes training-sized pooled
    // matmuls through the same pool. With band-sized chunks a worker is
    // pinned for a whole training band before it can pick up a serving
    // job; adaptive chunks bound that head-of-line wait to one short
    // chunk. `serial_unloaded` is the no-load serial floor for reference.
    let skew_small = Matrix::random_bernoulli(8, visible, 0.3, &mut rng);
    let mixed_iters = if quick { 40 } else { 200 };
    let small_serial = best_of(reps, || {
        let start = Instant::now();
        let mut last = None;
        for _ in 0..mixed_iters {
            last = Some(
                model
                    .hidden_probabilities_with(&skew_small, &ParallelPolicy::serial())
                    .expect("small-batch features"),
            );
        }
        (start.elapsed(), last)
    }) / mixed_iters as f64;
    push(
        &mut results,
        "skew_mixed_scopes",
        1,
        "serial_unloaded",
        small_serial,
    );
    let training_fixed_chunk = instances.div_ceil(small_threads);
    for (mode, bg_policy) in [
        (
            "pool_fixed",
            pool_policy.with_chunk_rows(training_fixed_chunk),
        ),
        ("pool", pool_policy),
    ] {
        let stop = std::sync::atomic::AtomicBool::new(false);
        let millis = std::thread::scope(|s| {
            s.spawn(|| {
                while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                    let out = data.matmul_with(&weights, &bg_policy).expect("bg matmul");
                    std::hint::black_box(&out);
                }
            });
            let per_call = best_of(reps, || {
                let start = Instant::now();
                let mut last = None;
                for _ in 0..mixed_iters {
                    last = Some(
                        model
                            .hidden_probabilities_with(&skew_small, &pool_policy)
                            .expect("small-batch features under load"),
                    );
                }
                (start.elapsed(), last)
            }) / mixed_iters as f64;
            stop.store(true, std::sync::atomic::Ordering::Relaxed);
            per_call
        });
        push(
            &mut results,
            "skew_mixed_scopes",
            small_threads,
            mode,
            millis,
        );
    }

    // The consensus (supervision-construction) pipeline: DP + K-means + AP
    // on synthetic blobs, end to end through `build_with_clusterers` and
    // per integration stage (`align_partitions_with`, the Hungarian label
    // matching; `integrate_partitions_with`, alignment + voting), under
    // serial, spawn and pooled dispatch. The base clusterers dominate, so
    // `consensus_full` minus `consensus_vote` reads as the clusterer stage.
    let (con_rows, con_dims, con_k) = if quick { (90, 6, 3) } else { (360, 12, 3) };
    let blobs = SyntheticBlobs::new(con_rows, con_dims, con_k)
        .separation(6.0)
        .generate(&mut ChaCha8Rng::seed_from_u64(13));
    let consensus_modes: [(&str, ParallelPolicy); 3] = [
        ("serial", ParallelPolicy::serial()),
        ("spawn", spawn_policy),
        ("pool", pool_policy),
    ];
    for (mode, policy) in consensus_modes {
        let clusterers = base_clusterers(con_k, &policy);
        let builder = LocalSupervisionBuilder::new(con_k)
            .with_policy(VotingPolicy::Unanimous)
            .with_parallel(policy);
        let full = best_of(reps, || {
            let mut rng = ChaCha8Rng::seed_from_u64(17);
            let start = Instant::now();
            let supervision = builder
                .build_with_clusterers(&clusterers, blobs.features(), &mut rng)
                .expect("consensus");
            (start.elapsed(), supervision)
        });
        let threads = if mode == "serial" { 1 } else { small_threads };
        push(&mut results, "consensus_full", threads, mode, full);
    }
    // Stage timings on one fixed set of partitions (computed serially once
    // so every mode integrates identical inputs).
    let partitions: Vec<Vec<usize>> = {
        let serial = ParallelPolicy::serial();
        let mut rng = ChaCha8Rng::seed_from_u64(17);
        base_clusterers(con_k, &serial)
            .iter()
            .map(|clusterer| {
                let mut sub = ChaCha8Rng::seed_from_u64(rng.next_u64());
                clusterer
                    .cluster(blobs.features(), &mut sub)
                    .expect("base clusterer")
                    .labels()
                    .to_vec()
            })
            .collect()
    };
    for (mode, policy) in consensus_modes {
        let align = best_of(reps, || {
            let start = Instant::now();
            let aligned = align_partitions_with(&partitions, &policy).expect("alignment");
            (start.elapsed(), aligned)
        });
        let threads = if mode == "serial" { 1 } else { small_threads };
        push(&mut results, "consensus_align", threads, mode, align);
        let vote = best_of(reps, || {
            let start = Instant::now();
            let consensus =
                integrate_partitions_with(&partitions, VotingPolicy::Unanimous, &policy)
                    .expect("voting");
            (start.elapsed(), consensus)
        });
        push(&mut results, "consensus_vote", threads, mode, vote);
    }

    // Tiled vs untiled `matmul_transpose_right` at the ROADMAP's
    // 512x256x256 shape (the one where the dot-product layout used to run
    // ~2.3x behind `matmul`), single-threaded so the kernel itself is
    // measured rather than the fan-out. `scalar_untiled` is the pre-SIMD
    // kernel and the section baseline; `simd_tiled` is the shipping
    // configuration; `matmul_ref` is the same-shape `matmul` whose 1.4x
    // envelope is the acceptance bar.
    let (tile_n, tile_k, tile_m) = if quick { (64, 32, 32) } else { (512, 256, 256) };
    let tr_left = Matrix::random_normal(tile_n, tile_k, 0.0, 1.0, &mut rng);
    let tr_right = Matrix::random_normal(tile_m, tile_k, 0.0, 1.0, &mut rng);
    let mm_right = Matrix::random_normal(tile_k, tile_m, 0.0, 1.0, &mut rng);
    let serial_policy = ParallelPolicy::serial();
    let scalar_policy = serial_policy.with_simd(SimdPolicy::Scalar);
    let tiling = "transpose_right_tiling";
    let scalar_untiled = best_of(reps, || {
        let start = Instant::now();
        let out = tr_left
            .matmul_transpose_right_tiled_with(&tr_right, &scalar_policy, usize::MAX)
            .expect("transpose_right");
        (start.elapsed(), out)
    });
    push(&mut results, tiling, 1, "scalar_untiled", scalar_untiled);
    let simd_untiled = best_of(reps, || {
        let start = Instant::now();
        let out = tr_left
            .matmul_transpose_right_tiled_with(&tr_right, &serial_policy, usize::MAX)
            .expect("transpose_right");
        (start.elapsed(), out)
    });
    push(&mut results, tiling, 1, "simd_untiled", simd_untiled);
    let simd_tiled = best_of(reps, || {
        let start = Instant::now();
        let out = tr_left
            .matmul_transpose_right_with(&tr_right, &serial_policy)
            .expect("transpose_right");
        (start.elapsed(), out)
    });
    push(&mut results, tiling, 1, "simd_tiled", simd_tiled);
    let matmul_ref = best_of(reps, || {
        let start = Instant::now();
        let out = tr_left
            .matmul_with(&mm_right, &serial_policy)
            .expect("matmul");
        (start.elapsed(), out)
    });
    push(&mut results, tiling, 1, "matmul_ref", matmul_ref);

    // Reproducibility spot-check before writing the report: the parallel
    // product must equal the serial product bit for bit.
    let serial = data
        .matmul_with(&weights, &ParallelPolicy::serial())
        .expect("matmul");
    let parallel = data
        .matmul_with(
            &weights,
            &ParallelPolicy::new(*thread_counts.last().unwrap()).with_min_rows_per_thread(1),
        )
        .expect("matmul");
    assert_eq!(
        serial.as_slice(),
        parallel.as_slice(),
        "parallel result diverged from serial"
    );
    let pooled = data
        .matmul_with(
            &weights,
            &ParallelPolicy::new(*thread_counts.last().unwrap())
                .with_min_rows_per_thread(1)
                .with_pool(true),
        )
        .expect("matmul");
    assert_eq!(
        serial.as_slice(),
        pooled.as_slice(),
        "pooled result diverged from serial"
    );
    let scalar_fallback = data
        .matmul_with(
            &weights,
            &ParallelPolicy::serial().with_simd(SimdPolicy::Scalar),
        )
        .expect("matmul");
    assert_eq!(
        serial.as_slice(),
        scalar_fallback.as_slice(),
        "scalar-fallback result diverged from the SIMD result"
    );
    let tiled = tr_left
        .matmul_transpose_right_with(&tr_right, &serial_policy)
        .expect("transpose_right");
    let untiled_scalar = tr_left
        .matmul_transpose_right_tiled_with(&tr_right, &scalar_policy, usize::MAX)
        .expect("transpose_right");
    assert_eq!(
        tiled.as_slice(),
        untiled_scalar.as_slice(),
        "tiled SIMD transpose_right diverged from untiled scalar"
    );
    // The consensus invariant the whole PR leans on: pooled supervision
    // construction yields the identical membership to serial construction.
    let consensus_reference = {
        let clusterers = base_clusterers(con_k, &ParallelPolicy::serial());
        LocalSupervisionBuilder::new(con_k)
            .with_policy(VotingPolicy::Unanimous)
            .build_with_clusterers(
                &clusterers,
                blobs.features(),
                &mut ChaCha8Rng::seed_from_u64(17),
            )
            .expect("serial consensus")
    };
    let consensus_pooled = {
        let clusterers = base_clusterers(con_k, &pool_policy);
        LocalSupervisionBuilder::new(con_k)
            .with_policy(VotingPolicy::Unanimous)
            .with_parallel(pool_policy)
            .build_with_clusterers(
                &clusterers,
                blobs.features(),
                &mut ChaCha8Rng::seed_from_u64(17),
            )
            .expect("pooled consensus")
    };
    assert_eq!(
        consensus_reference.membership(),
        consensus_pooled.membership(),
        "pooled consensus membership diverged from serial"
    );

    let report = Report {
        bench: "parallel".to_string(),
        available_parallelism: cores,
        quick,
        instances,
        visible,
        hidden,
        batch_size,
        reps,
        min_rows_per_thread: min_rows,
        results,
    };
    let json = serde_json::to_string_pretty(&report).map_err(|e| e.to_string())?;
    std::fs::write(&out, format!("{json}\n")).map_err(|e| format!("writing {out}: {e}"))?;

    for m in &report.results {
        eprintln!(
            "  {:<24} threads={:<2} {:<16} {:>10.4} ms  ({:.2}x vs serial)",
            m.section, m.threads, m.mode, m.millis, m.speedup_vs_serial
        );
    }
    eprintln!("wrote {out}");

    if let Some(tol) = gate {
        enforce_gate(&report, tol, cores)?;
        eprintln!("perf gate passed (tolerance {tol}x)");
    }
    Ok(())
}

/// The CI perf gate: every dispatch layer that exists to make things faster
/// must not be *slower* than its baseline beyond the tolerance factor, and
/// the tiled `transpose_right` must stay inside the 1.4x `matmul` envelope
/// the roadmap set. Returns an error listing every violated bound.
fn enforce_gate(report: &Report, tol: f64, cores: usize) -> Result<(), String> {
    let find = |section: &str, mode: &str, threads: Option<usize>| -> Option<f64> {
        report
            .results
            .iter()
            .find(|m| {
                let threads_match = match threads {
                    None => true,
                    Some(t) => m.threads == t,
                };
                m.section == section && m.mode == mode && threads_match
            })
            .map(|m| m.millis)
    };
    let mut violations: Vec<String> = Vec::new();
    let mut check = |label: String, actual: Option<f64>, budget: Option<f64>| match (actual, budget)
    {
        (Some(actual), Some(budget)) => {
            if actual > budget {
                violations.push(format!("{label}: {actual:.4} ms > budget {budget:.4} ms"));
            }
        }
        _ => violations.push(format!("{label}: measurement missing")),
    };

    // Pooled dispatch must not lose to serial on the serving micro-batches
    // it exists for.
    for rows in [8usize, 32, 128] {
        let section = format!("small_batch_{rows}");
        check(
            format!("{section}: pool vs serial (x{tol})"),
            find(&section, "pool", None),
            find(&section, "serial", None).map(|s| s * tol),
        );
    }
    // The SIMD layer must not lose to its own scalar fallback.
    for section in ["matmul", "matmul_transpose_left", "matmul_transpose_right"] {
        check(
            format!("{section}: simd vs scalar fallback (x{tol})"),
            find(section, "serial", Some(1)),
            find(section, "serial_simd_off", Some(1)).map(|s| s * tol),
        );
    }
    // Fanned-out dispatch at the core count must not lose to serial (on a
    // single-core box the threads == cores entry *is* the serial run, so
    // this degenerates to a tautology rather than punishing the machine).
    if cores > 1 {
        for section in [
            "cd_epoch",
            "pipeline_transform",
            "matmul",
            "matmul_transpose_left",
            "matmul_transpose_right",
        ] {
            check(
                format!("{section}: spawn@{cores} threads vs serial (x{tol})"),
                find(section, "spawn", Some(cores)),
                find(section, "serial", Some(1)).map(|s| s * tol),
            );
        }
    }
    // Parallel supervision construction must not lose to serial (the base
    // clusterers carry real per-row work, so the fan-out should pay for
    // itself on any multi-core box).
    if cores > 1 {
        check(
            format!("consensus_full: pool vs serial (x{tol})"),
            find("consensus_full", "pool", None),
            find("consensus_full", "serial", None).map(|s| s * tol),
        );
    }
    // On the skewed workload, chunked work-stealing dispatch must beat the
    // fixed-equal-band split it replaced by a hard 1.5x (independent of
    // TOL — this is the PR's acceptance bar, not a drift tolerance). Below
    // 4 cores the straggler band cannot be spread far enough for the bar
    // to be meaningful, so the check is scoped to the 4-core CI runner and
    // bigger machines.
    if cores >= 4 {
        check(
            "skew_heavy_band: pool (stealing) >= 1.5x faster than pool_fixed".to_string(),
            find("skew_heavy_band", "pool", None),
            find("skew_heavy_band", "pool_fixed", None).map(|s| s / 1.5),
        );
    }
    // Tiling + SIMD must beat (or at worst match) the old scalar untiled
    // kernel, and land within the roadmap's 1.4x-of-matmul envelope.
    check(
        format!("transpose_right_tiling: simd_tiled vs scalar_untiled (x{tol})"),
        find("transpose_right_tiling", "simd_tiled", None),
        find("transpose_right_tiling", "scalar_untiled", None).map(|s| s * tol),
    );
    check(
        "transpose_right_tiling: simd_tiled within 1.4x of matmul_ref".to_string(),
        find("transpose_right_tiling", "simd_tiled", None),
        find("transpose_right_tiling", "matmul_ref", None).map(|s| s * 1.4),
    );

    if violations.is_empty() {
        Ok(())
    } else {
        Err(format!(
            "perf gate failed ({} violation(s)):\n  {}",
            violations.len(),
            violations.join("\n  ")
        ))
    }
}

/// Runs `work` `reps` times and returns the best wall-clock time in
/// milliseconds; the returned value of `work` is kept alive until after the
/// clock stops so the timed computation cannot be optimised away.
fn best_of<T>(reps: usize, mut work: impl FnMut() -> (std::time::Duration, T)) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let (elapsed, value) = work();
        std::hint::black_box(&value);
        best = best.min(elapsed.as_secs_f64() * 1e3);
    }
    best
}

/// Appends a measurement, deriving the speedup from the section's serial
/// (threads = 1) entry, which is always pushed first.
fn push(results: &mut Vec<Measurement>, section: &str, threads: usize, mode: &str, millis: f64) {
    let serial_millis = results
        .iter()
        .find(|m| m.section == section && m.threads == 1)
        .map_or(millis, |m| m.millis);
    results.push(Measurement {
        section: section.to_string(),
        threads,
        mode: mode.to_string(),
        millis,
        speedup_vs_serial: serial_millis / millis,
    });
}
