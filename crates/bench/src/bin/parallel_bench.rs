//! `parallel_bench`: measures the parallel linalg layer against serial
//! execution and emits `BENCH_parallel.json` — the repo's first standing
//! performance data point.
//!
//! ```sh
//! parallel_bench [--out BENCH_parallel.json] [--quick] [--reps 3]
//! ```
//!
//! Sections:
//!
//! * `cd_epoch` — one full contrastive-divergence training epoch on a
//!   synthetic binary workload (default 2048x256 visible, 256 hidden,
//!   batch 64), the end-to-end number the roadmap tracks;
//! * `pipeline_transform` — full-dataset hidden-feature extraction, the
//!   batch-transform / serving micro-batch shape;
//! * `matmul`, `matmul_transpose_left`, `matmul_transpose_right` — the three
//!   product kernels in isolation;
//! * `small_batch_{8,32,128}` — the serving micro-batch hot path
//!   (`hidden_probabilities` on 8/32/128-row batches), timed per call under
//!   three dispatch modes: `serial`, `spawn` (scoped threads per call) and
//!   `pool` (the persistent worker pool). At these row counts the thread
//!   spawn overhead dominates the kernel, which is exactly what the pool
//!   exists to remove.
//!
//! Every section runs serially and under 2, 4, 8 threads plus the machine's
//! core count; speedups are relative to the serial run *on this machine*.
//! The report records `available_parallelism` — on a single-core box the
//! honest speedup is ~1.0 and the multi-threaded numbers measure scheduling
//! overhead, so read the speedup column together with that field. Outputs
//! are bitwise identical across thread counts (asserted here too).

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};
use sls_linalg::{Matrix, MatrixRandomExt, ParallelPolicy};
use sls_rbm_core::{BoltzmannMachine, CdTrainer, Rbm, TrainConfig};
use std::time::Instant;

/// One timed configuration of one section.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct Measurement {
    /// Which workload was timed.
    section: String,
    /// Thread budget of the policy (1 = serial).
    threads: usize,
    /// Dispatch mode: `serial`, `spawn` (scoped threads per call) or
    /// `pool` (persistent worker pool).
    mode: String,
    /// Best-of-`reps` wall-clock time in milliseconds (per call for the
    /// `small_batch_*` sections).
    millis: f64,
    /// Serial best time divided by this configuration's best time.
    speedup_vs_serial: f64,
}

/// The emitted `BENCH_parallel.json` document.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct Report {
    /// Report format marker.
    bench: String,
    /// Cores visible to the process when the report was generated —
    /// speedups are only meaningful relative to this.
    available_parallelism: usize,
    /// Whether the reduced CI smoke shape was used.
    quick: bool,
    /// Instances of the synthetic workload.
    instances: usize,
    /// Visible units (data columns).
    visible: usize,
    /// Hidden units.
    hidden: usize,
    /// Mini-batch size of the CD epoch.
    batch_size: usize,
    /// Timing repetitions per configuration (best is kept).
    reps: usize,
    /// `min_rows_per_thread` used by every non-serial policy.
    min_rows_per_thread: usize,
    /// All measurements, section by section.
    results: Vec<Measurement>,
}

fn main() -> std::process::ExitCode {
    match run(&std::env::args().skip(1).collect::<Vec<_>>()) {
        Ok(()) => std::process::ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("{message}");
            std::process::ExitCode::FAILURE
        }
    }
}

fn run(args: &[String]) -> Result<(), String> {
    let mut out = "BENCH_parallel.json".to_string();
    let mut quick = false;
    let mut reps = 3usize;
    let mut iter = args.iter();
    while let Some(flag) = iter.next() {
        match flag.as_str() {
            "--out" => {
                out = iter
                    .next()
                    .ok_or("--out needs a value".to_string())?
                    .clone();
            }
            "--quick" => quick = true,
            "--reps" => {
                reps = iter
                    .next()
                    .ok_or("--reps needs a value".to_string())?
                    .parse()
                    .map_err(|_| "invalid value for --reps".to_string())?;
            }
            other => {
                return Err(format!(
                    "unknown flag `{other}`\nusage: parallel_bench [--out PATH] [--quick] [--reps N]"
                ));
            }
        }
    }
    let reps = reps.max(1);

    // The acceptance workload: 2048x256 visible, 256 hidden; --quick keeps
    // the CI smoke run under a second.
    let (instances, visible, hidden, batch_size) = if quick {
        (128, 32, 16, 32)
    } else {
        (2048, 256, 256, 64)
    };
    let cores = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    // Fan out as soon as there is any work to split: the bench wants to
    // exercise the parallel code path even on the quick shape.
    let min_rows = 8;
    let mut thread_counts = vec![1, 2, 4, 8, cores];
    thread_counts.sort_unstable();
    thread_counts.dedup();

    eprintln!(
        "parallel_bench: {instances}x{visible} data, {hidden} hidden, batch {batch_size}, \
         {reps} rep(s), {cores} core(s) available"
    );

    let mut rng = ChaCha8Rng::seed_from_u64(42);
    let data = Matrix::random_bernoulli(instances, visible, 0.3, &mut rng);
    let weights = Matrix::random_normal(visible, hidden, 0.0, 0.1, &mut rng);
    let hidden_like = Matrix::random_normal(instances, hidden, 0.0, 1.0, &mut rng);
    let train_config = TrainConfig::quick()
        .with_epochs(1)
        .with_batch_size(batch_size);

    let mut results = Vec::new();
    for &threads in &thread_counts {
        let policy = if threads == 1 {
            ParallelPolicy::serial()
        } else {
            ParallelPolicy::new(threads).with_min_rows_per_thread(min_rows)
        };
        let mode = if threads == 1 { "serial" } else { "spawn" };

        // One CD training epoch, the end-to-end number.
        let cd_millis = best_of(reps, || {
            let mut model = Rbm::new(visible, hidden, &mut ChaCha8Rng::seed_from_u64(7));
            let trainer = CdTrainer::new(train_config)
                .expect("valid config")
                .with_parallel(policy);
            let start = Instant::now();
            trainer
                .train(&mut model, &data, &mut ChaCha8Rng::seed_from_u64(9))
                .expect("training");
            (start.elapsed(), model)
        });
        push(&mut results, "cd_epoch", threads, mode, cd_millis);

        // Full-dataset feature extraction (pipeline transform / serving
        // micro-batch shape).
        let model = Rbm::new(visible, hidden, &mut ChaCha8Rng::seed_from_u64(7));
        let transform_millis = best_of(reps, || {
            let start = Instant::now();
            let features = model
                .hidden_probabilities_with(&data, &policy)
                .expect("features");
            (start.elapsed(), features)
        });
        push(
            &mut results,
            "pipeline_transform",
            threads,
            mode,
            transform_millis,
        );

        // The three product kernels in isolation.
        let mm = best_of(reps, || {
            let start = Instant::now();
            let out = data.matmul_with(&weights, &policy).expect("matmul");
            (start.elapsed(), out)
        });
        push(&mut results, "matmul", threads, mode, mm);
        let tl = best_of(reps, || {
            let start = Instant::now();
            let out = data
                .matmul_transpose_left_with(&hidden_like, &policy)
                .expect("matmul_transpose_left");
            (start.elapsed(), out)
        });
        push(&mut results, "matmul_transpose_left", threads, mode, tl);
        let tr = best_of(reps, || {
            let start = Instant::now();
            // H·Wᵀ: both operands have `hidden` columns.
            let out = hidden_like
                .matmul_transpose_right_with(&weights, &policy)
                .expect("matmul_transpose_right");
            (start.elapsed(), out)
        });
        push(&mut results, "matmul_transpose_right", threads, mode, tr);
    }

    // Spawn-per-call vs persistent pool on serving micro-batches: the row
    // counts where per-call thread spawns dominate the kernel itself. Each
    // configuration is timed per call over a batch of iterations; the pool
    // is warmed before timing so the numbers compare steady-state dispatch,
    // not pool construction.
    let small_threads = 4usize;
    let iters = if quick { 60 } else { 300 };
    let spawn_policy = ParallelPolicy::new(small_threads).with_min_rows_per_thread(2);
    let pool_policy = spawn_policy.with_pool(true);
    let _ = sls_linalg::WorkerPool::global();
    let model = Rbm::new(visible, hidden, &mut ChaCha8Rng::seed_from_u64(7));
    for &rows in &[8usize, 32, 128] {
        let batch = Matrix::random_bernoulli(rows, visible, 0.3, &mut rng);
        let section = format!("small_batch_{rows}");
        for (mode, policy) in [
            ("serial", ParallelPolicy::serial()),
            ("spawn", spawn_policy),
            ("pool", pool_policy),
        ] {
            let millis = best_of(reps, || {
                let start = Instant::now();
                let mut last = None;
                for _ in 0..iters {
                    last = Some(
                        model
                            .hidden_probabilities_with(&batch, &policy)
                            .expect("small-batch features"),
                    );
                }
                (start.elapsed(), last)
            }) / iters as f64;
            let threads = if mode == "serial" { 1 } else { small_threads };
            push(&mut results, &section, threads, mode, millis);
        }
    }

    // Reproducibility spot-check before writing the report: the parallel
    // product must equal the serial product bit for bit.
    let serial = data
        .matmul_with(&weights, &ParallelPolicy::serial())
        .expect("matmul");
    let parallel = data
        .matmul_with(
            &weights,
            &ParallelPolicy::new(*thread_counts.last().unwrap()).with_min_rows_per_thread(1),
        )
        .expect("matmul");
    assert_eq!(
        serial.as_slice(),
        parallel.as_slice(),
        "parallel result diverged from serial"
    );
    let pooled = data
        .matmul_with(
            &weights,
            &ParallelPolicy::new(*thread_counts.last().unwrap())
                .with_min_rows_per_thread(1)
                .with_pool(true),
        )
        .expect("matmul");
    assert_eq!(
        serial.as_slice(),
        pooled.as_slice(),
        "pooled result diverged from serial"
    );

    let report = Report {
        bench: "parallel".to_string(),
        available_parallelism: cores,
        quick,
        instances,
        visible,
        hidden,
        batch_size,
        reps,
        min_rows_per_thread: min_rows,
        results,
    };
    let json = serde_json::to_string_pretty(&report).map_err(|e| e.to_string())?;
    std::fs::write(&out, format!("{json}\n")).map_err(|e| format!("writing {out}: {e}"))?;

    for m in &report.results {
        eprintln!(
            "  {:<24} threads={:<2} {:<6} {:>10.4} ms  ({:.2}x vs serial)",
            m.section, m.threads, m.mode, m.millis, m.speedup_vs_serial
        );
    }
    eprintln!("wrote {out}");
    Ok(())
}

/// Runs `work` `reps` times and returns the best wall-clock time in
/// milliseconds; the returned value of `work` is kept alive until after the
/// clock stops so the timed computation cannot be optimised away.
fn best_of<T>(reps: usize, mut work: impl FnMut() -> (std::time::Duration, T)) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let (elapsed, value) = work();
        std::hint::black_box(&value);
        best = best.min(elapsed.as_secs_f64() * 1e3);
    }
    best
}

/// Appends a measurement, deriving the speedup from the section's serial
/// (threads = 1) entry, which is always pushed first.
fn push(results: &mut Vec<Measurement>, section: &str, threads: usize, mode: &str, millis: f64) {
    let serial_millis = results
        .iter()
        .find(|m| m.section == section && m.threads == 1)
        .map_or(millis, |m| m.millis);
    results.push(Measurement {
        section: section.to_string(),
        threads,
        mode: mode.to_string(),
        millis,
        speedup_vs_serial: serial_millis / millis,
    });
}
