//! One-shot reproduction of every table and figure of the paper's
//! evaluation section. Prints everything to stdout and writes the raw
//! results plus every rendered table to `results/` as JSON.
//!
//! Scale is controlled by the `SLS_SCALE` environment variable
//! (`full` / `reduced` / `smoke`; default `reduced`).

use sls_bench::report::{render_figure, save_json};
use sls_bench::{
    figure_series, metric_table, run_datasets_i, run_datasets_ii, ExperimentScale, MetricKind,
};

fn main() {
    let scale = ExperimentScale::from_env();
    println!("=== sls-rbm full reproduction ({scale:?} scale) ===\n");
    let started = std::time::Instant::now();

    println!("--- datasets I (MSRA-MM stand-ins, GRBM family) ---");
    let datasets_i = run_datasets_i(scale, 2023).unwrap_or_else(|e| {
        eprintln!("error: {e}");
        std::process::exit(1);
    });
    let table4 = metric_table(
        &datasets_i,
        MetricKind::Accuracy,
        "Table IV: accuracy on datasets I",
    );
    let table5 = metric_table(
        &datasets_i,
        MetricKind::Purity,
        "Table V: purity on datasets I",
    );
    let table6 = metric_table(&datasets_i, MetricKind::Fmi, "Table VI: FMI on datasets I");
    println!("{}", table4.render_text());
    println!("{}", table5.render_text());
    println!("{}", table6.render_text());
    println!(
        "{}",
        render_figure(
            &figure_series(&datasets_i, MetricKind::Accuracy),
            "Fig. 2 series (accuracy)"
        )
    );
    println!(
        "{}",
        render_figure(
            &figure_series(&datasets_i, MetricKind::Purity),
            "Fig. 3 series (purity)"
        )
    );
    println!(
        "{}",
        render_figure(
            &figure_series(&datasets_i, MetricKind::Fmi),
            "Fig. 4 series (FMI)"
        )
    );
    println!("Fig. 5 panels are the 'Average' rows of Tables IV-VI above.\n");

    println!("--- datasets II (UCI stand-ins, RBM family) ---");
    let datasets_ii = run_datasets_ii(scale, 2023).unwrap_or_else(|e| {
        eprintln!("error: {e}");
        std::process::exit(1);
    });
    let table7 = metric_table(
        &datasets_ii,
        MetricKind::Accuracy,
        "Table VII: accuracy on datasets II",
    );
    let table8 = metric_table(
        &datasets_ii,
        MetricKind::RandIndex,
        "Table VIII: Rand index on datasets II",
    );
    let table9 = metric_table(
        &datasets_ii,
        MetricKind::Fmi,
        "Table IX: FMI on datasets II",
    );
    println!("{}", table7.render_text());
    println!("{}", table8.render_text());
    println!("{}", table9.render_text());
    println!(
        "{}",
        render_figure(
            &figure_series(&datasets_ii, MetricKind::Accuracy),
            "Fig. 6 series (accuracy)"
        )
    );
    println!(
        "{}",
        render_figure(
            &figure_series(&datasets_ii, MetricKind::RandIndex),
            "Fig. 7 series (Rand index)"
        )
    );
    println!(
        "{}",
        render_figure(
            &figure_series(&datasets_ii, MetricKind::Fmi),
            "Fig. 8 series (FMI)"
        )
    );
    println!("Fig. 9 panels are the 'Average' rows of Tables VII-IX above.\n");

    for (name, value) in [
        ("datasets_i_raw", &datasets_i),
        ("datasets_ii_raw", &datasets_ii),
    ] {
        if let Err(e) = save_json(value, format!("results/{name}.json")) {
            eprintln!("warning: could not save results/{name}.json: {e}");
        }
    }
    for (name, table) in [
        ("table4_accuracy_datasets_i", &table4),
        ("table5_purity_datasets_i", &table5),
        ("table6_fmi_datasets_i", &table6),
        ("table7_accuracy_datasets_ii", &table7),
        ("table8_rand_datasets_ii", &table8),
        ("table9_fmi_datasets_ii", &table9),
    ] {
        if let Err(e) = save_json(table, format!("results/{name}.json")) {
            eprintln!("warning: could not save results/{name}.json: {e}");
        }
    }

    // Headline check: the paper's claim is that sls features beat both the
    // baseline-model features and the raw data on average.
    println!("--- headline comparison (average accuracy) ---");
    for (family, results, model) in [
        ("datasets I", &datasets_i, "GRBM"),
        ("datasets II", &datasets_ii, "RBM"),
    ] {
        use sls_bench::{AlgorithmId, ClustererId, FeatureSpace};
        for clusterer in ClustererId::all() {
            let raw = results.average(
                AlgorithmId {
                    clusterer,
                    space: FeatureSpace::Raw,
                },
                |r| r.accuracy,
            );
            let baseline = results.average(
                AlgorithmId {
                    clusterer,
                    space: FeatureSpace::Baseline,
                },
                |r| r.accuracy,
            );
            let sls = results.average(
                AlgorithmId {
                    clusterer,
                    space: FeatureSpace::Sls,
                },
                |r| r.accuracy,
            );
            println!(
                "  {family:<12} {:<8} raw {raw:.4} | +{model} {baseline:.4} | +sls{model} {sls:.4} | sls-vs-raw {:+.4}",
                clusterer.name(),
                sls - raw
            );
        }
    }
    println!("\nTotal wall-clock: {:.1?}", started.elapsed());
    println!("Raw results and rendered tables were written to results/*.json");
}
