//! Load generator for the `sls-serve` HTTP inference server: hammers the
//! `/features` and `/assign` endpoints from concurrent client threads and
//! reports latency percentiles and throughput.
//!
//! ```sh
//! sls-serve export --out artifacts
//! sls-serve serve --dir artifacts --addr 127.0.0.1:7878 &
//! cargo run --release -p sls-bench --bin loadgen -- \
//!     --addr 127.0.0.1:7878 --model quick_demo --requests 400 --concurrency 100
//! ```
//!
//! Exits non-zero if any request fails or answers a non-2xx status, so CI
//! can use it as a smoke gate.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use sls_serve::{Client, LatencySummary};
use std::collections::BTreeMap;
use std::net::ToSocketAddrs;
use std::sync::Mutex;
use std::time::{Duration, Instant};

const USAGE: &str = "usage: loadgen [--addr HOST:PORT] [--model NAME] [--requests N] \
[--concurrency N] [--rows N] [--mode features|assign|mix] [--seed N]";

struct Options {
    addr: String,
    model: String,
    requests: usize,
    concurrency: usize,
    rows: usize,
    mode: Mode,
    seed: u64,
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum Mode {
    Features,
    Assign,
    Mix,
}

impl Mode {
    /// Which endpoint request number `i` of worker `w` should hit.
    fn pick(self, worker: usize, i: usize) -> &'static str {
        match self {
            Mode::Features => "features",
            Mode::Assign => "assign",
            Mode::Mix => {
                if (worker + i) % 2 == 0 {
                    "features"
                } else {
                    "assign"
                }
            }
        }
    }
}

fn parse_options(args: &[String]) -> Result<Options, String> {
    let mut options = Options {
        addr: "127.0.0.1:7878".to_string(),
        model: "quick_demo".to_string(),
        requests: 200,
        concurrency: 16,
        rows: 16,
        mode: Mode::Mix,
        seed: 2023,
    };
    let mut iter = args.iter();
    while let Some(flag) = iter.next() {
        let value = iter
            .next()
            .ok_or_else(|| format!("flag `{flag}` needs a value\n{USAGE}"))?;
        let numeric = || {
            value
                .parse::<usize>()
                .map_err(|_| format!("invalid value `{value}` for `{flag}`"))
        };
        match flag.as_str() {
            "--addr" => options.addr = value.clone(),
            "--model" => options.model = value.clone(),
            "--requests" => options.requests = numeric()?.max(1),
            "--concurrency" => options.concurrency = numeric()?.max(1),
            "--rows" => options.rows = numeric()?.max(1),
            "--seed" => {
                options.seed = value
                    .parse()
                    .map_err(|_| format!("invalid value `{value}` for `--seed`"))?;
            }
            "--mode" => {
                options.mode = match value.as_str() {
                    "features" => Mode::Features,
                    "assign" => Mode::Assign,
                    "mix" => Mode::Mix,
                    other => return Err(format!("unknown mode `{other}`\n{USAGE}")),
                };
            }
            other => return Err(format!("unknown flag `{other}`\n{USAGE}")),
        }
    }
    Ok(options)
}

fn run(options: &Options) -> Result<(), String> {
    let addr = options
        .addr
        .to_socket_addrs()
        .map_err(|e| format!("cannot resolve `{}`: {e}", options.addr))?
        .next()
        .ok_or_else(|| format!("`{}` resolved to no address", options.addr))?;
    let client = Client::new(addr).with_timeout(Duration::from_secs(30));

    let health = client
        .health()
        .map_err(|e| format!("server health check failed: {e}"))?;
    let models = client
        .models()
        .map_err(|e| format!("listing models failed: {e}"))?;
    let info = models
        .models
        .iter()
        .find(|m| m.name == options.model)
        .ok_or_else(|| {
            format!(
                "model `{}` is not served (available: {})",
                options.model,
                models
                    .models
                    .iter()
                    .map(|m| m.name.as_str())
                    .collect::<Vec<_>>()
                    .join(", ")
            )
        })?;
    if options.mode != Mode::Features && info.n_clusters.is_none() {
        return Err(format!(
            "model `{}` has no cluster head; use --mode features",
            options.model
        ));
    }
    println!(
        "loadgen: {} requests x {} rows against http://{addr}/models/{} \
         ({} healthy models, concurrency {}, visible width {})",
        options.requests,
        options.rows,
        options.model,
        health.models,
        options.concurrency,
        info.n_visible
    );

    // Per-endpoint latency samples and error messages, appended by workers.
    let samples: Mutex<BTreeMap<&'static str, Vec<Duration>>> = Mutex::new(BTreeMap::new());
    let errors: Mutex<Vec<String>> = Mutex::new(Vec::new());
    let n_visible = info.n_visible;
    let started = Instant::now();
    std::thread::scope(|scope| {
        for worker in 0..options.concurrency {
            let client = &client;
            let samples = &samples;
            let errors = &errors;
            let options_ref = &options;
            scope.spawn(move || {
                let mut rng =
                    ChaCha8Rng::seed_from_u64(options_ref.seed.wrapping_add(worker as u64));
                // Workers split the total request budget as evenly as possible.
                let share = options_ref.requests / options_ref.concurrency
                    + usize::from(worker < options_ref.requests % options_ref.concurrency);
                for i in 0..share {
                    let rows: Vec<Vec<f64>> = (0..options_ref.rows)
                        .map(|_| (0..n_visible).map(|_| rng.gen_range(-2.0..2.0)).collect())
                        .collect();
                    let endpoint = options_ref.mode.pick(worker, i);
                    let request_start = Instant::now();
                    let outcome = match endpoint {
                        "features" => client
                            .features(&options_ref.model, &rows)
                            .map(|features| features.len()),
                        _ => client
                            .assign(&options_ref.model, &rows)
                            .map(|assignments| assignments.len()),
                    };
                    let elapsed = request_start.elapsed();
                    match outcome {
                        Ok(answered) if answered == options_ref.rows => {
                            samples
                                .lock()
                                .unwrap()
                                .entry(endpoint)
                                .or_default()
                                .push(elapsed);
                        }
                        Ok(answered) => errors.lock().unwrap().push(format!(
                            "{endpoint}: answered {answered} of {} rows",
                            options_ref.rows
                        )),
                        Err(e) => errors.lock().unwrap().push(format!("{endpoint}: {e}")),
                    }
                }
            });
        }
    });
    let elapsed = started.elapsed();

    let samples = samples.into_inner().unwrap();
    let errors = errors.into_inner().unwrap();
    let mut all: Vec<Duration> = Vec::new();
    for (endpoint, endpoint_samples) in &samples {
        if let Some(summary) = LatencySummary::from_samples(endpoint_samples) {
            println!("  {endpoint:<9} {summary}");
        }
        all.extend_from_slice(endpoint_samples);
    }
    let Some(overall) = LatencySummary::from_samples(&all) else {
        return Err("no request succeeded".to_string());
    };
    println!(
        "  overall   {overall} | elapsed {:.2?} | throughput {:.1} req/s | errors {}",
        elapsed,
        overall.throughput(elapsed),
        errors.len()
    );
    if !errors.is_empty() {
        for message in errors.iter().take(5) {
            eprintln!("error: {message}");
        }
        if errors.len() > 5 {
            eprintln!("... and {} more", errors.len() - 5);
        }
        return Err(format!(
            "{} of {} requests failed",
            errors.len(),
            options.requests
        ));
    }
    Ok(())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = parse_options(&args).and_then(|options| run(&options));
    if let Err(message) = result {
        eprintln!("{message}");
        std::process::exit(1);
    }
}
