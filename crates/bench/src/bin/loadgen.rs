//! Load generator for the `sls-serve` HTTP inference server: hammers the
//! `/features` and `/assign` endpoints from concurrent client threads,
//! verifies every response against a precomputed reference, and reports
//! latency percentiles and throughput.
//!
//! ```sh
//! sls-serve export --out artifacts
//! sls-serve serve --dir artifacts --addr 127.0.0.1:7878 &
//! cargo run --release -p sls-bench --bin loadgen -- \
//!     --addr 127.0.0.1:7878 --model quick_demo --requests 400 --concurrency 100 \
//!     --keep-alive 1 --batch-report 1 --artifact artifacts/quick_demo.json
//! ```
//!
//! Requests cycle a fixed pool of deterministic row batches whose expected
//! responses are precomputed up front — in process from `--artifact PATH`
//! (fully independent of the server), or over serial warm-up HTTP requests
//! otherwise. Any response that is not bitwise identical (`f64::to_bits`)
//! to its reference counts as an error, and any error (mismatch, transport
//! failure, non-2xx status) exits non-zero, so CI can use the run both as a
//! smoke gate and as a batching-identity check.
//!
//! In-process references follow the server's serving representation: the
//! `/models` listing says whether the target is compact (f32-quantized),
//! and the reference is built through the same [`ServingModel`] path.
//! `--compact 0|1` pins the expectation instead — the run fails fast when
//! the server disagrees, catching a fleet rolled out with the wrong flag.
//!
//! `--keep-alive 1` gives every worker one reused connection instead of a
//! connection per request; `--batch-report 1` samples `GET /statz` around
//! the run and prints what the server's cross-request micro-batcher did.
//! `--v1 1` pins every request to the versioned `/v1/...` paths (the
//! responses are byte-identical aliases), exercising the prefix the shard
//! router and forward-compatible clients use.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use sls_linalg::{Matrix, ParallelPolicy};
use sls_rbm_core::PipelineArtifact;
use sls_serve::{BatchStatsResponse, Client, Connection, LatencySummary, ServingModel};
use std::collections::BTreeMap;
use std::net::ToSocketAddrs;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

const USAGE: &str = "usage: loadgen [--addr HOST:PORT] [--model NAME] [--requests N] \
[--concurrency N] [--rows N] [--mode features|assign|mix] [--seed N] \
[--keep-alive 0|1] [--batch-report 0|1] [--artifact PATH] [--compact 0|1] [--v1 0|1]";

/// How many distinct row batches the workers cycle through. Small enough to
/// precompute references cheaply, large enough that concurrent in-flight
/// requests rarely carry identical payloads.
const REFERENCE_POOL: usize = 32;

struct Options {
    addr: String,
    model: String,
    requests: usize,
    concurrency: usize,
    rows: usize,
    mode: Mode,
    seed: u64,
    keep_alive: bool,
    batch_report: bool,
    artifact: Option<String>,
    /// Expected serving representation; `None` trusts the `/models` listing.
    compact: Option<bool>,
    /// Pin requests to the versioned `/v1` path prefix.
    v1: bool,
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum Mode {
    Features,
    Assign,
    Mix,
}

impl Mode {
    /// Which endpoint request number `i` of worker `w` should hit.
    fn pick(self, worker: usize, i: usize) -> &'static str {
        match self {
            Mode::Features => "features",
            Mode::Assign => "assign",
            Mode::Mix => {
                if (worker + i) % 2 == 0 {
                    "features"
                } else {
                    "assign"
                }
            }
        }
    }
}

/// One precomputed request payload with its expected responses.
struct Reference {
    rows: Vec<Vec<f64>>,
    /// `to_bits` of every expected feature value, row-aligned.
    feature_bits: Vec<Vec<u64>>,
    /// Expected cluster labels (empty when the model has no cluster head).
    assignments: Vec<usize>,
}

fn parse_bool(flag: &str, value: &str) -> Result<bool, String> {
    match value {
        "1" | "true" => Ok(true),
        "0" | "false" => Ok(false),
        other => Err(format!("invalid value `{other}` for `{flag}` (use 0/1)")),
    }
}

fn parse_options(args: &[String]) -> Result<Options, String> {
    let mut options = Options {
        addr: "127.0.0.1:7878".to_string(),
        model: "quick_demo".to_string(),
        requests: 200,
        concurrency: 16,
        rows: 16,
        mode: Mode::Mix,
        seed: 2023,
        keep_alive: false,
        batch_report: false,
        artifact: None,
        compact: None,
        v1: false,
    };
    let mut iter = args.iter();
    while let Some(flag) = iter.next() {
        let value = iter
            .next()
            .ok_or_else(|| format!("flag `{flag}` needs a value\n{USAGE}"))?;
        let numeric = || {
            value
                .parse::<usize>()
                .map_err(|_| format!("invalid value `{value}` for `{flag}`"))
        };
        match flag.as_str() {
            "--addr" => options.addr = value.clone(),
            "--model" => options.model = value.clone(),
            "--requests" => options.requests = numeric()?.max(1),
            "--concurrency" => options.concurrency = numeric()?.max(1),
            "--rows" => options.rows = numeric()?.max(1),
            "--seed" => {
                options.seed = value
                    .parse()
                    .map_err(|_| format!("invalid value `{value}` for `--seed`"))?;
            }
            "--mode" => {
                options.mode = match value.as_str() {
                    "features" => Mode::Features,
                    "assign" => Mode::Assign,
                    "mix" => Mode::Mix,
                    other => return Err(format!("unknown mode `{other}`\n{USAGE}")),
                };
            }
            "--keep-alive" => options.keep_alive = parse_bool(flag, value)?,
            "--batch-report" => options.batch_report = parse_bool(flag, value)?,
            "--artifact" => options.artifact = Some(value.clone()),
            "--compact" => options.compact = Some(parse_bool(flag, value)?),
            "--v1" => options.v1 = parse_bool(flag, value)?,
            other => return Err(format!("unknown flag `{other}`\n{USAGE}")),
        }
    }
    Ok(options)
}

/// Builds the deterministic request-payload pool.
fn payload_pool(options: &Options, n_visible: usize) -> Vec<Vec<Vec<f64>>> {
    (0..REFERENCE_POOL.min(options.requests))
        .map(|k| {
            let mut rng = ChaCha8Rng::seed_from_u64(options.seed.wrapping_add(k as u64));
            (0..options.rows)
                .map(|_| (0..n_visible).map(|_| rng.gen_range(-2.0..2.0)).collect())
                .collect()
        })
        .collect()
}

/// Precomputes the expected response for every pooled payload — in process
/// when an artifact is at hand (independent of the server), over serial
/// warm-up HTTP requests otherwise.
fn build_references(
    options: &Options,
    client: &Client,
    pool: Vec<Vec<Vec<f64>>>,
    has_cluster_head: bool,
    compact: bool,
) -> Result<Vec<Reference>, String> {
    let want_assign = options.mode != Mode::Features && has_cluster_head;
    if let Some(path) = &options.artifact {
        let artifact =
            PipelineArtifact::load(path).map_err(|e| format!("loading `{path}` failed: {e}"))?;
        let model = ServingModel::from_artifact(artifact, compact);
        let serial = ParallelPolicy::serial();
        return pool
            .into_iter()
            .map(|rows| {
                let matrix = Matrix::from_rows(&rows).map_err(|e| e.to_string())?;
                let features = model
                    .features_with(&matrix, &serial)
                    .map_err(|e| format!("in-process features failed: {e}"))?;
                let feature_bits = features
                    .row_iter()
                    .map(|row| row.iter().map(|v| v.to_bits()).collect())
                    .collect();
                let assignments = if want_assign {
                    model
                        .assign_with(&matrix, &serial)
                        .map_err(|e| format!("in-process assign failed: {e}"))?
                } else {
                    Vec::new()
                };
                Ok(Reference {
                    rows,
                    feature_bits,
                    assignments,
                })
            })
            .collect();
    }
    // No artifact: one serial warm-up request per payload defines the
    // reference the concurrent (and possibly batched) run must reproduce.
    pool.into_iter()
        .map(|rows| {
            let features = client
                .features(&options.model, &rows)
                .map_err(|e| format!("warm-up features request failed: {e}"))?;
            let feature_bits = features
                .iter()
                .map(|row| row.iter().map(|v| v.to_bits()).collect())
                .collect();
            let assignments = if want_assign {
                client
                    .assign(&options.model, &rows)
                    .map_err(|e| format!("warm-up assign request failed: {e}"))?
            } else {
                Vec::new()
            };
            Ok(Reference {
                rows,
                feature_bits,
                assignments,
            })
        })
        .collect()
}

/// Fetches the server's micro-batching counters.
fn fetch_statz(client: &Client) -> Result<BatchStatsResponse, String> {
    let response = client
        .request_ok("GET", "/statz", "")
        .map_err(|e| format!("GET /statz failed: {e}"))?;
    serde_json::from_str(&response.body).map_err(|e| format!("statz body undecodable: {e}"))
}

fn verify_features(reference: &Reference, answered: &[Vec<f64>]) -> Result<(), String> {
    let answered_bits: Vec<Vec<u64>> = answered
        .iter()
        .map(|row| row.iter().map(|v| v.to_bits()).collect())
        .collect();
    if answered_bits != reference.feature_bits {
        return Err("features are not bitwise identical to the reference".to_string());
    }
    Ok(())
}

fn verify_assignments(reference: &Reference, answered: &[usize]) -> Result<(), String> {
    if answered != reference.assignments {
        return Err(format!(
            "assignments {answered:?} differ from the reference {:?}",
            reference.assignments
        ));
    }
    Ok(())
}

fn run(options: &Options) -> Result<(), String> {
    let addr = options
        .addr
        .to_socket_addrs()
        .map_err(|e| format!("cannot resolve `{}`: {e}", options.addr))?
        .next()
        .ok_or_else(|| format!("`{}` resolved to no address", options.addr))?;
    let client = Client::builder()
        .timeout(Duration::from_secs(30))
        .v1(options.v1)
        .build(addr);

    let health = client
        .health()
        .map_err(|e| format!("server health check failed: {e}"))?;
    let models = client
        .models()
        .map_err(|e| format!("listing models failed: {e}"))?;
    let info = models
        .models
        .iter()
        .find(|m| m.name == options.model)
        .ok_or_else(|| {
            format!(
                "model `{}` is not served (available: {})",
                options.model,
                models
                    .models
                    .iter()
                    .map(|m| m.name.as_str())
                    .collect::<Vec<_>>()
                    .join(", ")
            )
        })?;
    if options.mode != Mode::Features && info.n_clusters.is_none() {
        return Err(format!(
            "model `{}` has no cluster head; use --mode features",
            options.model
        ));
    }
    if let Some(expected) = options.compact {
        if info.compact != expected {
            return Err(format!(
                "model `{}` is served {}, but --compact {} expects {}",
                options.model,
                if info.compact {
                    "compact"
                } else {
                    "full-precision"
                },
                u8::from(expected),
                if expected {
                    "compact"
                } else {
                    "full-precision"
                },
            ));
        }
    }
    println!(
        "loadgen: {} requests x {} rows against http://{addr}{}/models/{} \
         ({} healthy models, concurrency {}, visible width {}, keep-alive {}, {})",
        options.requests,
        options.rows,
        if options.v1 { "/v1" } else { "" },
        options.model,
        health.models,
        options.concurrency,
        info.n_visible,
        if options.keep_alive { "on" } else { "off" },
        if info.compact {
            "compact"
        } else {
            "full-precision"
        },
    );

    let pool = payload_pool(options, info.n_visible);
    let references = build_references(
        options,
        &client,
        pool,
        info.n_clusters.is_some(),
        info.compact,
    )?;
    println!(
        "  verifying against {} {} reference payloads",
        references.len(),
        if options.artifact.is_some() {
            "in-process"
        } else {
            "warm-up HTTP"
        }
    );
    let statz_before = if options.batch_report {
        Some(fetch_statz(&client)?)
    } else {
        None
    };

    // Per-endpoint latency samples and error messages, appended by workers.
    let samples: Mutex<BTreeMap<&'static str, Vec<Duration>>> = Mutex::new(BTreeMap::new());
    let errors: Mutex<Vec<String>> = Mutex::new(Vec::new());
    let connections_opened = AtomicUsize::new(0);
    let started = Instant::now();
    std::thread::scope(|scope| {
        for worker in 0..options.concurrency {
            let client = &client;
            let samples = &samples;
            let errors = &errors;
            let references = &references;
            let connections_opened = &connections_opened;
            let options_ref = &options;
            scope.spawn(move || {
                let mut connection: Option<Connection> =
                    options_ref.keep_alive.then(|| client.connect());
                // Workers split the total request budget as evenly as possible.
                let share = options_ref.requests / options_ref.concurrency
                    + usize::from(worker < options_ref.requests % options_ref.concurrency);
                for i in 0..share {
                    // Deterministic walk over the payload pool, de-phased
                    // per worker so concurrent requests mix payloads.
                    let reference = &references[(worker * 7 + i) % references.len()];
                    let endpoint = options_ref.mode.pick(worker, i);
                    let request_start = Instant::now();
                    let outcome = match (endpoint, connection.as_mut()) {
                        ("features", Some(conn)) => conn
                            .features(&options_ref.model, &reference.rows)
                            .map_err(|e| e.to_string())
                            .and_then(|f| verify_features(reference, &f)),
                        ("features", None) => client
                            .features(&options_ref.model, &reference.rows)
                            .map_err(|e| e.to_string())
                            .and_then(|f| verify_features(reference, &f)),
                        (_, Some(conn)) => conn
                            .assign(&options_ref.model, &reference.rows)
                            .map_err(|e| e.to_string())
                            .and_then(|a| verify_assignments(reference, &a)),
                        (_, None) => client
                            .assign(&options_ref.model, &reference.rows)
                            .map_err(|e| e.to_string())
                            .and_then(|a| verify_assignments(reference, &a)),
                    };
                    let elapsed = request_start.elapsed();
                    match outcome {
                        Ok(()) => {
                            samples
                                .lock()
                                .unwrap()
                                .entry(endpoint)
                                .or_default()
                                .push(elapsed);
                        }
                        Err(e) => errors.lock().unwrap().push(format!("{endpoint}: {e}")),
                    }
                }
                connections_opened.fetch_add(
                    match &connection {
                        Some(conn) => conn.connections_opened(),
                        None => share,
                    },
                    Ordering::Relaxed,
                );
            });
        }
    });
    let elapsed = started.elapsed();

    let samples = samples.into_inner().unwrap();
    let errors = errors.into_inner().unwrap();
    let mut all: Vec<Duration> = Vec::new();
    for (endpoint, endpoint_samples) in &samples {
        if let Some(summary) = LatencySummary::from_samples(endpoint_samples) {
            println!("  {endpoint:<9} {summary}");
        }
        all.extend_from_slice(endpoint_samples);
    }
    let Some(overall) = LatencySummary::from_samples(&all) else {
        return Err("no request succeeded".to_string());
    };
    let throughput = overall.throughput(elapsed);
    println!(
        "  overall   {overall} | elapsed {:.2?} | throughput {throughput:.1} req/s | \
         connections {} | errors {}",
        elapsed,
        connections_opened.load(Ordering::Relaxed),
        errors.len()
    );
    // Machine-greppable one-liner for BENCH tracking.
    println!(
        "loadgen-summary: keep_alive={} requests={} concurrency={} rows={} \
         throughput_rps={throughput:.1} connections={} errors={}",
        u8::from(options.keep_alive),
        options.requests,
        options.concurrency,
        options.rows,
        connections_opened.load(Ordering::Relaxed),
        errors.len()
    );
    if let Some(before) = statz_before {
        let after = fetch_statz(&client)?;
        println!(
            "batch-report: window_us={} max_batch_rows={} batches=+{} batched_requests=+{} \
             batched_rows=+{} largest_batch={} largest_batch_rows={}",
            after.window_us,
            after.max_batch_rows,
            after.batches.saturating_sub(before.batches),
            after
                .batched_requests
                .saturating_sub(before.batched_requests),
            after.batched_rows.saturating_sub(before.batched_rows),
            after.largest_batch,
            after.largest_batch_rows,
        );
    }
    if !errors.is_empty() {
        for message in errors.iter().take(5) {
            eprintln!("error: {message}");
        }
        if errors.len() > 5 {
            eprintln!("... and {} more", errors.len() - 5);
        }
        return Err(format!(
            "{} of {} requests failed",
            errors.len(),
            options.requests
        ));
    }
    Ok(())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = parse_options(&args).and_then(|options| run(&options));
    if let Err(message) = result {
        eprintln!("{message}");
        std::process::exit(1);
    }
}
