//! Ablation A1: effect of the scale coefficient η (Eq. 16) on clustering
//! accuracy of the slsGRBM hidden features. η close to 1 recovers plain CD;
//! η close to 0 ignores the likelihood term entirely.

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use sls_clustering::KMeans;
use sls_consensus::{LocalSupervisionBuilder, VotingPolicy};
use sls_datasets::{generate_msra_dataset, standardize_columns, MsraDatasetId};
use sls_metrics::clustering_accuracy;
use sls_rbm_core::{SlsConfig, SlsGrbm, TrainConfig};

fn main() {
    let mut rng = ChaCha8Rng::seed_from_u64(7);
    let ds = generate_msra_dataset(MsraDatasetId::Birthdaycake, &mut rng);
    // Reduced-size slice keeps the sweep fast while preserving the trend.
    let rows: Vec<Vec<f64>> = (0..300.min(ds.n_instances()))
        .map(|i| ds.features().row(i)[..128].to_vec())
        .collect();
    let data = standardize_columns(&sls_linalg::Matrix::from_rows(&rows).unwrap()).unwrap();
    let labels = &ds.labels()[..data.rows()];

    // Base partitions once, reused for every eta.
    let base: Vec<Vec<usize>> = (0..3)
        .map(|seed| {
            KMeans::new(3)
                .fit(&data, &mut ChaCha8Rng::seed_from_u64(seed))
                .unwrap()
                .assignment
                .labels()
                .to_vec()
        })
        .collect();
    let supervision = LocalSupervisionBuilder::new(3)
        .with_policy(VotingPolicy::Unanimous)
        .build_from_partitions(&base)
        .unwrap();

    println!("Ablation A1: k-means accuracy of slsGRBM hidden features vs eta");
    println!("{:>6} {:>10}", "eta", "accuracy");
    for eta in [0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9] {
        let mut model = SlsGrbm::new(data.cols(), 32, &mut ChaCha8Rng::seed_from_u64(99));
        let train = TrainConfig::default()
            .with_learning_rate(5e-3)
            .with_epochs(15);
        model
            .train(
                &data,
                &supervision,
                train,
                SlsConfig::new(eta),
                &mut ChaCha8Rng::seed_from_u64(3),
            )
            .unwrap();
        let hidden = model.hidden_features(&data).unwrap();
        let assignment = KMeans::new(3)
            .fit(&hidden, &mut ChaCha8Rng::seed_from_u64(5))
            .unwrap()
            .assignment;
        let acc = clustering_accuracy(assignment.labels(), labels).unwrap();
        println!("{eta:>6.1} {acc:>10.4}");
    }
}
