//! Reproduces Fig. 9: average accuracy, Rand index and FMI over datasets II
//! for each of the nine algorithms.

use sls_bench::{metric_table, run_datasets_ii, ExperimentScale, MetricKind};

fn main() {
    let scale = ExperimentScale::from_env();
    let results = run_datasets_ii(scale, 2023).unwrap_or_else(|e| {
        eprintln!("error: {e}");
        std::process::exit(1);
    });
    for metric in [MetricKind::Accuracy, MetricKind::RandIndex, MetricKind::Fmi] {
        let table = metric_table(&results, metric, "");
        println!("Fig. 9 panel: average {} over datasets II", metric.name());
        for (name, avg) in table.columns.iter().zip(&table.averages) {
            println!("  {name:<18} {avg:.4}");
        }
        println!();
    }
}
