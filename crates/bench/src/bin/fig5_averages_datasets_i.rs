//! Reproduces Fig. 5: average accuracy, purity and FMI over datasets I for
//! each of the nine algorithms.

use sls_bench::{metric_table, run_datasets_i, ExperimentScale, MetricKind};

fn main() {
    let scale = ExperimentScale::from_env();
    let results = run_datasets_i(scale, 2023).unwrap_or_else(|e| {
        eprintln!("error: {e}");
        std::process::exit(1);
    });
    for metric in [MetricKind::Accuracy, MetricKind::Purity, MetricKind::Fmi] {
        let table = metric_table(&results, metric, "");
        println!("Fig. 5 panel: average {} over datasets I", metric.name());
        for (name, avg) in table.columns.iter().zip(&table.averages) {
            println!("  {name:<18} {avg:.4}");
        }
        println!();
    }
}
