//! Developer utility: prints the raw-feature clustering accuracy of every
//! dataset stand-in at the current scale, used to calibrate the synthetic
//! difficulty profiles against the paper's baseline numbers.

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use sls_bench::ExperimentScale;
use sls_clustering::{Clusterer, DensityPeaks, KMeans};
use sls_datasets::{
    binarize_median, generate_msra_dataset, generate_uci_dataset, msra_catalog,
    standardize_columns, uci_catalog,
};
use sls_metrics::clustering_accuracy;

fn main() {
    let scale = ExperimentScale::from_env();
    let cap_n = scale.max_instances().unwrap_or(usize::MAX);
    let cap_d = scale.max_features().unwrap_or(usize::MAX);
    let mut rng = ChaCha8Rng::seed_from_u64(2023);
    println!("{:<8}{:>10}{:>10}", "dataset", "DP", "K-means");
    for id in msra_catalog() {
        let ds = generate_msra_dataset(id, &mut rng);
        let n = cap_n.min(ds.n_instances());
        let total = ds.n_features();
        let d = cap_d.min(total);
        let cols: Vec<usize> = (0..d).map(|j| j * total / d).collect();
        let rows: Vec<Vec<f64>> = (0..n)
            .map(|i| cols.iter().map(|&j| ds.features().row(i)[j]).collect())
            .collect();
        let data = standardize_columns(&sls_linalg::Matrix::from_rows(&rows).unwrap()).unwrap();
        let labels = &ds.labels()[..n];
        let k = 3;
        let dp = DensityPeaks::new(k).cluster(&data, &mut rng).unwrap();
        let km = KMeans::new(k).cluster(&data, &mut rng).unwrap();
        println!(
            "{:<8}{:>10.4}{:>10.4}",
            ds.spec().code,
            clustering_accuracy(dp.labels(), labels).unwrap(),
            clustering_accuracy(km.labels(), labels).unwrap()
        );
    }
    for id in uci_catalog() {
        let ds = generate_uci_dataset(id, &mut rng);
        let n = cap_n.min(ds.n_instances());
        let total = ds.n_features();
        let d = cap_d.min(total);
        let cols: Vec<usize> = (0..d).map(|j| j * total / d).collect();
        let rows: Vec<Vec<f64>> = (0..n)
            .map(|i| cols.iter().map(|&j| ds.features().row(i)[j]).collect())
            .collect();
        let data = binarize_median(&sls_linalg::Matrix::from_rows(&rows).unwrap());
        let labels = &ds.labels()[..n];
        let k = ds.spec().classes;
        let dp = DensityPeaks::new(k).cluster(&data, &mut rng).unwrap();
        let km = KMeans::new(k).cluster(&data, &mut rng).unwrap();
        println!(
            "{:<8}{:>10.4}{:>10.4}",
            ds.spec().code,
            clustering_accuracy(dp.labels(), labels).unwrap(),
            clustering_accuracy(km.labels(), labels).unwrap()
        );
    }
}
