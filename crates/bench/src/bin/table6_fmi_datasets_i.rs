//! Reproduces Table VI (Fowlkes–Mallows index on datasets I) and the series
//! of Fig. 4.

use sls_bench::{figure_series, metric_table, run_datasets_i, ExperimentScale, MetricKind};

fn main() {
    let scale = ExperimentScale::from_env();
    let results = run_datasets_i(scale, 2023).unwrap_or_else(|e| {
        eprintln!("error: {e}");
        std::process::exit(1);
    });
    let table = metric_table(
        &results,
        MetricKind::Fmi,
        &format!("Table VI: Fowlkes-Mallows index on datasets I ({scale:?} scale)"),
    );
    println!("{}", table.render_text());
    let series = figure_series(&results, MetricKind::Fmi);
    println!(
        "{}",
        sls_bench::report::render_figure(&series, "Fig. 4 series: FMI vs dataset index")
    );
}
