//! Reproduces Table IV (clustering accuracy on datasets I) and the series of
//! Fig. 2. Scale is controlled by the `SLS_SCALE` environment variable.

use sls_bench::{figure_series, metric_table, run_datasets_i, ExperimentScale, MetricKind};

fn main() {
    let scale = ExperimentScale::from_env();
    let results = run_datasets_i(scale, 2023).unwrap_or_else(|e| {
        eprintln!("error: {e}");
        std::process::exit(1);
    });
    let table = metric_table(
        &results,
        MetricKind::Accuracy,
        &format!("Table IV: accuracy on datasets I ({scale:?} scale)"),
    );
    println!("{}", table.render_text());
    let series = figure_series(&results, MetricKind::Accuracy);
    println!(
        "{}",
        sls_bench::report::render_figure(&series, "Fig. 2 series: accuracy vs dataset index")
    );
}
