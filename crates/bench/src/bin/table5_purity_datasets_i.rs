//! Reproduces Table V (purity on datasets I) and the series of Fig. 3.

use sls_bench::{figure_series, metric_table, run_datasets_i, ExperimentScale, MetricKind};

fn main() {
    let scale = ExperimentScale::from_env();
    let results = run_datasets_i(scale, 2023).unwrap_or_else(|e| {
        eprintln!("error: {e}");
        std::process::exit(1);
    });
    let table = metric_table(
        &results,
        MetricKind::Purity,
        &format!("Table V: purity on datasets I ({scale:?} scale)"),
    );
    println!("{}", table.render_text());
    let series = figure_series(&results, MetricKind::Purity);
    println!(
        "{}",
        sls_bench::report::render_figure(&series, "Fig. 3 series: purity vs dataset index")
    );
}
