//! Ablation A3: hidden-layer width sweep for the slsGRBM model.

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use sls_clustering::KMeans;
use sls_consensus::{LocalSupervisionBuilder, VotingPolicy};
use sls_datasets::{generate_msra_dataset, standardize_columns, MsraDatasetId};
use sls_metrics::clustering_accuracy;
use sls_rbm_core::{SlsConfig, SlsGrbm, TrainConfig};

fn main() {
    let mut rng = ChaCha8Rng::seed_from_u64(23);
    let ds = generate_msra_dataset(MsraDatasetId::Wallpaper, &mut rng);
    let rows: Vec<Vec<f64>> = (0..300.min(ds.n_instances()))
        .map(|i| ds.features().row(i)[..128].to_vec())
        .collect();
    let data = standardize_columns(&sls_linalg::Matrix::from_rows(&rows).unwrap()).unwrap();
    let labels = &ds.labels()[..data.rows()];

    let base: Vec<Vec<usize>> = (0..3)
        .map(|seed| {
            KMeans::new(3)
                .fit(&data, &mut ChaCha8Rng::seed_from_u64(seed))
                .unwrap()
                .assignment
                .labels()
                .to_vec()
        })
        .collect();
    let supervision = LocalSupervisionBuilder::new(3)
        .with_policy(VotingPolicy::Unanimous)
        .build_from_partitions(&base)
        .unwrap();

    println!("Ablation A3: k-means accuracy of slsGRBM hidden features vs hidden width");
    println!("{:>8} {:>10}", "hidden", "accuracy");
    for n_hidden in [8usize, 16, 32, 64, 128, 256] {
        let mut model = SlsGrbm::new(data.cols(), n_hidden, &mut ChaCha8Rng::seed_from_u64(99));
        let train = TrainConfig::default()
            .with_learning_rate(5e-3)
            .with_epochs(15);
        model
            .train(
                &data,
                &supervision,
                train,
                SlsConfig::paper_grbm(),
                &mut ChaCha8Rng::seed_from_u64(3),
            )
            .unwrap();
        let hidden = model.hidden_features(&data).unwrap();
        let assignment = KMeans::new(3)
            .fit(&hidden, &mut ChaCha8Rng::seed_from_u64(5))
            .unwrap()
            .assignment;
        let acc = clustering_accuracy(assignment.labels(), labels).unwrap();
        println!("{n_hidden:>8} {acc:>10.4}");
    }
}
