//! Reproduces Table VII (clustering accuracy on datasets II) and the series
//! of Fig. 6.

use sls_bench::{figure_series, metric_table, run_datasets_ii, ExperimentScale, MetricKind};

fn main() {
    let scale = ExperimentScale::from_env();
    let results = run_datasets_ii(scale, 2023).unwrap_or_else(|e| {
        eprintln!("error: {e}");
        std::process::exit(1);
    });
    let table = metric_table(
        &results,
        MetricKind::Accuracy,
        &format!("Table VII: accuracy on datasets II ({scale:?} scale)"),
    );
    println!("{}", table.render_text());
    let series = figure_series(&results, MetricKind::Accuracy);
    println!(
        "{}",
        sls_bench::report::render_figure(&series, "Fig. 6 series: accuracy vs dataset index")
    );
}
