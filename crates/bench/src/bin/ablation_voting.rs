//! Ablation A2: unanimous voting (the paper's strategy) vs majority voting
//! vs a single clusterer as the source of the local supervision.

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use sls_bench::ExperimentScale;
use sls_clustering::{AffinityPropagation, Clusterer, DensityPeaks, KMeans};
use sls_consensus::{LocalSupervisionBuilder, VotingPolicy};
use sls_datasets::{generate_msra_dataset, standardize_columns, MsraDatasetId};
use sls_metrics::clustering_accuracy;
use sls_rbm_core::{SlsConfig, SlsGrbm, TrainConfig};

fn main() {
    let scale = ExperimentScale::from_env();
    let cap = scale.max_instances().unwrap_or(300);
    let fcap = scale.max_features().unwrap_or(128);
    let mut rng = ChaCha8Rng::seed_from_u64(17);
    let ds = generate_msra_dataset(MsraDatasetId::Vista, &mut rng);
    let rows: Vec<Vec<f64>> = (0..cap.min(ds.n_instances()))
        .map(|i| ds.features().row(i)[..fcap.min(ds.n_features())].to_vec())
        .collect();
    let data = standardize_columns(&sls_linalg::Matrix::from_rows(&rows).unwrap()).unwrap();
    let labels = &ds.labels()[..data.rows()];

    let clusterers: Vec<Box<dyn Clusterer>> = vec![
        Box::new(DensityPeaks::new(3)),
        Box::new(KMeans::new(3)),
        Box::new(AffinityPropagation::default().with_target_clusters(3)),
    ];
    let partitions: Vec<Vec<usize>> = clusterers
        .iter()
        .map(|c| c.cluster(&data, &mut rng).unwrap().labels().to_vec())
        .collect();

    println!("Ablation A2: voting policy vs supervision quality and final accuracy");
    println!(
        "{:<22}{:>10}{:>12}{:>12}",
        "policy", "coverage", "purity", "accuracy"
    );
    let policies = [
        ("unanimous (paper)", VotingPolicy::Unanimous),
        ("majority", VotingPolicy::Majority),
        ("single: DP", VotingPolicy::Single(0)),
        ("single: K-means", VotingPolicy::Single(1)),
        ("single: AP", VotingPolicy::Single(2)),
    ];
    for (name, policy) in policies {
        let supervision = LocalSupervisionBuilder::new(3)
            .with_policy(policy)
            .build_from_partitions(&partitions)
            .unwrap();
        let summary = supervision.summary();
        // Purity of the supervision itself w.r.t. the hidden ground truth.
        let mut covered_pred = Vec::new();
        let mut covered_truth = Vec::new();
        for (cluster, members) in supervision.clusters().iter().enumerate() {
            for &i in members {
                covered_pred.push(cluster);
                covered_truth.push(labels[i]);
            }
        }
        let supervision_purity = sls_metrics::purity(&covered_pred, &covered_truth).unwrap();

        let mut model = SlsGrbm::new(data.cols(), 32, &mut ChaCha8Rng::seed_from_u64(11));
        let train = TrainConfig::default()
            .with_learning_rate(5e-3)
            .with_epochs(15);
        model
            .train(
                &data,
                &supervision,
                train,
                SlsConfig::paper_grbm(),
                &mut ChaCha8Rng::seed_from_u64(2),
            )
            .unwrap();
        let hidden = model.hidden_features(&data).unwrap();
        let assignment = KMeans::new(3)
            .fit(&hidden, &mut ChaCha8Rng::seed_from_u64(5))
            .unwrap()
            .assignment;
        let acc = clustering_accuracy(assignment.labels(), labels).unwrap();
        println!(
            "{name:<22}{:>10.3}{supervision_purity:>12.4}{acc:>12.4}",
            summary.coverage
        );
    }
}
