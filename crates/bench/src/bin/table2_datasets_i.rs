//! Reproduces Table II: summary of the nine MSRA-MM 2.0 datasets
//! (datasets I). Shapes are exact; the feature values themselves are the
//! synthetic stand-ins described in DESIGN.md.

fn main() {
    println!("Table II: summary of the experiment datasets I (MSRA-MM 2.0 stand-ins)");
    println!(
        "{:<4}{:<16}{:>8}{:>11}{:>9}",
        "No.", "Dataset", "classes", "instances", "feature"
    );
    for id in sls_datasets::msra_catalog() {
        let spec = id.spec();
        println!(
            "{:<4}{:<16}{:>8}{:>11}{:>9}",
            id.index(),
            format!("{} ({})", spec.name, spec.code),
            spec.classes,
            spec.instances,
            spec.features
        );
    }
}
