//! Reproduces Table III: summary of the six UCI datasets (datasets II).

fn main() {
    println!("Table III: summary of the experiment datasets II (UCI stand-ins)");
    println!(
        "{:<4}{:<30}{:>8}{:>11}{:>9}",
        "No.", "Dataset", "classes", "instances", "feature"
    );
    for id in sls_datasets::uci_catalog() {
        let spec = id.spec();
        println!(
            "{:<4}{:<30}{:>8}{:>11}{:>9}",
            id.index(),
            format!("{} ({})", spec.name, spec.code),
            spec.classes,
            spec.instances,
            spec.features
        );
    }
}
