//! Criterion benchmarks for multi-clustering integration (alignment +
//! unanimous voting + local cluster extraction).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use sls_consensus::{integrate_partitions, LocalSupervisionBuilder, VotingPolicy};

fn partitions(n: usize, k: usize) -> Vec<Vec<usize>> {
    let mut rng = ChaCha8Rng::seed_from_u64(3);
    let truth: Vec<usize> = (0..n).map(|i| i % k).collect();
    (0..3)
        .map(|_| {
            truth
                .iter()
                .map(|&l| {
                    if rng.gen::<f64>() < 0.2 {
                        rng.gen_range(0..k)
                    } else {
                        (l + 1) % k
                    }
                })
                .collect()
        })
        .collect()
}

fn bench_unanimous_vote(c: &mut Criterion) {
    let parts = partitions(1000, 3);
    c.bench_function("consensus/unanimous_vote_1000x3", |bench| {
        bench.iter(|| black_box(integrate_partitions(&parts, VotingPolicy::Unanimous).unwrap()))
    });
}

fn bench_supervision_build(c: &mut Criterion) {
    let parts = partitions(1000, 3);
    c.bench_function("consensus/build_supervision_1000x3", |bench| {
        bench.iter(|| {
            black_box(
                LocalSupervisionBuilder::new(3)
                    .build_from_partitions(&parts)
                    .unwrap(),
            )
        })
    });
}

criterion_group!(benches, bench_unanimous_vote, bench_supervision_build);
criterion_main!(benches);
