//! Criterion benchmarks for the energy models: one CD epoch vs one sls epoch
//! (the incremental cost of the constrict/disperse gradients), plus feature
//! extraction.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use sls_consensus::{LocalSupervision, VotingPolicy};
use sls_datasets::{standardize_columns, SyntheticBlobs};
use sls_rbm_core::{BoltzmannMachine, CdTrainer, Grbm, SlsConfig, SlsGrbm, TrainConfig};

fn setup() -> (sls_linalg::Matrix, LocalSupervision) {
    let mut rng = ChaCha8Rng::seed_from_u64(9);
    let ds = SyntheticBlobs::new(200, 64, 3)
        .separation(3.0)
        .generate(&mut rng);
    let data = standardize_columns(ds.features()).unwrap();
    let consensus: Vec<Option<usize>> = ds.labels().iter().map(|&l| Some(l)).collect();
    let supervision =
        LocalSupervision::from_consensus(&consensus, VotingPolicy::Unanimous).unwrap();
    (data, supervision)
}

fn one_epoch_config() -> TrainConfig {
    TrainConfig::default()
        .with_epochs(1)
        .with_learning_rate(1e-3)
        .with_batch_size(50)
}

fn bench_cd_epoch(c: &mut Criterion) {
    let (data, _) = setup();
    c.bench_function("rbm/grbm_cd_epoch_200x64_h32", |bench| {
        bench.iter(|| {
            let mut rng = ChaCha8Rng::seed_from_u64(1);
            let mut model = Grbm::new(data.cols(), 32, &mut rng);
            CdTrainer::new(one_epoch_config())
                .unwrap()
                .train(&mut model, &data, &mut rng)
                .unwrap();
            black_box(model)
        })
    });
}

fn bench_sls_epoch(c: &mut Criterion) {
    let (data, supervision) = setup();
    c.bench_function("rbm/sls_grbm_epoch_200x64_h32", |bench| {
        bench.iter(|| {
            let mut rng = ChaCha8Rng::seed_from_u64(1);
            let mut model = SlsGrbm::new(data.cols(), 32, &mut rng);
            model
                .train(
                    &data,
                    &supervision,
                    one_epoch_config(),
                    SlsConfig::paper_grbm(),
                    &mut rng,
                )
                .unwrap();
            black_box(model)
        })
    });
}

fn bench_feature_extraction(c: &mut Criterion) {
    let (data, _) = setup();
    let mut rng = ChaCha8Rng::seed_from_u64(1);
    let model = Grbm::new(data.cols(), 32, &mut rng);
    c.bench_function("rbm/hidden_features_200x64_h32", |bench| {
        bench.iter(|| black_box(model.hidden_probabilities(&data).unwrap()))
    });
}

criterion_group!(
    benches,
    bench_cd_epoch,
    bench_sls_epoch,
    bench_feature_extraction
);
criterion_main!(benches);
