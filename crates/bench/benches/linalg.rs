//! Criterion micro-benchmarks for the linear-algebra substrate: the matrix
//! products dominating CD training time.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use sls_linalg::{pairwise_distances, Matrix, MatrixRandomExt};

fn bench_matmul(c: &mut Criterion) {
    let mut rng = ChaCha8Rng::seed_from_u64(1);
    let a = Matrix::random_normal(128, 256, 0.0, 1.0, &mut rng);
    let b = Matrix::random_normal(256, 64, 0.0, 1.0, &mut rng);
    c.bench_function("linalg/matmul_128x256x64", |bench| {
        bench.iter(|| black_box(a.matmul(&b).unwrap()))
    });
    c.bench_function("linalg/matmul_transpose_left_128x256x64", |bench| {
        let h = Matrix::random_normal(128, 64, 0.0, 1.0, &mut rng);
        bench.iter(|| black_box(a.matmul_transpose_left(&h).unwrap()))
    });
}

fn bench_pairwise_distances(c: &mut Criterion) {
    let mut rng = ChaCha8Rng::seed_from_u64(2);
    let data = Matrix::random_normal(200, 64, 0.0, 1.0, &mut rng);
    c.bench_function("linalg/pairwise_distances_200x64", |bench| {
        bench.iter(|| black_box(pairwise_distances(&data)))
    });
}

criterion_group!(benches, bench_matmul, bench_pairwise_distances);
criterion_main!(benches);
