//! Criterion benchmarks for the evaluation metrics (contingency table,
//! Hungarian accuracy, pairwise indices).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use sls_metrics::{clustering_accuracy, EvaluationReport};

fn labels(n: usize, k: usize, seed: u64) -> (Vec<usize>, Vec<usize>) {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let truth: Vec<usize> = (0..n).map(|i| i % k).collect();
    let predicted: Vec<usize> = truth
        .iter()
        .map(|&l| {
            if rng.gen::<f64>() < 0.3 {
                rng.gen_range(0..k)
            } else {
                l
            }
        })
        .collect();
    (predicted, truth)
}

fn bench_accuracy(c: &mut Criterion) {
    let (predicted, truth) = labels(1000, 3, 1);
    c.bench_function("metrics/accuracy_1000x3", |bench| {
        bench.iter(|| black_box(clustering_accuracy(&predicted, &truth).unwrap()))
    });
}

fn bench_full_report(c: &mut Criterion) {
    let (predicted, truth) = labels(1000, 3, 2);
    c.bench_function("metrics/full_report_1000x3", |bench| {
        bench.iter(|| black_box(EvaluationReport::evaluate(&predicted, &truth).unwrap()))
    });
}

criterion_group!(benches, bench_accuracy, bench_full_report);
criterion_main!(benches);
