//! Criterion micro-benchmarks for the parallel linalg layer: each product
//! kernel, serial vs. 2/4/8 threads, on training-scale and serving-scale
//! shapes. Read together with `available_parallelism` — on fewer cores than
//! threads the parallel numbers measure scheduling overhead, not speedup.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use sls_linalg::{Matrix, MatrixRandomExt, ParallelPolicy};

const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];

fn policy(threads: usize) -> ParallelPolicy {
    if threads == 1 {
        ParallelPolicy::serial()
    } else {
        ParallelPolicy::new(threads).with_min_rows_per_thread(8)
    }
}

fn bench_parallel_matmul(c: &mut Criterion) {
    let mut rng = ChaCha8Rng::seed_from_u64(11);
    // Training shape: a 512-row slab of 256-wide data against 256 hidden.
    let a = Matrix::random_normal(512, 256, 0.0, 1.0, &mut rng);
    let b = Matrix::random_normal(256, 256, 0.0, 1.0, &mut rng);
    for threads in THREAD_COUNTS {
        let p = policy(threads);
        c.bench_function(
            &format!("parallel/matmul_512x256x256/t{threads}"),
            |bench| bench.iter(|| black_box(a.matmul_with(&b, &p).unwrap())),
        );
    }
    // Serving micro-batch shape: 64 rows — below the default cutover, so
    // this doubles as a regression bench for the serial fallback.
    let micro = Matrix::random_normal(64, 256, 0.0, 1.0, &mut rng);
    for threads in [1, 4] {
        let p = policy(threads);
        c.bench_function(&format!("parallel/matmul_64x256x256/t{threads}"), |bench| {
            bench.iter(|| black_box(micro.matmul_with(&b, &p).unwrap()))
        });
    }
}

fn bench_parallel_transpose_products(c: &mut Criterion) {
    let mut rng = ChaCha8Rng::seed_from_u64(12);
    // CD statistics shape: Vᵀ·H with V 512x256 and H 512x256.
    let v = Matrix::random_normal(512, 256, 0.0, 1.0, &mut rng);
    let h = Matrix::random_normal(512, 256, 0.0, 1.0, &mut rng);
    for threads in THREAD_COUNTS {
        let p = policy(threads);
        c.bench_function(
            &format!("parallel/matmul_transpose_left_512x256x256/t{threads}"),
            |bench| bench.iter(|| black_box(v.matmul_transpose_left_with(&h, &p).unwrap())),
        );
    }
    // Reconstruction shape: H·Wᵀ with W 256x256.
    let w = Matrix::random_normal(256, 256, 0.0, 1.0, &mut rng);
    for threads in THREAD_COUNTS {
        let p = policy(threads);
        c.bench_function(
            &format!("parallel/matmul_transpose_right_512x256x256/t{threads}"),
            |bench| bench.iter(|| black_box(h.matmul_transpose_right_with(&w, &p).unwrap())),
        );
    }
}

fn bench_spawn_vs_pool_small_batches(c: &mut Criterion) {
    // The persistent pool's reason to exist: at small row counts the
    // per-call thread spawns of the scoped dispatch dominate the kernel, so
    // the same policy is timed with and without the pool flag.
    let mut rng = ChaCha8Rng::seed_from_u64(13);
    let w = Matrix::random_normal(256, 256, 0.0, 1.0, &mut rng);
    let spawn = ParallelPolicy::new(4).with_min_rows_per_thread(2);
    let pooled = spawn.with_pool(true);
    // Warm the pool outside the timed region.
    let _ = sls_linalg::WorkerPool::global();
    for rows in [8usize, 32, 128] {
        let batch = Matrix::random_normal(rows, 256, 0.0, 1.0, &mut rng);
        c.bench_function(&format!("parallel/small_batch_{rows}x256x256/spawn"), |b| {
            b.iter(|| black_box(batch.matmul_with(&w, &spawn).unwrap()))
        });
        c.bench_function(&format!("parallel/small_batch_{rows}x256x256/pool"), |b| {
            b.iter(|| black_box(batch.matmul_with(&w, &pooled).unwrap()))
        });
    }
}

criterion_group!(
    benches,
    bench_parallel_matmul,
    bench_parallel_transpose_products,
    bench_spawn_vs_pool_small_batches
);
criterion_main!(benches);
