//! Criterion benchmarks for the three base clusterers on a common workload,
//! quantifying the cost of producing one base partition of the supervision.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use sls_clustering::{AffinityPropagation, DensityPeaks, KMeans};
use sls_datasets::SyntheticBlobs;

fn workload() -> sls_datasets::Dataset {
    let mut rng = ChaCha8Rng::seed_from_u64(5);
    SyntheticBlobs::new(150, 32, 3)
        .separation(3.0)
        .generate(&mut rng)
}

fn bench_kmeans(c: &mut Criterion) {
    let ds = workload();
    c.bench_function("clustering/kmeans_150x32_k3", |bench| {
        bench.iter(|| {
            let mut rng = ChaCha8Rng::seed_from_u64(7);
            black_box(KMeans::new(3).fit(ds.features(), &mut rng).unwrap())
        })
    });
}

fn bench_density_peaks(c: &mut Criterion) {
    let ds = workload();
    c.bench_function("clustering/density_peaks_150x32_k3", |bench| {
        bench.iter(|| black_box(DensityPeaks::new(3).fit(ds.features()).unwrap()))
    });
}

fn bench_affinity_propagation(c: &mut Criterion) {
    let ds = workload();
    c.bench_function("clustering/affinity_propagation_150x32", |bench| {
        bench.iter(|| black_box(AffinityPropagation::default().fit(ds.features()).unwrap()))
    });
}

criterion_group!(
    benches,
    bench_kmeans,
    bench_density_peaks,
    bench_affinity_propagation
);
criterion_main!(benches);
