//! Concurrency stress tests for the persistent [`WorkerPool`].
//!
//! The pool replaces `std::thread::scope`'s compiler-enforced lifetime
//! guarantees with hand-rolled synchronisation (Mutex + Condvar injector,
//! completion latch, lifetime-erased closures), so this suite attacks the
//! hand-rolled parts directly: many threads submitting concurrently,
//! repeated construct/submit/drop cycles, panic propagation to the
//! submitter, and pool usability after panics. The bitwise-identity
//! guarantees of the pooled *kernels* live in `properties.rs`; this file is
//! about the pool machinery itself.

use sls_linalg::{Matrix, MatrixRandomExt, ParallelPolicy, WorkerPool};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};

fn bitwise_eq(a: &Matrix, b: &Matrix) -> bool {
    a.shape() == b.shape()
        && a.as_slice()
            .iter()
            .zip(b.as_slice())
            .all(|(x, y)| x.to_bits() == y.to_bits())
}

#[test]
fn many_threads_submitting_scopes_concurrently() {
    // 8 submitters × 50 scopes × 4 tasks, all against one 3-worker pool:
    // the injector queue and latch bookkeeping must never lose or double-run
    // a task.
    let pool = WorkerPool::new(3);
    let total = AtomicUsize::new(0);
    std::thread::scope(|s| {
        for submitter in 0..8usize {
            let pool = &pool;
            let total = &total;
            s.spawn(move || {
                for round in 0..50usize {
                    let mut parts = [0usize; 4];
                    let mut slots: Vec<&mut usize> = parts.iter_mut().collect();
                    pool.scope(|scope| {
                        for (t, slot) in slots.iter_mut().enumerate() {
                            scope.spawn(move || **slot = submitter + round + t);
                        }
                    });
                    for (t, part) in parts.iter().enumerate() {
                        assert_eq!(*part, submitter + round + t);
                    }
                    total.fetch_add(4, Ordering::Relaxed);
                }
            });
        }
    });
    assert_eq!(total.load(Ordering::Relaxed), 8 * 50 * 4);
}

#[test]
fn help_is_bounded_to_the_submitters_own_scope() {
    // A thread waiting on its scope helps only with that scope's jobs, so a
    // task must execute either on a pool worker thread or on the thread
    // that submitted it — never on an unrelated scope's waiting submitter
    // (that cross-scope "help" is exactly what would let a long training
    // band add unbounded latency to a small serving scope). With 8
    // submitters hammering a 2-worker pool, cross-scope helping — if it
    // existed — would trip this assertion readily.
    let pool = WorkerPool::new(2);
    std::thread::scope(|s| {
        for _ in 0..8 {
            let pool = &pool;
            s.spawn(move || {
                let submitter = std::thread::current().id();
                for _ in 0..50 {
                    pool.scope(|scope| {
                        for _ in 0..4 {
                            scope.spawn(move || {
                                let current = std::thread::current();
                                let on_pool_worker = current
                                    .name()
                                    .is_some_and(|name| name.starts_with("sls-pool-worker-"));
                                assert!(
                                    on_pool_worker || current.id() == submitter,
                                    "task ran on a foreign thread: {:?}",
                                    current.name()
                                );
                            });
                        }
                    });
                }
            });
        }
    });
}

#[test]
fn many_threads_running_pooled_kernels_concurrently() {
    // The same contention profile the HTTP server produces: several threads
    // pushing micro-batches through pooled kernels (which all share the
    // process-global pool) at once. Every result must stay bitwise equal to
    // the serial reference.
    let mut rng = rand_seed();
    let data = Matrix::random_normal(64, 12, 0.0, 1.0, &mut rng);
    let weights = Matrix::random_normal(12, 7, 0.0, 1.0, &mut rng);
    let reference = data
        .matmul_with(&weights, &ParallelPolicy::serial())
        .unwrap();
    let pooled = ParallelPolicy::new(4)
        .with_min_rows_per_thread(1)
        .with_pool(true);
    std::thread::scope(|s| {
        for _ in 0..6 {
            let (data, weights, reference, pooled) = (&data, &weights, &reference, &pooled);
            s.spawn(move || {
                for _ in 0..40 {
                    let out = data.matmul_with(weights, pooled).unwrap();
                    assert!(bitwise_eq(&out, reference));
                }
            });
        }
    });
}

#[test]
fn repeated_submit_and_drop_cycles() {
    // Construct → submit → drop, many times over: shutdown must join every
    // worker without stranding queued jobs, and a fresh pool must come up
    // clean each time.
    for cycle in 0..40usize {
        let pool = WorkerPool::new(1 + cycle % 4);
        let counter = AtomicUsize::new(0);
        pool.scope(|scope| {
            for _ in 0..16 {
                scope.spawn(|| {
                    counter.fetch_add(1, Ordering::Relaxed);
                });
            }
        });
        assert_eq!(counter.load(Ordering::Relaxed), 16, "cycle {cycle}");
        drop(pool);
    }
}

#[test]
fn worker_panic_propagates_to_the_submitter() {
    let pool = WorkerPool::new(2);
    let result = catch_unwind(AssertUnwindSafe(|| {
        pool.scope(|scope| {
            scope.spawn(|| panic!("deliberate worker panic"));
        });
    }));
    let payload = result.expect_err("the task panic must reach the submitter");
    let message = payload
        .downcast_ref::<&str>()
        .copied()
        .or_else(|| payload.downcast_ref::<String>().map(String::as_str))
        .unwrap_or("");
    assert!(
        message.contains("deliberate worker panic"),
        "unexpected payload: {message:?}"
    );
}

#[test]
fn pool_stays_usable_after_worker_panics() {
    // Not poisoned: after (repeated) task panics the same pool must keep
    // accepting and completing work, and the sibling tasks of a panicking
    // scope must still run to completion before the panic is re-raised.
    let pool = WorkerPool::new(2);
    for round in 0..5usize {
        let survivors = AtomicUsize::new(0);
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.scope(|scope| {
                scope.spawn(|| panic!("round {round}"));
                for _ in 0..8 {
                    scope.spawn(|| {
                        survivors.fetch_add(1, Ordering::Relaxed);
                    });
                }
            });
        }));
        assert!(result.is_err(), "round {round}: panic must propagate");
        assert_eq!(
            survivors.load(Ordering::Relaxed),
            8,
            "round {round}: sibling tasks must finish before the panic re-raises"
        );
        // And the pool still does real work afterwards.
        let sum = AtomicUsize::new(0);
        pool.scope(|scope| {
            for i in 0..10usize {
                let sum = &sum;
                scope.spawn(move || {
                    sum.fetch_add(i + 1, Ordering::Relaxed);
                });
            }
        });
        assert_eq!(sum.load(Ordering::Relaxed), 55, "round {round}");
    }
}

#[test]
fn panic_in_the_scope_closure_waits_for_spawned_tasks() {
    // If the *submitting* closure panics after spawning, `scope` must still
    // wait for the in-flight tasks (they borrow the submitter's stack)
    // before unwinding.
    let pool = WorkerPool::new(2);
    let finished = AtomicUsize::new(0);
    let result = catch_unwind(AssertUnwindSafe(|| {
        pool.scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    std::thread::sleep(std::time::Duration::from_millis(5));
                    finished.fetch_add(1, Ordering::Relaxed);
                });
            }
            panic!("submitter panic");
        });
    }));
    assert!(result.is_err());
    assert_eq!(finished.load(Ordering::Relaxed), 4);
    // Pool is still alive.
    pool.scope(|scope| scope.spawn(|| {}));
}

#[test]
fn mixed_dispatch_nesting_cannot_deadlock() {
    // The nastiest nesting shape: a pooled kernel's row closure runs a
    // spawn-path kernel, whose scoped threads (which carry no pool-worker
    // flag) each run a pooled kernel again. The intermediate scoped threads
    // queue jobs while the pool's worker may be blocked further up this
    // very call stack — only help-while-wait scheduling lets the scoped
    // threads drain their own jobs. On a 1-worker global pool (1-core CI
    // container) this deadlocked before that scheduling existed.
    let mut rng = rand_seed();
    let m = Matrix::random_normal(8, 5, 0.0, 1.0, &mut rng);
    let w = Matrix::random_normal(5, 3, 0.0, 1.0, &mut rng);
    let spawn = ParallelPolicy::new(2).with_min_rows_per_thread(1);
    let pooled = spawn.with_pool(true);
    let reference = m.matmul_with(&w, &ParallelPolicy::serial()).unwrap();
    let out = m.map_rows_with(3, &pooled, |i, _, out_row| {
        // Spawn-path kernel: its scoped threads are not pool workers...
        let inner = m.map_rows_with(3, &spawn, |j, _, inner_row| {
            // ...yet they submit pooled work again.
            let prod = m.matmul_with(&w, &pooled).unwrap();
            inner_row.copy_from_slice(prod.row(j));
        });
        out_row.copy_from_slice(inner.row(i));
    });
    assert!(bitwise_eq(&out, &reference));
}

#[test]
fn pooled_kernel_panic_propagates_and_the_global_pool_survives() {
    // End-to-end through a kernel: a panicking row closure must surface on
    // the calling thread, and the process-global pool must keep serving
    // kernels afterwards.
    let m = Matrix::from_fn(32, 4, |i, j| (i + j) as f64);
    let pooled = ParallelPolicy::new(4)
        .with_min_rows_per_thread(1)
        .with_pool(true);
    let result = catch_unwind(AssertUnwindSafe(|| {
        m.map_rows_with(4, &pooled, |i, row, out| {
            assert!(i < 16, "deliberate kernel panic on row {i}");
            out.copy_from_slice(row);
        })
    }));
    assert!(result.is_err(), "row-closure panic must reach the caller");
    let doubled = m.map_rows_with(4, &pooled, |_, row, out| {
        for (o, &x) in out.iter_mut().zip(row) {
            *o = 2.0 * x;
        }
    });
    assert!(bitwise_eq(&doubled, &m.scale(2.0)));
}

#[test]
fn many_concurrent_scopes_help_without_scanning_each_other() {
    // The O(queue²) regression shape: before jobs were indexed per scope,
    // every helped job re-scanned the entire shared queue under the global
    // lock, so many concurrent scopes × many chunks serialized all
    // submitters. With per-latch job lists this load — 16 submitters × 25
    // scopes × 64 jobs against 2 workers, far more jobs than the pool can
    // drain, so nearly all of them retire through the submitters' help
    // paths — completes quickly and correctly; under the old scan it
    // visibly crawled. Correctness (no lost, double-run, or cross-scope
    // job) is asserted exactly.
    let pool = WorkerPool::new(2);
    let total = AtomicUsize::new(0);
    std::thread::scope(|s| {
        for submitter in 0..16usize {
            let pool = &pool;
            let total = &total;
            s.spawn(move || {
                for _ in 0..25usize {
                    let scope_sum = AtomicUsize::new(0);
                    pool.scope(|scope| {
                        for job in 0..64usize {
                            let scope_sum = &scope_sum;
                            scope.spawn(move || {
                                scope_sum.fetch_add(submitter * 1000 + job, Ordering::Relaxed);
                            });
                        }
                    });
                    let expected: usize = (0..64).map(|job| submitter * 1000 + job).sum();
                    assert_eq!(scope_sum.load(Ordering::Relaxed), expected);
                    total.fetch_add(64, Ordering::Relaxed);
                }
            });
        }
    });
    assert_eq!(total.load(Ordering::Relaxed), 16 * 25 * 64);
}

#[test]
fn skewed_scopes_stay_isolated_under_stealing() {
    // Work-stealing moves *chunks between workers*, never *across scopes on
    // a waiting submitter*: while one submitter runs long heavy-row scopes,
    // other submitters' small scopes must still execute only on pool
    // workers or their own submitting thread. This is the straggler shape
    // chunking exists for — if stealing had been implemented by letting
    // waiters pull from a shared queue, the heavy scope's chunks would leak
    // onto the small scopes' waiters and trip the thread-identity check.
    let pool = WorkerPool::new(2);
    std::thread::scope(|s| {
        // One heavy submitter: scopes whose jobs spin long enough to overlap
        // the small scopes' waits.
        let heavy_pool = &pool;
        s.spawn(move || {
            for _ in 0..30 {
                heavy_pool.scope(|scope| {
                    for _ in 0..8 {
                        scope.spawn(|| {
                            std::hint::black_box((0..20_000).fold(0u64, |a, x| a ^ x));
                        });
                    }
                });
            }
        });
        for _ in 0..6 {
            let pool = &pool;
            s.spawn(move || {
                let submitter = std::thread::current().id();
                for _ in 0..60 {
                    pool.scope(|scope| {
                        for _ in 0..3 {
                            scope.spawn(move || {
                                let current = std::thread::current();
                                let on_pool_worker = current
                                    .name()
                                    .is_some_and(|name| name.starts_with("sls-pool-worker-"));
                                assert!(
                                    on_pool_worker || current.id() == submitter,
                                    "a small scope's chunk ran on a foreign thread: {:?}",
                                    current.name()
                                );
                            });
                        }
                    });
                }
            });
        }
    });
}

#[test]
fn ragged_row_costs_are_bitwise_identical_across_dispatch_and_chunking() {
    // Ragged per-row work (each row's closure cost scales with the row
    // index, so early chunks are light and late chunks are heavy) across
    // {serial, spawn, pool} × threads {1,2,4,8} × chunk sizes {adaptive, 1,
    // 3, 64}: stealing may reorder *when* rows run, but every row's
    // accumulation order is fixed, so outputs must match serial bit for
    // bit.
    let mut rng = rand_seed();
    let data = Matrix::random_normal(96, 10, 0.0, 1.0, &mut rng);
    let ragged = |i: usize, row: &[f64], out: &mut [f64]| {
        // Cost grows with the row index: a late row re-accumulates its
        // values many more times than an early one (serial accumulation
        // order within the row regardless).
        let reps = 1 + (i * 7) % 40;
        for slot in out.iter_mut() {
            *slot = 0.0;
        }
        for _ in 0..reps {
            for (slot, &x) in out.iter_mut().zip(row) {
                *slot += x;
            }
        }
    };
    let reference = data.map_rows_with(10, &ParallelPolicy::serial(), ragged);
    for threads in [1usize, 2, 4, 8] {
        for pool in [false, true] {
            for chunk_rows in [0usize, 1, 3, 64] {
                let policy = ParallelPolicy::new(threads)
                    .with_min_rows_per_thread(1)
                    .with_pool(pool)
                    .with_chunk_rows(chunk_rows);
                let out = data.map_rows_with(10, &policy, ragged);
                assert!(
                    bitwise_eq(&out, &reference),
                    "threads {threads} pool {pool} chunk_rows {chunk_rows}"
                );
            }
        }
    }
}

fn rand_seed() -> rand_chacha::ChaCha8Rng {
    use rand::SeedableRng;
    rand_chacha::ChaCha8Rng::seed_from_u64(2024)
}
