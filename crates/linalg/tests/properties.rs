//! Property-based tests for the linear-algebra substrate.
//!
//! These check algebraic identities (associativity with identity, transpose
//! involution, distance axioms, standardisation invariants) on randomly
//! generated matrices rather than hand-picked examples.

use proptest::prelude::*;
use sls_linalg::{
    euclidean_distance, pairwise_distances, Matrix, ParallelPolicy, SimdPolicy, Standardizer,
};

/// Strategy producing a matrix with the given bounds on shape and values in
/// [-10, 10].
fn matrix_strategy(max_rows: usize, max_cols: usize) -> impl Strategy<Value = Matrix> {
    (1..=max_rows, 1..=max_cols).prop_flat_map(|(r, c)| {
        proptest::collection::vec(-10.0..10.0f64, r * c)
            .prop_map(move |data| Matrix::from_vec(r, c, data).unwrap())
    })
}

/// Two matrices with compatible shapes for multiplication (n x k, k x m).
fn matmul_pair() -> impl Strategy<Value = (Matrix, Matrix)> {
    (1..6usize, 1..6usize, 1..6usize).prop_flat_map(|(n, k, m)| {
        let a = proptest::collection::vec(-5.0..5.0f64, n * k)
            .prop_map(move |d| Matrix::from_vec(n, k, d).unwrap());
        let b = proptest::collection::vec(-5.0..5.0f64, k * m)
            .prop_map(move |d| Matrix::from_vec(k, m, d).unwrap());
        (a, b)
    })
}

/// Like [`matmul_pair`] but with row counts large enough to cross the
/// serial/parallel cutover and give every thread multiple rows.
fn large_matmul_pair() -> impl Strategy<Value = (Matrix, Matrix)> {
    (1..40usize, 1..12usize, 1..12usize).prop_flat_map(|(n, k, m)| {
        let a = proptest::collection::vec(-5.0..5.0f64, n * k)
            .prop_map(move |d| Matrix::from_vec(n, k, d).unwrap());
        let b = proptest::collection::vec(-5.0..5.0f64, k * m)
            .prop_map(move |d| Matrix::from_vec(k, m, d).unwrap());
        (a, b)
    })
}

/// Policies covering thread counts 1–8, cutovers around the partition
/// boundaries (including `min_rows_per_thread` values that force serial
/// execution for most shapes — the cutover itself is under test), both
/// dispatch modes (spawn-per-call scoped threads and the persistent worker
/// pool), both SIMD arms (unrolled 4-lane and scalar fallback) and chunk
/// sizes from adaptive through single-row to larger-than-any-shape. Every
/// bitwise-identity property below therefore holds across the full
/// {serial, spawn, pool} × {simd on, simd off} × chunking grid.
fn policy_strategy() -> impl Strategy<Value = ParallelPolicy> {
    (1..=8usize, 1..=9usize, 0..2usize, 0..2usize, 0..4usize).prop_map(
        |(threads, min_rows, pool, simd, chunk)| {
            // 9 maps to a cutover larger than any generated row count,
            // forcing the serial path through the parallel entry points.
            let min_rows = if min_rows == 9 { 64 } else { min_rows };
            // 0 = adaptive; the rest pin extreme chunk sizes (chunking must
            // be bitwise inert, so any value is as good as any other).
            let chunk_rows = [0, 1, 2, 64][chunk];
            ParallelPolicy::new(threads)
                .with_min_rows_per_thread(min_rows)
                .with_pool(pool == 1)
                .with_simd(SimdPolicy::from_enabled(simd == 1))
                .with_chunk_rows(chunk_rows)
        },
    )
}

/// Operand pairs whose *inner* (dot/axpy) dimension is `16q + tail` with
/// `tail ∈ 0..=15`, sweeping every ragged remainder the unrolled reductions
/// can see (16 accumulators per chunk) — the classic unrolling bug site —
/// across the chunkless degenerate case and one complete chunk.
fn tailed_matmul_pair() -> impl Strategy<Value = (Matrix, Matrix)> {
    (0..=1usize, 0..=15usize, 1..24usize, 1..10usize).prop_flat_map(|(q, tail, n, m)| {
        let k = (16 * q + tail).max(1);
        let a = proptest::collection::vec(-5.0..5.0f64, n * k)
            .prop_map(move |d| Matrix::from_vec(n, k, d).unwrap());
        let b = proptest::collection::vec(-5.0..5.0f64, k * m)
            .prop_map(move |d| Matrix::from_vec(k, m, d).unwrap());
        (a, b)
    })
}

/// The {serial, spawn, pool} × {simd on, simd off} grid the acceptance
/// criteria name, with an eager cutover so multi-thread policies really fan
/// out on the generated shapes.
fn policy_grid() -> Vec<ParallelPolicy> {
    let mut grid = Vec::new();
    for simd in [SimdPolicy::Scalar, SimdPolicy::Lanes4] {
        grid.push(ParallelPolicy::serial().with_simd(simd));
        for pool in [false, true] {
            grid.push(
                ParallelPolicy::new(4)
                    .with_min_rows_per_thread(1)
                    .with_pool(pool)
                    .with_simd(simd),
            );
        }
        // Single-row chunks on the pool path maximise stealing and chunk
        // reordering — the harshest test of chunking's bitwise inertness.
        grid.push(
            ParallelPolicy::new(4)
                .with_min_rows_per_thread(1)
                .with_pool(true)
                .with_simd(simd)
                .with_chunk_rows(1),
        );
    }
    grid
}

/// Exact bitwise equality (`f64::to_bits`), stricter than `==` (which treats
/// `0.0 == -0.0`): the reproducibility contract of the parallel layer.
fn bitwise_eq(a: &Matrix, b: &Matrix) -> bool {
    a.shape() == b.shape()
        && a.as_slice()
            .iter()
            .zip(b.as_slice())
            .all(|(x, y)| x.to_bits() == y.to_bits())
}

proptest! {
    #[test]
    fn transpose_is_involutive(m in matrix_strategy(8, 8)) {
        prop_assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    fn identity_is_neutral(m in matrix_strategy(8, 8)) {
        let i = Matrix::identity(m.cols());
        let prod = m.matmul(&i).unwrap();
        prop_assert!(prod.approx_eq(&m, 1e-9));
    }

    #[test]
    fn matmul_transpose_right_agrees_with_explicit((a, b) in matmul_pair()) {
        let direct = a.matmul(&b).unwrap();
        let via = a.matmul_transpose_right(&b.transpose()).unwrap();
        prop_assert!(direct.approx_eq(&via, 1e-9));
    }

    #[test]
    fn matmul_transpose_left_agrees_with_explicit((a, b) in matmul_pair()) {
        // aᵀ has shape (k, n); multiply aᵀ·a via both paths.
        let gram = a.transpose().matmul(&a).unwrap();
        let via = a.matmul_transpose_left(&a).unwrap();
        prop_assert!(gram.approx_eq(&via, 1e-9));
        // Keep `b` used so the pair strategy stays meaningful.
        prop_assert_eq!(b.rows(), a.cols());
    }

    #[test]
    fn parallel_matmul_is_bitwise_identical_to_serial(
        (a, b) in large_matmul_pair(),
        policy in policy_strategy(),
    ) {
        let serial = a.matmul_with(&b, &ParallelPolicy::serial()).unwrap();
        let parallel = a.matmul_with(&b, &policy).unwrap();
        prop_assert!(bitwise_eq(&serial, &parallel), "policy {policy:?}");
    }

    #[test]
    fn parallel_matmul_transpose_right_is_bitwise_identical_to_serial(
        (a, b) in large_matmul_pair(),
        policy in policy_strategy(),
    ) {
        // `a` (n x k) times rows of `bᵀ`-shaped operand: reuse `b` transposed
        // so the column counts match.
        let bt = b.transpose();
        let serial = a.matmul_transpose_right_with(&bt, &ParallelPolicy::serial()).unwrap();
        let parallel = a.matmul_transpose_right_with(&bt, &policy).unwrap();
        prop_assert!(bitwise_eq(&serial, &parallel), "policy {policy:?}");
    }

    #[test]
    fn parallel_matmul_transpose_left_is_bitwise_identical_to_serial(
        (a, b) in large_matmul_pair(),
        policy in policy_strategy(),
    ) {
        // Vᵀ·H with V = a (n x k) and H (n x m): build H with a's row count.
        let h = Matrix::from_fn(a.rows(), b.cols(), |i, j| {
            a.row(i).iter().sum::<f64>() * 0.25 + j as f64
        });
        let serial = a.matmul_transpose_left_with(&h, &ParallelPolicy::serial()).unwrap();
        let parallel = a.matmul_transpose_left_with(&h, &policy).unwrap();
        prop_assert!(bitwise_eq(&serial, &parallel), "policy {policy:?}");
    }

    #[test]
    fn parallel_map_and_reduce_are_bitwise_identical_to_serial(
        m in matrix_strategy(40, 8),
        policy in policy_strategy(),
    ) {
        let sigmoid = |x: f64| 1.0 / (1.0 + (-x).exp());
        let cols = m.cols();
        let fused = |_: usize, row: &[f64], out: &mut [f64]| {
            for (o, &x) in out.iter_mut().zip(row) {
                *o = sigmoid(x);
            }
        };
        let serial_map = m.map_rows_with(cols, &ParallelPolicy::serial(), fused);
        let parallel_map = m.map_rows_with(cols, &policy, fused);
        prop_assert!(bitwise_eq(&serial_map, &parallel_map));

        let norm = |_: usize, row: &[f64]| row.iter().map(|x| x * x).sum::<f64>().sqrt();
        let serial_reduce = m.reduce_rows_with(&ParallelPolicy::serial(), norm);
        let parallel_reduce = m.reduce_rows_with(&policy, norm);
        let same = serial_reduce
            .iter()
            .zip(&parallel_reduce)
            .all(|(x, y)| x.to_bits() == y.to_bits());
        prop_assert!(same);
    }

    #[test]
    fn all_five_kernels_are_bitwise_identical_across_dispatch_and_simd(
        (a, b) in tailed_matmul_pair(),
    ) {
        // The acceptance grid: every kernel, every dispatch mode, both SIMD
        // arms, with the inner dimension sweeping tails 0..=15 so every
        // ragged remainder after the 16-accumulator dot chunks is exercised
        // on both sides of the chunk boundary. The reference is serial +
        // scalar fallback.
        let reference = ParallelPolicy::serial().with_simd(SimdPolicy::Scalar);
        let bt = b.transpose();
        let h = Matrix::from_fn(a.rows(), b.cols(), |i, j| {
            a.row(i).iter().sum::<f64>() * 0.25 + j as f64
        });
        let sigmoid = |x: f64| 1.0 / (1.0 + (-x).exp());
        let cols = a.cols();
        let fused = |_: usize, row: &[f64], out: &mut [f64]| {
            for (o, &x) in out.iter_mut().zip(row) {
                *o = sigmoid(x);
            }
        };
        let mm_ref = a.matmul_with(&b, &reference).unwrap();
        let tr_ref = a.matmul_transpose_right_with(&bt, &reference).unwrap();
        let tl_ref = a.matmul_transpose_left_with(&h, &reference).unwrap();
        let map_ref = a.map_rows_with(cols, &reference, fused);
        let red_ref = a.reduce_rows_with(&reference, |_, row| row.iter().map(|x| x * x).sum());
        for policy in policy_grid() {
            prop_assert!(
                bitwise_eq(&mm_ref, &a.matmul_with(&b, &policy).unwrap()),
                "matmul {policy:?}"
            );
            prop_assert!(
                bitwise_eq(&tr_ref, &a.matmul_transpose_right_with(&bt, &policy).unwrap()),
                "transpose_right {policy:?}"
            );
            prop_assert!(
                bitwise_eq(&tl_ref, &a.matmul_transpose_left_with(&h, &policy).unwrap()),
                "transpose_left {policy:?}"
            );
            prop_assert!(
                bitwise_eq(&map_ref, &a.map_rows_with(cols, &policy, fused)),
                "map_rows {policy:?}"
            );
            let red: Vec<f64> = a.reduce_rows_with(&policy, |_, row| row.iter().map(|x| x * x).sum());
            prop_assert!(
                red_ref.iter().zip(&red).all(|(x, y)| x.to_bits() == y.to_bits()),
                "reduce_rows {policy:?}"
            );
        }
    }

    #[test]
    fn cutover_boundary_keeps_results_identical(
        (a, b) in large_matmul_pair(),
        threads in 2..=8usize,
    ) {
        // Pin min_rows_per_thread exactly at / around the row count so the
        // serial<->parallel decision flips within one test case — for both
        // dispatch modes.
        let n = a.rows();
        for min_rows in [n.saturating_sub(1).max(1), n, n + 1] {
            for pool in [false, true] {
                let policy = ParallelPolicy::new(threads)
                    .with_min_rows_per_thread(min_rows)
                    .with_pool(pool);
                let serial = a.matmul_with(&b, &ParallelPolicy::serial()).unwrap();
                let parallel = a.matmul_with(&b, &policy).unwrap();
                prop_assert!(bitwise_eq(&serial, &parallel), "min_rows {min_rows} pool {pool}");
            }
        }
    }

    #[test]
    fn transpose_of_product_is_reversed_product((a, b) in matmul_pair()) {
        let left = a.matmul(&b).unwrap().transpose();
        let right = b.transpose().matmul(&a.transpose()).unwrap();
        prop_assert!(left.approx_eq(&right, 1e-9));
    }

    #[test]
    fn add_then_sub_round_trips(m in matrix_strategy(8, 8)) {
        let other = m.map(|x| x * 0.5 + 1.0);
        let back = m.add(&other).unwrap().sub(&other).unwrap();
        prop_assert!(back.approx_eq(&m, 1e-9));
    }

    #[test]
    fn scale_is_linear_in_sum(m in matrix_strategy(8, 8), alpha in -3.0..3.0f64) {
        let scaled_sum = m.scale(alpha).sum();
        prop_assert!((scaled_sum - alpha * m.sum()).abs() < 1e-6);
    }

    #[test]
    fn distance_axioms(
        a in proptest::collection::vec(-10.0..10.0f64, 1..12),
        b in proptest::collection::vec(-10.0..10.0f64, 1..12),
    ) {
        let n = a.len().min(b.len());
        let (a, b) = (&a[..n], &b[..n]);
        let dab = euclidean_distance(a, b);
        let dba = euclidean_distance(b, a);
        prop_assert!(dab >= 0.0);
        prop_assert!((dab - dba).abs() < 1e-9);
        prop_assert!(euclidean_distance(a, a) < 1e-12);
    }

    #[test]
    fn pairwise_distance_triangle_inequality(m in matrix_strategy(6, 4)) {
        let d = pairwise_distances(&m);
        let n = m.rows();
        for i in 0..n {
            for j in 0..n {
                for k in 0..n {
                    prop_assert!(d[(i, j)] <= d[(i, k)] + d[(k, j)] + 1e-9);
                }
            }
        }
    }

    #[test]
    fn standardized_columns_have_zero_mean(m in matrix_strategy(10, 6)) {
        prop_assume!(m.rows() >= 2);
        let (_, t) = Standardizer::fit_transform(&m).unwrap();
        for j in 0..t.cols() {
            let col = t.column(j);
            let mean: f64 = col.iter().sum::<f64>() / col.len() as f64;
            prop_assert!(mean.abs() < 1e-9);
        }
    }

    #[test]
    fn standardizer_inverse_round_trips(m in matrix_strategy(10, 6)) {
        prop_assume!(m.rows() >= 2);
        let (s, t) = Standardizer::fit_transform(&m).unwrap();
        let back = s.inverse_transform(&t).unwrap();
        prop_assert!(back.approx_eq(&m, 1e-7));
    }

    #[test]
    fn select_rows_preserves_content(m in matrix_strategy(10, 6)) {
        let indices: Vec<usize> = (0..m.rows()).rev().collect();
        let s = m.select_rows(&indices).unwrap();
        for (pos, &orig) in indices.iter().enumerate() {
            prop_assert_eq!(s.row(pos), m.row(orig));
        }
    }

    #[test]
    fn min_max_normalize_is_bounded(m in matrix_strategy(8, 8)) {
        let n = m.min_max_normalize();
        prop_assert!(n.min().unwrap() >= -1e-12);
        prop_assert!(n.max().unwrap() <= 1.0 + 1e-12);
    }
}
