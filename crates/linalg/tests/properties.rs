//! Property-based tests for the linear-algebra substrate.
//!
//! These check algebraic identities (associativity with identity, transpose
//! involution, distance axioms, standardisation invariants) on randomly
//! generated matrices rather than hand-picked examples.

use proptest::prelude::*;
use sls_linalg::{euclidean_distance, pairwise_distances, Matrix, Standardizer};

/// Strategy producing a matrix with the given bounds on shape and values in
/// [-10, 10].
fn matrix_strategy(max_rows: usize, max_cols: usize) -> impl Strategy<Value = Matrix> {
    (1..=max_rows, 1..=max_cols).prop_flat_map(|(r, c)| {
        proptest::collection::vec(-10.0..10.0f64, r * c)
            .prop_map(move |data| Matrix::from_vec(r, c, data).unwrap())
    })
}

/// Two matrices with compatible shapes for multiplication (n x k, k x m).
fn matmul_pair() -> impl Strategy<Value = (Matrix, Matrix)> {
    (1..6usize, 1..6usize, 1..6usize).prop_flat_map(|(n, k, m)| {
        let a = proptest::collection::vec(-5.0..5.0f64, n * k)
            .prop_map(move |d| Matrix::from_vec(n, k, d).unwrap());
        let b = proptest::collection::vec(-5.0..5.0f64, k * m)
            .prop_map(move |d| Matrix::from_vec(k, m, d).unwrap());
        (a, b)
    })
}

proptest! {
    #[test]
    fn transpose_is_involutive(m in matrix_strategy(8, 8)) {
        prop_assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    fn identity_is_neutral(m in matrix_strategy(8, 8)) {
        let i = Matrix::identity(m.cols());
        let prod = m.matmul(&i).unwrap();
        prop_assert!(prod.approx_eq(&m, 1e-9));
    }

    #[test]
    fn matmul_transpose_right_agrees_with_explicit((a, b) in matmul_pair()) {
        let direct = a.matmul(&b).unwrap();
        let via = a.matmul_transpose_right(&b.transpose()).unwrap();
        prop_assert!(direct.approx_eq(&via, 1e-9));
    }

    #[test]
    fn matmul_transpose_left_agrees_with_explicit((a, b) in matmul_pair()) {
        // aᵀ has shape (k, n); multiply aᵀ·a via both paths.
        let gram = a.transpose().matmul(&a).unwrap();
        let via = a.matmul_transpose_left(&a).unwrap();
        prop_assert!(gram.approx_eq(&via, 1e-9));
        // Keep `b` used so the pair strategy stays meaningful.
        prop_assert_eq!(b.rows(), a.cols());
    }

    #[test]
    fn transpose_of_product_is_reversed_product((a, b) in matmul_pair()) {
        let left = a.matmul(&b).unwrap().transpose();
        let right = b.transpose().matmul(&a.transpose()).unwrap();
        prop_assert!(left.approx_eq(&right, 1e-9));
    }

    #[test]
    fn add_then_sub_round_trips(m in matrix_strategy(8, 8)) {
        let other = m.map(|x| x * 0.5 + 1.0);
        let back = m.add(&other).unwrap().sub(&other).unwrap();
        prop_assert!(back.approx_eq(&m, 1e-9));
    }

    #[test]
    fn scale_is_linear_in_sum(m in matrix_strategy(8, 8), alpha in -3.0..3.0f64) {
        let scaled_sum = m.scale(alpha).sum();
        prop_assert!((scaled_sum - alpha * m.sum()).abs() < 1e-6);
    }

    #[test]
    fn distance_axioms(
        a in proptest::collection::vec(-10.0..10.0f64, 1..12),
        b in proptest::collection::vec(-10.0..10.0f64, 1..12),
    ) {
        let n = a.len().min(b.len());
        let (a, b) = (&a[..n], &b[..n]);
        let dab = euclidean_distance(a, b);
        let dba = euclidean_distance(b, a);
        prop_assert!(dab >= 0.0);
        prop_assert!((dab - dba).abs() < 1e-9);
        prop_assert!(euclidean_distance(a, a) < 1e-12);
    }

    #[test]
    fn pairwise_distance_triangle_inequality(m in matrix_strategy(6, 4)) {
        let d = pairwise_distances(&m);
        let n = m.rows();
        for i in 0..n {
            for j in 0..n {
                for k in 0..n {
                    prop_assert!(d[(i, j)] <= d[(i, k)] + d[(k, j)] + 1e-9);
                }
            }
        }
    }

    #[test]
    fn standardized_columns_have_zero_mean(m in matrix_strategy(10, 6)) {
        prop_assume!(m.rows() >= 2);
        let (_, t) = Standardizer::fit_transform(&m).unwrap();
        for j in 0..t.cols() {
            let col = t.column(j);
            let mean: f64 = col.iter().sum::<f64>() / col.len() as f64;
            prop_assert!(mean.abs() < 1e-9);
        }
    }

    #[test]
    fn standardizer_inverse_round_trips(m in matrix_strategy(10, 6)) {
        prop_assume!(m.rows() >= 2);
        let (s, t) = Standardizer::fit_transform(&m).unwrap();
        let back = s.inverse_transform(&t).unwrap();
        prop_assert!(back.approx_eq(&m, 1e-7));
    }

    #[test]
    fn select_rows_preserves_content(m in matrix_strategy(10, 6)) {
        let indices: Vec<usize> = (0..m.rows()).rev().collect();
        let s = m.select_rows(&indices).unwrap();
        for (pos, &orig) in indices.iter().enumerate() {
            prop_assert_eq!(s.row(pos), m.row(orig));
        }
    }

    #[test]
    fn min_max_normalize_is_bounded(m in matrix_strategy(8, 8)) {
        let n = m.min_max_normalize();
        prop_assert!(n.min().unwrap() >= -1e-12);
        prop_assert!(n.max().unwrap() <= 1.0 + 1e-12);
    }
}
